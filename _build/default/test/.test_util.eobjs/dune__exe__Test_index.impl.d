test/test_index.ml: Alcotest Array Cactis Cactis_util List Printf QCheck QCheck_alcotest
