(* Writer-side shipping loop.  One domain, one select loop, over the
   listen socket, a self-pipe (the commit hook's doorbell) and every
   follower socket.  See the interface for the protocol overview.

   Cursor chain invariant: the publisher assigns [prev] from its own
   [chain] cursor as it drains the commit queue, so the stream is a
   single totally-ordered chain no matter how commits interleave with
   checkpoints.  A record whose post-append cursor jumped to a new
   generation with records >= 1 means a checkpoint slipped in between
   two commits without a quiet moment for the idle mark; a synthetic
   Mark is inserted in front of it so every first-record-of-a-
   generation chains from [(gen, 0)] — which is exactly where a
   follower lands after loading the generation's snapshot. *)

module Persist = Cactis.Persist
module Db = Cactis.Db
module Codec = Cactis.Codec
module Counters = Cactis_util.Counters
module Histogram = Cactis_obs.Histogram
module Wal = Cactis_storage.Wal
module Frame = Cactis_net.Frame
module P = Repl_proto

type config = {
  cfg_port : int;
  cfg_heartbeat_s : float;
  cfg_max_backlog : int;
  cfg_send_timeout_s : float;
  cfg_backlog : int;
}

let config ?(port = 0) ?(heartbeat_s = 1.0) ?(max_backlog = 262_144)
    ?(send_timeout_s = 5.0) ?(backlog = 16) () =
  {
    cfg_port = port;
    cfg_heartbeat_s = heartbeat_s;
    cfg_max_backlog = max_backlog;
    cfg_send_timeout_s = send_timeout_s;
    cfg_backlog = backlog;
  }

(* One shipped stream item.  A record advances the cursor by one WAL
   append; a mark advances it to a checkpoint generation boundary. *)
type item =
  | I_rec of { i_prev : P.cursor; i_cursor : P.cursor; i_record : string }
  | I_mark of { i_prev : P.cursor; i_gen : int }

let item_after = function
  | I_rec { i_cursor; _ } -> i_cursor
  | I_mark { i_gen; _ } -> { P.gen = i_gen; records = 0 }

(* What the commit hook pushes: the record plus the WAL cursor read
   right after the durable append.  [prev] is assigned later, by the
   publisher domain, from its chain. *)
type pending = { p_cursor : P.cursor; p_record : string }

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  c_peer : string;
  mutable c_pos : int;  (* next backlog seq to send; meaningful when streaming *)
  mutable c_streaming : bool;  (* handshake done, receiving the stream *)
  mutable c_acked : int;
  mutable c_alive : bool;
}

type t = {
  cfg : config;
  persist : Persist.t;
  counters : Counters.t;
  hists : Histogram.t;
  (* hook -> publisher handoff; [qmu] also covers the idle-mark guard so
     a Mark can never be emitted while a just-appended record is still
     in flight between the WAL and the queue. *)
  qmu : Mutex.t;
  queue : pending Queue.t;
  mutable hook_live : bool;  (* under qmu *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  lport : int;
  (* Everything below is publisher-domain private. *)
  mutable backlog : item array;  (* ring buffer *)
  mutable first_seq : int;
  mutable next_seq : int;
  mutable chain : P.cursor;  (* cursor after the last appended item *)
  mutable conns : conn list;
  mutable last_hb : float;
  stop_flag : bool Atomic.t;
  g_followers : int Atomic.t;
  g_head_seq : int Atomic.t;
  mutable domain : unit Domain.t option;
}

let port t = t.lport
let followers t = Atomic.get t.g_followers
let head_seq t = Atomic.get t.g_head_seq

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* ------------------------------------------------------------------ *)
(* Backlog ring                                                        *)

let dummy_item = I_mark { i_prev = P.cursor_zero; i_gen = 0 }

let blog_size t = t.next_seq - t.first_seq

let blog_get t seq =
  assert (seq >= t.first_seq && seq < t.next_seq);
  t.backlog.(seq mod Array.length t.backlog)

let blog_push t item =
  let cap = Array.length t.backlog in
  if blog_size t = cap then begin
    let bigger = Array.make (cap * 2) dummy_item in
    for s = t.first_seq to t.next_seq - 1 do
      bigger.(s mod (cap * 2)) <- t.backlog.(s mod cap)
    done;
    t.backlog <- bigger
  end;
  t.backlog.(t.next_seq mod Array.length t.backlog) <- item;
  t.next_seq <- t.next_seq + 1

(* Drop every item below [seq] (clearing slots so records are not
   retained by the ring after pruning). *)
let blog_drop_below t seq =
  let seq = min seq t.next_seq in
  while t.first_seq < seq do
    t.backlog.(t.first_seq mod Array.length t.backlog) <- dummy_item;
    t.first_seq <- t.first_seq + 1
  done

(* ------------------------------------------------------------------ *)
(* Bounded sends.  Frame.send retries EAGAIN with an unbounded select,
   which would let one stalled follower wedge the whole publisher; this
   write loop gives every follower a hard deadline instead. *)

let send_timed fd ~timeout_s payload =
  let s = Frame.encode payload in
  let len = String.length s in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let off = ref 0 in
  (try
     while !off < len do
       match Unix.write_substring fd s !off (len - !off) with
       | n -> off := !off + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         let remaining = deadline -. Unix.gettimeofday () in
         if remaining <= 0.0 then raise (Repl_error.Transport "send deadline exceeded");
         (try ignore (Unix.select [] [fd] [] remaining)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ());
         if Unix.gettimeofday () >= deadline then
           raise (Repl_error.Transport "send deadline exceeded")
     done
   with Unix.Unix_error (e, _, _) ->
     raise (Repl_error.Transport (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Queue drain: pending records -> chained backlog items               *)

let append_item t item =
  blog_push t item;
  t.chain <- item_after item;
  Atomic.set t.g_head_seq (t.next_seq - 1);
  match item with
  | I_mark _ -> Counters.incr t.counters "repl.marks"
  | I_rec _ -> ()

let drain_queue t =
  Mutex.lock t.qmu;
  let drained = Queue.fold (fun acc p -> p :: acc) [] t.queue in
  Queue.clear t.queue;
  (* Idle mark: a checkpoint ran and the WAL is empty again, so the
     chain state IS the new generation's snapshot.  Guarded by the same
     mutex as the hook so no record can be between WAL and queue. *)
  let idle_mark =
    drained = []
    && Persist.generation t.persist > t.chain.P.gen
    && Persist.wal_records t.persist = 0
  in
  let gen_now = Persist.generation t.persist in
  Mutex.unlock t.qmu;
  let before = t.next_seq in
  if idle_mark then append_item t (I_mark { i_prev = t.chain; i_gen = gen_now });
  List.iter
    (fun p ->
      (* First record of a fresh generation (records >= 1): a checkpoint
         landed between commits with no idle moment; chain through the
         generation boundary explicitly so bootstrapping followers (who
         start at [(gen, 0)]) can join the chain. *)
      if p.p_cursor.P.gen > t.chain.P.gen && p.p_cursor.P.records >= 1 then
        append_item t (I_mark { i_prev = t.chain; i_gen = p.p_cursor.P.gen });
      append_item t (I_rec { i_prev = t.chain; i_cursor = p.p_cursor; i_record = p.p_record }))
    (List.rev drained);
  t.next_seq > before

(* ------------------------------------------------------------------ *)
(* Follower bookkeeping                                                *)

let set_followers_gauge t =
  Atomic.set t.g_followers (List.length (List.filter (fun c -> c.c_alive) t.conns))

let drop_conn t conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    set_followers_gauge t
  end

let refuse t conn ~code ~message =
  Counters.incr t.counters "repl.refusals";
  (try send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
         (P.encode_server (P.Refuse { code; message }))
   with Repl_error.Transport _ -> ());
  drop_conn t conn

(* Send backlog items [from, upto) as Batch/Mark frames, batches capped
   near 1 MiB of payload.  Returns the new position. *)
let send_range t conn ~from ~upto =
  let batch = ref [] and batch_bytes = ref 0 in
  let flush () =
    if !batch <> [] then begin
      let entries = List.rev !batch in
      send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
        (P.encode_server (P.Batch { sent_us = now_us (); entries }));
      Counters.incr t.counters "repl.ship_batches";
      Counters.add t.counters "repl.ship_records" (List.length entries);
      Counters.add t.counters "repl.ship_bytes" !batch_bytes;
      batch := [];
      batch_bytes := 0
    end
  in
  for seq = from to upto - 1 do
    match blog_get t seq with
    | I_rec { i_prev; i_cursor; i_record } ->
      batch :=
        { P.e_seq = seq; e_prev = i_prev; e_cursor = i_cursor; e_record = i_record } :: !batch;
      batch_bytes := !batch_bytes + String.length i_record + 32;
      if !batch_bytes >= 1 lsl 20 then flush ()
    | I_mark { i_prev; i_gen } ->
      flush ();
      send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
        (P.encode_server (P.Mark { seq; prev = i_prev; generation = i_gen }))
  done;
  flush ();
  conn.c_pos <- upto

(* First backlog seq whose after-cursor is past [cursor], if any. *)
let first_past t cursor =
  let rec scan seq =
    if seq >= t.next_seq then None
    else if P.cursor_compare (item_after (blog_get t seq)) cursor > 0 then Some seq
    else scan (seq + 1)
  in
  scan t.first_seq

let item_prev = function I_rec { i_prev; _ } -> i_prev | I_mark { i_prev; _ } -> i_prev

(* Snapshot + catch-up bootstrap for a follower the backlog cannot
   resume. *)
let bootstrap t conn =
  match Persist.read_checkpoint t.persist with
  | None ->
    (* No checkpoint on disk can only mean an empty baseline: the
       follower starts from cursor zero and replays the whole backlog. *)
    conn.c_pos <- t.first_seq;
    conn.c_streaming <- true
  | Some (generation, schema_version, payload) ->
    send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
      (P.encode_server
         (P.Snap_begin { generation; schema_version; size = String.length payload }));
    let len = String.length payload in
    let off = ref 0 in
    let sent_any = ref false in
    while (not !sent_any) || !off < len do
      let n = min P.snap_chunk_bytes (len - !off) in
      let last = !off + n >= len in
      send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
        (P.encode_server (P.Snap_chunk { last; data = String.sub payload !off n }));
      off := !off + n;
      sent_any := true
    done;
    Counters.incr t.counters "repl.snapshots_served";
    let at = { P.gen = generation; records = 0 } in
    conn.c_pos <- (match first_past t at with Some s -> s | None -> t.next_seq);
    conn.c_streaming <- true

let handle_hello t conn (cursor : P.cursor) =
  let wgen = Persist.generation t.persist in
  if cursor.P.gen > wgen && cursor.P.gen > t.chain.P.gen then
    refuse t conn ~code:Repl_error.code_generation_mismatch
      ~message:
        (Printf.sprintf "replica at checkpoint generation %d, writer at %d — stale writer?"
           cursor.P.gen wgen)
  else if P.cursor_compare cursor t.chain > 0 then
    refuse t conn ~code:Repl_error.code_follower_ahead
      ~message:
        (Printf.sprintf "replica cursor %s is ahead of writer head %s"
           (P.cursor_to_string cursor) (P.cursor_to_string t.chain))
  else if P.cursor_compare cursor t.chain = 0 then begin
    conn.c_pos <- t.next_seq;
    conn.c_streaming <- true
  end
  else
    match first_past t cursor with
    | Some seq when P.cursor_compare (item_prev (blog_get t seq)) cursor = 0 ->
      conn.c_pos <- seq;
      conn.c_streaming <- true
    | _ -> bootstrap t conn

(* Completing a handshake announces the writer's true head right away:
   a follower resuming a multi-frame backlog (batch / mark / batch)
   must not believe itself synced at the first frame boundary. *)
let announce t conn =
  try
    send_timed conn.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s
      (P.encode_server
         (P.Heartbeat { head_seq = t.next_seq - 1; cursor = t.chain; sent_us = now_us () }))
  with Repl_error.Transport _ -> drop_conn t conn

let handle_client_frame t conn frame =
  match P.decode_client frame with
  | P.Hello { cursor; _ } ->
    if conn.c_streaming then
      refuse t conn ~code:Repl_error.code_protocol ~message:"Hello after handshake"
    else begin
      handle_hello t conn cursor;
      if conn.c_alive && conn.c_streaming then announce t conn
    end
  | P.Ack { seq; lag_us; _ } ->
    conn.c_acked <- max conn.c_acked seq;
    Histogram.observe_named t.hists "repl.follower_lag_records"
      (float_of_int (max 0 (t.next_seq - 1 - seq)));
    ignore lag_us

let service_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
  | 0 -> drop_conn t conn
  | n -> (
    Frame.feed conn.c_dec (Bytes.sub_string buf 0 n);
    try
      let rec frames () =
        match Frame.next conn.c_dec with
        | Some f when conn.c_alive ->
          handle_client_frame t conn f;
          frames ()
        | _ -> ()
      in
      frames ()
    with
    | P.Corrupt _ | Frame.Too_large _ -> drop_conn t conn
    | Repl_error.Transport _ -> drop_conn t conn)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_conn t conn

(* ------------------------------------------------------------------ *)
(* Prune: drop items every follower has been sent AND that precede the
   previous generation boundary (the current and previous generations
   stay resumable).  If the ring still exceeds [max_backlog], evict the
   stragglers holding it back — they re-bootstrap on reconnect — and
   cut to the cap. *)

let prune t =
  let min_pos =
    List.fold_left
      (fun acc c -> if c.c_streaming then min acc c.c_pos else acc)
      t.next_seq t.conns
  in
  let floor = { P.gen = t.chain.P.gen - 1; records = 0 } in
  let gen_keep = match first_past t floor with Some s -> s | None -> t.next_seq in
  blog_drop_below t (min gen_keep min_pos);
  if blog_size t > t.cfg.cfg_max_backlog then begin
    let hard = t.next_seq - t.cfg.cfg_max_backlog in
    List.iter
      (fun c -> if c.c_streaming && c.c_pos < hard then drop_conn t c)
      t.conns;
    blog_drop_below t hard
  end

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

let heartbeat t =
  let msg =
    P.encode_server
      (P.Heartbeat { head_seq = t.next_seq - 1; cursor = t.chain; sent_us = now_us () })
  in
  List.iter
    (fun c ->
      if c.c_streaming then
        try send_timed c.c_fd ~timeout_s:t.cfg.cfg_send_timeout_s msg
        with Repl_error.Transport _ -> drop_conn t c)
    t.conns

let accept_conns t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let peer =
        match addr with
        | Unix.ADDR_INET (h, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr h) p
        | Unix.ADDR_UNIX s -> s
      in
      let conn =
        {
          c_fd = fd;
          c_dec = Frame.decoder ();
          c_peer = peer;
          c_pos = -1;
          c_streaming = false;
          c_acked = -1;
          c_alive = true;
        }
      in
      ignore conn.c_peer;
      t.conns <- conn :: t.conns;
      set_followers_gauge t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let stream_new t =
  List.iter
    (fun c ->
      if c.c_streaming && c.c_pos < t.next_seq then
        try send_range t c ~from:c.c_pos ~upto:t.next_seq
        with Repl_error.Transport _ -> drop_conn t c)
    t.conns

let run_loop t =
  while not (Atomic.get t.stop_flag) do
    let fds = t.listen_fd :: t.wake_r :: List.map (fun c -> c.c_fd) t.conns in
    let readable =
      try
        let r, _, _ = Unix.select fds [] [] t.cfg.cfg_heartbeat_s in
        r
      with Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> []
    in
    if List.memq t.wake_r readable then begin
      let b = Bytes.create 256 in
      try ignore (Unix.read t.wake_r b 0 256) with Unix.Unix_error _ -> ()
    end;
    if not (Atomic.get t.stop_flag) then begin
      ignore (drain_queue t);
      if List.memq t.listen_fd readable then accept_conns t;
      List.iter
        (fun c -> if c.c_alive && List.memq c.c_fd readable then service_conn t c)
        t.conns;
      stream_new t;
      prune t;
      let now = Unix.gettimeofday () in
      if now -. t.last_hb >= t.cfg.cfg_heartbeat_s then begin
        t.last_hb <- now;
        heartbeat t
      end
    end
  done;
  List.iter (fun c -> drop_conn t c) t.conns

(* ------------------------------------------------------------------ *)

(* Seed the backlog from the records already in the on-disk WAL, so
   followers can resume across a writer restart without re-snapshotting
   (the previous-generation retention starts honest). *)
let seed_backlog t =
  let wal_path = Persist.wal_path t.persist in
  if Sys.file_exists wal_path then begin
    let r = Wal.read wal_path in
    let keep = Persist.wal_records t.persist in
    t.chain <- { P.gen = r.Wal.generation; records = 0 };
    List.iteri
      (fun i record ->
        if i < keep then
          append_item t
            (I_rec
               {
                 i_prev = t.chain;
                 i_cursor = { P.gen = r.Wal.generation; records = i + 1 };
                 i_record = record;
               }))
      r.Wal.records
  end
  else t.chain <- { P.gen = Persist.generation t.persist; records = 0 }

let start ?(config = config ()) persist =
  let db = Persist.db persist in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.cfg_port));
  Unix.listen listen_fd config.cfg_backlog;
  Unix.set_nonblock listen_fd;
  let lport =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.cfg_port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  (* A follower closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      cfg = config;
      persist;
      counters = Db.counters db;
      hists = (Db.obs db).Cactis_obs.Ctx.hists;
      qmu = Mutex.create ();
      queue = Queue.create ();
      hook_live = true;
      wake_r;
      wake_w;
      listen_fd;
      lport;
      backlog = Array.make 1024 dummy_item;
      first_seq = 0;
      next_seq = 0;
      chain = P.cursor_zero;
      conns = [];
      last_hb = Unix.gettimeofday ();
      stop_flag = Atomic.make false;
      g_followers = Atomic.make 0;
      g_head_seq = Atomic.make (-1);
      domain = None;
    }
  in
  seed_backlog t;
  Atomic.set t.g_head_seq (t.next_seq - 1);
  let wake () =
    try ignore (Unix.single_write_substring t.wake_w "!" 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let prior = Db.commit_hook db in
  Db.set_commit_hook db
    (Some
       (fun delta ->
         (* The WAL append (prior hook) and the queue push happen under
            one lock so the drain-side mark guard can trust "queue empty
            => every durable record is in the chain". *)
         Mutex.lock t.qmu;
         Fun.protect
           ~finally:(fun () -> Mutex.unlock t.qmu)
           (fun () ->
             (match prior with Some f -> f delta | None -> ());
             if t.hook_live then begin
               let c =
                 { P.gen = Persist.generation persist; records = Persist.wal_records persist }
               in
               Queue.add { p_cursor = c; p_record = Codec.encode_delta delta } t.queue;
               wake ()
             end)));
  t.domain <- Some (Domain.spawn (fun () -> run_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    Mutex.lock t.qmu;
    t.hook_live <- false;
    Mutex.unlock t.qmu;
    (try ignore (Unix.single_write_substring t.wake_w "!" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.wake_r; t.wake_w ]
  end
