type arg =
  | S of string
  | I of int
  | F of float
  | B of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_instant : bool;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

let dummy =
  { ev_name = ""; ev_cat = ""; ev_instant = true; ev_ts = 0.0; ev_dur = 0.0; ev_tid = 0; ev_args = [] }

type t = {
  mutable on : bool;
  ring : event array;
  mutable written : int;  (* total events ever pushed; ring slot = written mod capacity *)
  epoch_ns : int64;
  names_mu : Mutex.t;
  mutable names : (int * string) list;  (* domain id -> track name, for export *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    on = false;
    ring = Array.make capacity dummy;
    written = 0;
    epoch_ns = Clock.now_ns ();
    names_mu = Mutex.create ();
    names = [];
  }

let name_thread t name =
  let tid = (Domain.self () :> int) in
  Mutex.lock t.names_mu;
  t.names <- (tid, name) :: List.remove_assoc tid t.names;
  Mutex.unlock t.names_mu

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on
let recorded t = t.written
let dropped t = max 0 (t.written - Array.length t.ring)

let clear t = t.written <- 0

let now_ns = Clock.now_ns

let us_since_epoch t ns = Int64.to_float (Int64.sub ns t.epoch_ns) *. 1e-3

let push t ev =
  t.ring.(t.written mod Array.length t.ring) <- ev;
  t.written <- t.written + 1

let complete t ?(cat = "cactis") ?(args = []) ~start_ns name =
  if t.on then begin
    let now = Clock.now_ns () in
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_instant = false;
        ev_ts = us_since_epoch t start_ns;
        ev_dur = Int64.to_float (Int64.sub now start_ns) *. 1e-3;
        ev_tid = (Domain.self () :> int);
        ev_args = args;
      }
  end

let instant t ?(cat = "cactis") ?(args = []) name =
  if t.on then
    push t
      {
        ev_name = name;
        ev_cat = cat;
        ev_instant = true;
        ev_ts = us_since_epoch t (Clock.now_ns ());
        ev_dur = 0.0;
        ev_tid = (Domain.self () :> int);
        ev_args = args;
      }

let span t ?cat ?args name f =
  if not t.on then f ()
  else begin
    let start_ns = Clock.now_ns () in
    match f () with
    | v ->
      complete t ?cat ?args ~start_ns name;
      v
    | exception e ->
      complete t ?cat ?args ~start_ns name;
      raise e
  end

let events t =
  let cap = Array.length t.ring in
  let n = min t.written cap in
  let first = t.written - n in
  List.init n (fun i -> t.ring.((first + i) mod cap))

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | I n -> string_of_int n
  | F f -> if Float.is_finite f then Printf.sprintf "%g" f else Printf.sprintf "\"%g\"" f
  | B b -> string_of_bool b

let event_json buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f" (escape ev.ev_name)
       (escape ev.ev_cat)
       (if ev.ev_instant then "i" else "X")
       ev.ev_ts);
  if ev.ev_instant then Buffer.add_string buf ",\"s\":\"t\""
  else Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" ev.ev_dur);
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" ev.ev_tid);
  (match ev.ev_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)))
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

(* Metadata ("ph":"M") events give every domain its own named track in
   Perfetto.  Synthesized only at export time, so [events] (and the
   tests over it) see exactly what was recorded. *)
let metadata_json buf t evs =
  Mutex.lock t.names_mu;
  let names = t.names in
  Mutex.unlock t.names_mu;
  let tids = List.sort_uniq compare (List.map (fun ev -> ev.ev_tid) evs @ List.map fst names) in
  Buffer.add_string buf
    "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"cactis\"}}";
  List.iter
    (fun tid ->
      let name =
        match List.assoc_opt tid names with
        | Some n -> n
        | None -> Printf.sprintf "domain-%d" tid
      in
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (escape name)))
    tids

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let evs = events t in
  Buffer.add_string buf "{\"traceEvents\":[";
  metadata_json buf t evs;
  List.iter
    (fun ev ->
      Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      event_json buf ev)
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
