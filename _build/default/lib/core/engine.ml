module Counters = Cactis_util.Counters
module Decaying_avg = Cactis_util.Decaying_avg
module Usage = Cactis_storage.Usage

type strategy =
  | Cactis
  | Eager_triggers
  | Recompute_all

type recovery = Store.t -> int -> (int * string * Value.t) list

type t = {
  store : Store.t;
  mutable strategy : strategy;
  mutable sched : Sched.strategy;
  watched : (int * string, unit) Hashtbl.t;
  pending_important : (int * string, unit) Hashtbl.t;
  recoveries : (string, recovery) Hashtbl.t;
  mutable repair : (int -> string -> Value.t -> unit) option;
  mutable in_recovery : bool;
  (* Constraint attrs observed false during the current evaluation run. *)
  mutable violations : (int * string) list;
}

let create ?(strategy = Cactis) ?(sched = Sched.Greedy) store =
  {
    store;
    strategy;
    sched;
    watched = Hashtbl.create 32;
    pending_important = Hashtbl.create 32;
    recoveries = Hashtbl.create 8;
    repair = None;
    in_recovery = false;
    violations = [];
  }

let store t = t.store
let strategy t = t.strategy
let set_strategy t s = t.strategy <- s
let sched_strategy t = t.sched
let set_sched_strategy t s = t.sched <- s
let set_repair t f = t.repair <- Some f
let register_recovery t name f = Hashtbl.replace t.recoveries name f

let schema t = Store.schema t.store
let counters t = Store.counters t.store

let attr_def t (inst : Instance.t) a = Schema.attr (schema t) ~type_name:inst.Instance.type_name a

let is_derived_def (d : Schema.attr_def) =
  match d.Schema.kind with Schema.Derived _ -> true | Schema.Intrinsic _ -> false

let rule_of t inst a =
  match (attr_def t inst a).Schema.kind with
  | Schema.Derived rule -> rule
  | Schema.Intrinsic _ -> Errors.type_error "attribute %s of %s is intrinsic" a inst.Instance.type_name

(* ------------------------------------------------------------------ *)
(* Importance                                                          *)

let has_constraint t (inst : Instance.t) a = (attr_def t inst a).Schema.constraint_ <> None

let important t id a =
  Hashtbl.mem t.watched (id, a)
  ||
  match Store.get_opt t.store id with
  | Some inst -> has_constraint t inst a
  | None -> false

let watch t id a =
  Hashtbl.replace t.watched (id, a) ();
  match Store.get_opt t.store id with
  | Some inst ->
    let s = Instance.slot inst a in
    if s.Instance.state = Instance.Out_of_date then Hashtbl.replace t.pending_important (id, a) ()
  | None -> ()

let unwatch t id a = Hashtbl.remove t.watched (id, a)
let is_watched t id a = Hashtbl.mem t.watched (id, a)

(* ------------------------------------------------------------------ *)
(* Dependency enumeration                                              *)

(* Dependents of attribute [a] of instance [i]: within the instance, and
   across each relationship to currently-linked neighbours.  [via] is the
   (instance, rel) crossing used for usage statistics and cost tags. *)
let dependents t i a =
  match Store.get_opt t.store i with
  | None -> []
  | Some inst ->
    let tn = inst.Instance.type_name in
    let self =
      Schema.self_dependents (schema t) ~type_name:tn a |> List.map (fun b -> (i, b, None))
    in
    let cross =
      Schema.cross_dependents (schema t) ~type_name:tn a
      |> List.concat_map (fun (r, b) ->
             Instance.linked inst r |> List.map (fun j -> (j, b, Some (i, r))))
    in
    self @ cross

(* ------------------------------------------------------------------ *)
(* Environment construction shared by all evaluators                   *)

(* [fetch_value] must return the (up-to-date) value of a possibly-derived
   attribute of some instance.  Reads are validated against the rule's
   declared sources so an undeclared read fails loudly instead of being
   silently non-incremental. *)
(* The attribute actually transmitted when [name] is requested across the
   reader's relationship [r]: the target type may alias it (Figure 1's
   [consists_of exp_time = exp_compl]). *)
let resolve_transmission t (inst : Instance.t) r name =
  let rd = Schema.rel (schema t) ~type_name:inst.Instance.type_name r in
  Schema.resolve_export (schema t) ~type_name:rd.Schema.target ~rel:rd.Schema.inverse name

let build_env t (rule : Schema.rule) (inst : Instance.t) ~fetch_value =
  let declared s = List.exists (fun s' -> s' = s) rule.Schema.sources in
  let self_value b =
    if not (declared (Schema.Self b)) then
      Errors.type_error "rule on %s reads undeclared source self.%s" inst.Instance.type_name b;
    fetch_value inst.Instance.id b
  in
  let related_values r name =
    if not (declared (Schema.Rel (r, name))) then
      Errors.type_error "rule on %s reads undeclared source %s.%s" inst.Instance.type_name r name;
    let attr = resolve_transmission t inst r name in
    Instance.linked inst r
    |> List.map (fun j ->
           Usage.cross (Store.usage t.store) ~from_instance:inst.Instance.id ~rel:r ~to_instance:j;
           fetch_value j attr)
  in
  { Schema.self_value; related_values }

let record_constraint_check t inst a v =
  if has_constraint t inst a then begin
    Counters.incr (counters t) "constraint_checks";
    match v with
    | Value.Bool false -> t.violations <- (inst.Instance.id, a) :: t.violations
    | Value.Bool true -> ()
    | other ->
      Errors.type_error "constraint attribute %s.%s evaluated to non-boolean %s"
        inst.Instance.type_name a (Value.to_string other)
  end

(* ------------------------------------------------------------------ *)
(* Simple recursive evaluator (used by the baselines, by bootstrap     *)
(* paths, and — without caching — by the oracle)                       *)

let rec eval_rec t path id a =
  let inst = Store.get t.store id in
  let s = Instance.slot inst a in
  match s.Instance.state with
  | Instance.Up_to_date -> s.Instance.value
  | Instance.In_progress -> raise (Errors.Cycle (List.rev ((id, a) :: path)))
  | Instance.Out_of_date ->
    let def = attr_def t inst a in
    if not (is_derived_def def) then begin
      (* Intrinsic slots are always up to date; an out-of-date intrinsic
         can only be a slot created lazily after a schema extension —
         give it the schema default. *)
      (match def.Schema.kind with
      | Schema.Intrinsic default ->
        s.Instance.value <- default;
        s.Instance.state <- Instance.Up_to_date
      | Schema.Derived _ -> assert false);
      s.Instance.value
    end
    else begin
      s.Instance.state <- Instance.In_progress;
      Store.touch t.store id;
      let rule = rule_of t inst a in
      let fetch_value j b =
        let jinst = Store.get t.store j in
        if j <> id then Store.touch t.store j;
        let jdef = attr_def t jinst b in
        if is_derived_def jdef then eval_rec t ((id, a) :: path) j b
        else (Instance.slot jinst b).Instance.value
      in
      let env = build_env t rule inst ~fetch_value in
      let v =
        try rule.Schema.compute env
        with e ->
          s.Instance.state <- Instance.Out_of_date;
          raise e
      in
      Counters.incr (counters t) "rule_evals";
      s.Instance.value <- v;
      s.Instance.state <- Instance.Up_to_date;
      Store.notify_write t.store id a v;
      Hashtbl.remove t.pending_important (id, a);
      record_constraint_check t inst a v;
      v
    end

(* ------------------------------------------------------------------ *)
(* Mark-out-of-date phase (chunked)                                    *)

let mark_cost t j = if Store.resident t.store j then 0.0 else 1.0

let run_marks t targets =
  let sched = Sched.create t.sched t.store in
  let schedule (j, b, via) =
    (match via with
    | Some (i, r) -> Usage.cross (Store.usage t.store) ~from_instance:i ~rel:r ~to_instance:j
    | None -> ());
    Sched.schedule sched ~instance:j ~cost:(mark_cost t j) (j, b)
  in
  List.iter schedule targets;
  let rec loop () =
    match Sched.next sched with
    | None -> ()
    | Some (j, b) ->
      (match Store.get_opt t.store j with
      | None -> ()
      | Some inst ->
        Store.touch t.store j;
        Counters.incr (counters t) "mark_visits";
        let s = Instance.slot inst b in
        (match s.Instance.state with
        | Instance.Out_of_date ->
          (* Already out of date: the traversal is cut short here — this
             is the source of the O(1) repeated-update behaviour. *)
          Counters.incr (counters t) "mark_cutoffs"
        | Instance.Up_to_date | Instance.In_progress ->
          s.Instance.state <- Instance.Out_of_date;
          Store.notify_mark t.store j b;
          if important t j b then Hashtbl.replace t.pending_important (j, b) ();
          List.iter schedule (dependents t j b)));
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Demand-driven evaluation phase (chunked)                            *)

type frame = {
  f_id : int;
  f_attr : string;
  mutable f_pending : int;
  mutable f_cost : float;  (* block misses charged to this subtree *)
  f_parent : frame option;
  f_via : (int * string) option;  (* (requesting instance, rel) *)
}

type eval_proc =
  | Demand of { d_id : int; d_attr : string; d_parent : frame option; d_via : (int * string) option }
  | Finish of frame

let run_eval t roots =
  let sched = Sched.create t.sched t.store in
  let frames : (int * string, frame) Hashtbl.t = Hashtbl.create 32 in
  let waiters : (int * string, frame list ref) Hashtbl.t = Hashtbl.create 32 in
  let misses () = Counters.get (counters t) "block_misses" in
  let demand_cost via j =
    if Store.resident t.store j then 0.0
    else
      match via with
      | Some (i, r) -> Decaying_avg.value (Store.link_tag t.store i r)
      | None -> 1.0
  in
  let schedule_demand ~parent ~via j b =
    (match parent with Some p -> p.f_pending <- p.f_pending + 1 | None -> ());
    Sched.schedule sched ~instance:j ~cost:(demand_cost via j)
      (Demand { d_id = j; d_attr = b; d_parent = parent; d_via = via })
  in
  let add_waiter key frame =
    match Hashtbl.find_opt waiters key with
    | Some r -> r := frame :: !r
    | None -> Hashtbl.add waiters key (ref [ frame ])
  in
  let schedule_finish frame = Sched.schedule sched ~instance:frame.f_id ~cost:0.0 (Finish frame) in
  let notify frame =
    frame.f_pending <- frame.f_pending - 1;
    if frame.f_pending = 0 then schedule_finish frame
  in
  let notify_waiters key =
    match Hashtbl.find_opt waiters key with
    | None -> ()
    | Some r ->
      let ws = !r in
      Hashtbl.remove waiters key;
      List.iter notify ws
  in
  (* Enumerate the out-of-date derived sources of (id, attr), demanding
     each; returns the number demanded. *)
  let open_frame frame (inst : Instance.t) =
    let rule = rule_of t inst frame.f_attr in
    let demand_source j b via =
      let jinst = Store.get t.store j in
      let jdef = attr_def t jinst b in
      if is_derived_def jdef then begin
        let s = Instance.slot jinst b in
        match s.Instance.state with
        | Instance.Up_to_date -> ()
        | Instance.Out_of_date | Instance.In_progress ->
          schedule_demand ~parent:(Some frame) ~via j b
      end
    in
    List.iter
      (function
        | Schema.Self b -> demand_source frame.f_id b None
        | Schema.Rel (r, name) ->
          let attr = resolve_transmission t inst r name in
          List.iter (fun j -> demand_source j attr (Some (frame.f_id, r))) (Instance.linked inst r))
      rule.Schema.sources
  in
  let finish frame =
    match Store.get_opt t.store frame.f_id with
    | None ->
      Hashtbl.remove frames (frame.f_id, frame.f_attr);
      notify_waiters (frame.f_id, frame.f_attr)
    | Some inst ->
      let before = misses () in
      Store.touch t.store frame.f_id;
      let rule = rule_of t inst frame.f_attr in
      let fetch_value j b =
        let jinst = Store.get t.store j in
        if j <> frame.f_id then Store.touch t.store j;
        let s = Instance.slot jinst b in
        (match s.Instance.state with
        | Instance.Up_to_date -> ()
        | Instance.Out_of_date | Instance.In_progress -> (
          (* All derived sources were demanded and completed before this
             Finish was scheduled; an out-of-date source here is a
             lazily-created intrinsic slot (schema extension). *)
          match (attr_def t jinst b).Schema.kind with
          | Schema.Intrinsic default ->
            s.Instance.value <- default;
            s.Instance.state <- Instance.Up_to_date
          | Schema.Derived _ -> assert false));
        s.Instance.value
      in
      let env = build_env t rule inst ~fetch_value in
      let v = rule.Schema.compute env in
      Counters.incr (counters t) "rule_evals";
      let s = Instance.slot inst frame.f_attr in
      s.Instance.value <- v;
      s.Instance.state <- Instance.Up_to_date;
      Store.notify_write t.store frame.f_id frame.f_attr v;
      Hashtbl.remove t.pending_important (frame.f_id, frame.f_attr);
      Hashtbl.remove frames (frame.f_id, frame.f_attr);
      record_constraint_check t inst frame.f_attr v;
      frame.f_cost <- frame.f_cost +. float_of_int (misses () - before);
      (* Self-adaptive statistics: the link that requested this value
         learns what the request actually cost (§2.3). *)
      (match frame.f_via with
      | Some (i, r) ->
        if Store.mem t.store i then Decaying_avg.observe (Store.link_tag t.store i r) frame.f_cost
      | None -> ());
      (match frame.f_parent with Some p -> p.f_cost <- p.f_cost +. frame.f_cost | None -> ());
      notify_waiters (frame.f_id, frame.f_attr)
  in
  let run_demand d_id d_attr d_parent d_via =
    match Store.get_opt t.store d_id with
    | None -> (match d_parent with Some p -> notify p | None -> ())
    | Some inst -> (
      let s = Instance.slot inst d_attr in
      match s.Instance.state with
      | Instance.Up_to_date -> ( match d_parent with Some p -> notify p | None -> ())
      | Instance.In_progress -> (
        (* A frame already exists; wait for it. *)
        match d_parent with
        | Some p -> add_waiter (d_id, d_attr) p
        | None -> ())
      | Instance.Out_of_date ->
        let def = attr_def t inst d_attr in
        if not (is_derived_def def) then begin
          (match def.Schema.kind with
          | Schema.Intrinsic default ->
            s.Instance.value <- default;
            s.Instance.state <- Instance.Up_to_date
          | Schema.Derived _ -> assert false);
          match d_parent with Some p -> notify p | None -> ()
        end
        else begin
          let before = misses () in
          Store.touch t.store d_id;
          Counters.incr (counters t) "demand_procs";
          let frame =
            {
              f_id = d_id;
              f_attr = d_attr;
              f_pending = 0;
              f_cost = float_of_int 0;
              f_parent = d_parent;
              f_via = d_via;
            }
          in
          Hashtbl.add frames (d_id, d_attr) frame;
          (* The parent's pending (incremented at demand time) is settled
             by the waiter notification when this frame finishes. *)
          (match d_parent with Some p -> add_waiter (d_id, d_attr) p | None -> ());
          s.Instance.state <- Instance.In_progress;
          open_frame frame inst;
          frame.f_cost <- frame.f_cost +. float_of_int (misses () - before);
          if frame.f_pending = 0 then schedule_finish frame
        end)
  in
  List.iter
    (fun (id, a) -> schedule_demand ~parent:None ~via:None id a)
    roots;
  let rec loop () =
    match Sched.next sched with
    | None -> ()
    | Some (Demand { d_id; d_attr; d_parent; d_via }) ->
      Counters.incr (counters t) "eval_procs";
      run_demand d_id d_attr d_parent d_via;
      loop ()
    | Some (Finish frame) ->
      Counters.incr (counters t) "eval_procs";
      finish frame;
      loop ()
  in
  let restore_open_frames () =
    (* A rule raising mid-run must not leave slots In_progress. *)
    Hashtbl.iter
      (fun (id, a) _ ->
        match Store.get_opt t.store id with
        | Some inst ->
          let s = Instance.slot inst a in
          if s.Instance.state = Instance.In_progress then s.Instance.state <- Instance.Out_of_date
        | None -> ())
      frames
  in
  (try loop ()
   with e ->
     restore_open_frames ();
     raise e);
  (* Any frame still pending after the scheduler drained is waiting on a
     value that can never arrive: a dependency cycle. *)
  let stuck = Hashtbl.fold (fun key _ acc -> key :: acc) frames [] in
  if stuck <> [] then begin
    (* Restore the stuck slots so the database is not left in progress. *)
    List.iter
      (fun (id, a) ->
        match Store.get_opt t.store id with
        | Some inst -> (Instance.slot inst a).Instance.state <- Instance.Out_of_date
        | None -> ())
      stuck;
    raise (Errors.Cycle (List.sort compare stuck))
  end

(* ------------------------------------------------------------------ *)
(* Constraint-violation handling                                       *)

let rec handle_violations t =
  let vs = List.rev t.violations in
  t.violations <- [];
  match vs with
  | [] -> ()
  | _ ->
    List.iter
      (fun (id, a) ->
        match Store.get_opt t.store id with
        | None -> ()
        | Some inst -> (
          let s = Instance.slot inst a in
          (* A recovery applied for an earlier violation in this batch may
             already have repaired (re-marked) this one. *)
          let still_false =
            s.Instance.state = Instance.Up_to_date && Value.equal s.Instance.value (Value.Bool false)
          in
          if still_false then
            let def = attr_def t inst a in
            let spec =
              match def.Schema.constraint_ with Some spec -> spec | None -> assert false
            in
            let fail () =
              raise
                (Errors.Constraint_violation { instance = id; attr = a; message = spec.Schema.message })
            in
            match spec.Schema.recovery with
            | None -> fail ()
            | Some name -> (
              if t.in_recovery then fail ();
              match (Hashtbl.find_opt t.recoveries name, t.repair) with
              | Some action, Some apply ->
                t.in_recovery <- true;
                Fun.protect
                  ~finally:(fun () -> t.in_recovery <- false)
                  (fun () ->
                    Counters.incr (counters t) "recoveries_run";
                    List.iter (fun (j, b, v) -> apply j b v) (action t.store id);
                    (* Re-evaluate the constraint after the repair. *)
                    let v = eval_rec t [] id a in
                    handle_violations t;
                    if Value.equal v (Value.Bool false) then fail ())
              | _ -> fail ())))
      vs

(* ------------------------------------------------------------------ *)
(* Strategy dispatch for change notification                           *)

let invalidate_all t =
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst ->
        List.iter
          (fun (d : Schema.attr_def) ->
            if is_derived_def d then begin
              (Instance.slot inst d.Schema.attr_name).Instance.state <- Instance.Out_of_date;
              Store.notify_mark t.store id d.Schema.attr_name;
              if important t id d.Schema.attr_name then
                Hashtbl.replace t.pending_important (id, d.Schema.attr_name) ()
            end)
          (Schema.attrs (schema t) ~type_name:inst.Instance.type_name))
    (Store.instance_ids t.store)

let eval_everything t =
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst ->
        List.iter
          (fun (d : Schema.attr_def) ->
            if is_derived_def d then ignore (eval_rec t [] id d.Schema.attr_name))
          (Schema.attrs (schema t) ~type_name:inst.Instance.type_name))
    (Store.instance_ids t.store);
  handle_violations t

(* The naive trigger mechanism: each change immediately and recursively
   recomputes every dependent, with no out-of-date marking, in a fixed
   depth-first order.  On diamond-shaped dependency graphs this
   recomputes an exponential number of values — the behaviour the paper's
   algorithm exists to avoid. *)
let rec fire_trigger t (j, b, _via) =
  match Store.get_opt t.store j with
  | None -> ()
  | Some inst ->
    Store.touch t.store j;
    let rule = rule_of t inst b in
    let fetch_value k c =
      let kinst = Store.get t.store k in
      if k <> j then Store.touch t.store k;
      let kdef = attr_def t kinst c in
      let s = Instance.slot kinst c in
      if is_derived_def kdef && s.Instance.state <> Instance.Up_to_date then eval_rec t [] k c
      else s.Instance.value
    in
    let env = build_env t rule inst ~fetch_value in
    let v = rule.Schema.compute env in
    Counters.incr (counters t) "rule_evals";
    let s = Instance.slot inst b in
    s.Instance.value <- v;
    s.Instance.state <- Instance.Up_to_date;
    Store.notify_write t.store j b v;
    record_constraint_check t inst b v;
    List.iter (fire_trigger t) (dependents t j b)

let after_change t targets =
  match t.strategy with
  | Cactis -> run_marks t targets
  | Eager_triggers ->
    List.iter (fire_trigger t) targets;
    handle_violations t
  | Recompute_all ->
    invalidate_all t;
    eval_everything t

let after_intrinsic_set t id a =
  Counters.incr (counters t) "intrinsic_sets";
  after_change t (dependents t id a)

let after_link_change t ~from_id ~rel ~to_id =
  let side id r =
    match Store.get_opt t.store id with
    | None -> []
    | Some inst ->
      Schema.rel_dependents (schema t) ~type_name:inst.Instance.type_name r
      |> List.map (fun b -> (id, b, None))
  in
  let inv =
    match Store.get_opt t.store from_id with
    | Some inst -> (Schema.rel (schema t) ~type_name:inst.Instance.type_name rel).Schema.inverse
    | None -> (
      match Store.get_opt t.store to_id with
      | Some jinst ->
        (* from side gone (undo paths); find inverse from the target. *)
        (Schema.rel (schema t) ~type_name:jinst.Instance.type_name rel).Schema.inverse
      | None -> rel)
  in
  after_change t (side from_id rel @ side to_id inv)

let on_new_instance t id =
  match Store.get_opt t.store id with
  | None -> ()
  | Some inst -> (
    match t.strategy with
    | Cactis ->
      (* Creation "does not affect attribute evaluation until
         relationships are established" — but the new instance's own
         constraints must hold at commit. *)
      List.iter
        (fun (d : Schema.attr_def) ->
          Hashtbl.replace t.pending_important (id, d.Schema.attr_name) ())
        (Schema.constraint_attrs (schema t) ~type_name:inst.Instance.type_name)
    | Eager_triggers | Recompute_all ->
      List.iter
        (fun (d : Schema.attr_def) ->
          if is_derived_def d then ignore (eval_rec t [] id d.Schema.attr_name))
        (Schema.attrs (schema t) ~type_name:inst.Instance.type_name);
      handle_violations t)

let on_delete_instance t id =
  let purge tbl =
    let stale = Hashtbl.fold (fun ((i, _) as k) _ acc -> if i = id then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) stale
  in
  purge t.watched;
  purge t.pending_important

let after_attr_added t ~type_name ~attr =
  let def = Schema.attr (schema t) ~type_name attr in
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst ->
        let s = Instance.slot inst attr in
        (match def.Schema.kind with
        | Schema.Intrinsic default ->
          s.Instance.value <- default;
          s.Instance.state <- Instance.Up_to_date
        | Schema.Derived _ ->
          s.Instance.state <- Instance.Out_of_date;
          if important t id attr then Hashtbl.replace t.pending_important (id, attr) ())
        )
    (Store.instances_of_type t.store type_name)

(* ------------------------------------------------------------------ *)
(* Reading and propagation                                             *)

let peek t id a = (Store.read_slot t.store id a).Instance.value

let is_out_of_date t id a =
  let inst = Store.get t.store id in
  match Instance.slot_opt inst a with
  | Some s -> s.Instance.state <> Instance.Up_to_date
  | None -> true

let read t ?(watch = true) id a =
  let inst = Store.get t.store id in
  let def = attr_def t inst a in
  Store.touch t.store id;
  if not (is_derived_def def) then (Instance.slot inst a).Instance.value
  else begin
    (* "If the user explicitly requests the value of attributes (i.e.
       makes a query) they become important" (§2.2). *)
    if watch then Hashtbl.replace t.watched (id, a) ();
    let s = Instance.slot inst a in
    (match s.Instance.state with
    | Instance.Up_to_date -> ()
    | Instance.Out_of_date | Instance.In_progress -> (
      match t.strategy with
      | Cactis ->
        run_eval t [ (id, a) ];
        handle_violations t
      | Eager_triggers | Recompute_all ->
        ignore (eval_rec t [] id a);
        handle_violations t));
    (Instance.slot inst a).Instance.value
  end

let propagate t =
  match t.strategy with
  | Cactis ->
    let roots = Hashtbl.fold (fun k () acc -> k :: acc) t.pending_important [] in
    let roots =
      List.filter
        (fun (id, a) ->
          match Store.get_opt t.store id with
          | None -> false
          | Some inst -> (
            match Schema.attr_opt (schema t) ~type_name:inst.Instance.type_name a with
            | Some d -> is_derived_def d
            | None -> false))
        roots
      |> List.sort compare
    in
    Hashtbl.reset t.pending_important;
    if roots <> [] then begin
      run_eval t roots;
      handle_violations t
    end
  | Eager_triggers | Recompute_all ->
    let roots = Hashtbl.fold (fun k () acc -> k :: acc) t.pending_important [] in
    Hashtbl.reset t.pending_important;
    List.iter
      (fun (id, a) ->
        if Store.mem t.store id then ignore (eval_rec t [] id a))
      (List.sort compare roots);
    handle_violations t

let pending_important_count t = Hashtbl.length t.pending_important

(* ------------------------------------------------------------------ *)
(* Oracle: reference semantics with no caching and no I/O accounting   *)

let oracle_value t id a =
  let memo : (int * string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let visiting : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec go path id a =
    match Hashtbl.find_opt memo (id, a) with
    | Some v -> v
    | None ->
      if Hashtbl.mem visiting (id, a) then raise (Errors.Cycle (List.rev ((id, a) :: path)));
      let inst = Store.get t.store id in
      let def = attr_def t inst a in
      let v =
        match def.Schema.kind with
        | Schema.Intrinsic _ -> (Instance.slot inst a).Instance.value
        | Schema.Derived rule ->
          Hashtbl.add visiting (id, a) ();
          let declared s = List.exists (fun s' -> s' = s) rule.Schema.sources in
          let env =
            {
              Schema.self_value =
                (fun b ->
                  if not (declared (Schema.Self b)) then
                    Errors.type_error "oracle: undeclared source self.%s" b;
                  go ((id, a) :: path) id b);
              related_values =
                (fun r name ->
                  if not (declared (Schema.Rel (r, name))) then
                    Errors.type_error "oracle: undeclared source %s.%s" r name;
                  let attr = resolve_transmission t inst r name in
                  Instance.linked inst r |> List.map (fun j -> go ((id, a) :: path) j attr));
            }
          in
          let v = rule.Schema.compute env in
          Hashtbl.remove visiting (id, a);
          v
      in
      Hashtbl.replace memo (id, a) v;
      v
  in
  go [] id a
