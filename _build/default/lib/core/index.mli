(** Attribute indexes.

    A hash index from attribute value to the set of instances (of one
    type) currently holding that value, maintained incrementally through
    the store's observer hooks — the OODB indexing facility the paper's
    related work points to ([MaS86], "Indexing in an Object-Oriented
    DBMS") applied to Cactis's derived-data setting:

    - writes (intrinsic sets, derived evaluations, undo replay) move the
      instance between buckets immediately;
    - marking a derived indexed attribute out of date parks the instance
      in a {e stale} set; {!lookup} forces evaluation of the stale
      instances (through the normal demand machinery) before answering,
      so answers are always exact while untouched instances cost
      nothing. *)

type t

(** [create db ~type_name ~attr] builds and registers the index,
    populating it from the current instances (evaluating the attribute
    on each).
    @raise Errors.Unknown if the type or attribute does not exist. *)
val create : Db.t -> type_name:string -> attr:string -> t

val type_name : t -> string
val attr : t -> string

(** [lookup t v] — ids currently holding value [v], ascending. *)
val lookup : t -> Value.t -> int list

(** [distinct_values t] — the values present, sorted. *)
val distinct_values : t -> Value.t list

(** Number of instances currently awaiting re-evaluation before the next
    lookup (observability for tests/benchmarks). *)
val stale_count : t -> int
