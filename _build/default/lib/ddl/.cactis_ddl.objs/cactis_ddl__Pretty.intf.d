lib/ddl/pretty.mli: Ast Format
