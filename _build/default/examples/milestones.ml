(* Milestone manager (Figure 1 / §4): a project plan whose expected
   completion dates ripple along dependencies, with the dynamically-added
   very_late extension.

   Run with: dune exec examples/milestones.exe *)

module M = Cactis_apps.Milestone
module Db = Cactis.Db

let () =
  let m = M.create () in
  let requirements = M.add m ~name:"requirements" ~scheduled:10.0 ~local_work:8.0 in
  let design = M.add m ~name:"design" ~scheduled:25.0 ~local_work:10.0 in
  let parser_ms = M.add m ~name:"parser" ~scheduled:45.0 ~local_work:15.0 in
  let typechecker = M.add m ~name:"typechecker" ~scheduled:55.0 ~local_work:20.0 in
  let backend = M.add m ~name:"backend" ~scheduled:70.0 ~local_work:25.0 in
  let integration = M.add m ~name:"integration" ~scheduled:80.0 ~local_work:10.0 in
  let docs = M.add m ~name:"docs" ~scheduled:75.0 ~local_work:5.0 in
  M.depends_on m design requirements;
  M.depends_on m parser_ms design;
  M.depends_on m typechecker design;
  M.depends_on m backend typechecker;
  M.depends_on m integration parser_ms;
  M.depends_on m integration backend;
  M.depends_on m docs design;

  print_endline "== initial plan ==";
  print_string (M.report m);

  print_endline "\n== the typechecker slips by 30 days ==";
  M.slip m typechecker 30.0;
  print_string (M.report m);

  Printf.printf "\ncritical path to integration: %s\n"
    (String.concat " -> " (List.map (M.name m) (M.critical_path m integration)));

  (* §4: extend the running system with a very_late attribute + subtype;
     no existing tool or attribute is touched. *)
  M.enable_very_late m ~limit_days:15.0;
  Printf.printf "\nvery late (>15 days over schedule): %s\n"
    (String.concat ", " (List.map (M.name m) (M.very_late_set m)));

  print_endline "\n== Undo the slip (paper's Undo meta-action) ==";
  Db.undo_last (M.db m);
  print_string (M.report m)
