(** Public database facade.

    [Db] composes the raw object store, the incremental evaluation engine
    and the transaction log into the primitive interface the paper lists
    (§2.2): "operations for creating and deleting object type instances,
    establishing and breaking relationships between instances, defining
    predicates and subtypes, and primitives for retrieving and replacing
    attribute values … augmented by the meta-action {e Undo}."

    Every mutating primitive runs inside a transaction.  If no
    transaction is open, the primitive is wrapped in an automatic
    single-op transaction that commits (and hence propagates and checks
    constraints) immediately.  Committed transactions push their delta on
    a history chain supporting [undo_last] / [redo] and named version
    tags. *)

type t

(** [create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes
    ?strategy ?sched schema] — when [disk_path] is given, the pager is
    backed by a real block file (see {!Cactis_storage.Disk}); otherwise
    mass storage is simulated counters only. *)
val create :
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  ?disk_path:string ->
  ?disk_block_bytes:int ->
  ?strategy:Engine.strategy ->
  ?sched:Sched.strategy ->
  Schema.t ->
  t

val schema : t -> Schema.t
val store : t -> Store.t
val engine : t -> Engine.t
val counters : t -> Cactis_util.Counters.t

(** {1 Observability}

    Latency histograms ([commit], [mark_wave], [eval_wave], [propagate],
    [wal_append], [wal_fsync], …) are always on — a handful of float
    operations per observation.  The span tracer and the per-commit
    propagation profile are off by default and cost one branch per
    observation site until enabled. *)

(** The observability context shared by the store, engine and (when
    attached) the persistence layer. *)
val obs : t -> Cactis_obs.Ctx.t

(** [set_tracing t true] starts recording spans and instants into the
    context's ring buffer (export with {!Cactis_obs.Trace.to_chrome_json});
    [false] stops recording (already-captured events are kept). *)
val set_tracing : t -> bool -> unit

(** [set_fixed_point ?max_iters t true] arms the engine's bounded
    fixed-point evaluation of dependency cycles (see
    {!Engine.set_fixed_point}): reads that would raise
    {!Errors.Cycle} instead iterate on-cycle attributes that all carry
    bounded {!Schema.rule_shape}s to a proven fixed point, capped at
    [max_iters] sweeps (default 1000).  [false] disarms. *)
val set_fixed_point : ?max_iters:int -> t -> bool -> unit

(** Currently configured sweep cap; [None] when the mode is off. *)
val fixed_point : t -> int option

(** [set_profiling t true] arms a fresh propagation profile on every
    {!commit}; after the commit, {!last_profile} holds its snapshot:
    nodes marked, edges walked, cutoffs, evaluations, and the
    per-attribute evaluation high-water mark that checks the paper's
    evaluated-at-most-once claim. *)
val set_profiling : t -> bool -> unit

(** Snapshot of the most recent profiled commit (including one that
    rolled back), or [None] if profiling has never produced one. *)
val last_profile : t -> Cactis_obs.Profile.snapshot option

(** {1 Transactions} *)

(** @raise Errors.Type_error if a transaction is already open. *)
val begin_txn : t -> unit

val in_txn : t -> bool

(** Evaluates all pending important attributes (constraints and watched
    queries); on success appends the delta to the history.
    @raise Errors.Constraint_violation after rolling the transaction
    back, if a constraint fails and recovery does not repair it.
    @raise Errors.Cycle after rolling back, on circular dependencies. *)
val commit : t -> unit

(** Roll back the open transaction. *)
val abort : t -> unit

(** [with_txn t f] runs [f] in a transaction, committing on return and
    aborting if [f] (or the commit) raises. *)
val with_txn : t -> (unit -> 'a) -> 'a

(** {1 Primitives} *)

(** Returns the new instance's id. *)
val create_instance : t -> string -> int

(** Breaks all the instance's links (logged), then deletes it. *)
val delete_instance : t -> int -> unit

(** [set t id attr v] replaces an {e intrinsic} attribute value.  Setting
    an attribute to a value equal to its current one is a no-op.
    @raise Errors.Type_error when [attr] is derived. *)
val set : t -> int -> string -> Value.t -> unit

(** [get t id attr] retrieves the attribute value, evaluating it first if
    derived and out of date.  Querying makes the attribute important
    (paper semantics); pass [~watch:false] to read without promoting it.
    @raise Errors.Constraint_violation (after rolling back any open
    transaction) if evaluation trips an unrecoverable constraint. *)
val get : t -> ?watch:bool -> int -> string -> Value.t

(** [link t ~from_id ~rel ~to_id] / [unlink …] establish and break
    relationship instances (both directions maintained). *)
val link : t -> from_id:int -> rel:string -> to_id:int -> unit

val unlink : t -> from_id:int -> rel:string -> to_id:int -> unit

(** Ids related to [id] across [rel], in link order. *)
val related : t -> int -> string -> int list

val type_of : t -> int -> string
val instance_ids : t -> int list
val instances_of_type : t -> string -> int list

(** {1 Importance} *)

val watch : t -> int -> string -> unit
val unwatch : t -> int -> string -> unit

(** {1 Subtypes} *)

(** [in_subtype t id sub] — current membership (evaluated on demand). *)
val in_subtype : t -> int -> string -> bool

(** Members of a subtype among live instances of its parent type. *)
val subtype_members : t -> string -> int list

(** {1 Schema extension (dynamic, §3)}

    Schema changes are {e first-class transaction deltas}: each entry
    point applies the mutation and logs a {!Txn.Schema} op in the
    enclosing (or an automatic) transaction, so schema versions
    interleave with data versions in the history — undo retracts the
    declaration, redo/checkout re-applies it, and an attached WAL
    persists it.

    Derived rules are closures; to be serializable into the WAL they
    need their DDL expression source alongside ([~expr],
    [~predicate_expr], [~attr_exprs] — supplied automatically when
    declaring through [Cactis_ddl.Elaborate]).  When a durability hook
    is attached ({!set_commit_hook}), declaring a derived definition
    {e without} its source raises [Errors.Type_error] up front; purely
    in-memory databases accept opaque closures as before. *)

(** [add_type t name] declares a fresh object class. *)
val add_type : t -> string -> unit

(** [add_rel t ~type_name rel] declares one end of a relationship (see
    {!Schema.add_rel}). *)
val add_rel : t -> type_name:string -> Schema.rel_def -> unit

(** [add_export t ~type_name ~rel ~export ~attr] declares a transmission
    alias (see {!Schema.add_export}). *)
val add_export : t -> type_name:string -> rel:string -> export:string -> attr:string -> unit

(** [add_attr t ?expr ~type_name def] extends a type while instances
    exist: existing instances get the default (intrinsic) or an
    out-of-date slot (derived).  [expr] is the DDL source of a derived
    rule, required when a WAL is attached. *)
val add_attr : t -> ?expr:string -> type_name:string -> Schema.attr_def -> unit

(** [add_subtype t ?predicate_expr ?attr_exprs def] — dynamic subtype
    addition.  [attr_exprs] aligns positionally with
    [def.extra_attrs] (padded with [None] when shorter). *)
val add_subtype :
  t -> ?predicate_expr:string -> ?attr_exprs:string option list -> Schema.subtype_def -> unit

(** {1 Constraints} *)

(** [register_recovery t name action] installs a named recovery action
    referenced by constraint specs. *)
val register_recovery : t -> string -> Engine.recovery -> unit

(** {1 Undo, redo, versions (§2.2, §3)}

    Committed deltas form a {e version tree}: undoing back and committing
    again grows a sibling branch instead of discarding the old one, so
    every tagged state stays reachable forever — the paper's "retention,
    recall, and management of multiple related versions". *)

(** Depth of the current version node (number of deltas between the
    initial state and here). *)
val position : t -> int

(** Sizes (primitive-op counts) of the deltas on the path from the
    initial state to the current version, oldest first. *)
val delta_sizes : t -> int list

(** [undo_last t] reverses the most recent committed transaction on the
    current branch (the paper's {e Undo} meta-action).
    @raise Errors.Type_error if a transaction is open or the database is
    at its initial state. *)
val undo_last : t -> unit

(** [redo t] re-applies the most recently undone transaction.  The redo
    stack is cleared by a new commit (which starts a sibling branch) and
    by {!checkout}. *)
val redo : t -> unit

(** [tag t name] names the current version node. *)
val tag : t -> string -> unit

(** [checkout t name] moves the database to the named version by
    replaying deltas backwards to the lowest common ancestor and
    forwards along the target's branch.  Works across branches; tags
    never become unreachable.
    @raise Errors.Unknown for unknown tags.
    @raise Errors.Type_error if a transaction is open. *)
val checkout : t -> string -> unit

(** Tag names with the depth of the version they name. *)
val tags : t -> (string * int) list

(** The committed deltas on the path from the initial state to the
    current version, oldest first, with their version ids. *)
val history : t -> (int * Txn.delta) list

(** {1 Schema versions}

    The database's {e schema version} is the number of schema deltas
    folded into its current state: the baseline deltas loaded from a
    snapshot plus the {!Txn.Schema} ops on the root→head path.
    {!Persist} stamps this number into snapshot and WAL headers so
    recovery can refuse a snapshot/log pair whose schema states
    diverge. *)

(** [install_baseline_schema t ops] replays a snapshot's schema-delta
    section (oldest first — declarations and, for histories that
    linearized an undo, retractions) onto a freshly created database
    and records them as the baseline.
    @raise Errors.Type_error if the database already has history, an
    open transaction, or [ops] contains a non-schema op. *)
val install_baseline_schema : t -> Txn.op list -> unit

(** All schema ops in the current state, oldest first: the baseline,
    then those on the root→head path. *)
val schema_ops_on_path : t -> Txn.op list

(** [List.length (schema_ops_on_path t)] — the current schema version. *)
val schema_step_count : t -> int

(** {1 Durability (see {!Persist})} *)

(** [set_commit_hook t hook] installs (or clears, with [None]) the
    durability observer: it receives every delta the database state
    moves across — committed transactions, undos (as the inverse delta),
    redos and checkout steps — in application order, so appending each
    to a write-ahead log lets recovery replay to the same state. *)
val set_commit_hook : t -> (Txn.delta -> unit) option -> unit

(** The currently installed hook, if any.  A layer that needs to stack
    another observer on top (e.g. the server broadcasting deltas to
    reader replicas after {!Persist.attach} installed the WAL hook)
    reads the current hook and installs a wrapper that calls both. *)
val commit_hook : t -> (Txn.delta -> unit) option

(** [replay_delta t d] re-applies a logged delta during crash recovery:
    ops run unlogged (no hook — the log already holds this record) and
    the delta joins the version history so undo works across a restart.
    The caller propagates once after replaying the whole log tail.
    @raise Errors.Type_error if a transaction is open. *)
val replay_delta : t -> Txn.delta -> unit

(** {1 Storage management} *)

(** [recluster ?strategy t] re-clusters instances into blocks from usage
    statistics (§2.3) with the chosen strategy (default: the paper's
    greedy packer); returns the number of blocks.
    @raise Errors.Type_error inside a transaction. *)
val recluster : ?strategy:Cactis_storage.Cluster.strategy -> t -> int

(** [set_auto_recluster ?strategy ?drift_threshold ?max_moves t on]
    arms (or, with [on = false], disarms) incremental re-clustering
    maintenance: when instance touches since the last plan exceed
    [drift_threshold] (default 1024), a migration plan is cut from the
    current usage statistics, and each commit applies at most
    [max_moves] (default 16) moves until the plan drains — so
    reorganization cost is amortized across commits instead of one
    stop-the-world pass.  Each slice's latency lands in the
    [recluster_step] histogram and inside the commit's own [commit]
    histogram window; progress shows in the [recluster_steps] /
    [recluster_moves] counters. *)
val set_auto_recluster :
  ?strategy:Cactis_storage.Cluster.strategy ->
  ?drift_threshold:int ->
  ?max_moves:int ->
  t ->
  bool ->
  unit
