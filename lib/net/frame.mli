(** Length-prefixed frames over a byte stream.

    Every message on the wire is a 4-byte big-endian unsigned length
    followed by that many payload bytes.  The payload is opaque here —
    {!Proto} gives it meaning — so the same framing carries requests,
    responses and (in tests) arbitrary junk.

    Two consumption styles:
    - {!recv}/{!send} block on a [Unix] descriptor (client side, and
      worker replies);
    - a {!decoder} accumulates whatever bytes a non-blocking read
      produced and yields complete frames as they form (the server's
      event loop, and the torn-frame tests).

    Lengths above {!max_payload} (16 MiB) are rejected {e before} any
    allocation, so a corrupt or malicious header cannot make the
    receiver reserve gigabytes. *)

val max_payload : int

(** A header announced a payload larger than {!max_payload}. *)
exception Too_large of int

(** The stream ended mid-header or mid-payload. *)
exception Truncated of { expected : int; got : int }

(** [encode payload] is the wire form: header + payload.
    @raise Too_large *)
val encode : string -> string

(** {1 Blocking I/O} *)

(** [send fd payload] writes one whole frame (restarting on [EINTR]).
    @raise Too_large *)
val send : Unix.file_descr -> string -> unit

(** [recv fd] reads one whole frame.  [None] on clean end-of-stream (EOF
    at a frame boundary).
    @raise Truncated on EOF mid-frame
    @raise Too_large *)
val recv : Unix.file_descr -> string option

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

(** [feed d bytes] appends raw stream bytes (any split is fine, down to
    one byte at a time). *)
val feed : decoder -> string -> unit

(** [next d] pops the next complete frame, or [None] if more bytes are
    needed.
    @raise Too_large as soon as a bad header is visible *)
val next : decoder -> string option

(** Bytes fed but not yet returned as frames. *)
val buffered : decoder -> int
