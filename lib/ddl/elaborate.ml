module Value = Cactis.Value
module Schema = Cactis.Schema
module Errors = Cactis.Errors
module Vtime = Cactis_util.Vtime

exception Error = Ddl_error.Error

let error fmt = Ddl_error.error fmt

(* ------------------------------------------------------------------ *)
(* Source extraction                                                   *)

let rec collect_sources expr acc =
  match expr with
  | Ast.Lit _ -> acc
  | Ast.Self_attr a -> Schema.Self a :: acc
  | Ast.Rel_one (r, a) -> Schema.Rel (r, a) :: acc
  | Ast.Rel_agg { rel; attr; default; _ } ->
    let acc = Schema.Rel (rel, attr) :: acc in
    (match default with Some d -> collect_sources d acc | None -> acc)
  | Ast.Unop (_, e) -> collect_sources e acc
  | Ast.Binop (_, a, b) -> collect_sources a (collect_sources b acc)
  | Ast.If (c, t, e) -> collect_sources c (collect_sources t (collect_sources e acc))
  | Ast.Call (_, args) -> List.fold_left (fun acc e -> collect_sources e acc) acc args

let sources expr = List.sort_uniq compare (collect_sources expr [])

(* ------------------------------------------------------------------ *)
(* Convergence-shape classification ([Far86])

   A rule expression gets a {!Schema.rule_shape} by syntactic closure
   analysis.  The point is soundness, not completeness: a shape other
   than [Shape_unbounded] promises that on a dependency cycle the rule
   is monotone over a bounded lattice, so Kleene/Gauss-Seidel iteration
   from bottom reaches a fixed point.  Anything not obviously in one of
   the closed fragments is conservatively unbounded. *)

(* Structure-only: the value is a function of the link structure alone
   (never of any attribute value), so on a cycle it is constant after
   the first evaluation.  [count(rel.a)] is the archetype — it counts
   related instances, whatever their values. *)
let rec structure_only = function
  | Ast.Lit _ -> true
  | Ast.Self_attr _ | Ast.Rel_one _ -> false
  | Ast.Rel_agg { agg = Ast.Count; default; _ } ->
    (match default with Some d -> structure_only d | None -> true)
  | Ast.Rel_agg _ -> false
  | Ast.Unop (_, e) -> structure_only e
  | Ast.Binop (_, a, b) -> structure_only a && structure_only b
  | Ast.If (c, t, e) -> structure_only c && structure_only t && structure_only e
  | Ast.Call (_, args) -> List.for_all structure_only args

(* Monotone over the two-point boolean lattice (false below true):
   atoms, all/any aggregation, and/or composition.  [not] and value
   comparisons are excluded — they are not monotone in their inputs. *)
let rec bool_closed e =
  structure_only e
  ||
  match e with
  | Ast.Lit (Value.Bool _) -> true
  | Ast.Self_attr _ | Ast.Rel_one _ -> true
  | Ast.Rel_agg { agg = Ast.All | Ast.Any; default; _ } ->
    (match default with Some d -> bool_closed d | None -> true)
  | Ast.Binop ((Ast.And | Ast.Or), a, b) -> bool_closed a && bool_closed b
  | Ast.If (c, t, el) -> structure_only c && bool_closed t && bool_closed el
  | _ -> false

(* Max-closure: iterates only ever select among already-present values
   (max aggregation, [later_of]), so chains are bounded by the number
   of distinct values on the cycle.  Arithmetic is excluded: [max(...)
   + 1] selects nothing and can climb forever. *)
let rec max_closed e =
  structure_only e
  ||
  match e with
  | Ast.Lit _ -> true
  | Ast.Self_attr _ | Ast.Rel_one _ -> true
  | Ast.Rel_agg { agg = Ast.Max; default; _ } ->
    (match default with Some d -> max_closed d | None -> true)
  | Ast.Call ("later_of", args) -> List.for_all max_closed args
  | Ast.If (c, t, el) -> structure_only c && max_closed t && max_closed el
  | _ -> false

let rec min_closed e =
  structure_only e
  ||
  match e with
  | Ast.Lit _ -> true
  | Ast.Self_attr _ | Ast.Rel_one _ -> true
  | Ast.Rel_agg { agg = Ast.Min; default; _ } ->
    (match default with Some d -> min_closed d | None -> true)
  | Ast.Call ("earlier_of", args) -> List.for_all min_closed args
  | Ast.If (c, t, el) -> structure_only c && min_closed t && min_closed el
  | _ -> false

let shape_of_expr e =
  if structure_only e then Schema.Shape_count
  else if bool_closed e then Schema.Shape_bool
  else if max_closed e then Schema.Shape_max
  else if min_closed e then Schema.Shape_min
  else Schema.Shape_unbounded

(* Abstract per-evaluation cost: one unit per operator/read node.  The
   cost pass multiplies this by fan-out bounds along the sources. *)
let rec op_count = function
  | Ast.Lit _ -> 0
  | Ast.Self_attr _ | Ast.Rel_one _ -> 1
  | Ast.Rel_agg { default; _ } ->
    1 + (match default with Some d -> op_count d | None -> 0)
  | Ast.Unop (_, e) -> 1 + op_count e
  | Ast.Binop (_, a, b) -> 1 + op_count a + op_count b
  | Ast.If (c, t, e) -> 1 + op_count c + op_count t + op_count e
  | Ast.Call (_, args) -> List.fold_left (fun acc e -> acc + op_count e) 1 args

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let eval_binop op a b =
  match op with
  | Ast.Add -> Value.add a b
  | Ast.Sub -> Value.sub a b
  | Ast.Mul -> Value.mul a b
  | Ast.Div -> Value.div a b
  | Ast.Eq -> Value.Bool (Value.equal a b)
  | Ast.Neq -> Value.Bool (not (Value.equal a b))
  | Ast.Lt -> Value.Bool (Value.compare a b < 0)
  | Ast.Le -> Value.Bool (Value.compare a b <= 0)
  | Ast.Gt -> Value.Bool (Value.compare a b > 0)
  | Ast.Ge -> Value.Bool (Value.compare a b >= 0)
  | Ast.And | Ast.Or -> assert false (* short-circuited in eval *)

let eval_call name args =
  match (name, args) with
  | "time", [ v ] -> Value.Time (Vtime.of_days (Value.as_float v))
  | "later_of", [ a; b ] -> Value.max_ [ a; b ]
  | "earlier_of", [ a; b ] -> Value.min_ [ a; b ]
  | "later_than", [ a; b ] -> Value.Bool (Value.compare a b > 0)
  | "abs", [ Value.Int n ] -> Value.Int (abs n)
  | "abs", [ v ] -> Value.Float (Float.abs (Value.as_float v))
  | "days_between", [ a; b ] ->
    Value.Float (Vtime.to_days (Value.as_time a) -. Vtime.to_days (Value.as_time b))
  | name, args -> Errors.type_error "builtin %s does not accept %d argument(s)" name (List.length args)

let rec eval env expr =
  match expr with
  | Ast.Lit v -> v
  | Ast.Self_attr a -> env.Schema.self_value a
  | Ast.Rel_one (r, a) -> (
    match env.Schema.related_values r a with
    | [ v ] -> v
    | [] -> Errors.type_error "%s.%s: no related instance" r a
    | vs -> Errors.type_error "%s.%s: %d related instances (expected one)" r a (List.length vs))
  | Ast.Rel_agg { agg; rel; attr; default } -> (
    let vs = env.Schema.related_values rel attr in
    let default_value () = Option.map (eval env) default in
    match agg with
    | Ast.Max -> Value.max_ ?default:(default_value ()) vs
    | Ast.Min -> Value.min_ ?default:(default_value ()) vs
    | Ast.Sum -> (
      match (vs, default_value ()) with
      | [], Some d -> d
      | vs, _ -> Value.sum vs)
    | Ast.Count -> Value.count vs
    | Ast.All -> Value.all_ vs
    | Ast.Any -> Value.any_ vs)
  | Ast.Unop (Ast.Neg, e) -> Value.neg (eval env e)
  | Ast.Unop (Ast.Not, e) -> Value.Bool (not (Value.as_bool (eval env e)))
  | Ast.Binop (Ast.And, a, b) ->
    Value.Bool (Value.as_bool (eval env a) && Value.as_bool (eval env b))
  | Ast.Binop (Ast.Or, a, b) ->
    Value.Bool (Value.as_bool (eval env a) || Value.as_bool (eval env b))
  | Ast.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Ast.If (c, t, e) -> if Value.as_bool (eval env c) then eval env t else eval env e
  | Ast.Call (name, args) -> eval_call name (List.map (eval env) args)

let compile_rule expr = { Schema.sources = sources expr; compute = (fun env -> eval env expr) }

let eval_expr env expr = eval env expr

let const_value expr =
  let env =
    {
      Schema.self_value = (fun a -> error "default value references attribute %s" a);
      related_values = (fun r a -> error "default value references relationship %s.%s" r a);
    }
  in
  eval env expr

(* ------------------------------------------------------------------ *)
(* Schema assembly                                                     *)

let elaborate_attr (decl : Ast.attr_decl) =
  let default =
    match decl.ad_default with
    | Some e -> const_value e
    | None -> Ast.default_value decl.ad_type
  in
  { Schema.attr_name = decl.ad_name; kind = Schema.Intrinsic default; constraint_ = None }

let elaborate_rule (decl : Ast.rule_decl) =
  { Schema.attr_name = decl.ru_name; kind = Schema.Derived (compile_rule decl.ru_expr); constraint_ = None }

let elaborate_constraint (decl : Ast.constraint_decl) =
  {
    Schema.attr_name = decl.cd_name;
    kind = Schema.Derived (compile_rule decl.cd_expr);
    constraint_ = Some { Schema.message = decl.cd_message; recovery = decl.cd_recovery };
  }

let check_inverses sch (items : Ast.schema) =
  List.iter
    (function
      | Ast.Subtype _ -> ()
      | Ast.Class cl ->
        List.iter
          (fun (rd : Ast.rel_decl) ->
            match Schema.rel_opt sch ~type_name:rd.rd_target rd.rd_inverse with
            | None ->
              error "class %s: relationship %s names inverse %s.%s, which is not declared"
                cl.Ast.cl_name rd.rd_name rd.rd_target rd.rd_inverse
            | Some inv ->
              if not (String.equal inv.Schema.inverse rd.rd_name) then
                error "class %s: relationship %s and %s.%s do not name each other as inverses"
                  cl.Ast.cl_name rd.rd_name rd.rd_target rd.rd_inverse;
              if not (String.equal inv.Schema.target cl.Ast.cl_name) then
                error "class %s: inverse %s.%s targets %s" cl.Ast.cl_name rd.rd_target
                  rd.rd_inverse inv.Schema.target)
          cl.Ast.cl_rels)
    items

let extend sch (items : Ast.schema) =
  let classes = List.filter_map (function Ast.Class c -> Some c | Ast.Subtype _ -> None) items in
  let subtypes = List.filter_map (function Ast.Subtype s -> Some s | Ast.Class _ -> None) items in
  (* Pass 1: declare all class names so relationships can target forward
     references. *)
  List.iter (fun (cl : Ast.class_def) -> Schema.add_type sch cl.Ast.cl_name) classes;
  (* Pass 2: relationships. *)
  List.iter
    (fun (cl : Ast.class_def) ->
      List.iter
        (fun (rd : Ast.rel_decl) ->
          Schema.add_rel sch ~type_name:cl.Ast.cl_name
            {
              Schema.rel_name = rd.rd_name;
              target = rd.rd_target;
              inverse = rd.rd_inverse;
              card = (match rd.rd_card with `One -> Schema.One | `Multi -> Schema.Multi);
              polarity = (match rd.rd_polarity with `Plug -> Schema.Plug | `Socket -> Schema.Socket);
            })
        cl.Ast.cl_rels)
    classes;
  check_inverses sch items;
  (* Pass 3: attributes, rules, constraints.  DDL-sourced rules also
     carry their convergence shape into the schema's registry. *)
  List.iter
    (fun (cl : Ast.class_def) ->
      let tn = cl.Ast.cl_name in
      List.iter (fun d -> Schema.add_attr sch ~type_name:tn (elaborate_attr d)) cl.Ast.cl_attrs;
      List.iter
        (fun (d : Ast.rule_decl) ->
          Schema.add_attr sch ~type_name:tn (elaborate_rule d);
          Schema.declare_rule_shape sch ~type_name:tn ~attr:d.ru_name (shape_of_expr d.ru_expr))
        cl.Ast.cl_rules;
      List.iter
        (fun (d : Ast.constraint_decl) ->
          Schema.add_attr sch ~type_name:tn (elaborate_constraint d);
          Schema.declare_rule_shape sch ~type_name:tn ~attr:d.cd_name (shape_of_expr d.cd_expr))
        cl.Ast.cl_constraints)
    classes;
  (* Pass 3b: transmission aliases (attributes now exist). *)
  List.iter
    (fun (cl : Ast.class_def) ->
      List.iter
        (fun (d : Ast.transmit_decl) ->
          Schema.add_export sch ~type_name:cl.Ast.cl_name ~rel:d.tr_rel ~export:d.tr_export
            ~attr:d.tr_attr)
        cl.Ast.cl_transmits)
    classes;
  (* Pass 4: subtypes. *)
  List.iter
    (fun (su : Ast.subtype_def) ->
      Schema.add_subtype sch
        {
          Schema.sub_name = su.Ast.su_name;
          parent = su.Ast.su_parent;
          predicate = compile_rule su.Ast.su_predicate;
          extra_attrs =
            List.map elaborate_attr su.Ast.su_attrs @ List.map elaborate_rule su.Ast.su_rules;
        };
      Schema.declare_rule_shape sch ~type_name:su.Ast.su_parent
        ~attr:(Schema.membership_attr su.Ast.su_name)
        (shape_of_expr su.Ast.su_predicate);
      List.iter
        (fun (d : Ast.rule_decl) ->
          Schema.declare_rule_shape sch ~type_name:su.Ast.su_parent ~attr:d.ru_name
            (shape_of_expr d.ru_expr))
        su.Ast.su_rules)
    subtypes

(* Elaboration runs first so that structurally broken schemas keep
   failing with the engine's own exceptions (Errors.Unknown,
   Errors.Type_error, inverse mismatches as Error) exactly as before;
   the typechecker and the static analyzer then vet what elaborated. *)
let schema ?(typecheck = true) ?(analyze = true) items =
  let sch = Schema.create () in
  extend sch items;
  if typecheck then begin
    match Typecheck.check items with
    | [] -> ()
    | errs -> raise (Error (String.concat "\n" errs))
  end;
  if analyze then begin
    match Cactis_analysis.Diag.errors (Cactis_analysis.Analyze.analyze_schema sch) with
    | [] -> ()
    | errs ->
      raise
        (Error
           ("schema analysis failed:\n"
           ^ String.concat "\n" (List.map Cactis_analysis.Diag.to_string errs)))
  end;
  sch

let load_string ?typecheck ?analyze src = schema ?typecheck ?analyze (Parser.parse_schema src)

(* The compiler the core uses to turn a logged rule expression back
   into a closure: schema deltas store derived rules as DDL expression
   text, and decoding one (WAL recovery, snapshot load) recompiles it
   here.  Parse failures surface as typed errors — a corrupt repr is a
   data problem, not a parser crash. *)
let install_rule_compiler () =
  Schema.set_rule_compiler (fun src ->
      match Parser.parse_expr src with
      | expr -> compile_rule expr
      | exception Parser.Error { line; col; message } ->
        Errors.type_error "cannot recompile logged rule expression %S: %d:%d: %s" src line col
          message);
  (* Same front door for shapes: an expression-carrying rule (dynamic
     [Db.add_attr ~expr], WAL replay) is classified through the parser. *)
  Schema.set_rule_classifier (fun src ->
      match Parser.parse_expr src with
      | expr -> shape_of_expr expr
      | exception Parser.Error _ -> Schema.Shape_unbounded)

let () = install_rule_compiler ()

let extend_db db src =
  (* The module initializer above already registered the compiler, but
     linkers may drop a module nobody references — entry points that
     need recompilation re-register explicitly. *)
  install_rule_compiler ();
  let items = Parser.parse_schema src in
  let classes = List.filter_map (function Ast.Class c -> Some c | Ast.Subtype _ -> None) items in
  let subtypes = List.filter_map (function Ast.Subtype s -> Some s | Ast.Class _ -> None) items in
  (* Every declaration goes through the logged Db entry points so the
     whole extension lands in ONE transaction delta: undo retracts the
     extension atomically, and recovery replays it interleaved with the
     data deltas around it.  Derived members carry their expression
     text so the delta can be serialized. *)
  let run f = if Cactis.Db.in_txn db then f () else Cactis.Db.with_txn db f in
  run (fun () ->
      (* Pass 1: declare all class names so relationships can target
         forward references. *)
      List.iter (fun (cl : Ast.class_def) -> Cactis.Db.add_type db cl.Ast.cl_name) classes;
      (* Pass 2: relationships. *)
      List.iter
        (fun (cl : Ast.class_def) ->
          List.iter
            (fun (rd : Ast.rel_decl) ->
              Cactis.Db.add_rel db ~type_name:cl.Ast.cl_name
                {
                  Schema.rel_name = rd.rd_name;
                  target = rd.rd_target;
                  inverse = rd.rd_inverse;
                  card = (match rd.rd_card with `One -> Schema.One | `Multi -> Schema.Multi);
                  polarity =
                    (match rd.rd_polarity with `Plug -> Schema.Plug | `Socket -> Schema.Socket);
                })
            cl.Ast.cl_rels)
        classes;
      check_inverses (Cactis.Db.schema db) items;
      (* Pass 3: attributes, rules, constraints. *)
      List.iter
        (fun (cl : Ast.class_def) ->
          let tn = cl.Ast.cl_name in
          List.iter
            (fun d -> Cactis.Db.add_attr db ~type_name:tn (elaborate_attr d))
            cl.Ast.cl_attrs;
          List.iter
            (fun (d : Ast.rule_decl) ->
              Cactis.Db.add_attr db ~expr:(Pretty.expr_to_string d.ru_expr) ~type_name:tn
                (elaborate_rule d))
            cl.Ast.cl_rules;
          List.iter
            (fun (d : Ast.constraint_decl) ->
              Cactis.Db.add_attr db ~expr:(Pretty.expr_to_string d.cd_expr) ~type_name:tn
                (elaborate_constraint d))
            cl.Ast.cl_constraints)
        classes;
      (* Pass 3b: transmission aliases (attributes now exist). *)
      List.iter
        (fun (cl : Ast.class_def) ->
          List.iter
            (fun (d : Ast.transmit_decl) ->
              Cactis.Db.add_export db ~type_name:cl.Ast.cl_name ~rel:d.tr_rel ~export:d.tr_export
                ~attr:d.tr_attr)
            cl.Ast.cl_transmits)
        classes;
      (* Pass 4: subtypes.  [attr_exprs] aligns positionally with
         [extra_attrs]: intrinsics carry their value in the delta (no
         expression), rules carry their source text. *)
      List.iter
        (fun (su : Ast.subtype_def) ->
          let attr_exprs =
            List.map (fun (_ : Ast.attr_decl) -> None) su.Ast.su_attrs
            @ List.map
                (fun (d : Ast.rule_decl) -> Some (Pretty.expr_to_string d.ru_expr))
                su.Ast.su_rules
          in
          Cactis.Db.add_subtype db
            ~predicate_expr:(Pretty.expr_to_string su.Ast.su_predicate)
            ~attr_exprs
            {
              Schema.sub_name = su.Ast.su_name;
              parent = su.Ast.su_parent;
              predicate = compile_rule su.Ast.su_predicate;
              extra_attrs =
                List.map elaborate_attr su.Ast.su_attrs @ List.map elaborate_rule su.Ast.su_rules;
            })
        subtypes)
