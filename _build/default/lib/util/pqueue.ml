type 'a entry = { prio : float; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
}

let dummy prio payload = { prio; payload }

let create () = { heap = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let grow t e =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nheap = Array.make ncap e in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.heap.(i).prio < t.heap.(parent).prio then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.heap.(l).prio < t.heap.(!smallest).prio then smallest := l;
  if r < t.size && t.heap.(r).prio < t.heap.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t prio x =
  let e = dummy prio x in
  grow t e;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then raise Not_found;
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top.payload

let pop_opt t = if t.size = 0 then None else Some (pop t)

let peek_priority t = if t.size = 0 then None else Some t.heap.(0).prio

let drain t f =
  let rec loop () =
    match pop_opt t with
    | None -> ()
    | Some x ->
      f x;
      loop ()
  in
  loop ()

let clear t = t.size <- 0
