type t = {
  mutable nodes_marked : int;
  mutable edges_walked : int;
  mutable cutoffs : int;
  mutable evals : int;
  evaluated : (int, int) Hashtbl.t;  (* packed key -> evals since last invalidation *)
  mutable max_evals : int;  (* high-water mark, survives re-marking *)
}

type snapshot = {
  p_nodes_marked : int;
  p_edges_walked : int;
  p_cutoffs : int;
  p_evals : int;
  p_distinct_evaluated : int;
  p_max_evals_per_attr : int;
  p_bound : int;
  p_work : int;
}

let create () =
  {
    nodes_marked = 0;
    edges_walked = 0;
    cutoffs = 0;
    evals = 0;
    evaluated = Hashtbl.create 64;
    max_evals = 0;
  }

let reset t =
  t.nodes_marked <- 0;
  t.edges_walked <- 0;
  t.cutoffs <- 0;
  t.evals <- 0;
  t.max_evals <- 0;
  Hashtbl.reset t.evaluated

let on_mark t ~key =
  t.nodes_marked <- t.nodes_marked + 1;
  (* Invalidation re-arms the slot: one more evaluation is legitimate. *)
  Hashtbl.remove t.evaluated key

let on_cutoff t = t.cutoffs <- t.cutoffs + 1
let on_edge t = t.edges_walked <- t.edges_walked + 1

let on_eval t ~key =
  t.evals <- t.evals + 1;
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.evaluated key) in
  Hashtbl.replace t.evaluated key n;
  if n > t.max_evals then t.max_evals <- n

let snapshot t =
  {
    p_nodes_marked = t.nodes_marked;
    p_edges_walked = t.edges_walked;
    p_cutoffs = t.cutoffs;
    p_evals = t.evals;
    p_distinct_evaluated = Hashtbl.length t.evaluated;
    p_max_evals_per_attr = t.max_evals;
    p_bound = t.nodes_marked + t.edges_walked;
    p_work = t.nodes_marked + t.cutoffs + t.evals;
  }

let at_most_once s = s.p_max_evals_per_attr <= 1

let work_ratio s =
  if s.p_bound = 0 then if s.p_work = 0 then 1.0 else Float.of_int s.p_work
  else Float.of_int s.p_work /. Float.of_int s.p_bound

let to_string s =
  Printf.sprintf
    "marked=%d edges=%d cutoffs=%d evals=%d (distinct=%d, max/attr=%d) work=%d bound=%d \
     ratio=%.2f at-most-once=%b"
    s.p_nodes_marked s.p_edges_walked s.p_cutoffs s.p_evals s.p_distinct_evaluated
    s.p_max_evals_per_attr s.p_work s.p_bound (work_ratio s) (at_most_once s)
