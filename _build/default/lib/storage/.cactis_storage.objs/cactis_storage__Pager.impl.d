lib/storage/pager.ml: Buffer_pool Cluster Disk Hashtbl
