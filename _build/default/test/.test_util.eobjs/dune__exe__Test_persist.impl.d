test/test_persist.ml: Alcotest Array Cactis Cactis_apps Cactis_ddl Cactis_util List Printf QCheck QCheck_alcotest String
