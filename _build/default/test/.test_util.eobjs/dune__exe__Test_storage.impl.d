test/test_storage.ml: Alcotest Cactis_storage Hashtbl List Printf QCheck QCheck_alcotest
