module Value = Cactis.Value

type stats = {
  committed : int;
  restarts : int;
  starved : int;
  ops_executed : int;
  committed_scripts : (int * Workload.script) list;
}

(* Same op semantics as the deterministic interleaver: an [Incr]'s read
   and write execute back-to-back within one atomic step. *)
let exec_op cc txn op =
  match op with
  | Workload.Read (id, a) | Workload.Read_derived (id, a) -> (
    match Timestamp_cc.read cc txn id a with Ok _ -> Ok () | Error `Abort -> Error `Abort)
  | Workload.Write (id, a, v) -> Timestamp_cc.write cc txn id a v
  | Workload.Incr (id, a, n) -> (
    match Timestamp_cc.read cc txn id a with
    | Error `Abort -> Error `Abort
    | Ok v -> Timestamp_cc.write cc txn id a (Value.Int (Value.as_int v + n)))

type client_stats = {
  mutable c_committed : int;
  mutable c_restarts : int;
  mutable c_starved : int;
  mutable c_ops : int;
  mutable c_scripts : (int * Workload.script) list;
}

let run ?(max_restarts = 1000) ~cc ~clients () =
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    match f () with
    | v ->
      Mutex.unlock mu;
      v
    | exception e ->
      Mutex.unlock mu;
      raise e
  in
  let run_client scripts =
    let st = { c_committed = 0; c_restarts = 0; c_starved = 0; c_ops = 0; c_scripts = [] } in
    List.iter
      (fun script ->
        let rec attempt tries =
          if tries > max_restarts then st.c_starved <- st.c_starved + 1
          else begin
            let txn = locked (fun () -> Timestamp_cc.begin_txn cc) in
            let restart () =
              locked (fun () ->
                  try Timestamp_cc.abort cc txn with Invalid_argument _ -> ());
              st.c_restarts <- st.c_restarts + 1;
              attempt (tries + 1)
            in
            let rec go = function
              | op :: rest -> (
                st.c_ops <- st.c_ops + 1;
                match locked (fun () -> exec_op cc txn op) with
                | Ok () -> go rest
                | Error `Abort -> restart ())
              | [] -> (
                match locked (fun () -> Timestamp_cc.commit cc txn) with
                | Ok () ->
                  st.c_committed <- st.c_committed + 1;
                  st.c_scripts <- (Timestamp_cc.timestamp txn, script) :: st.c_scripts
                | Error `Abort -> restart ())
            in
            go script
          end
        in
        attempt 0)
      scripts;
    st
  in
  let domains = List.map (fun scripts -> Domain.spawn (fun () -> run_client scripts)) clients in
  let per_client = List.map Domain.join domains in
  {
    committed = List.fold_left (fun a s -> a + s.c_committed) 0 per_client;
    restarts = List.fold_left (fun a s -> a + s.c_restarts) 0 per_client;
    starved = List.fold_left (fun a s -> a + s.c_starved) 0 per_client;
    ops_executed = List.fold_left (fun a s -> a + s.c_ops) 0 per_client;
    committed_scripts =
      List.concat_map (fun s -> s.c_scripts) per_client
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }
