lib/apps/flowan.mli: Cactis
