lib/util/pqueue.mli:
