(** Configuration management (§3).

    The paper lists configurations among the core software-environment
    object types: "a configuration is made up of a number of instances of
    the type program; source and object modules might be viewed as
    subtypes of type program."  This tool models exactly that:

    - {e components} carry a name, a version counter, a stability flag
      and a kind; [source_module] / [object_module] are predicate
      subtypes over the kind (the paper's example subtyping);
    - {e configurations} include components through a many-to-many
      relationship; their size, minimum included version and
      consistency ("every included component is stable", when the
      configuration demands stability) are derived attributes, so
      bumping one component's version or stability ripples into every
      configuration including it;
    - {e freezing} a configuration names the database state through the
      version facility; {!restore} checks the frozen state out again —
      the paper's "retention, recall, and management of multiple related
      versions of objects". *)

type t

val create : unit -> t

val db : t -> Cactis.Db.t

type kind =
  | Source
  | Object

(** [add_component t ~name ~kind] — new component at version 1,
    unstable. *)
val add_component : t -> name:string -> kind:kind -> int

(** [bump_version t comp] increments the version and resets stability
    (a fresh build is unproven). *)
val bump_version : t -> int -> unit

val mark_stable : t -> int -> unit
val version : t -> int -> int
val is_stable : t -> int -> bool

(** Subtype membership queries (the paper's source/object example). *)
val source_modules : t -> int list

val object_modules : t -> int list

(** [add_configuration t ~name ~require_stable] *)
val add_configuration : t -> name:string -> require_stable:bool -> int

val include_component : t -> config:int -> component:int -> unit

val size : t -> int -> int
val min_version : t -> int -> int

(** True iff the configuration doesn't demand stability, or every
    included component is stable. *)
val consistent : t -> int -> bool

(** Configurations including the given component (ripple audience). *)
val configurations_of : t -> int -> int list

(** [freeze t config ~label] tags the database state; [restore] checks
    it out.  @raise Cactis.Errors.Unknown for unknown labels. *)
val freeze : t -> label:string -> unit

val restore : t -> label:string -> unit

val report : t -> string
