(** Recursive-descent parser for the DDL. *)

exception Error of { line : int; col : int; message : string }

(** [parse_schema src] parses a whole schema file.
    @raise Error with position information on syntax errors.
    @raise Lexer.Error on lexical errors. *)
val parse_schema : string -> Ast.schema

(** [parse_expr src] parses a standalone expression (used by tests and by
    the CLI's ad-hoc predicate queries). *)
val parse_expr : string -> Ast.expr
