examples/flow_analysis.mli:
