lib/util/vtime.mli: Format
