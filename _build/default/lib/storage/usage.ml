type crossing = {
  from_instance : int;
  rel : string;
  to_instance : int;
}

(* Crossings are canonicalized so that (a, r, b) and (b, r, a) share a
   counter: the paper accumulates a single usage count per relationship
   link regardless of traversal direction. *)
let canon ~from_instance ~rel ~to_instance =
  if from_instance <= to_instance then { from_instance; rel; to_instance }
  else { from_instance = to_instance; rel; to_instance = from_instance }

type t = {
  instance_counts : (int, int ref) Hashtbl.t;
  crossing_counts : (crossing, int ref) Hashtbl.t;
}

let create () = { instance_counts = Hashtbl.create 64; crossing_counts = Hashtbl.create 64 }

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let touch_instance t id = incr (cell t.instance_counts id)

let cross t ~from_instance ~rel ~to_instance =
  incr (cell t.crossing_counts (canon ~from_instance ~rel ~to_instance))

let instance_count t id =
  match Hashtbl.find_opt t.instance_counts id with Some r -> !r | None -> 0

let crossing_count t ~from_instance ~rel ~to_instance =
  match Hashtbl.find_opt t.crossing_counts (canon ~from_instance ~rel ~to_instance) with
  | Some r -> !r
  | None -> 0

let instances t = Hashtbl.fold (fun id r acc -> (id, !r) :: acc) t.instance_counts []

let crossings t = Hashtbl.fold (fun c r acc -> (c, !r) :: acc) t.crossing_counts []

let forget_instance t id =
  Hashtbl.remove t.instance_counts id;
  let stale =
    Hashtbl.fold
      (fun c _ acc -> if c.from_instance = id || c.to_instance = id then c :: acc else acc)
      t.crossing_counts []
  in
  List.iter (Hashtbl.remove t.crossing_counts) stale

let reset t =
  Hashtbl.reset t.instance_counts;
  Hashtbl.reset t.crossing_counts
