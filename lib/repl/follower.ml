(* Follower streaming client.  One blocking socket; heartbeat silence
   is detected with SO_RCVTIMEO (reads restart only on EINTR, so the
   timeout surfaces as EAGAIN and is mapped to a recoverable Transport
   error here).  Frames are assembled through an incremental decoder
   with a deadline of its own: a corrupted length header can announce a
   frame far larger than anything the writer will send, and heartbeat
   traffic would keep resetting the receive timeout forever while that
   phantom frame never completes.  If no whole frame forms within a few
   heartbeat periods the connection is declared dead instead. *)

module Db = Cactis.Db
module Snapshot = Cactis.Snapshot
module Counters = Cactis_util.Counters
module Histogram = Cactis_obs.Histogram
module Frame = Cactis_net.Frame
module P = Repl_proto

type config = {
  f_heartbeat_timeout_s : float;
  f_backoff_s : float;
  f_max_backoff_s : float;
  f_check_every : int;
  f_max_attempts : int;
}

let config ?(heartbeat_timeout_s = 5.0) ?(backoff_s = 0.1) ?(max_backoff_s = 5.0)
    ?(check_every = 8) ?(max_attempts = 0) () =
  {
    f_heartbeat_timeout_s = heartbeat_timeout_s;
    f_backoff_s = backoff_s;
    f_max_backoff_s = max_backoff_s;
    f_check_every = check_every;
    f_max_attempts = max_attempts;
  }

type status = Idle | Syncing | Streaming | Stopped | Failed of string

type t = {
  cfg : config;
  host : string;
  tport : int;
  make_schema : unit -> Cactis.Schema.t;
  mutable apply_override : (string -> unit) option;
  mutable db : Db.t option;
  mutable replica : Replica.t option;
  mutable fd : Unix.file_descr option;
  mutable dec : Frame.decoder;  (* reset on every (re)connect *)
  mutable st : status;
  mutable head : int;  (* writer's announced head seq *)
  mutable batches : int;  (* over this connection *)
  mutable conn_started : float;
  mutable caught_up : bool;  (* catch-up time recorded for this connection *)
  (* Snapshot assembly state while a bootstrap is in flight. *)
  mutable snap : (int * int * Buffer.t) option;  (* generation, size, data *)
  stop_flag : bool Atomic.t;
}

let create ?(config = config ()) ~make_schema ~host ~port () =
  {
    cfg = config;
    host;
    tport = port;
    make_schema;
    apply_override = None;
    db = None;
    replica = None;
    fd = None;
    dec = Frame.decoder ();
    st = Idle;
    head = -1;
    batches = 0;
    conn_started = 0.0;
    caught_up = false;
    snap = None;
    stop_flag = Atomic.make false;
  }

let status t = t.st
let db t = t.db
let cursor t = match t.replica with Some r -> Replica.cursor r | None -> P.cursor_zero
let applied_seq t = match t.replica with Some r -> Replica.seq r | None -> -1
let head_seq t = t.head
let synced t = t.db <> None && applied_seq t >= t.head
let set_apply t f = t.apply_override <- f

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let with_db t f = match t.db with Some db -> f db | None -> ()
let c_incr t name = with_db t (fun db -> Counters.incr (Db.counters db) name)
let c_add t name n = with_db t (fun db -> Counters.add (Db.counters db) name n)

let observe t name v =
  with_db t (fun db ->
      Histogram.observe_named (Db.obs db).Cactis_obs.Ctx.hists name v)

let close_fd t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    (* Shut the socket down so a blocked recv wakes immediately;
       closing is left to the streaming thread, which owns the fd. *)
    match t.fd with
    | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Repl_error.Transport (Printf.sprintf "cannot resolve %s" host)))

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.tport));
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.f_heartbeat_timeout_s
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise (Repl_error.Transport (Unix.error_message e)));
  t.fd <- Some fd;
  t.dec <- Frame.decoder ();
  t.conn_started <- Unix.gettimeofday ();
  t.batches <- 0;
  t.caught_up <- false;
  t.snap <- None;
  let schema_version = match t.db with Some db -> Db.schema_step_count db | None -> 0 in
  (try Frame.send fd (P.encode_client (P.Hello { cursor = cursor t; schema_version }))
   with Unix.Unix_error (e, _, _) -> raise (Repl_error.Transport (Unix.error_message e)));
  fd

let send_ack t fd ~lag_us =
  try
    Frame.send fd (P.encode_client (P.Ack { seq = applied_seq t; cursor = cursor t; lag_us }))
  with Unix.Unix_error (e, _, _) -> raise (Repl_error.Transport (Unix.error_message e))

(* The replica's apply closure indirects through [apply_override] so
   {!set_apply} takes effect without rebuilding the replica (and with
   it, losing the cursor). *)
let make_replica t ~cursor db =
  Replica.create
    ~apply:(fun record ->
      match t.apply_override with
      | Some f -> f record
      | None -> Replica.default_apply db record)
    ~cursor db

let install_db t ~cursor db =
  t.db <- Some db;
  t.replica <- Some (make_replica t ~cursor db)

let replica_exn t =
  match t.replica with
  | Some r -> r
  | None -> raise (P.Corrupt { context = "server"; message = "stream before handshake completed" })

let note_caught_up t =
  if (not t.caught_up) && t.head >= 0 && applied_seq t >= t.head then begin
    t.caught_up <- true;
    observe t "repl.catchup" (Unix.gettimeofday () -. t.conn_started)
  end

let handle_msg t fd msg =
  match msg with
  | P.Refuse { code; message } ->
    c_incr t "repl.refused";
    raise (Repl_error.Refused { code; message })
  | P.Snap_begin { generation; size; _ } ->
    if t.apply_override <> None then
      raise
        (Repl_error.Refused
           {
             code = Repl_error.code_protocol;
             message = "writer demands re-bootstrap but the replica database is externally owned";
           });
    t.snap <- Some (generation, size, Buffer.create (max 1024 size))
  | P.Snap_chunk { last; data } -> (
    match t.snap with
    | None ->
      raise (P.Corrupt { context = "server"; message = "snapshot chunk outside a bootstrap" })
    | Some (generation, size, buf) ->
      Buffer.add_string buf data;
      if Buffer.length buf > size then
        raise (P.Corrupt { context = "server"; message = "snapshot larger than announced" });
      if last then begin
        if Buffer.length buf <> size then
          raise
            (P.Corrupt
               {
                 context = "server";
                 message =
                   Printf.sprintf "snapshot ended at %d of %d bytes" (Buffer.length buf) size;
               });
        let payload = Buffer.contents buf in
        t.snap <- None;
        let db =
          try Snapshot.load_binary (t.make_schema ()) payload
          with e ->
            raise
              (P.Corrupt
                 { context = "server"; message = "snapshot load: " ^ Printexc.to_string e })
        in
        install_db t ~cursor:{ P.gen = generation; records = 0 } db;
        c_incr t "repl.bootstraps";
        t.st <- Streaming
      end)
  | P.Batch { sent_us; entries } ->
    if t.db = None then install_db t ~cursor:P.cursor_zero (Db.create (t.make_schema ()));
    t.st <- Streaming;
    let r = replica_exn t in
    let applied = ref 0 in
    List.iter
      (fun e ->
        let t0 = Unix.gettimeofday () in
        match Replica.apply_entry r e with
        | Replica.Applied ->
          incr applied;
          observe t "repl.apply" (Unix.gettimeofday () -. t0)
        | Replica.Skipped -> ())
      entries;
    t.batches <- t.batches + 1;
    c_incr t "repl.batches";
    c_add t "repl.records" !applied;
    (match List.rev entries with
    | last :: _ -> t.head <- max t.head last.P.e_seq
    | [] -> ());
    let lag_us = max 0 (now_us () - sent_us) in
    observe t "repl.lag_s" (float_of_int lag_us /. 1e6);
    note_caught_up t;
    send_ack t fd ~lag_us;
    if
      t.cfg.f_check_every > 0
      && t.apply_override = None
      && t.batches mod t.cfg.f_check_every = 0
    then begin
      c_incr t "repl.integrity_checks";
      Replica.drift_check r
    end
  | P.Mark { seq; prev; generation } ->
    if t.db = None then install_db t ~cursor:P.cursor_zero (Db.create (t.make_schema ()));
    t.st <- Streaming;
    ignore (Replica.apply_mark (replica_exn t) ~seq ~prev ~generation);
    t.head <- max t.head seq;
    note_caught_up t
  | P.Heartbeat { head_seq; sent_us; _ } ->
    if t.db = None then install_db t ~cursor:P.cursor_zero (Db.create (t.make_schema ()));
    t.st <- Streaming;
    t.head <- max t.head head_seq;
    observe t "repl.lag_records" (float_of_int (max 0 (t.head - applied_seq t)));
    note_caught_up t;
    send_ack t fd ~lag_us:(max 0 (now_us () - sent_us))

(* Read one complete message through the incremental decoder.  The
   per-read SO_RCVTIMEO catches total silence; the assembly deadline
   catches a live connection whose announced frame never completes
   (e.g. a corrupted length header inflating the expected size). *)
let recv_msg t fd =
  let deadline = Unix.gettimeofday () +. (3.0 *. t.cfg.f_heartbeat_timeout_s) in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame.next t.dec with
    | Some frame -> P.decode_server frame
    | None ->
      if Frame.buffered t.dec > 0 && Unix.gettimeofday () > deadline then
        raise (Repl_error.Transport "frame assembly timed out");
      (match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        if Frame.buffered t.dec > 0 then raise (Repl_error.Transport "stream truncated")
        else raise (Repl_error.Transport "connection closed by writer")
      | n -> Frame.feed t.dec (Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Repl_error.Transport "heartbeat timeout")
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) ->
        raise (Repl_error.Transport (Unix.error_message e)));
      go ()
  in
  try go ()
  with Frame.Too_large n ->
    raise (P.Corrupt { context = "server"; message = Printf.sprintf "frame of %d bytes" n })

(* Pump messages until [until t] holds.  Leaves the connection open. *)
let pump t fd ~until =
  while (not (until t)) && not (Atomic.get t.stop_flag) do
    handle_msg t fd (recv_msg t fd)
  done

(* Count the recoverable error classes before the reconnect loop eats
   them. *)
let classify t e =
  match e with
  | Repl_error.Corrupt _ -> c_incr t "repl.corrupt_frames"
  | Repl_error.Gap _ -> c_incr t "repl.gaps"
  | _ -> ()

(* One connection attempt: connect if needed, then pump. *)
let session t ~until =
  let fd = match t.fd with Some fd -> fd | None -> connect t in
  pump t fd ~until

let run_with t ~until =
  let backoff = ref t.cfg.f_backoff_s in
  let attempts = ref 0 in
  let finished = ref false in
  while (not !finished) && not (Atomic.get t.stop_flag) do
    match session t ~until with
    | () -> finished := true
    | exception e when Atomic.get t.stop_flag -> ignore e
    | exception e when Repl_error.recoverable e ->
      classify t e;
      close_fd t;
      t.snap <- None;
      incr attempts;
      if t.cfg.f_max_attempts > 0 && !attempts >= t.cfg.f_max_attempts then begin
        t.st <- Failed (Repl_error.to_string e);
        raise e
      end;
      c_incr t "repl.reconnects";
      t.st <- Syncing;
      Unix.sleepf !backoff;
      backoff := Float.min t.cfg.f_max_backoff_s (!backoff *. 2.0)
    | exception e ->
      t.st <- Failed (Repl_error.to_string e);
      close_fd t;
      raise e
  done;
  if Atomic.get t.stop_flag then begin
    close_fd t;
    t.st <- Stopped
  end

let sync t =
  match t.db with
  | Some db -> db
  | None ->
    t.st <- Syncing;
    run_with t ~until:(fun t -> t.db <> None);
    (match t.db with
    | Some db -> db
    | None -> raise (Repl_error.Transport "stopped before sync completed"))

let run ?(until_synced = false) t =
  if t.db = None && not (Atomic.get t.stop_flag) then ignore (sync t);
  if not (Atomic.get t.stop_flag) then
    if until_synced then run_with t ~until:(fun t -> t.head >= 0 && synced t)
    else run_with t ~until:(fun _ -> false)
