(** Multi-user workload scripts.

    A transaction is a deterministic {e script} of abstract operations,
    so that the same set of committed transactions can be re-executed
    serially by the oracle and compared against the concurrent outcome.
    [Incr] is the classic read-modify-write (it detects lost updates);
    [Read_derived] exercises the incremental engine under concurrency. *)

type op =
  | Read of int * string
  | Write of int * string * Cactis.Value.t
  | Incr of int * string * int  (** read an int attribute, write value+n *)
  | Read_derived of int * string

type script = op list

(** [counters_db ~instances] builds a simple bank-account-style database:
    [instances] objects of class [account] with an intrinsic [balance]
    (initially 100) and a derived [flagged] (balance < 0), plus one
    [totals] object related to every account with derived [total].
    Returns (db, account ids, totals id). *)
val counters_db :
  ?strategy:Cactis.Engine.strategy -> instances:int -> unit -> Cactis.Db.t * int list * int

(** [generate rng ~accounts ~txns ~ops_per_txn ~hot_fraction ~read_fraction]
    builds [txns] scripts.  [hot_fraction] of the accesses hit the first
    account (contention knob); [read_fraction] of the ops are reads. *)
val generate :
  Cactis_util.Rng.t ->
  accounts:int list ->
  txns:int ->
  ops_per_txn:int ->
  hot_fraction:float ->
  read_fraction:float ->
  script list
