module Codec = Cactis.Codec
module Value = Cactis.Value
module Errors = Cactis.Errors

type update =
  | Set of { instance : int; attr : string; value : Value.t }
  | Create of { type_name : string }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }

type req =
  | Ping
  | Open_session
  | Read of { min_version : int; instance : int; attr : string }
  | Traverse of { min_version : int; root : int; rel : string; attr : string; depth : int }
  | Commit of update list
  | Stats
  | Metrics

type error_code =
  | E_unknown
  | E_type
  | E_constraint
  | E_cardinality
  | E_cycle
  | E_protocol
  | E_server

type latency = {
  l_name : string;
  l_count : int;
  l_mean : float;
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
}

type resp =
  | Pong
  | Opened of { version : int; readers : int; instances : int }
  | Value of { version : int; value : Value.t }
  | Traversed of { version : int; visited : int; total : Value.t }
  | Committed of { version : int; created : int list }
  | Stats_reply of { counters : (string * int) list; latencies : latency list }
  | Metrics_reply of string  (* OpenMetrics text exposition *)
  | Error of { code : error_code; message : string }

type envelope = {
  req_id : int;
  span_id : int;
}

exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

(* Decoders run under this wrapper so codec faults surface as the
   protocol's own typed error, byte offset preserved. *)
let guarded name f s =
  try
    let r = Codec.reader s in
    let v = f r in
    if not (Codec.at_end r) then malformed "%s: %d trailing bytes" name (String.length s - r.Codec.pos);
    v
  with Codec.Error { offset; message } -> malformed "%s: %s at byte %d" name message offset

let write_float b f = Codec.write_value b (Value.Float f)
let read_float r = Value.as_float (Codec.read_value r)

(* ---- Envelope ---- *)

let write_envelope b env =
  Codec.write_uint b env.req_id;
  Codec.write_uint b env.span_id

let read_envelope r =
  let req_id = Codec.read_uint r in
  let span_id = Codec.read_uint r in
  { req_id; span_id }

(* ---- Requests ---- *)

let write_update b = function
  | Set { instance; attr; value } ->
    Codec.write_uint b 0;
    Codec.write_uint b instance;
    Codec.write_string b attr;
    Codec.write_value b value
  | Create { type_name } ->
    Codec.write_uint b 1;
    Codec.write_string b type_name
  | Link { from_id; rel; to_id } ->
    Codec.write_uint b 2;
    Codec.write_uint b from_id;
    Codec.write_string b rel;
    Codec.write_uint b to_id
  | Unlink { from_id; rel; to_id } ->
    Codec.write_uint b 3;
    Codec.write_uint b from_id;
    Codec.write_string b rel;
    Codec.write_uint b to_id

let read_update r =
  match Codec.read_uint r with
  | 0 ->
    let instance = Codec.read_uint r in
    let attr = Codec.read_string r in
    let value = Codec.read_value r in
    Set { instance; attr; value }
  | 1 -> Create { type_name = Codec.read_string r }
  | 2 ->
    let from_id = Codec.read_uint r in
    let rel = Codec.read_string r in
    let to_id = Codec.read_uint r in
    Link { from_id; rel; to_id }
  | 3 ->
    let from_id = Codec.read_uint r in
    let rel = Codec.read_string r in
    let to_id = Codec.read_uint r in
    Unlink { from_id; rel; to_id }
  | tag -> malformed "update: unknown tag %d" tag

let encode_req env req =
  let b = Buffer.create 64 in
  write_envelope b env;
  (match req with
  | Ping -> Codec.write_uint b 0
  | Open_session -> Codec.write_uint b 1
  | Read { min_version; instance; attr } ->
    Codec.write_uint b 2;
    Codec.write_uint b min_version;
    Codec.write_uint b instance;
    Codec.write_string b attr
  | Traverse { min_version; root; rel; attr; depth } ->
    Codec.write_uint b 3;
    Codec.write_uint b min_version;
    Codec.write_uint b root;
    Codec.write_string b rel;
    Codec.write_string b attr;
    Codec.write_int b depth
  | Commit updates ->
    Codec.write_uint b 4;
    Codec.write_uint b (List.length updates);
    List.iter (write_update b) updates
  | Stats -> Codec.write_uint b 5
  | Metrics -> Codec.write_uint b 6);
  Buffer.contents b

let decode_req =
  guarded "request" (fun r ->
      let env = read_envelope r in
      let req =
        match Codec.read_uint r with
        | 0 -> Ping
        | 1 -> Open_session
        | 2 ->
          let min_version = Codec.read_uint r in
          let instance = Codec.read_uint r in
          let attr = Codec.read_string r in
          Read { min_version; instance; attr }
        | 3 ->
          let min_version = Codec.read_uint r in
          let root = Codec.read_uint r in
          let rel = Codec.read_string r in
          let attr = Codec.read_string r in
          let depth = Codec.read_int r in
          Traverse { min_version; root; rel; attr; depth }
        | 4 ->
          let n = Codec.read_uint r in
          Commit (List.init n (fun _ -> read_update r))
        | 5 -> Stats
        | 6 -> Metrics
        | tag -> malformed "request: unknown verb tag %d" tag
      in
      (env, req))

(* ---- Responses ---- *)

let error_code_tag = function
  | E_unknown -> 0
  | E_type -> 1
  | E_constraint -> 2
  | E_cardinality -> 3
  | E_cycle -> 4
  | E_protocol -> 5
  | E_server -> 6

let error_code_of_tag = function
  | 0 -> E_unknown
  | 1 -> E_type
  | 2 -> E_constraint
  | 3 -> E_cardinality
  | 4 -> E_cycle
  | 5 -> E_protocol
  | 6 -> E_server
  | tag -> malformed "error: unknown code tag %d" tag

let error_code_name = function
  | E_unknown -> "unknown"
  | E_type -> "type_error"
  | E_constraint -> "constraint"
  | E_cardinality -> "cardinality"
  | E_cycle -> "cycle"
  | E_protocol -> "protocol"
  | E_server -> "server"

let write_latency b l =
  Codec.write_string b l.l_name;
  Codec.write_uint b l.l_count;
  write_float b l.l_mean;
  write_float b l.l_p50;
  write_float b l.l_p95;
  write_float b l.l_p99;
  write_float b l.l_max

let read_latency r =
  let l_name = Codec.read_string r in
  let l_count = Codec.read_uint r in
  let l_mean = read_float r in
  let l_p50 = read_float r in
  let l_p95 = read_float r in
  let l_p99 = read_float r in
  let l_max = read_float r in
  { l_name; l_count; l_mean; l_p50; l_p95; l_p99; l_max }

let encode_resp env resp =
  let b = Buffer.create 64 in
  write_envelope b env;
  (match resp with
  | Pong -> Codec.write_uint b 0
  | Opened { version; readers; instances } ->
    Codec.write_uint b 1;
    Codec.write_uint b version;
    Codec.write_uint b readers;
    Codec.write_uint b instances
  | Value { version; value } ->
    Codec.write_uint b 2;
    Codec.write_uint b version;
    Codec.write_value b value
  | Traversed { version; visited; total } ->
    Codec.write_uint b 3;
    Codec.write_uint b version;
    Codec.write_uint b visited;
    Codec.write_value b total
  | Committed { version; created } ->
    Codec.write_uint b 4;
    Codec.write_uint b version;
    Codec.write_uint b (List.length created);
    List.iter (Codec.write_uint b) created
  | Stats_reply { counters; latencies } ->
    Codec.write_uint b 5;
    Codec.write_uint b (List.length counters);
    List.iter
      (fun (name, v) ->
        Codec.write_string b name;
        Codec.write_int b v)
      counters;
    Codec.write_uint b (List.length latencies);
    List.iter (write_latency b) latencies
  | Metrics_reply text ->
    Codec.write_uint b 7;
    Codec.write_string b text
  | Error { code; message } ->
    Codec.write_uint b 6;
    Codec.write_uint b (error_code_tag code);
    Codec.write_string b message);
  Buffer.contents b

let decode_resp =
  guarded "response" (fun r ->
      let env = read_envelope r in
      let resp =
        match Codec.read_uint r with
        | 0 -> Pong
        | 1 ->
          let version = Codec.read_uint r in
          let readers = Codec.read_uint r in
          let instances = Codec.read_uint r in
          Opened { version; readers; instances }
        | 2 ->
          let version = Codec.read_uint r in
          let value = Codec.read_value r in
          Value { version; value }
        | 3 ->
          let version = Codec.read_uint r in
          let visited = Codec.read_uint r in
          let total = Codec.read_value r in
          Traversed { version; visited; total }
        | 4 ->
          let version = Codec.read_uint r in
          let n = Codec.read_uint r in
          let created = List.init n (fun _ -> Codec.read_uint r) in
          Committed { version; created }
        | 5 ->
          let n = Codec.read_uint r in
          let counters =
            List.init n (fun _ ->
                let name = Codec.read_string r in
                let v = Codec.read_int r in
                (name, v))
          in
          let m = Codec.read_uint r in
          let latencies = List.init m (fun _ -> read_latency r) in
          Stats_reply { counters; latencies }
        | 6 ->
          let code = error_code_of_tag (Codec.read_uint r) in
          let message = Codec.read_string r in
          Error { code; message }
        | 7 -> Metrics_reply (Codec.read_string r)
        | tag -> malformed "response: unknown tag %d" tag
      in
      (env, resp))

let verb_name = function
  | Ping -> "ping"
  | Open_session -> "open"
  | Read _ -> "read"
  | Traverse _ -> "traverse"
  | Commit _ -> "commit"
  | Stats -> "stats"
  | Metrics -> "metrics"

let error_of_exn = function
  | Errors.Unknown m -> Error { code = E_unknown; message = m }
  | Errors.Type_error m -> Error { code = E_type; message = m }
  | Errors.Constraint_violation { instance; attr; message } ->
    Error
      {
        code = E_constraint;
        message = Printf.sprintf "instance %d, %s: %s" instance attr message;
      }
  | Errors.Cardinality m -> Error { code = E_cardinality; message = m }
  | Errors.Cycle cycle ->
    Error
      {
        code = E_cycle;
        message =
          String.concat " -> "
            (List.map (fun (id, attr) -> Printf.sprintf "%d.%s" id attr) cycle);
      }
  | Malformed m -> Error { code = E_protocol; message = m }
  | e -> Error { code = E_server; message = Printexc.to_string e }
