(* Log-shipping wire protocol: CRC-wrapped tagged messages over Codec
   primitives.  See the interface for the cursor/chain model. *)

module Codec = Cactis.Codec
module Wal = Cactis_storage.Wal

type cursor = { gen : int; records : int }

let cursor_zero = { gen = 0; records = 0 }

let cursor_compare a b =
  match compare a.gen b.gen with 0 -> compare a.records b.records | c -> c

let cursor_to_string c = Printf.sprintf "(gen %d, record %d)" c.gen c.records

type entry = {
  e_seq : int;
  e_prev : cursor;
  e_cursor : cursor;
  e_record : string;
}

exception Corrupt of { context : string; message : string }

let corrupt context fmt = Printf.ksprintf (fun message -> raise (Corrupt { context; message })) fmt

type client_msg =
  | Hello of { cursor : cursor; schema_version : int }
  | Ack of { seq : int; cursor : cursor; lag_us : int }

type server_msg =
  | Refuse of { code : string; message : string }
  | Snap_begin of { generation : int; schema_version : int; size : int }
  | Snap_chunk of { last : bool; data : string }
  | Batch of { sent_us : int; entries : entry list }
  | Mark of { seq : int; prev : cursor; generation : int }
  | Heartbeat of { head_seq : int; cursor : cursor; sent_us : int }

let snap_chunk_bytes = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Body encoding (tag byte + Codec primitives)                         *)

let write_cursor b c =
  Codec.write_uint b c.gen;
  Codec.write_uint b c.records

let read_cursor r =
  let gen = Codec.read_uint r in
  let records = Codec.read_uint r in
  { gen; records }

let tag_hello = 1
let tag_ack = 2
let tag_refuse = 10
let tag_snap_begin = 11
let tag_snap_chunk = 12
let tag_batch = 13
let tag_mark = 14
let tag_heartbeat = 15

let encode_client_body m =
  let b = Buffer.create 32 in
  (match m with
  | Hello { cursor; schema_version } ->
    Buffer.add_char b (Char.chr tag_hello);
    write_cursor b cursor;
    Codec.write_uint b schema_version
  | Ack { seq; cursor; lag_us } ->
    Buffer.add_char b (Char.chr tag_ack);
    (* seq -1 means "nothing applied yet" (an ack sent before any data,
       e.g. for the handshake heartbeat): shift by one for the uint. *)
    Codec.write_uint b (seq + 1);
    write_cursor b cursor;
    Codec.write_uint b lag_us);
  Buffer.contents b

let encode_server_body m =
  let b = Buffer.create 64 in
  (match m with
  | Refuse { code; message } ->
    Buffer.add_char b (Char.chr tag_refuse);
    Codec.write_string b code;
    Codec.write_string b message
  | Snap_begin { generation; schema_version; size } ->
    Buffer.add_char b (Char.chr tag_snap_begin);
    Codec.write_uint b generation;
    Codec.write_uint b schema_version;
    Codec.write_uint b size
  | Snap_chunk { last; data } ->
    Buffer.add_char b (Char.chr tag_snap_chunk);
    Codec.write_uint b (if last then 1 else 0);
    Codec.write_string b data
  | Batch { sent_us; entries } ->
    Buffer.add_char b (Char.chr tag_batch);
    Codec.write_uint b sent_us;
    Codec.write_uint b (List.length entries);
    List.iter
      (fun e ->
        Codec.write_uint b e.e_seq;
        write_cursor b e.e_prev;
        write_cursor b e.e_cursor;
        (* The record travels with its own CRC — the same checksum the
           WAL frames it with — so a flip inside the payload is caught
           even if the outer message checksum were ever skipped. *)
        Codec.write_uint b (Int32.to_int (Wal.crc32 e.e_record) land 0xFFFFFFFF);
        Codec.write_string b e.e_record)
      entries
  | Mark { seq; prev; generation } ->
    Buffer.add_char b (Char.chr tag_mark);
    Codec.write_uint b seq;
    write_cursor b prev;
    Codec.write_uint b generation
  | Heartbeat { head_seq; cursor; sent_us } ->
    Buffer.add_char b (Char.chr tag_heartbeat);
    Codec.write_uint b head_seq;
    write_cursor b cursor;
    Codec.write_uint b sent_us);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* CRC wrapper: [u32 LE crc32(body)][body].  Any bit flip or           *)
(* truncation anywhere in a frame decodes to a typed Corrupt.          *)

let wrap body =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Wal.crc32 body);
  Bytes.to_string b ^ body

let unwrap ~context s =
  if String.length s < 5 then corrupt context "frame too short (%d bytes)" (String.length s);
  let stored = String.get_int32_le s 0 in
  let body = String.sub s 4 (String.length s - 4) in
  if not (Int32.equal (Wal.crc32 body) stored) then
    corrupt context "message CRC mismatch (stored %08lx, computed %08lx)" stored
      (Wal.crc32 body);
  body

let encode_client m = wrap (encode_client_body m)
let encode_server m = wrap (encode_server_body m)

(* Decoding wraps every Codec failure — wrong varint, short string —
   into Corrupt, so a caller never has to know the primitives leaked. *)
let decoding context f =
  try
    let v = f () in
    v
  with
  | Codec.Error { offset; message } -> corrupt context "at byte %d: %s" offset message
  | Invalid_argument m -> corrupt context "%s" m

let finish ~context r v =
  if not (Codec.at_end r) then
    corrupt context "trailing bytes after message (at %d of %d)" r.Codec.pos
      (String.length r.Codec.src);
  v

let decode_client s =
  let context = "client" in
  let body = unwrap ~context s in
  decoding context (fun () ->
      let r = Codec.reader body in
      let tag = Codec.read_uint r in
      let m =
        if tag = tag_hello then begin
          let cursor = read_cursor r in
          let schema_version = Codec.read_uint r in
          Hello { cursor; schema_version }
        end
        else if tag = tag_ack then begin
          let seq = Codec.read_uint r - 1 in
          let cursor = read_cursor r in
          let lag_us = Codec.read_uint r in
          Ack { seq; cursor; lag_us }
        end
        else corrupt context "unknown client message tag %d" tag
      in
      finish ~context r m)

let decode_server s =
  let context = "server" in
  let body = unwrap ~context s in
  decoding context (fun () ->
      let r = Codec.reader body in
      let tag = Codec.read_uint r in
      let m =
        if tag = tag_refuse then begin
          let code = Codec.read_string r in
          let message = Codec.read_string r in
          Refuse { code; message }
        end
        else if tag = tag_snap_begin then begin
          let generation = Codec.read_uint r in
          let schema_version = Codec.read_uint r in
          let size = Codec.read_uint r in
          Snap_begin { generation; schema_version; size }
        end
        else if tag = tag_snap_chunk then begin
          let last = Codec.read_uint r <> 0 in
          let data = Codec.read_string r in
          Snap_chunk { last; data }
        end
        else if tag = tag_batch then begin
          let sent_us = Codec.read_uint r in
          let n = Codec.read_uint r in
          let entries = ref [] in
          for _ = 1 to n do
            let e_seq = Codec.read_uint r in
            let e_prev = read_cursor r in
            let e_cursor = read_cursor r in
            let crc = Codec.read_uint r in
            let e_record = Codec.read_string r in
            let actual = Int32.to_int (Wal.crc32 e_record) land 0xFFFFFFFF in
            if actual <> crc then
              corrupt context "record CRC mismatch at seq %d (stored %08x, computed %08x)"
                e_seq crc actual;
            entries := { e_seq; e_prev; e_cursor; e_record } :: !entries
          done;
          Batch { sent_us; entries = List.rev !entries }
        end
        else if tag = tag_mark then begin
          let seq = Codec.read_uint r in
          let prev = read_cursor r in
          let generation = Codec.read_uint r in
          Mark { seq; prev; generation }
        end
        else if tag = tag_heartbeat then begin
          let head_seq = Codec.read_uint r in
          let cursor = read_cursor r in
          let sent_us = Codec.read_uint r in
          Heartbeat { head_seq; cursor; sent_us }
        end
        else corrupt context "unknown server message tag %d" tag
      in
      finish ~context r m)
