(** Machine-applicable lint fixes.

    The analyzer attaches a [fix] directive to diagnostics it knows how
    to repair mechanically ({!Cactis_analysis.Diag.t.fix}):

    - [drop-rule:TYPE.ATTR] — delete a dead derived rule;
    - [declare-attr:TYPE.ATTR:VALUETYPE] — declare a missing intrinsic
      attribute (dangling transmission target).

    [cactis lint --fix] parses these, patches the AST, and re-emits the
    schema through {!Pretty} — so a fix round-trips through the parser
    like hand-written DDL. *)

type directive =
  | Drop_rule of { type_name : string; attr : string }
  | Declare_attr of { type_name : string; attr : string; ty : Ast.value_type }

val parse_directive : string -> directive option
val directive_to_string : directive -> string

(** [apply items d] — [None] when the directive touched nothing (its
    target type or rule is not declared in this file). *)
val apply : Ast.schema -> directive -> Ast.schema option

(** Fix directives carried by a diagnostic list, parse failures dropped. *)
val fixes : Cactis_analysis.Diag.t list -> directive list

(** [run ~lint items] applies fixes to a fixpoint: lint, apply every
    directive, re-lint (dropping a dead rule can orphan the rules it
    read), until a round applies nothing or [max_rounds] is hit.
    Returns the patched AST and the directives applied, in order. *)
val run :
  ?max_rounds:int ->
  lint:(Ast.schema -> Cactis_analysis.Diag.t list) ->
  Ast.schema ->
  Ast.schema * directive list
