(** Exponentially decaying averages.

    Section 2.3 of the paper tags each relationship with "a decaying
    average of the number of instances visited (or alternately the actual
    amount of disk I/O incurred) when the value transmitted across the
    relationship was requested in the past", and uses these tags as the
    self-adaptive predictor of the disk cost of pending traversal
    processes.  A worst-case statistic gathered at cluster time serves as
    the initial estimate. *)

type t

(** [create ?alpha ~initial ()] makes an average seeded with the
    worst-case estimate [initial].  [alpha] (default 0.25) is the weight
    given to each new observation. *)
val create : ?alpha:float -> initial:float -> unit -> t

(** [observe t x] folds the observation [x] into the average. *)
val observe : t -> float -> unit

(** Current estimate. *)
val value : t -> float

(** Number of observations folded in so far. *)
val observations : t -> int

(** [reset t ~initial] re-seeds the estimate (used when re-clustering
    refreshes worst-case statistics). *)
val reset : t -> initial:float -> unit

val pp : Format.formatter -> t -> unit
