lib/cc/workload.ml: Array Cactis Cactis_util List
