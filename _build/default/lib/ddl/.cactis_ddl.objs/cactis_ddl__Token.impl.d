lib/ddl/token.ml: Printf
