examples/software_env.ml: Cactis Cactis_apps Cactis_ddl List Printf String
