type op =
  | Set_intrinsic of { id : int; attr : string; old_value : Value.t; new_value : Value.t }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }
  | Create of { id : int; type_name : string }
  | Delete of { id : int; type_name : string; intrinsics : (string * Value.t) list }

type delta = {
  ops : op list;
  label : string option;
}

let inverse_op = function
  | Set_intrinsic { id; attr; old_value; new_value } ->
    Set_intrinsic { id; attr; old_value = new_value; new_value = old_value }
  | Link { from_id; rel; to_id } -> Unlink { from_id; rel; to_id }
  | Unlink { from_id; rel; to_id } -> Link { from_id; rel; to_id }
  | Create { id; type_name } -> Delete { id; type_name; intrinsics = [] }
  | Delete { id; type_name; intrinsics = _ } ->
    (* The inverse of deletion is re-creation; intrinsic values are
       restored by the surrounding replay (see Db.apply_inverse), which
       has access to the recorded snapshot. *)
    Create { id; type_name }

let inverse d = { ops = List.rev_map inverse_op d.ops; label = d.label }

let size d = List.length d.ops

let pp_op fmt = function
  | Set_intrinsic { id; attr; old_value; new_value } ->
    Format.fprintf fmt "set %d.%s: %a -> %a" id attr Value.pp old_value Value.pp new_value
  | Link { from_id; rel; to_id } -> Format.fprintf fmt "link %d -[%s]-> %d" from_id rel to_id
  | Unlink { from_id; rel; to_id } -> Format.fprintf fmt "unlink %d -[%s]-> %d" from_id rel to_id
  | Create { id; type_name } -> Format.fprintf fmt "create %d : %s" id type_name
  | Delete { id; type_name; intrinsics } ->
    Format.fprintf fmt "delete %d : %s (%d intrinsics)" id type_name (List.length intrinsics)

let pp fmt d =
  Format.fprintf fmt "@[<v>delta%s (%d ops):@,%a@]"
    (match d.label with Some l -> " " ^ l | None -> "")
    (size d)
    (Format.pp_print_list pp_op)
    d.ops
