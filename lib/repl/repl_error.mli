(** Typed replication failures.

    Every way a replica can stop matching its writer has a name here,
    so a follower either converges or fails with one of these — never a
    silently divergent replica.  The split mirrors what the follower
    should do next:

    - {!Refused} — the writer rejected the session at handshake
      (follower ahead of a stale writer, unknown protocol...).  Fatal:
      reconnecting cannot help, a human has to decide which timeline
      wins.
    - {!Corrupt} — bytes on the wire failed a CRC or framing check.
      The connection is poisoned but the replica state is intact:
      drop the connection and resync from the last applied cursor.
    - {!Gap} — a record arrived whose predecessor cursor is not the
      replica's cursor (reordered, dropped or duplicated-beyond-skip
      stream).  Same recovery as [Corrupt]: reconnect and resync.
    - {!Diverged} — the periodic {!Cactis.Integrity} drift check found
      structural violations in the replica.  Fatal for this replica:
      re-bootstrap from a fresh snapshot.
    - {!Transport} — the socket died or timed out (heartbeat silence).
      Reconnect with backoff. *)

(** Stable refusal codes carried on the wire. *)
val code_follower_ahead : string

val code_generation_mismatch : string
val code_protocol : string

exception Refused of { code : string; message : string }

(** The {e same} exception as {!Repl_proto.Corrupt} (rebound, not
    redeclared): raised by the codec, caught through this module like
    every other replication failure. *)
exception Corrupt of { context : string; message : string }

exception
  Gap of {
    expected : Repl_proto.cursor;  (** the replica's cursor *)
    got : Repl_proto.cursor;  (** the record's predecessor cursor *)
    seq : int;  (** stream sequence number of the offending item *)
  }

exception Diverged of { violations : string list }
exception Transport of string

(** One line, machine-grepped by tests and log scrapers. *)
val to_string : exn -> string

(** Is this error worth reconnecting after?  [Refused] and [Diverged]
    are not — retrying cannot change the verdict. *)
val recoverable : exn -> bool
