lib/ddl/parser.mli: Ast
