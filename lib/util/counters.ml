type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (cell t name)
let add t name n = cell t name := !(cell t name) + n
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  (* Union of both name sets: a counter present only in [before] (e.g.
     dropped by a reset between snapshots) reports its negative delta
     instead of silently disappearing. *)
  let deltas = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace deltas name (-v)) before;
  List.iter
    (fun (name, v) ->
      let b = Option.value ~default:0 (Hashtbl.find_opt deltas name) in
      Hashtbl.replace deltas name (b + v))
    after;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) deltas []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  let entries = snapshot t in
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@," name v) entries;
  Format.fprintf fmt "@]"
