(** Abstract-interpretation cost pass: per-attribute evaluation-cost
    intervals over the dependency graph.

    For every attribute the pass computes

    - a {e direct} interval — the cost of one rule evaluation with all
      sources fresh: the rule's abstract operation count
      ({!View.attr.a_ops}) plus one unit per fetched source value,
      with relationship fetches multiplied by the fan-out bound of the
      relationship ([one] caps at 1; [many] is statically unbounded);
    - a {e cumulative} interval — the worst case where every transitive
      source must itself be recomputed, folded over the SCC
      condensation of the dependency graph in topological order.
      Cyclic SCCs use the convergence pass ({!Fixpoint}): a convergent
      SCC's upper bound is one round of the component times its sweep
      coefficient; a divergent SCC is unbounded above.

    When a live store is attached ([?store] / [?db]), static fan-out
    bounds sharpen to the measured min/max over the store's instances,
    and an expected-I/O estimate per evaluation is added: mean fan-out
    times the links' decaying-average block-cost tags (§2.3).

    This is the cost-model substrate for the planned query planner:
    [cactis analyze --json] emits it as stable JSON (attributes sorted
    by [(type, attr)], fixed-precision numbers). *)

type interval = {
  lo : float;
  hi : float option;  (** [None] = unbounded above *)
}

type attr_cost = {
  ac_type : string;
  ac_attr : string;
  ac_shape : Cactis.Schema.rule_shape option;
  ac_direct : interval;
  ac_cumulative : interval;
  ac_io : float option;  (** expected blocks per evaluation; [None] without a store *)
}

type t = {
  per_attr : attr_cost list;  (** sorted by [(type, attr)] *)
  per_type : (string * interval) list;  (** cumulative rollup per type, sorted *)
  total : interval;
  convergent_sccs : int;
  divergent_sccs : int;
}

val analyze : ?store:Cactis.Store.t -> View.t -> t
val analyze_schema : ?db:Cactis.Db.t -> Cactis.Schema.t -> t

val interval_to_string : interval -> string

(** Stable JSON (used by [make analyze] golden files): one [schema]
    rollup object, [types] and [attrs] arrays in sorted order. *)
val to_json : t -> string

(** Human-readable table, one derived attribute per line. *)
val render : t -> string
