lib/core/engine.mli: Sched Store Value
