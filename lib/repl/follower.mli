(** Follower-side streaming client: connect to a {!Publisher}, obtain a
    replica database (snapshot bootstrap or log resume), and keep it
    converged with the writer.

    Lifecycle: {!create} is passive; {!sync} blocks through the
    handshake until the replica database exists (loaded from a shipped
    snapshot, or created fresh when the writer resumes the log from the
    follower's cursor) and returns it; {!run} then streams batches into
    it until {!stop}, a fatal error, or — with [~until_synced:true] —
    the moment the replica has applied everything the writer has
    shipped.

    Error handling follows {!Repl_error.recoverable}: transport drops,
    heartbeat silence, corrupt frames and stream gaps tear down the
    connection and reconnect with exponential backoff (resuming from
    the replica's own cursor, so nothing is applied twice); a {!Refuse}
    from the writer or an {!Cactis.Integrity} divergence stops the
    follower with the error recorded in {!status}.

    Single-threaded: {!sync}/{!run} block their caller ({!stop} is safe
    from another domain).  Metrics ([repl.batches], [repl.bootstraps],
    [repl.reconnects], lag histograms...) are recorded against the
    replica database's own counters, so a server wrapped around the
    replica exposes them over [/metrics] like any other [db.*] series. *)

type config

(** [config ()] — 5 s heartbeat timeout (reads idle longer reconnect),
    backoff 0.1 s doubling to 5 s, {!Cactis.Integrity} drift check every
    8 batches ([check_every = 0] disables — required when the database
    is concurrently served), unlimited reconnect attempts
    ([max_attempts = 0]). *)
val config :
  ?heartbeat_timeout_s:float ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  ?check_every:int ->
  ?max_attempts:int ->
  unit ->
  config

type t

type status =
  | Idle  (** created, never connected *)
  | Syncing  (** handshake / bootstrap in progress *)
  | Streaming  (** applying the live stream *)
  | Stopped  (** {!stop} was called *)
  | Failed of string  (** fatal error; see {!Repl_error.to_string} *)

(** [create ~make_schema ~host ~port ()] — [make_schema] builds the
    baseline schema a shipped snapshot's schema deltas replay onto
    (link the DDL front end and install the rule compiler first, as for
    {!Cactis.Persist.recover}). *)
val create :
  ?config:config -> make_schema:(unit -> Cactis.Schema.t) -> host:string -> port:int -> unit -> t

(** Blocking initial sync; returns the replica database.  Idempotent —
    returns the existing database if already synced.
    @raise Repl_error.Refused when the writer rejects the session
    @raise Repl_error.Transport when the writer cannot be reached *)
val sync : t -> Cactis.Db.t

(** [set_apply t f] — route every subsequent record through [f] instead
    of applying directly (the read-only server mode routes records
    through the server's writer domain).  While an override is active a
    mid-run re-bootstrap demand from the writer is a fatal error — the
    database is externally owned and cannot be swapped out — and drift
    checks are skipped regardless of [check_every]. *)
val set_apply : t -> (string -> unit) option -> unit

(** Stream until {!stop} or a fatal error ([~until_synced:true]: return
    as soon as the replica has caught up with the writer's shipped
    head).  Calls {!sync} first if needed.  Recoverable connection
    errors reconnect with backoff; when [max_attempts] is exhausted the
    follower fails with the last error. *)
val run : ?until_synced:bool -> t -> unit

(** Interrupt {!sync}/{!run} from another domain.  Idempotent. *)
val stop : t -> unit

val status : t -> status
val db : t -> Cactis.Db.t option
val cursor : t -> Repl_proto.cursor

(** Highest stream sequence applied, and the writer's announced head
    ([-1] before any traffic). *)
val applied_seq : t -> int

val head_seq : t -> int

(** Replica has applied everything the writer has announced. *)
val synced : t -> bool
