lib/ddl/lexer.mli: Token
