lib/ddl/query.mli: Cactis
