(* Write-ahead log: an append-only file of CRC-framed binary records.

   The log is payload-agnostic — Cactis commits encode transaction
   deltas into records upstream (lib/core), this module only guarantees
   that whatever prefix of records survives a crash can be identified
   exactly.  Framing per record:

     [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]

   preceded by a fixed file header.  A reader walks records until the
   file ends cleanly or a record is torn (truncated frame, impossible
   length, CRC mismatch); everything from the first bad frame on is
   discarded, so recovery lands on the last durably completed append. *)

let magic = "CWAL1\n"
let header_len = String.length magic

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let ix = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(ix) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type read_result = {
  records : string list;  (** intact records, oldest first *)
  valid_end : int;  (** byte offset where the intact prefix ends *)
  torn : bool;  (** true if trailing bytes were discarded *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let u32_le s pos =
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let read path =
  if not (Sys.file_exists path) then { records = []; valid_end = 0; torn = false }
  else begin
    let s = read_file path in
    let len = String.length s in
    if len < header_len || not (String.equal (String.sub s 0 header_len) magic) then
      { records = []; valid_end = 0; torn = len > 0 }
    else begin
      let records = ref [] in
      let pos = ref header_len in
      let torn = ref false in
      let continue = ref true in
      while !continue do
        if !pos = len then continue := false
        else if len - !pos < 8 then begin
          torn := true;
          continue := false
        end
        else begin
          let plen = u32_le s !pos in
          let crc = Int32.of_int (u32_le s (!pos + 4)) in
          if plen > len - !pos - 8 then begin
            torn := true;
            continue := false
          end
          else begin
            let payload = String.sub s (!pos + 8) plen in
            if not (Int32.equal (crc32 payload) crc) then begin
              torn := true;
              continue := false
            end
            else begin
              records := payload :: !records;
              pos := !pos + 8 + plen
            end
          end
        end
      done;
      { records = List.rev !records; valid_end = !pos; torn = !torn }
    end
  end

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  oc : out_channel;
  sync_every : int;  (* fsync after this many appends; 0 = only explicit *)
  mutable pending : int;  (* appends since the last fsync *)
  mutable appends : int;
  mutable appended_bytes : int;  (* frame bytes written through this writer *)
}

let fsync w =
  flush w.oc;
  Unix.fsync w.fd

let open_writer ?(sync_every = 1) ?truncate_at path =
  let fresh = not (Sys.file_exists path) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (match truncate_at with
  | Some n when not fresh -> Unix.ftruncate fd n
  | Some _ | None -> ());
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  let w = { path; fd; oc; sync_every; pending = 0; appends = 0; appended_bytes = 0 } in
  if fresh || Unix.lseek fd 0 Unix.SEEK_CUR = 0 then begin
    output_string oc magic;
    fsync w
  end;
  w

let append w payload =
  let plen = String.length payload in
  let frame = Bytes.create 8 in
  Bytes.set_int32_le frame 0 (Int32.of_int plen);
  Bytes.set_int32_le frame 4 (crc32 payload);
  output_bytes w.oc frame;
  output_string w.oc payload;
  w.appends <- w.appends + 1;
  w.appended_bytes <- w.appended_bytes + 8 + plen;
  w.pending <- w.pending + 1;
  if w.sync_every > 0 && w.pending >= w.sync_every then begin
    fsync w;
    w.pending <- 0
  end

let sync w =
  fsync w;
  w.pending <- 0

(* Truncate back to an empty log (after a checkpoint made the records
   redundant). *)
let reset w =
  flush w.oc;
  Unix.ftruncate w.fd header_len;
  ignore (Unix.lseek w.fd 0 Unix.SEEK_END);
  Unix.fsync w.fd;
  w.pending <- 0

let close w =
  fsync w;
  close_out w.oc

let path w = w.path
let appends w = w.appends
let appended_bytes w = w.appended_bytes

(* ------------------------------------------------------------------ *)
(* Durable whole-file writes (checkpoints)                             *)

(* Write-to-temp, fsync, rename: a crash leaves either the old file or
   the new one, never a torn mixture. *)
let write_file_durable path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  (try
     output_string oc contents;
     flush oc;
     Unix.fsync fd;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path
