(** Database schema: object classes, attributes, relationships, attribute
    evaluation rules, constraints and predicate-defined subtypes (§2.1).

    The schema is {e extensible at run time} — new types, attributes and
    subtypes may be added while the database is live, which the paper
    treats as essential for software environments (adding new tools
    without disturbing existing ones, §3).

    A derived attribute's rule declares its {e sources}: the attributes
    of the same instance ([Self]) and the attributes whose values are
    transmitted across named relationships ([Rel]) that the rule reads.
    Declared sources give the engine the dependency edges of the
    attributed graph; the compute function then receives exactly those
    values through an {!env}. *)

type source =
  | Self of string  (** an attribute of this instance *)
  | Rel of string * string
      (** [Rel (r, a)]: attribute [a] transmitted across relationship [r]
          from every instance currently related through [r] *)

(** Evaluation environment handed to a rule's compute function. *)
type env = {
  self_value : string -> Value.t;  (** value of one of the declared [Self] sources *)
  related_values : string -> string -> Value.t list;
      (** [related_values r a]: one value per instance related via [r],
          in link order; the declared source must be [Rel (r, a)] *)
}

type rule = {
  sources : source list;
  compute : env -> Value.t;
}

(** Monotone-lattice shape of a derived rule — the input of the [Far86]
    convergence test.  A dependency cycle whose every rule is monotone
    over a bounded lattice converges under fixed-point iteration; the
    analyzer classifies each potential cycle with these shapes and the
    engine's opt-in fixed-point mode ({!Db.set_fixed_point}) trusts
    only cycles whose every member carries a bounded shape.  Compute
    functions are opaque closures, so shapes arrive separately: inferred
    syntactically from DDL expressions, or promised explicitly via
    {!declare_rule_shape}.  An undeclared shape means "assume
    divergent". *)
type rule_shape =
  | Shape_min  (** monotone decreasing toward the least contribution *)
  | Shape_max  (** monotone increasing toward the greatest contribution *)
  | Shape_bool  (** and/or/all/any closure over the two-point lattice *)
  | Shape_count  (** structure-only: fixed while links are fixed *)
  | Shape_lattice of { height : int; bottom : Value.t }
      (** monotone over a declared lattice of this height (e.g. subset
          lattices: height = universe size), iterated up from [bottom]
          (the value fixed-point mode seeds the slot with) *)
  | Shape_unbounded  (** e.g. sums: each iteration can keep growing *)

(** ["min"], ["lattice(12)"], ... — stable slugs for diagnostics and
    JSON. *)
val shape_name : rule_shape -> string

(** Every shape but [Shape_unbounded]. *)
val shape_bounded : rule_shape -> bool

type attr_kind =
  | Intrinsic of Value.t  (** payload = default value for new instances *)
  | Derived of rule

(** Constraint attached to a (boolean, derived) attribute: when the
    attribute evaluates to [false] the transaction fails, unless the
    named recovery action (registered on the database) repairs it. *)
type constraint_spec = {
  message : string;
  recovery : string option;  (** name of a registered recovery action *)
}

type attr_def = {
  attr_name : string;
  kind : attr_kind;
  constraint_ : constraint_spec option;
}

type cardinality = One | Multi

(** Plug/Socket is the paper's wiring vocabulary (Figure 1 declares
    [milestone_dep Multi Socket] / [Multi Plug]); it documents which side
    transmits values outward but both sides are navigable. *)
type polarity = Plug | Socket

type rel_def = {
  rel_name : string;
  target : string;  (** target type name *)
  inverse : string;  (** relationship on [target] pointing back *)
  card : cardinality;
  polarity : polarity;
}

(** Subtype defined by a predicate over the parent type's attributes
    (§2.1: "A Car Buff might be defined as the predicate which calculates
    all Persons who own more than three cars").  Membership is maintained
    incrementally as a hidden derived attribute; [extra_attrs] become
    available on members. *)
type subtype_def = {
  sub_name : string;
  parent : string;
  predicate : rule;  (** must compute a [Bool] *)
  extra_attrs : attr_def list;
}

type type_def

type t

(** {1 Compiled layouts}

    Every type compiles to a {!layout}: a dense assignment of attribute
    names to {e slot indexes} and relationship names to {e link indexes},
    plus dependency tables with every name resolved to indexes and
    interned symbols (see {!Cactis_util.Symbol}).  Instances store their
    slots in flat arrays addressed by these indexes, and the engine's
    mark/evaluate traversals run entirely on ints.

    Indexes are {e stable}: declaration orders grow at the head and
    shrink only by retracting the newest declaration (see
    {!retract_attr} and friends — the shape undo needs), so a DDL
    change never renumbers surviving slots — instances extend their
    arrays lazily and keep their layout pointer forever.  The layout
    record for a type is allocated once; its contents are recompiled in
    place when the schema version moves (checked by {!refresh_layout},
    a single int comparison when nothing changed).

    Layout contents are read-only outside this module. *)

type layout = {
  lay_schema : t;
  lay_type : string;
  mutable lay_slots : slot_info array;  (** indexed by slot index *)
  mutable lay_links : link_info array;  (** indexed by link index *)
  lay_slot_ix : (string, int) Hashtbl.t;
  lay_slot_ix_sym : (int, int) Hashtbl.t;  (** symbol -> slot index *)
  lay_link_ix : (string, int) Hashtbl.t;
}

and slot_info = {
  si_name : string;
  si_sym : int;  (** interned [si_name] *)
  si_def : attr_def;
  si_derived : bool;
  si_rule : compiled_rule option;  (** [Some] iff derived *)
  si_constrained : bool;
  si_self_deps : int array;
      (** slot indexes (same type) of attributes whose rules read this one *)
  si_cross_deps : cross_dep array;
      (** dependents across each relationship, in (rel, target-attr)
          declaration order *)
}

and cross_dep = {
  xd_link : int;  (** link index (this type) to traverse *)
  xd_rel_sym : int;  (** interned relationship name, for usage stats *)
  xd_slot : int;  (** dependent's slot index on the target type *)
  xd_sym : int;  (** dependent's interned attribute name *)
}

and link_info = {
  li_name : string;
  li_sym : int;
  li_def : rel_def;
  li_inverse_ix : int;
      (** link index of the inverse on the target type; -1 if undeclared *)
  li_rel_deps : int array;
      (** slot indexes (this type) of attributes reading across this rel *)
}

and compiled_rule = {
  cr_rule : rule;
  cr_sources : compiled_source array;  (** in declared source order *)
}

and compiled_source =
  | C_self of { s_name : string; s_slot : int }
  | C_rel of {
      r_rel : string;  (** declared relationship *)
      r_attr : string;  (** requested (pre-export-resolution) name *)
      r_link : int;  (** link index of [r_rel] *)
      r_rel_sym : int;
      r_target : string;  (** target type name *)
      r_slot : int;
          (** resolved slot index on the target; -1 when the target type
              does not (yet) declare the transmitted attribute *)
      r_sym : int;  (** interned resolved attribute name *)
    }

(** [layout t type_name] — the (up-to-date) compiled layout.
    @raise Errors.Unknown for unknown types. *)
val layout : t -> string -> layout

(** [refresh_layout lay] recompiles the layout's schema if any DDL
    happened since the last compile; a no-op (one int compare)
    otherwise. *)
val refresh_layout : layout -> unit

(** Name/symbol resolution against an (auto-refreshed) layout. *)
val slot_index : layout -> string -> int option

val slot_index_sym : layout -> int -> int option
val link_index : layout -> string -> int option

val create : unit -> t

(** {1 Declaration} *)

(** [add_type t name] declares a fresh empty object class.
    @raise Errors.Type_error if [name] already exists. *)
val add_type : t -> string -> unit

(** [add_attr t ~type_name def] adds an attribute to an existing type.
    @raise Errors.Unknown if the type does not exist.
    @raise Errors.Type_error if the attribute already exists, if a
    constraint is attached to an intrinsic attribute, or if a declared
    source names an unknown attribute/relationship. *)
val add_attr : t -> type_name:string -> attr_def -> unit

(** [add_rel t ~type_name def] declares one end of a relationship.  Both
    ends must be declared (see {!declare_relationship} for the common
    paired form).
    @raise Errors.Type_error if the relationship already exists. *)
val add_rel : t -> type_name:string -> rel_def -> unit

(** [declare_relationship t ~from_type ~rel ~to_type ~inverse ~card
    ~inverse_card] declares both ends at once, wiring the inverse names;
    the [from] end is the Plug side. *)
val declare_relationship :
  t ->
  from_type:string ->
  rel:string ->
  to_type:string ->
  inverse:string ->
  card:cardinality ->
  inverse_card:cardinality ->
  unit

(** [add_subtype t def] declares a predicate subtype of an existing
    parent type.  The membership attribute and the extra attributes are
    installed on the parent type (extra attributes are meaningful on
    members; see {!Db.in_subtype}). *)
val add_subtype : t -> subtype_def -> unit

(** [add_export t ~type_name ~rel ~export ~attr] declares that instances
    of [type_name] transmit their attribute [attr] across relationship
    [rel] under the name [export] — Figure 1's
    [consists_of exp_time = exp_compl].  Readers on the other side
    reference [Rel (inverse, export)].
    @raise Errors.Type_error on duplicates;
    @raise Errors.Unknown for unknown rel/attr. *)
val add_export : t -> type_name:string -> rel:string -> export:string -> attr:string -> unit

(** {1 Retraction}

    Schema deltas are undoable ({!Txn.schema_change}): the inverse of a
    declaration is a retraction.  Because undo/checkout replay deltas in
    exact reverse order, a declaration is only ever retracted while it
    is still the {e newest} of its kind; each retraction below enforces
    that with a typed error, which keeps surviving slot/link indexes
    stable.  Retracting a type requires all its instances to be gone —
    guaranteed by the same reverse-replay discipline. *)

(** @raise Errors.Type_error unless [name] is the newest declared type. *)
val retract_type : t -> string -> unit

(** @raise Errors.Type_error unless the attribute is the type's newest. *)
val retract_attr : t -> type_name:string -> string -> unit

(** @raise Errors.Type_error unless the relationship is the type's
    newest. *)
val retract_rel : t -> type_name:string -> string -> unit

(** @raise Errors.Type_error when the transmission is not declared. *)
val retract_export : t -> type_name:string -> rel:string -> export:string -> unit

(** Retracts the subtype plus its extra attributes and hidden membership
    attribute (reverse of {!add_subtype}).
    @raise Errors.Type_error unless it is the newest subtype. *)
val retract_subtype : t -> string -> unit

(** {1 Rule recompilation}

    Derived rules are closures; the WAL stores their DDL expression
    source.  The DDL front end registers a compiler here
    ([Elaborate.install_rule_compiler]) so decoded schema deltas can
    rebuild their closures without the core depending on the parser. *)

val set_rule_compiler : (string -> rule) -> unit

(** [compile_rule_repr src] compiles a stored rule expression with the
    registered compiler.
    @raise Errors.Type_error when no compiler is registered. *)
val compile_rule_repr : string -> rule

(** {1 Rule shapes}

    Convergence metadata for derived rules (see {!rule_shape}). *)

(** [declare_rule_shape t ~type_name ~attr shape] records the shape of a
    derived rule.  Pure metadata: never triggers a layout recompile. *)
val declare_rule_shape : t -> type_name:string -> attr:string -> rule_shape -> unit

val rule_shape : t -> type_name:string -> attr:string -> rule_shape option

(** The DDL front end registers a syntactic shape classifier here
    (expression source -> shape), mirroring {!set_rule_compiler}; used
    by {!Db.add_attr} to classify rules arriving as logged expression
    text. *)
val set_rule_classifier : (string -> rule_shape) -> unit

(** [None] when no classifier is registered (shapes stay undeclared,
    which downstream analysis treats as divergent). *)
val classify_rule_repr : string -> rule_shape option

(** [resolve_export t ~type_name ~rel name] — the attribute actually
    transmitted when [name] is requested across the transmitter's [rel];
    [name] itself when no alias is declared (direct attribute access). *)
val resolve_export : t -> type_name:string -> rel:string -> string -> string

(** All transmission aliases declared on a type, as [(rel, export, attr)]
    triples in deterministic (sorted) order. *)
val exports : t -> type_name:string -> (string * string * string) list

(** {1 Validation}

    The core stays analysis-agnostic: a validator — typically
    [Cactis_analysis.Analyze.install] — registers itself here, and the
    schema calls back into it on demand ({!validate}) or on every layout
    refresh when the schema is in strict mode ({!set_strict}). *)

(** [set_validator f] registers the (process-global) validator.  [f]
    returns one message per error-severity finding; [[]] means clean. *)
val set_validator : (t -> string list) -> unit

(** [validate t] runs the registered validator (no-op when none is
    registered).
    @raise Errors.Type_error listing the findings when the schema is
    rejected. *)
val validate : t -> unit

(** [set_strict t true] validates [t] immediately and re-validates after
    every subsequent schema mutation (piggy-backing on layout refresh):
    DDL that introduces an error-severity finding raises
    [Errors.Type_error] at the next schema access and keeps raising
    until repaired. *)
val set_strict : t -> bool -> unit

val strict : t -> bool

(** Incremental re-validation support.  [Some l]: every mutation since
    the last clean validation was an [add_attr] of the listed
    [(type, attr)] pairs (newest first) — a new attribute only adds
    dependency edges through its own node, so a validator that accepted
    the pre-mutation schema may restrict its cycle check to components
    containing a listed attribute.  [None]: arbitrary mutations
    happened (or the schema was never validated clean) — full pass
    required.  Cleared back to [Some []] by the next clean
    validation. *)
val touched_since_validation : t -> (string * string) list option

(** [refresh t] forces a layout recompile if any DDL happened since the
    last one (a no-op otherwise).  In strict mode this re-runs the
    registered validator — used by {!Db} to re-validate the schema at
    every version replayed by undo/redo/checkout/recovery.
    @raise Errors.Type_error when strict validation rejects the schema. *)
val refresh : t -> unit

(** {1 Lookup} *)

val has_type : t -> string -> bool
val type_names : t -> string list

(** @raise Errors.Unknown when absent. *)
val find_type : t -> string -> type_def

val attr : t -> type_name:string -> string -> attr_def
val attr_opt : t -> type_name:string -> string -> attr_def option
val attrs : t -> type_name:string -> attr_def list

val rel : t -> type_name:string -> string -> rel_def
val rel_opt : t -> type_name:string -> string -> rel_def option
val rels : t -> type_name:string -> rel_def list

val subtype : t -> string -> subtype_def
val subtypes_of : t -> parent:string -> subtype_def list
val subtype_names : t -> string list

(** Hidden membership attribute name for a subtype
    (installed on the parent type). *)
val membership_attr : string -> string

(** {1 Dependency queries (used by the mark phase)} *)

(** [self_dependents t ~type_name a] — attributes [b] of the same type
    whose rules declare [Self a]. *)
val self_dependents : t -> type_name:string -> string -> string list

(** [cross_dependents t ~type_name a] — pairs [(r, b)] such that when
    attribute [a] of an instance [i] of [type_name] changes, attribute
    [b] of every instance related to [i] through relationship [r] (of
    [i]'s type) depends on it: [b]'s rule declares [Rel (inverse r, a)]. *)
val cross_dependents : t -> type_name:string -> string -> (string * string) list

(** [rel_dependents t ~type_name r] — attributes of [type_name] whose
    rules read anything across relationship [r]; these must be marked
    when a link over [r] is established or broken. *)
val rel_dependents : t -> type_name:string -> string -> string list

(** Attributes of a type carrying constraints. *)
val constraint_attrs : t -> type_name:string -> attr_def list

(** Monotone counter bumped on every schema mutation (invalidates
    downstream caches). *)
val version : t -> int

(** Human-readable schema summary: every class with its attributes
    (intrinsic defaults, derived sources, constraints), relationships,
    transmissions and subtypes.  For diagnostics and the CLI. *)
val describe : t -> string
