type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with
    | Left -> s ^ fill
    | Right -> fill ^ s

let render ~headers ?aligns rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  let all = headers :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let align = List.nth aligns i in
          pad align widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row headers :: sep :: body) @ [ "" ])

let print ~title ~headers ?aligns rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~headers ?aligns rows)

let fmt_int n = string_of_int n

let fmt_float ?(decimals = 2) f =
  if Float.is_integer f && Float.abs f < 1e15 && decimals <= 2 then
    Printf.sprintf "%.*f" decimals f
  else Printf.sprintf "%.*f" decimals f

let fmt_ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.1fx" (a /. b)
