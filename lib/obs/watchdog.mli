(** Latency/error watchdog.

    Samples a per-verb latency {!Histogram} registry on an interval
    and compares each verb's {e window} (the observations since the
    previous sample, reconstructed by diffing raw bucket counts)
    against the previous window.  Trips when a verb's window p99
    regresses by more than a configured factor, or when the error
    count bursts past a threshold within one window.  A trip records a
    {!Flight.Watchdog} event and invokes the [on_trip] callback — the
    server uses it to dump the flight recorder and emit an anomaly
    line.

    Designed to be driven from one domain's idle loop ({!tick} is a
    clock comparison until the interval elapses). *)

type config = {
  wd_interval_s : float;  (** seconds between samples *)
  wd_p99_factor : float;  (** trip when window p99 > factor × previous window p99 *)
  wd_min_count : int;  (** windows with fewer observations are never judged *)
  wd_error_burst : int;  (** trip when a window gains this many errors (0 = off) *)
}

(** 5 s interval, 4× p99 factor, 64-observation minimum, 32-error
    burst. *)
val default_config : config

type t

(** [create config ~lats ~errors ~on_trip] — [errors] returns the
    current cumulative error count (diffed per window); [on_trip]
    receives a reason tag (["p99-regression"], ["error-burst"]) and a
    human-readable detail line.  [now] (seconds, monotonic) is
    injectable for tests. *)
val create :
  ?now:(unit -> float) ->
  config ->
  lats:Histogram.t ->
  errors:(unit -> int) ->
  on_trip:(reason:string -> detail:string -> unit) ->
  t

(** Sample if the interval has elapsed (cheap otherwise). *)
val tick : t -> unit

(** Sample unconditionally (tests). *)
val check_now : t -> unit

(** Trips since creation. *)
val trips : t -> int
