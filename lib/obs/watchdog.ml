type config = {
  wd_interval_s : float;
  wd_p99_factor : float;
  wd_min_count : int;
  wd_error_burst : int;
}

let default_config =
  { wd_interval_s = 5.0; wd_p99_factor = 4.0; wd_min_count = 64; wd_error_burst = 32 }

type t = {
  cfg : config;
  now : unit -> float;
  lats : Histogram.t;
  errors : unit -> int;
  on_trip : reason:string -> detail:string -> unit;
  mutable last_check : float;
  prev_counts : (string, int array) Hashtbl.t;  (* cumulative bucket counts at last sample *)
  prev_p99 : (string, float) Hashtbl.t;  (* previous *window* p99 per verb *)
  mutable prev_errors : int;
  trips : int Atomic.t;
}

let mono_now () = Int64.to_float (Clock.now_ns ()) *. 1e-9

let create ?(now = mono_now) cfg ~lats ~errors ~on_trip =
  {
    cfg;
    now;
    lats;
    errors;
    on_trip;
    last_check = now ();
    prev_counts = Hashtbl.create 16;
    prev_p99 = Hashtbl.create 16;
    prev_errors = errors ();
    trips = Atomic.make 0;
  }

(* p99 upper bound of a window reconstructed from diffed bucket counts:
   the bucket upper bound at the 99th-percentile rank. *)
let window_p99 counts total =
  let rank = max 1 (int_of_float (ceil (0.99 *. float_of_int total))) in
  let rec find i acc =
    if i >= Array.length counts then Histogram.bucket_upper (Array.length counts - 1)
    else
      let acc = acc + counts.(i) in
      if acc >= rank then Histogram.bucket_upper i else find (i + 1) acc
  in
  find 0 0

let trip t ~reason ~detail =
  Atomic.incr t.trips;
  Flight.record_s Flight.Watchdog ~a:(Atomic.get t.trips) ~b:0 (reason ^ ": " ^ detail);
  t.on_trip ~reason ~detail

let check_now t =
  List.iter
    (fun (name, h) ->
      let counts = Histogram.bucket_counts h in
      let prev =
        match Hashtbl.find_opt t.prev_counts name with
        | Some p -> p
        | None -> Array.make (Array.length counts) 0
      in
      let window = Array.mapi (fun i c -> c - prev.(i)) counts in
      let total = Array.fold_left ( + ) 0 window in
      Hashtbl.replace t.prev_counts name counts;
      if total >= t.cfg.wd_min_count then begin
        let p99 = window_p99 window total in
        (match Hashtbl.find_opt t.prev_p99 name with
        | Some base when base > 0.0 && p99 > base *. t.cfg.wd_p99_factor ->
          trip t ~reason:"p99-regression"
            ~detail:
              (Printf.sprintf "%s window p99 %.3fms > %.1fx previous %.3fms (%d ops)" name
                 (p99 *. 1e3) t.cfg.wd_p99_factor (base *. 1e3) total)
        | _ -> ());
        Hashtbl.replace t.prev_p99 name p99
      end)
    (Histogram.merged_cells t.lats);
  let errs = t.errors () in
  let burst = errs - t.prev_errors in
  t.prev_errors <- errs;
  if t.cfg.wd_error_burst > 0 && burst >= t.cfg.wd_error_burst then
    trip t ~reason:"error-burst"
      ~detail:(Printf.sprintf "%d errors in one %.1fs window" burst t.cfg.wd_interval_s)

let tick t =
  let now = t.now () in
  if now -. t.last_check >= t.cfg.wd_interval_s then begin
    t.last_check <- now;
    check_now t
  end

let trips t = Atomic.get t.trips
