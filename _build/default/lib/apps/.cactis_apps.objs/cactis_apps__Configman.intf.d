lib/apps/configman.mli: Cactis
