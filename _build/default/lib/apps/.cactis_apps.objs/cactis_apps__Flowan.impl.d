lib/apps/flowan.ml: Array Cactis List
