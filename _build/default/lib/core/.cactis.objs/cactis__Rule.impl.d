lib/core/rule.ml: List Schema Value
