module Schema = Cactis.Schema

type verdict =
  | Convergent of {
      shapes : (Diag.node * Schema.rule_shape) list;
      coeff : int;
    }
  | Divergent of {
      culprit : Diag.node;
      why : string;
    }

let shape_of_node (v : View.t) (n : Diag.node) =
  match View.find_type v n.Diag.n_type with
  | None -> None
  | Some t -> (
    match View.find_attr t n.Diag.n_attr with
    | None -> None
    | Some a -> a.View.a_shape)

(* Longest strictly-increasing chain one slot of this shape can climb.
   Min/max rules only select among values already present, so their
   chains are bounded by the number of participating slots — [n] at the
   type level, scaled by the instance count in {!iteration_bound}. *)
let chain_height ~n = function
  | Schema.Shape_bool | Schema.Shape_count -> 1
  | Schema.Shape_lattice { height; _ } -> height
  | Schema.Shape_min | Schema.Shape_max -> max 1 n
  | Schema.Shape_unbounded -> 0

let classify (v : View.t) g comp =
  let nodes = List.map (Depgraph.node g) comp in
  let rec go acc = function
    | [] ->
      let shapes = List.rev acc in
      let n = List.length shapes in
      let coeff =
        List.fold_left (fun sum (_, s) -> sum + chain_height ~n s) 1 shapes
      in
      Convergent { shapes; coeff }
    | node :: rest -> (
      match shape_of_node v node with
      | None ->
        Divergent { culprit = node; why = "carries no declared convergence shape" }
      | Some Schema.Shape_unbounded ->
        Divergent
          {
            culprit = node;
            why = "has an unbounded rule shape (its value can grow on every iteration)";
          }
      | Some s -> go ((node, s) :: acc) rest)
  in
  go [] nodes

let iteration_bound ~instances = function
  | Divergent _ -> None
  | Convergent { shapes; coeff = _ } ->
    let n = List.length shapes in
    let slots = instances * n in
    let per_slot s =
      match s with
      | Schema.Shape_min | Schema.Shape_max -> max 1 slots
      | s -> chain_height ~n s
    in
    (* One settling sweep, plus one sweep per lattice step any slot can
       climb, plus one per slot for frames stuck above the cycle. *)
    Some
      (1 + slots
      + instances * List.fold_left (fun acc (_, s) -> acc + per_slot s) 0 shapes)

let verdict_name = function Convergent _ -> "convergent" | Divergent _ -> "divergent"

let shapes_summary shapes =
  shapes
  |> List.map (fun ((n : Diag.node), s) ->
         Printf.sprintf "%s.%s: %s" n.Diag.n_type n.Diag.n_attr (Schema.shape_name s))
  |> String.concat ", "
