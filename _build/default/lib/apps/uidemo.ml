module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value
module Counters = Cactis_util.Counters

type t = {
  database : Db.t;
  mutable root : int option;
  mutable last_evals : int;
}

let install_schema sch =
  Schema.add_type sch "widget";
  Schema.declare_relationship sch ~from_type:"widget" ~rel:"children" ~to_type:"widget"
    ~inverse:"parent" ~card:Schema.Multi ~inverse_card:Schema.One;
  Schema.add_attr sch ~type_name:"widget" (Rule.intrinsic "kind" (Value.Str "label"));
  Schema.add_attr sch ~type_name:"widget" (Rule.intrinsic "text" (Value.Str ""));
  (* The display fragment: labels show their text; boxes frame their
     children's fragments under a title. *)
  Schema.add_attr sch ~type_name:"widget"
    (Rule.derived "display"
       (Rule.make
          [ Schema.Self "kind"; Schema.Self "text"; Schema.Rel ("children", "display") ]
          (fun env ->
            let kind = Value.as_string (env.Schema.self_value "kind") in
            let text = Value.as_string (env.Schema.self_value "text") in
            let children =
              env.Schema.related_values "children" "display" |> List.map Value.as_string
            in
            match kind with
            | "label" -> Value.Str text
            | _ ->
              let body = String.concat " | " children in
              Value.Str (Printf.sprintf "[%s: %s]" text body))))

let create () =
  let sch = Schema.create () in
  install_schema sch;
  { database = Db.create sch; root = None; last_evals = 0 }

let db t = t.database

let add_widget t ~parent ~kind ~text =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "widget" in
      Db.set t.database id "kind" (Value.Str kind);
      Db.set t.database id "text" (Value.Str text);
      (match parent with
      | Some p -> Db.link t.database ~from_id:p ~rel:"children" ~to_id:id
      | None -> (
        match t.root with
        | None -> t.root <- Some id
        | Some _ -> Cactis.Errors.type_error "root widget already exists"));
      id)

let add_label t ~parent ~text = add_widget t ~parent ~kind:"label" ~text
let add_box t ~parent ~title = add_widget t ~parent ~kind:"box" ~text:title

let set_text t id text = Db.set t.database id "text" (Value.Str text)
let set_title = set_text

let render t id = Value.as_string (Db.get t.database id "display")

let render_root t =
  match t.root with
  | None -> ""
  | Some root ->
    let c = Db.counters t.database in
    let before = Counters.get c "rule_evals" in
    let s = render t root in
    t.last_evals <- Counters.get c "rule_evals" - before;
    s

let last_render_evals t = t.last_evals
