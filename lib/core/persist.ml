module Wal = Cactis_storage.Wal
module Counters = Cactis_util.Counters
module Clock = Cactis_obs.Clock
module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram

type t = {
  dir : string;
  db : Db.t;
  mutable wal : Wal.writer;
  sync_every : int;
  auto_checkpoint : int;  (* WAL bytes that trigger a checkpoint; 0 = never *)
  mutable generation : int;  (* checkpoint generation on disk *)
  mutable cp_base : int;  (* appended_bytes at the last checkpoint *)
  mutable wal_base : int;  (* records already in the log when the writer opened *)
  mutable replayed : int;
  mutable torn : bool;
  mutable closed : bool;
}

let snapshot_file dir = Filename.concat dir "snapshot.bin"
let wal_file dir = Filename.concat dir "wal.log"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    Errors.type_error "persistence path %s exists and is not a directory" dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The snapshot file wraps Snapshot.save_binary in a small header
   carrying the checkpoint generation — the number that pairs the
   snapshot with the log that follows it (the same value lives in the
   WAL header, see Wal). *)
let snap_magic = "CSNP1\n"
let snap_header_len = String.length snap_magic + 8

let encode_snapshot generation data =
  let b = Bytes.create snap_header_len in
  Bytes.blit_string snap_magic 0 b 0 (String.length snap_magic);
  Bytes.set_int64_le b (String.length snap_magic) (Int64.of_int generation);
  Bytes.to_string b ^ data

let decode_snapshot path s =
  if
    String.length s < snap_header_len
    || not (String.equal (String.sub s 0 (String.length snap_magic)) snap_magic)
  then Errors.type_error "%s: not a Cactis checkpoint (bad header)" path;
  ( Int64.to_int (String.get_int64_le s (String.length snap_magic)),
    String.sub s snap_header_len (String.length s - snap_header_len) )

(* Generation and schema version of a checkpoint file, without loading
   it (the schema version is the count of schema deltas in the
   snapshot's schema section — no rule compiler needed). *)
let snapshot_versions path =
  let generation, payload = decode_snapshot path (read_file path) in
  (generation, Snapshot.binary_schema_version payload)

let db t = t.db
let dir t = t.dir
let replayed t = t.replayed
let recovered_torn t = t.torn
let generation t = t.generation
let snapshot_path t = snapshot_file t.dir
let wal_path t = wal_file t.dir

(* Records in the log since the last checkpoint: position [n] of
   generation [generation t] — the replication cursor.  [wal_base]
   covers records that predate this writer (recovery replayed them);
   [Wal.reset] zeroes the writer's own count, so checkpoint also
   clears the base. *)
let wal_records t = t.wal_base + Wal.appends_since_reset t.wal

(* The checkpoint currently on disk, decoded past its CSNP1 header:
   (generation, schema version, Snapshot.save_binary payload).  What a
   replication publisher serves to a bootstrapping follower — the file
   is only replaced atomically, so reading it races nothing. *)
let read_checkpoint t =
  let sf = snapshot_file t.dir in
  if not (Sys.file_exists sf) then None
  else
    let generation, payload = decode_snapshot sf (read_file sf) in
    Some (generation, Snapshot.binary_schema_version payload, payload)

(* WAL frame bytes appended since the last checkpoint — the O(delta)
   commit cost the experiments measure.  [cp_base] is negative right
   after attach/recover over a log that already held frames, so bytes
   that predate this writer still count toward [auto_checkpoint]. *)
let wal_bytes t = Wal.appended_bytes t.wal - t.cp_base

let checkpoint t =
  if Db.in_txn t.db then Errors.type_error "cannot checkpoint inside a transaction";
  let start_ns = Clock.now_ns () in
  let generation = t.generation + 1 in
  let data = Snapshot.save_binary t.db in
  (* Snapshot first (atomic replace + directory fsync), then the log
     reset stamped with the same fresh generation.  A crash between the
     two leaves the new snapshot over a log still stamped with the old
     generation; recover sees the mismatch and skips those records
     instead of double-applying deltas the snapshot already contains. *)
  Wal.write_file_durable (snapshot_file t.dir) (encode_snapshot generation data);
  (* The log header records the schema version at log start — the number
     of schema deltas folded into the snapshot it follows.  Appended
     schema deltas then move the live version past it; recovery replays
     them on top, exactly like data deltas. *)
  Wal.reset t.wal ~generation ~schema_version:(Db.schema_step_count t.db);
  t.generation <- generation;
  t.cp_base <- Wal.appended_bytes t.wal;
  t.wal_base <- 0;
  Cactis_obs.Flight.record Cactis_obs.Flight.Checkpoint ~a:generation
    ~b:(Db.schema_step_count t.db);
  Counters.incr (Db.counters t.db) "checkpoints";
  let obs = Db.obs t.db in
  Histogram.observe_named obs.Cactis_obs.Ctx.hists "checkpoint"
    (Clock.elapsed_s ~since:start_ns);
  let tr = obs.Cactis_obs.Ctx.trace in
  if Trace.enabled tr then
    Trace.complete tr ~cat:"persist"
      ~args:
        [ ("generation", Trace.I generation); ("snapshot_bytes", Trace.I (String.length data)) ]
      ~start_ns "checkpoint"

let install_hook t =
  Db.set_commit_hook t.db
    (Some
       (fun delta ->
         Wal.append t.wal (Codec.encode_delta delta);
         Counters.incr (Db.counters t.db) "wal_appends";
         if t.auto_checkpoint > 0 && wal_bytes t >= t.auto_checkpoint then checkpoint t))

let attach ?(sync_every = 1) ?(auto_checkpoint = 0) ~dir db =
  ensure_dir dir;
  let sf = snapshot_file dir in
  let snap_gen, snap_sv = if Sys.file_exists sf then snapshot_versions sf else (0, 0) in
  let existing = Wal.read (wal_file dir) in
  (* A same-generation log whose schema version is ahead of the snapshot
     holds schema deltas the snapshot does not know about — the snapshot
     file was deleted or replaced with an older one.  Re-baselining over
     it would silently destroy those deltas, so refuse (mirror of
     recover's log-ahead generation check). *)
  if existing.Wal.generation = snap_gen && existing.Wal.schema_version > snap_sv then
    Errors.type_error
      "cannot attach %s: log schema version %d is ahead of checkpoint schema version %d \
       (checkpoint file deleted or replaced?)"
      dir existing.Wal.schema_version snap_sv;
  let generation = max snap_gen existing.Wal.generation in
  let wal =
    Wal.open_writer ~sync_every ~generation ~schema_version:(Db.schema_step_count db)
      ~truncate_at:existing.Wal.valid_end ~obs:(Db.obs db) (wal_file dir)
  in
  let t =
    {
      dir;
      db;
      wal;
      sync_every;
      auto_checkpoint;
      generation;
      cp_base = 0;
      wal_base = List.length existing.Wal.records;
      replayed = 0;
      torn = false;
      closed = false;
    }
  in
  (* The log is only replayable against a baseline snapshot of this
     exact database.  Anything already in the directory — an old
     snapshot, leftover log records, a torn tail — was not loaded into
     [db], so force a checkpoint: it stamps a fresh baseline and resets
     the log, discarding the stale state.  (Use {!recover} to continue
     from a directory's contents instead of overriding them.) *)
  if
    Sys.file_exists sf || existing.Wal.records <> [] || existing.Wal.torn
    || Db.instance_ids db <> [] || Db.history db <> []
  then checkpoint t;
  install_hook t;
  t

let recover ?strategy ?sched ?block_capacity ?buffer_capacity ?(sync_every = 1)
    ?(auto_checkpoint = 0) ~dir schema =
  ensure_dir dir;
  let sf = snapshot_file dir in
  let snap_gen, db =
    if Sys.file_exists sf then begin
      let generation, payload = decode_snapshot sf (read_file sf) in
      ( generation,
        Snapshot.load_binary ?strategy ?sched ?block_capacity ?buffer_capacity schema payload )
    end
    else (0, Db.create ?strategy ?sched ?block_capacity ?buffer_capacity schema)
  in
  (* The snapshot's schema version is the count of baseline schema
     deltas it carried (zero for CACTISB1 snapshots and fresh dirs). *)
  let snap_sv = Db.schema_step_count db in
  let replay_start_ns = Clock.now_ns () in
  let { Wal.records; valid_end; torn; generation = wal_gen; schema_version = wal_sv; data_start }
      =
    Wal.read (wal_file dir)
  in
  if wal_gen > snap_gen then
    Errors.type_error
      "cannot recover %s: log generation %d is ahead of checkpoint generation %d (checkpoint \
       file deleted or replaced?)"
      dir wal_gen snap_gen;
  (* A log older than the checkpoint is the crash window between the two
     checkpoint steps: its records are already folded into the snapshot,
     so replaying them would double-apply.  Discard them and reset. *)
  let stale = wal_gen < snap_gen in
  if (not stale) && wal_sv <> snap_sv then
    Errors.type_error
      "cannot recover %s: log starts at schema version %d but the checkpoint is at schema \
       version %d (checkpoint file deleted or replaced?)"
      dir wal_sv snap_sv;
  let records = if stale then [] else records in
  List.iter (fun record -> Db.replay_delta db (Codec.decode_delta record)) records;
  Engine.propagate (Db.engine db);
  let obs = Db.obs db in
  Histogram.observe_named obs.Cactis_obs.Ctx.hists "recovery_replay"
    (Clock.elapsed_s ~since:replay_start_ns);
  let tr = obs.Cactis_obs.Ctx.trace in
  if Trace.enabled tr then
    Trace.complete tr ~cat:"persist"
      ~args:[ ("records", Trace.I (List.length records)); ("torn", Trace.B torn) ]
      ~start_ns:replay_start_ns "recovery_replay";
  let wal =
    Wal.open_writer ~sync_every ~generation:snap_gen ~schema_version:snap_sv
      ~truncate_at:valid_end ~obs (wal_file dir)
  in
  if stale then Wal.reset wal ~generation:snap_gen ~schema_version:snap_sv;
  let t =
    {
      dir;
      db;
      wal;
      sync_every;
      auto_checkpoint;
      generation = snap_gen;
      cp_base = (if stale then Wal.appended_bytes wal else -(max 0 (valid_end - data_start)));
      wal_base = List.length records;
      replayed = List.length records;
      torn = torn && not stale;
      closed = false;
    }
  in
  install_hook t;
  t

let sync t = Wal.sync t.wal

let close t =
  if not t.closed then begin
    t.closed <- true;
    Db.set_commit_hook t.db None;
    Wal.close t.wal
  end
