lib/core/store.ml: Cactis_storage Cactis_util Errors Hashtbl Instance List Schema String Value
