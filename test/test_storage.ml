(* Storage substrate tests: disk accounting, LRU buffer pool, pager
   placement, usage statistics, and the paper's greedy clustering
   algorithm (unit + qcheck properties). *)

module Disk = Cactis_storage.Disk
module Buffer_pool = Cactis_storage.Buffer_pool
module Pager = Cactis_storage.Pager
module Usage = Cactis_storage.Usage
module Cluster = Cactis_storage.Cluster

(* ---- Buffer pool ---- *)

let test_pool_hits_and_misses () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:2 disk in
  Alcotest.(check bool) "first touch misses" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "second touch hits" true (Buffer_pool.touch pool 1 = `Hit);
  ignore (Buffer_pool.touch pool 2);
  ignore (Buffer_pool.touch pool 3);
  (* capacity 2: block 1 evicted as LRU *)
  Alcotest.(check bool) "1 evicted" false (Buffer_pool.resident pool 1);
  Alcotest.(check bool) "2 resident" true (Buffer_pool.resident pool 2);
  Alcotest.(check bool) "3 resident" true (Buffer_pool.resident pool 3);
  Alcotest.(check int) "reads counted (3 misses)" 3 (Disk.reads disk)

let test_pool_lru_order () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:3 disk in
  List.iter (fun b -> ignore (Buffer_pool.touch pool b)) [ 1; 2; 3 ];
  (* Touch 1 again: now 2 is LRU. *)
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 4);
  Alcotest.(check bool) "2 evicted (LRU)" false (Buffer_pool.resident pool 2);
  Alcotest.(check (list int)) "MRU order" [ 4; 1; 3 ] (Buffer_pool.contents pool)

let test_pool_flush () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:4 disk in
  List.iter (fun b -> ignore (Buffer_pool.touch pool b)) [ 1; 2 ];
  Buffer_pool.flush pool;
  Alcotest.(check (list int)) "empty after flush" [] (Buffer_pool.contents pool);
  Alcotest.(check int) "stats kept" 2 (Buffer_pool.misses pool);
  Buffer_pool.reset_stats pool;
  Alcotest.(check int) "stats reset" 0 (Buffer_pool.misses pool)

let prop_pool_capacity =
  QCheck.Test.make ~name:"pool never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_range 0 20)))
    (fun (cap, touches) ->
      let pool = Buffer_pool.create ~capacity:cap (Disk.create ()) in
      List.iter (fun b -> ignore (Buffer_pool.touch pool b)) touches;
      List.length (Buffer_pool.contents pool) <= cap)

let prop_pool_immediate_rehit =
  QCheck.Test.make ~name:"touching a just-touched block hits" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_range 0 20)))
    (fun (cap, touches) ->
      let pool = Buffer_pool.create ~capacity:cap (Disk.create ()) in
      List.for_all
        (fun b ->
          ignore (Buffer_pool.touch pool b);
          Buffer_pool.touch pool b = `Hit)
        touches)

(* ---- Pager ---- *)

let test_pager_placement () =
  let pager = Pager.create ~block_capacity:2 ~buffer_capacity:8 () in
  List.iter (Pager.register pager) [ 10; 11; 12; 13; 14 ];
  Alcotest.(check (option int)) "10 on block 0" (Some 0) (Pager.block_of pager 10);
  Alcotest.(check (option int)) "11 on block 0" (Some 0) (Pager.block_of pager 11);
  Alcotest.(check (option int)) "12 on block 1" (Some 1) (Pager.block_of pager 12);
  Alcotest.(check (option int)) "14 on block 2" (Some 2) (Pager.block_of pager 14);
  ignore (Pager.touch pager 10);
  Alcotest.(check bool) "11 shares 10's block" true (Pager.resident pager 11);
  Alcotest.(check bool) "12 not resident" false (Pager.resident pager 12)

let test_pager_clustering_applied () =
  let pager = Pager.create ~block_capacity:2 ~buffer_capacity:8 () in
  List.iter (Pager.register pager) [ 1; 2; 3; 4 ];
  let assignment =
    Cluster.pack ~block_capacity:2
      ~instances:[ (1, 10); (2, 1); (3, 9); (4, 1) ]
      ~links:[ { Cluster.a = 1; b = 3; rel = "r"; count = 100 } ]
  in
  Pager.apply_clustering pager assignment;
  (* 1 and 3 are hot and linked: same block now. *)
  Alcotest.(check bool) "hot pair colocated" true (Pager.block_of pager 1 = Pager.block_of pager 3);
  (* New registrations go to fresh blocks. *)
  Pager.register pager 99;
  Alcotest.(check bool) "new instance beyond clustered blocks" true
    (match Pager.block_of pager 99 with Some b -> b >= assignment.Cluster.block_count | None -> false)

(* ---- Real block file ---- *)

let with_temp_file f =
  let path = Filename.temp_file "cactis_disk" ".blocks" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_disk_roundtrip () =
  with_temp_file (fun path ->
      let d = Disk.create ~path ~block_bytes:64 () in
      Alcotest.(check bool) "file-backed" true (Disk.is_real d);
      Disk.write_block d 3 (Bytes.of_string "hello");
      let b = Disk.read_block d 3 in
      Alcotest.(check string) "data read back" "hello" (Bytes.sub_string b 0 5);
      Alcotest.(check char) "zero padded to block size" '\000' (Bytes.get b 5);
      Alcotest.(check int) "scratch is one block" 64 (Bytes.length b);
      (* A block past the last write reads as zeroes (sparse tail). *)
      let z = Disk.read_block d 9 in
      Alcotest.(check bool) "unwritten block reads zeroes" true
        (Bytes.for_all (fun c -> c = '\000') z);
      Alcotest.(check int) "file extends to the written block" (4 * 64) (Disk.file_size d);
      Alcotest.(check int) "reads counted" 2 (Disk.reads d);
      Alcotest.(check int) "writes counted" 1 (Disk.writes d);
      (match Disk.write_block d 0 (Bytes.create 65) with
      | () -> Alcotest.fail "oversized block image accepted"
      | exception Invalid_argument _ -> ());
      Disk.sync d;
      Disk.close d)

(* Block image format: [u16 LE count][u32 LE sorted ids], zero-padded. *)
let decode_image img =
  let n = Bytes.get_uint16_le img 0 in
  List.init n (fun i -> Int32.to_int (Bytes.get_int32_le img (2 + (4 * i))))

let test_pager_real_block_images () =
  with_temp_file (fun path ->
      let pager =
        Pager.create ~block_capacity:2 ~buffer_capacity:4 ~disk_path:path ~disk_block_bytes:64 ()
      in
      List.iter (Pager.register pager) [ 10; 11; 12 ];
      ignore (Pager.touch ~dirty:true pager 10);
      Pager.sync pager;
      let img = Disk.read_block (Pager.disk pager) 0 in
      Alcotest.(check (list int)) "dirty block image written back" [ 10; 11 ] (decode_image img);
      (* apply_clustering materializes every block of the new placement. *)
      Pager.apply_clustering pager
        (Cluster.sequential ~block_capacity:2 ~instances:[ 10; 11; 12 ]);
      Alcotest.(check (list int)) "block 1 image after reorganization" [ 12 ]
        (decode_image (Disk.read_block (Pager.disk pager) 1));
      Alcotest.(check (list int)) "block 0 image after reorganization" [ 10; 11 ]
        (decode_image (Disk.read_block (Pager.disk pager) 0));
      Pager.close pager)

(* ---- Slot reclamation under churn ---- *)

let test_forget_bounds_churn () =
  let pager = Pager.create ~block_capacity:4 ~buffer_capacity:8 () in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    Pager.register pager id;
    ignore (Pager.touch pager id);
    id
  in
  let live = Queue.create () in
  for _ = 1 to 16 do Queue.add (fresh ()) live done;
  let base = Pager.blocks_in_use pager in
  (* Delete the oldest, create a replacement, 500 times over: freed
     slots in resident blocks must be reused, so the working set never
     outgrows its footprint. *)
  for _ = 1 to 500 do
    Pager.forget pager (Queue.take live);
    Queue.add (fresh ()) live
  done;
  Alcotest.(check int) "population unchanged" 16 (List.length (Pager.instances pager));
  Alcotest.(check bool)
    (Printf.sprintf "blocks bounded under churn (%d -> %d)" base (Pager.blocks_in_use pager))
    true
    (Pager.blocks_in_use pager <= base + 1)

(* ---- Usage ---- *)

let test_usage_counts () =
  let u = Usage.create () in
  Usage.touch_instance u 1;
  Usage.touch_instance u 1;
  Usage.cross u ~from_instance:1 ~rel:"r" ~to_instance:2;
  Usage.cross u ~from_instance:2 ~rel:"r" ~to_instance:1;
  Alcotest.(check int) "instance count" 2 (Usage.instance_count u 1);
  Alcotest.(check int) "crossing symmetric" 2
    (Usage.crossing_count u ~from_instance:1 ~rel:"r" ~to_instance:2);
  Usage.forget_instance u 1;
  Alcotest.(check int) "forgotten" 0 (Usage.instance_count u 1);
  Alcotest.(check int) "crossings forgotten" 0
    (Usage.crossing_count u ~from_instance:1 ~rel:"r" ~to_instance:2)

(* ---- Clustering ---- *)

let test_cluster_paper_algorithm () =
  (* Two hot communities and a cold singleton: the greedy algorithm must
     seed with the hottest instance and pull its linked neighbours in. *)
  let instances = [ (1, 100); (2, 5); (3, 90); (4, 5); (5, 1) ] in
  let links =
    [
      { Cluster.a = 1; b = 2; rel = "r"; count = 50 };
      { Cluster.a = 3; b = 4; rel = "r"; count = 40 };
      { Cluster.a = 2; b = 5; rel = "r"; count = 0 };
    ]
  in
  let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:2 ~instances ~links in
  let b = Hashtbl.find block_of in
  Alcotest.(check int) "hottest seeds block 0" 0 (b 1);
  Alcotest.(check int) "its partner joins" 0 (b 2);
  Alcotest.(check int) "second community next" 1 (b 3);
  Alcotest.(check int) "partner too" 1 (b 4);
  Alcotest.(check int) "cold singleton last" 2 (b 5);
  Alcotest.(check int) "three blocks" 3 block_count

let test_cluster_pulls_cold_neighbour () =
  (* A zero-count link still pulls an unassigned neighbour into the block
     before a new block is opened (the paper's inner loop has no
     threshold). *)
  let instances = [ (1, 10); (2, 0) ] in
  let links = [ { Cluster.a = 1; b = 2; rel = "r"; count = 0 } ] in
  let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:4 ~instances ~links in
  Alcotest.(check int) "one block" 1 block_count;
  Alcotest.(check int) "cold neighbour packed" 0 (Hashtbl.find block_of 2)

let test_cluster_sequential () =
  let { Cluster.block_of; block_count } =
    Cluster.sequential ~block_capacity:3 ~instances:[ 5; 1; 9; 2; 7 ]
  in
  Alcotest.(check int) "two blocks" 2 block_count;
  Alcotest.(check int) "id order" 0 (Hashtbl.find block_of 1);
  Alcotest.(check int) "spill" 1 (Hashtbl.find block_of 7)

let cluster_input =
  QCheck.make
    ~print:(fun (n, cap, links) ->
      Printf.sprintf "n=%d cap=%d links=%d" n cap (List.length links))
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* cap = int_range 1 8 in
      let* links =
        list_size (int_range 0 80)
          (let* a = int_range 0 (n - 1) in
           let* b = int_range 0 (n - 1) in
           let* c = int_range 0 100 in
           return (a, b, c))
      in
      return (n, cap, links))

let prop_cluster_partition =
  QCheck.Test.make ~name:"clustering is a capacity-respecting partition" ~count:300 cluster_input
    (fun (n, cap, raw_links) ->
      let instances = List.init n (fun i -> (i, (i * 7) mod 23)) in
      let links =
        List.filter_map
          (fun (a, b, c) ->
            if a = b then None else Some { Cluster.a; b; rel = "r"; count = c })
          raw_links
      in
      let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:cap ~instances ~links in
      (* Total: every instance assigned exactly once. *)
      Hashtbl.length block_of = n
      && List.for_all (fun (i, _) -> Hashtbl.mem block_of i) instances
      (* Capacity respected. *)
      &&
      let per_block = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ blk ->
          let r =
            match Hashtbl.find_opt per_block blk with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add per_block blk r;
              r
          in
          incr r)
        block_of;
      Hashtbl.fold (fun blk r ok -> ok && !r <= cap && blk < block_count) per_block true)

(* Every competing strategy must produce a total, capacity-respecting
   partition on the same inputs as the paper-algorithm property. *)
let prop_every_strategy_partitions =
  QCheck.Test.make ~name:"every strategy is a capacity-respecting partition" ~count:150
    cluster_input (fun (n, cap, raw_links) ->
      let instances = List.init n (fun i -> (i, (i * 7) mod 23)) in
      let links =
        List.filter_map
          (fun (a, b, c) -> if a = b then None else Some { Cluster.a; b; rel = "r"; count = c })
          raw_links
      in
      List.for_all
        (fun strategy ->
          let { Cluster.block_of; block_count } =
            Cluster.pack_with strategy ~block_capacity:cap ~instances ~links
          in
          Hashtbl.length block_of = n
          && List.for_all (fun (i, _) -> Hashtbl.mem block_of i) instances
          &&
          let per_block = Hashtbl.create 8 in
          Hashtbl.iter
            (fun _ blk ->
              Hashtbl.replace per_block blk
                (1 + Option.value ~default:0 (Hashtbl.find_opt per_block blk)))
            block_of;
          Hashtbl.fold (fun blk n ok -> ok && n <= cap && blk < block_count) per_block true)
        Cluster.all_strategies)

(* The pool's hit/miss accounting against a reference LRU list model,
   across random touches AND whole-placement replacements (which drop
   every frame without write-back). *)
let prop_pool_reference_lru =
  QCheck.Test.make ~name:"pool matches reference LRU model across recluster flushes" ~count:200
    QCheck.(pair (int_range 1 6) (list (int_range 0 24)))
    (fun (cap, ops) ->
      let pager = Pager.create ~block_capacity:2 ~buffer_capacity:cap () in
      let pool = Pager.pool pager in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if op = 0 then begin
            (* Re-clustering drops the pool without write-back. *)
            match Pager.instances pager with
            | [] -> ()
            | inst ->
              Pager.apply_clustering pager (Cluster.sequential ~block_capacity:2 ~instances:inst);
              model := []
          end
          else begin
            Pager.register pager op;
            let blk = match Pager.block_of pager op with Some b -> b | None -> -1 in
            let expected = if List.mem blk !model then `Hit else `Miss in
            ok := !ok && Pager.touch pager op = expected;
            model := blk :: List.filter (fun b -> b <> blk) !model;
            if List.length !model > cap then model := List.filteri (fun i _ -> i < cap) !model
          end)
        ops;
      !ok && Buffer_pool.contents pool = !model)

(* Satellite: the paper algorithm's inner loop is heap-based — packing
   must scale near-linearithmically, not quadratically.  4x the input of
   a chain graph would cost ~16x under the old quadratic frontier scan;
   the heap keeps it under ~5x (asserted with generous slack for CI). *)
let test_pack_scaling () =
  let time_pack n =
    let instances = List.init n (fun i -> (i, (i * 37) mod 101)) in
    let links =
      List.init (n - 1) (fun i -> { Cluster.a = i; b = i + 1; rel = "r"; count = (i * 13) mod 97 })
    in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (Cluster.pack ~block_capacity:8 ~instances ~links);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let t1 = time_pack 2500 in
  let t4 = time_pack 10000 in
  Alcotest.(check bool)
    (Printf.sprintf "4x instances cost %.1fx time (quadratic would be ~16x)" (t4 /. t1))
    true
    (t4 < (10. *. t1) +. 1e-3)

(* ---- Incremental re-clustering (through the store) ---- *)

module Db = Cactis.Db
module Store = Cactis.Store
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value

let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "v" (Value.Int 0));
  sch

(* A ring with chords, trained on a hot prefix — identical construction
   gives identical usage statistics, hence identical packings. *)
let make_trained_db () =
  let db = Db.create ~block_capacity:4 ~buffer_capacity:8 (node_schema ()) in
  let ids = Array.init 40 (fun _ -> Db.create_instance db "node") in
  let n = Array.length ids in
  for i = 0 to n - 1 do
    Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.((i + 1) mod n);
    if i mod 3 = 0 then Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.((i + 7) mod n)
  done;
  for _ = 1 to 5 do
    for i = 0 to 9 do
      ignore (Db.get db ~watch:false ids.(i) "v");
      ignore (Db.related db ids.(i) "deps")
    done
  done;
  db

(* Co-location partition: which instances share a block (block numbers
   themselves don't matter). *)
let partition_of pager =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun id ->
      match Pager.block_of pager id with
      | Some b -> Hashtbl.replace tbl b (id :: Option.value ~default:[] (Hashtbl.find_opt tbl b))
      | None -> ())
    (Pager.instances pager);
  List.sort compare (Hashtbl.fold (fun _ ms acc -> List.sort compare ms :: acc) tbl [])

let check_valid_partition pager cap =
  List.iter
    (fun group ->
      if List.length group > cap then
        Alcotest.failf "block over capacity: %d members" (List.length group))
    (partition_of pager)

let test_incremental_matches_full () =
  let db_full = make_trained_db () in
  let db_inc = make_trained_db () in
  ignore (Db.recluster db_full);
  let st = Db.store db_inc in
  let pending = Store.begin_recluster st in
  Alcotest.(check bool) "plan non-empty" true (pending > 0);
  (* Mid-flight, after a partial step, placement is still a valid
     capacity-respecting partition. *)
  ignore (Store.recluster_step st ~max_moves:3);
  Alcotest.(check bool) "migration in flight" true (Store.pending_moves st > 0);
  check_valid_partition (Store.pager st) 4;
  let guard = ref 0 in
  while Store.pending_moves st > 0 && !guard < 1000 do
    incr guard;
    ignore (Store.recluster_step st ~max_moves:3)
  done;
  Alcotest.(check int) "plan drained" 0 (Store.pending_moves st);
  Alcotest.(check bool) "incremental converges to the full packing" true
    (partition_of (Store.pager (Db.store db_full)) = partition_of (Store.pager st))

let test_incremental_new_instances_survive () =
  (* Instances created while a migration is in flight keep appending to
     the old region and are never lost. *)
  let db = make_trained_db () in
  let st = Db.store db in
  ignore (Store.begin_recluster st);
  ignore (Store.recluster_step st ~max_moves:2);
  let fresh = Db.create_instance db "node" in
  while Store.pending_moves st > 0 do
    ignore (Store.recluster_step st ~max_moves:7)
  done;
  let pager = Store.pager st in
  Alcotest.(check bool) "mid-migration instance still placed" true
    (Pager.block_of pager fresh <> None);
  check_valid_partition pager 4

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pool_capacity; prop_pool_immediate_rehit; prop_cluster_partition;
      prop_every_strategy_partitions; prop_pool_reference_lru;
    ]

let () =
  Alcotest.run "cactis-storage"
    [
      ( "buffer-pool",
        [
          Alcotest.test_case "hits and misses" `Quick test_pool_hits_and_misses;
          Alcotest.test_case "LRU order" `Quick test_pool_lru_order;
          Alcotest.test_case "flush" `Quick test_pool_flush;
        ] );
      ( "pager",
        [
          Alcotest.test_case "placement" `Quick test_pager_placement;
          Alcotest.test_case "clustering applied" `Quick test_pager_clustering_applied;
          Alcotest.test_case "forget bounds churn" `Quick test_forget_bounds_churn;
        ] );
      ( "real disk",
        [
          Alcotest.test_case "block roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "pager block images" `Quick test_pager_real_block_images;
        ] );
      ("usage", [ Alcotest.test_case "counts" `Quick test_usage_counts ]);
      ( "clustering",
        [
          Alcotest.test_case "paper algorithm" `Quick test_cluster_paper_algorithm;
          Alcotest.test_case "cold neighbour pulled" `Quick test_cluster_pulls_cold_neighbour;
          Alcotest.test_case "sequential baseline" `Quick test_cluster_sequential;
          Alcotest.test_case "heap pack scales" `Quick test_pack_scaling;
        ] );
      ( "incremental recluster",
        [
          Alcotest.test_case "matches full repack" `Quick test_incremental_matches_full;
          Alcotest.test_case "new instances survive migration" `Quick
            test_incremental_new_instances_survive;
        ] );
      ("properties", qcheck_cases);
    ]
