let now_ns () = Monotonic_clock.now ()

let elapsed_s ~since = Int64.to_float (Int64.sub (now_ns ()) since) *. 1e-9
