(** Self-adaptive usage statistics.

    Section 2.3: "we keep a count of the total number of times each
    instance in the database is accessed, as well as the number of times
    we cross a relationship between instances in the process of attribute
    evaluation or marking out of date", and these counts drive the
    periodic re-clustering.  Instances are identified by integers and
    relationship crossings by the unordered pair of instance ids plus the
    relationship name. *)

type t

type crossing = {
  from_instance : int;
  rel : string;
  to_instance : int;
}

val create : unit -> t

(** Record one access to an instance. *)
val touch_instance : t -> int -> unit

(** Record one traversal across a relationship link. Crossings are
    accumulated on the unordered pair, matching the paper's "total usage
    count for the relationship". *)
val cross : t -> from_instance:int -> rel:string -> to_instance:int -> unit

(** [cross_sym] is {!cross} with the relationship already interned
    (see {!Cactis_util.Symbol}); the engine's hot paths use it to avoid
    re-hashing relationship names on every traversal. *)
val cross_sym : t -> from_instance:int -> rel_sym:int -> to_instance:int -> unit

val instance_count : t -> int -> int
val crossing_count : t -> from_instance:int -> rel:string -> to_instance:int -> int

(** All instances ever touched, with counts. *)
val instances : t -> (int * int) list

(** All crossings ever recorded, with counts. *)
val crossings : t -> (crossing * int) list

(** Crossing counts rolled up per relationship name — the export the
    cost analyzer and [cactis analyze --db] consume to rank hot
    relationships.  Sorted by descending count, then name. *)
val rel_totals : t -> (string * int) list

(** [forget_instance t id] drops statistics mentioning [id]
    (instance deleted). *)
val forget_instance : t -> int -> unit

val reset : t -> unit
