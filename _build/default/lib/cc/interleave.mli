(** Deterministic multi-client interleaving driver.

    Each client owns a queue of transaction scripts.  At every step the
    driver picks a client (seeded-random or round-robin) and executes one
    operation of its current transaction against the shared
    {!Timestamp_cc} manager.  An aborted transaction restarts from the
    beginning of its script with a fresh timestamp; after
    [max_restarts] failed attempts it is recorded as starved and
    skipped.

    The run is fully determined by the seed, so every experiment and
    property test is reproducible. *)

type policy =
  | Round_robin
  | Random_pick

type stats = {
  committed : int;
  restarts : int;
  starved : int;
  ops_executed : int;
  steps : int;
  committed_scripts : (int * Workload.script) list;
      (** commit timestamp + script, in commit order; input to the serial
          oracle *)
}

val run :
  ?policy:policy ->
  ?max_restarts:int ->
  rng:Cactis_util.Rng.t ->
  cc:Timestamp_cc.t ->
  clients:Workload.script list list ->
  unit ->
  stats
