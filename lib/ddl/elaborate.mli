(** Elaboration: AST -> executable {!Cactis.Schema}.

    Rule expressions are compiled to (declared sources, compute closure)
    pairs; the declared sources are extracted syntactically from the
    expression, so the engine's dependency graph is exact. *)

(** Alias of {!Ddl_error.Error}: one exception covers elaboration,
    typecheck and analysis rejections. *)
exception Error of string

(** [sources expr] — the declared sources a rule expression reads,
    extracted syntactically (sorted, deduplicated). *)
val sources : Ast.expr -> Cactis.Schema.source list

(** [compile_rule expr] compiles a rule expression. *)
val compile_rule : Ast.expr -> Cactis.Schema.rule

(** [shape_of_expr expr] — syntactic convergence-shape classification
    ([Far86]): detects the structure-only, boolean-monotone, max- and
    min-closed fragments of the expression language; everything else is
    {!Cactis.Schema.Shape_unbounded}.  Sound, not complete: a bounded
    shape implies fixed-point convergence on a cycle, [Shape_unbounded]
    implies nothing. *)
val shape_of_expr : Ast.expr -> Cactis.Schema.rule_shape

(** [op_count expr] — abstract cost of one evaluation: one unit per
    operator or attribute-read node (the cost pass's per-evaluation
    unit). *)
val op_count : Ast.expr -> int

(** [eval_expr env expr] evaluates an expression against an arbitrary
    environment (used by the ad-hoc {!Query} facility). *)
val eval_expr : Cactis.Schema.env -> Ast.expr -> Cactis.Value.t

(** [const_value expr] evaluates a constant expression (attribute
    defaults). @raise Error if the expression references attributes or
    relationships. *)
val const_value : Ast.expr -> Cactis.Value.t

(** [extend schema items] elaborates the parsed items into an existing
    schema (dynamic extension: new classes and subtypes may arrive while
    a database is live).
    @raise Error / Cactis.Errors.Type_error on inconsistent
    declarations (unknown targets, mismatched inverses, duplicates). *)
val extend : Cactis.Schema.t -> Ast.schema -> unit

(** [schema items] elaborates into a fresh schema, then — unless
    disabled — vets it: [?typecheck] (default [true]) runs
    {!Typecheck.check} and raises {!Error} listing every type error;
    [?analyze] (default [true]) runs the static analyzer
    ({!Cactis_analysis.Analyze}) and raises {!Error} when any
    {e error}-severity diagnostic (unresolvable circularity, dangling
    reference) is found.  Warnings and infos never reject — use
    {!Lint.analyze_ast} or [cactis lint] to see them. *)
val schema : ?typecheck:bool -> ?analyze:bool -> Ast.schema -> Cactis.Schema.t

(** [load_string src] parses and elaborates (same checks as {!schema}). *)
val load_string : ?typecheck:bool -> ?analyze:bool -> string -> Cactis.Schema.t

(** [install_rule_compiler ()] registers this module's expression
    compiler as the core's rule-repr compiler
    ({!Cactis.Schema.set_rule_compiler}): decoding a logged schema
    delta (WAL recovery, snapshot load) recompiles its derived-rule
    expression text through the DDL parser.  Runs automatically when
    this module is linked; call it explicitly before
    {!Cactis.Persist.recover} in programs that never touch the DDL
    otherwise. *)
val install_rule_compiler : unit -> unit

(** [extend_db db src] parses [src] and extends a live database's
    schema through the {e logged} entry points ({!Cactis.Db.add_type},
    [add_rel], [add_attr], [add_subtype], …): the whole extension lands
    in one transaction delta — undoable, WAL-replayable — with derived
    rules carried as expression text.  New attributes are installed on
    existing instances.  Runs neither the typechecker nor the analyzer:
    incremental items lack the context of the already-live schema
    (subtype parents, relationship targets), so whole-schema vetting
    would reject valid extensions — put the live schema in strict mode
    ({!Cactis.Schema.set_strict}) to re-validate after each extension
    instead. *)
val extend_db : Cactis.Db.t -> string -> unit
