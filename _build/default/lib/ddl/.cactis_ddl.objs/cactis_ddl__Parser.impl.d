lib/ddl/parser.ml: Ast Format Lexer List String Token
