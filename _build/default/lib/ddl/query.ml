module Db = Cactis.Db
module Value = Cactis.Value
module Schema = Cactis.Schema

exception Error of string

let parse src =
  try Parser.parse_expr src with
  | Parser.Error { line; col; message } ->
    raise (Error (Printf.sprintf "parse error at %d:%d: %s" line col message))
  | Lexer.Error { line; col; message } ->
    raise (Error (Printf.sprintf "lexical error at %d:%d: %s" line col message))

let env_for db id =
  {
    Schema.self_value = (fun a -> Db.get db ~watch:false id a);
    related_values =
      (fun r a -> Db.related db id r |> List.map (fun j -> Db.get db ~watch:false j a));
  }

let eval_ast db id ast = Elaborate.eval_expr (env_for db id) ast

let eval db id src = eval_ast db id (parse src)

let select db ~type_name ~where =
  let ast = parse where in
  Db.instances_of_type db type_name
  |> List.filter (fun id ->
         match eval_ast db id ast with
         | Value.Bool b -> b
         | other ->
           raise
             (Error
                (Printf.sprintf "where-expression evaluated to %s, expected a boolean"
                   (Value.kind_name other))))

let aggregate db ~type_name ~expr ~f ~init =
  let ast = parse expr in
  Db.instances_of_type db type_name
  |> List.fold_left (fun acc id -> f acc (eval_ast db id ast)) init
