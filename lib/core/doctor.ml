module Flight = Cactis_obs.Flight
module Wal = Cactis_storage.Wal

type wal_info = {
  dw_generation : int;
  dw_schema_version : int;
  dw_records : int;
  dw_torn : bool;
  dw_undecodable : int;
  dw_data_ops : int;
  dw_schema_ops : int;
}

type report = {
  r_dump : Flight.dump;
  r_last_commit : int;
  r_last_attempt : int;
  r_open_txns : (string * int) list;
  r_wal : wal_info option;
  r_last_durable : int option;
}

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Flight.decode s

(* Mirrors Persist's on-disk layout (wal.log next to snapshot.bin). *)
let wal_path dir = Filename.concat dir "wal.log"

let read_wal dir =
  let r = Wal.read (wal_path dir) in
  let undecodable = ref 0 in
  let data_ops = ref 0 in
  let schema_ops = ref 0 in
  List.iter
    (fun payload ->
      match Codec.decode_delta payload with
      | exception _ -> incr undecodable
      | delta ->
        List.iter
          (fun op ->
            match op with Txn.Schema _ -> incr schema_ops | _ -> incr data_ops)
          delta.Txn.ops)
    r.Wal.records;
  {
    dw_generation = r.Wal.generation;
    dw_schema_version = r.Wal.schema_version;
    dw_records = List.length r.Wal.records;
    dw_torn = r.Wal.torn;
    dw_undecodable = !undecodable;
    dw_data_ops = !data_ops;
    dw_schema_ops = !schema_ops;
  }

let analyze ?wal_dir (dump : Flight.dump) =
  let last_commit = ref 0 in
  let last_attempt = ref 0 in
  let open_txns = ref [] in
  List.iter
    (fun (s : Flight.section) ->
      let open_v = ref 0 in
      List.iter
        (fun (e : Flight.event) ->
          match e.Flight.fe_kind with
          | Flight.Txn_begin ->
            open_v := e.Flight.fe_a;
            if e.Flight.fe_a > !last_attempt then last_attempt := e.Flight.fe_a
          | Flight.Txn_commit ->
            open_v := 0;
            if e.Flight.fe_a > !last_commit then last_commit := e.Flight.fe_a
          | Flight.Txn_abort -> open_v := 0
          | _ -> ())
        s.Flight.fs_events;
      if !open_v > 0 then open_txns := (s.Flight.fs_name, !open_v) :: !open_txns)
    dump.Flight.d_sections;
  let wal = Option.map read_wal wal_dir in
  {
    r_dump = dump;
    r_last_commit = !last_commit;
    r_last_attempt = !last_attempt;
    r_open_txns = List.rev !open_txns;
    r_wal = wal;
    r_last_durable = Option.map (fun w -> w.dw_records) wal;
  }

let describe_event (e : Flight.event) =
  let open Flight in
  match e.fe_kind with
  | Txn_begin -> Printf.sprintf "txn_begin v%d" e.fe_a
  | Txn_commit -> Printf.sprintf "txn_commit v%d (%d ops)" e.fe_a e.fe_b
  | Txn_abort -> Printf.sprintf "txn_abort (%d ops)" e.fe_a
  | Wal_append -> Printf.sprintf "wal_append %dB (#%d)" e.fe_a e.fe_b
  | Wal_fsync -> Printf.sprintf "wal_fsync (%d pending)" e.fe_a
  | Checkpoint -> Printf.sprintf "checkpoint gen %d (sv %d)" e.fe_a e.fe_b
  | Pager_miss -> Printf.sprintf "pager_miss block %d" e.fe_a
  | Pager_writeback -> Printf.sprintf "pager_writeback block %d" e.fe_a
  | Recluster_slice -> Printf.sprintf "recluster_slice %d moves" e.fe_a
  | Net_accept -> Printf.sprintf "net_accept (%d conns)" e.fe_a
  | Net_verb -> Printf.sprintf "net_verb %s %dus (req %d)" e.fe_detail e.fe_a e.fe_b
  | Net_error -> Printf.sprintf "net_error %s (req %d)" e.fe_detail e.fe_a
  | Schema_delta -> Printf.sprintf "schema_delta %s (v%d)" e.fe_detail e.fe_a
  | Watchdog -> Printf.sprintf "watchdog trip #%d: %s" e.fe_a e.fe_detail
  | Note -> Printf.sprintf "note %s" e.fe_detail

let merged_events (dump : Flight.dump) =
  List.concat_map
    (fun (s : Flight.section) ->
      List.map (fun e -> (e.Flight.fe_ts_ns, s.Flight.fs_name, e)) s.Flight.fs_events)
    dump.Flight.d_sections
  |> List.stable_sort (fun (t1, n1, _) (t2, n2, _) ->
         match Int64.compare t1 t2 with 0 -> String.compare n1 n2 | c -> c)

let utc_of_us us =
  let t = Unix.gmtime (Int64.to_float us /. 1e6) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
    t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let render ?limit r =
  let buf = Buffer.create 4096 in
  let dump = r.r_dump in
  let events = merged_events dump in
  let total = List.length events in
  Buffer.add_string buf
    (Printf.sprintf "flight dump taken %s — %d domains, %d events\n" (utc_of_us dump.Flight.d_wall_us)
       (List.length dump.Flight.d_sections)
       total);
  List.iter
    (fun (s : Flight.section) ->
      Buffer.add_string buf
        (Printf.sprintf "  domain %-12s %d of %d events retained\n" s.Flight.fs_name
           (List.length s.Flight.fs_events)
           s.Flight.fs_total))
    dump.Flight.d_sections;
  Buffer.add_string buf "\ntimeline (ms since first retained event):\n";
  let shown, skipped =
    match limit with
    | Some l when total > l ->
      let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: t -> drop (n - 1) t in
      (drop (total - l) events, total - l)
    | _ -> (events, 0)
  in
  if skipped > 0 then Buffer.add_string buf (Printf.sprintf "  ... %d older events elided ...\n" skipped);
  (match events with
  | [] -> Buffer.add_string buf "  (no events)\n"
  | (t0, _, _) :: _ ->
    List.iter
      (fun (ts, name, e) ->
        let rel_ms = Int64.to_float (Int64.sub ts t0) *. 1e-6 in
        Buffer.add_string buf
          (Printf.sprintf "  +%10.3f  [%-10s]  %s\n" rel_ms name (describe_event e)))
      shown);
  Buffer.add_string buf "\nverdict:\n";
  Buffer.add_string buf
    (Printf.sprintf "  last committed version (flight) : %s\n"
       (if r.r_last_commit = 0 then "none" else Printf.sprintf "v%d" r.r_last_commit));
  Buffer.add_string buf
    (Printf.sprintf "  last attempted commit (flight)  : %s\n"
       (if r.r_last_attempt = 0 then "none" else Printf.sprintf "v%d" r.r_last_attempt));
  (match r.r_wal with
  | None -> Buffer.add_string buf "  wal                             : not inspected\n"
  | Some w ->
    Buffer.add_string buf
      (Printf.sprintf
         "  wal                             : generation %d, schema version %d, %d intact records%s%s\n"
         w.dw_generation w.dw_schema_version w.dw_records
         (if w.dw_torn then ", torn tail discarded" else "")
         (if w.dw_undecodable > 0 then Printf.sprintf ", %d UNDECODABLE" w.dw_undecodable else ""));
    Buffer.add_string buf
      (Printf.sprintf "  wal ops                         : %d data, %d schema\n" w.dw_data_ops
         w.dw_schema_ops);
    Buffer.add_string buf
      (Printf.sprintf "  last durable version            : checkpoint base + %d records\n" w.dw_records);
    if r.r_last_attempt > 0 && r.r_last_attempt > w.dw_records then
      Buffer.add_string buf
        (Printf.sprintf "  => attempted v%d never became durable (WAL stops at record %d)\n"
           r.r_last_attempt w.dw_records));
  (match r.r_open_txns with
  | [] -> Buffer.add_string buf "  in-flight at dump               : none\n"
  | open_txns ->
    Buffer.add_string buf "  in-flight at dump:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "    %s: txn v%d open\n" name v))
      open_txns);
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"wall_us\":%Ld,\"domains\":%d,\"events\":%d,\"last_commit\":%d,\"last_attempt\":%d"
       r.r_dump.Flight.d_wall_us
       (List.length r.r_dump.Flight.d_sections)
       (List.fold_left (fun acc (s : Flight.section) -> acc + List.length s.Flight.fs_events) 0
          r.r_dump.Flight.d_sections)
       r.r_last_commit r.r_last_attempt);
  Buffer.add_string buf ",\"open_txns\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" name v))
    r.r_open_txns;
  Buffer.add_char buf '}';
  (match r.r_wal with
  | None -> Buffer.add_string buf ",\"wal\":null"
  | Some w ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\"wal\":{\"generation\":%d,\"schema_version\":%d,\"records\":%d,\"torn\":%b,\"undecodable\":%d,\"data_ops\":%d,\"schema_ops\":%d}"
         w.dw_generation w.dw_schema_version w.dw_records w.dw_torn w.dw_undecodable w.dw_data_ops
         w.dw_schema_ops));
  (match r.r_last_durable with
  | None -> Buffer.add_string buf ",\"last_durable\":null"
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"last_durable\":%d" d));
  Buffer.add_string buf "}";
  Buffer.contents buf
