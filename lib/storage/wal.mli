(** Write-ahead log: append-only file of CRC-framed binary records.

    Payload-agnostic: the core library encodes transaction deltas into
    records; this module guarantees that after a crash the intact prefix
    of records can be identified exactly.  Each record is framed as
    [[u32 LE length][u32 LE CRC-32][payload]] after a fixed file header
    ([CWAL3] magic plus a u64 LE checkpoint {e generation} linking the
    log to the snapshot its records follow, plus a u64 LE
    {e schema version} — the number of schema deltas folded into that
    snapshot); {!read} stops at the first torn or corrupt frame and
    reports where the durable prefix ends, so recovery can truncate the
    tail and land on the last completed append.  Logs written by the
    previous [CWAL2] format (no schema version field) are still read,
    reporting schema version 0.

    Durability is batched ({e group commit}): a writer fsyncs after every
    [sync_every] appends (default 1 = every append durable immediately;
    0 = only on explicit {!sync}/{!close}). *)

(** {1 Reading / recovery} *)

type read_result = {
  records : string list;  (** intact records, oldest first *)
  valid_end : int;  (** byte offset where the intact prefix ends *)
  torn : bool;  (** true if trailing bytes were discarded *)
  generation : int;  (** checkpoint generation from the header (0 if unreadable) *)
  schema_version : int;
      (** schema version stamped at log start (0 for CWAL2 logs and
          unreadable headers) *)
  data_start : int;
      (** offset of the first record frame — the header length of the
          format actually read (CWAL2 headers are shorter) *)
}

(** [read path] scans the log (current [CWAL3] or legacy [CWAL2]
    format).  A missing file reads as empty; a file with a bad header
    reads as empty-and-torn with generation 0. *)
val read : string -> read_result

(** Size in bytes of the current-format file header
    (magic + generation + schema version).  For the header length of a
    specific file, use {!read}'s [data_start]. *)
val header_len : int

(** {1 Writing} *)

type writer

(** [open_writer ?sync_every ?generation ?schema_version ?truncate_at
    ?obs path] opens (creating if needed) a log for appending.
    [truncate_at] drops a torn tail identified by {!read} before the
    first append; [generation] and [schema_version] (default 0) are
    stamped into the header when one is freshly written (an existing
    intact header is left untouched — use {!reset} to restamp).  [obs]
    receives per-append and per-fsync latency histograms ([wal_append],
    [wal_fsync]) and trace spans when its tracer is enabled. *)
val open_writer :
  ?sync_every:int ->
  ?generation:int ->
  ?schema_version:int ->
  ?truncate_at:int ->
  ?obs:Cactis_obs.Ctx.t ->
  string ->
  writer

(** [append w payload] appends one framed record (fsyncs if the group
    commit quota is reached). *)
val append : writer -> string -> unit

(** Flush and fsync everything appended so far. *)
val sync : writer -> unit

(** [reset w ~generation ~schema_version] truncates back to an empty
    log (checkpoint made the records redundant), restamps the header
    with the checkpoint's generation and schema version, and fsyncs. *)
val reset : writer -> generation:int -> schema_version:int -> unit

val close : writer -> unit
val path : writer -> string

(** Appends performed / frame bytes written through this writer (for the
    persistence experiments' O(delta) accounting). *)
val appends : writer -> int

val appended_bytes : writer -> int

(** Appends since this writer was opened or last {!reset} — the
    record-level cursor replication uses: combined with the records
    already on disk at open time it names "record [n] of generation
    [g]", the position a log-shipping follower resumes from. *)
val appends_since_reset : writer -> int

(** CRC-32 (IEEE) of a string — exposed for tests and tools. *)
val crc32 : string -> int32

(** [write_file_durable path contents] — write-to-temp, fsync, rename,
    fsync the parent directory: a crash leaves either the old file or
    the new one, never a torn mixture, and the rename itself is durable
    before the call returns.  Used for checkpoint snapshots. *)
val write_file_durable : string -> string -> unit
