lib/core/sched.ml: Cactis_storage Cactis_util Hashtbl List Queue Store
