module Rng = Cactis_util.Rng
module Value = Cactis.Value

type policy =
  | Round_robin
  | Random_pick

type stats = {
  committed : int;
  restarts : int;
  starved : int;
  ops_executed : int;
  steps : int;
  committed_scripts : (int * Workload.script) list;
}

type client = {
  mutable queue : Workload.script list;
  mutable txn : Timestamp_cc.txn option;
  mutable remaining : Workload.op list;
  mutable attempts : int;
}

let exec_op cc txn op =
  match op with
  | Workload.Read (id, a) | Workload.Read_derived (id, a) -> (
    match Timestamp_cc.read cc txn id a with Ok _ -> Ok () | Error `Abort -> Error `Abort)
  | Workload.Write (id, a, v) -> Timestamp_cc.write cc txn id a v
  | Workload.Incr (id, a, n) -> (
    match Timestamp_cc.read cc txn id a with
    | Error `Abort -> Error `Abort
    | Ok v -> Timestamp_cc.write cc txn id a (Value.Int (Value.as_int v + n)))

let run ?(policy = Random_pick) ?(max_restarts = 1000) ~rng ~cc ~clients () =
  let clients =
    List.map (fun queue -> { queue; txn = None; remaining = []; attempts = 0 }) clients
    |> Array.of_list
  in
  let committed = ref 0 in
  let restarts = ref 0 in
  let starved = ref 0 in
  let ops_executed = ref 0 in
  let steps = ref 0 in
  let committed_scripts = ref [] in
  let client_done c = c.queue = [] && c.txn = None in
  let restart c =
    (match c.txn with
    | Some txn -> ( try Timestamp_cc.abort cc txn with Invalid_argument _ -> ())
    | None -> ());
    c.txn <- None;
    c.remaining <- [];
    c.attempts <- c.attempts + 1;
    if c.attempts > max_restarts then begin
      incr starved;
      c.attempts <- 0;
      match c.queue with [] -> () | _ :: rest -> c.queue <- rest
    end
    else incr restarts
  in
  let step c =
    match (c.txn, c.queue) with
    | None, [] -> ()
    | None, script :: _ ->
      c.txn <- Some (Timestamp_cc.begin_txn cc);
      c.remaining <- script
    | Some txn, _ -> (
      match c.remaining with
      | op :: rest -> (
        incr ops_executed;
        match exec_op cc txn op with
        | Ok () -> c.remaining <- rest
        | Error `Abort -> restart c)
      | [] -> (
        match Timestamp_cc.commit cc txn with
        | Ok () ->
          incr committed;
          let script = match c.queue with s :: _ -> s | [] -> [] in
          committed_scripts := (Timestamp_cc.timestamp txn, script) :: !committed_scripts;
          (match c.queue with [] -> () | _ :: rest -> c.queue <- rest);
          c.txn <- None;
          c.attempts <- 0
        | Error `Abort -> restart c))
  in
  let rec loop () =
    let active = Array.to_list clients |> List.filter (fun c -> not (client_done c)) in
    match active with
    | [] -> ()
    | _ ->
      incr steps;
      let c =
        match policy with
        | Round_robin -> List.nth active (!steps mod List.length active)
        | Random_pick -> Rng.pick_list rng active
      in
      step c;
      loop ()
  in
  loop ();
  {
    committed = !committed;
    restarts = !restarts;
    starved = !starved;
    ops_executed = !ops_executed;
    steps = !steps;
    committed_scripts = List.rev !committed_scripts;
  }
