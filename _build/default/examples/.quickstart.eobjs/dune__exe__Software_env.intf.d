examples/software_env.mli:
