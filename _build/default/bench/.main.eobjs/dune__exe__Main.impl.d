bench/main.ml: Array Bechamel Cactis Cactis_apps Cactis_cc Cactis_dist Cactis_storage Cactis_util Hashtbl List Printf Report Staged String Sys Test Workloads
