(** Follower-side apply engine — pure state machine, no sockets.

    Validates the cursor chain and replays shipped records into a
    read-only replica database.  The socket loop ({!Follower}) drives
    it with decoded messages; the property tests drive it directly
    with captured histories, which is what makes "a follower replaying
    any prefix of the shipped log equals the writer at that version"
    checkable without a network.

    Apply rules, for an item tagged [prev -> after] against a replica
    at cursor [c]:
    - [after <= c]: skip (duplicate or pre-bootstrap record — the
      stream may legally repeat after a resume);
    - [prev = c]: apply, advance to [after];
    - anything else: typed {!Repl_error.Gap} — the stream was
      reordered or holed; never apply out of order.

    Schema deltas replay through the registered rule compiler — link
    the DDL front end and call
    [Cactis_ddl.Elaborate.install_rule_compiler ()] first, exactly as
    for {!Cactis.Persist.recover}. *)

type t

(** [create ?apply ~cursor db] — a replica positioned at [cursor].
    [apply] overrides how an encoded delta is applied (default: decode,
    {!Cactis.Db.replay_delta} into [db], propagate) — the read-only
    server mode routes it through the server's writer domain instead. *)
val create : ?apply:(string -> unit) -> cursor:Repl_proto.cursor -> Cactis.Db.t -> t

(** The default record application: decode the delta,
    {!Cactis.Db.replay_delta} it into [db], propagate.  Exposed so a
    caller composing its own [apply] (e.g. {!Follower} switching between
    direct replay and routing through a server's writer domain) can fall
    back to it.
    @raise Repl_error.Corrupt if the record bytes do not decode. *)
val default_apply : Cactis.Db.t -> string -> unit

val db : t -> Cactis.Db.t
val cursor : t -> Repl_proto.cursor

(** Highest stream sequence number applied or skipped ([-1] initially). *)
val seq : t -> int

val records_applied : t -> int

type outcome = Applied | Skipped

(** @raise Repl_error.Gap on a chain violation.
    @raise Repl_error.Corrupt if the record bytes do not decode. *)
val apply_entry : t -> Repl_proto.entry -> outcome

(** Checkpoint mark: the replica's current state equals checkpoint
    [generation]; advance the cursor without touching data.
    @raise Repl_error.Gap when [prev] is not the replica's cursor. *)
val apply_mark : t -> seq:int -> prev:Repl_proto.cursor -> generation:int -> outcome

(** Periodic drift detection: run {!Cactis.Integrity.check} over the
    replica.
    @raise Repl_error.Diverged listing the violations, if any. *)
val drift_check : t -> unit
