(* DDL front-end tests: lexing, parsing, elaboration of the paper's
   Figure 1 milestone class, error reporting, pretty round-trips. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Errors = Cactis.Errors
module Parser = Cactis_ddl.Parser
module Lexer = Cactis_ddl.Lexer
module Ast = Cactis_ddl.Ast
module Elaborate = Cactis_ddl.Elaborate
module Pretty = Cactis_ddl.Pretty

(* Figure 1, regularized into the DDL grammar: a milestone's expected
   completion is its local work added to the latest expected completion
   among the milestones it depends on; [late] compares against the
   originally scheduled completion. *)
let milestone_src =
  {|
  -- Figure 1: class definition for milestone objects
  object class milestone is
    relationships
      depends_on  : milestone multi socket inverse consists_of;
      consists_of : milestone multi plug   inverse depends_on;
    attributes
      sched_compl : time := time(10);
      local_time  : time := time(1);
    rules
      exp_compl = max(depends_on.exp_compl default time(0)) + local_time;
      late = later_than(exp_compl, sched_compl);
  end object;
|}

let build_milestones () =
  let sch = Elaborate.load_string milestone_src in
  let db = Db.create sch in
  let m1 = Db.create_instance db "milestone" in
  let m2 = Db.create_instance db "milestone" in
  let m3 = Db.create_instance db "milestone" in
  (* m1 depends on m2 and m3. *)
  Db.link db ~from_id:m1 ~rel:"depends_on" ~to_id:m2;
  Db.link db ~from_id:m1 ~rel:"depends_on" ~to_id:m3;
  (db, m1, m2, m3)

let days v = Cactis_util.Vtime.to_days (Value.as_time v)

let test_figure1 () =
  let db, m1, m2, m3 = build_milestones () in
  (* Defaults: local 1 day each; m1's expectation = max(1,1)+1 = 2. *)
  Alcotest.(check (float 1e-9)) "exp_compl" 2.0 (days (Db.get db m1 "exp_compl"));
  Alcotest.(check bool) "not late" false (Value.as_bool (Db.get db m1 "late"));
  (* Slip m2 by 12 days: ripples to m1 and makes it late (sched 10). *)
  Db.set db m2 "local_time" (Value.Time (Cactis_util.Vtime.of_days 12.0));
  Alcotest.(check (float 1e-9)) "ripple" 13.0 (days (Db.get db m1 "exp_compl"));
  Alcotest.(check bool) "late now" true (Value.as_bool (Db.get db m1 "late"));
  ignore m3

let test_very_late_extension () =
  (* §4: add a very_late attribute and a subtype keyed on it, without
     touching the existing class. *)
  let db, m1, m2, _ = build_milestones () in
  Cactis_ddl.Elaborate.extend_db db
    {|
    subtype very_late_milestone of milestone
      where later_than(exp_compl, sched_compl + 5.0)
    is
      attributes
        escalation : string := "notify-manager";
    end subtype;
  |};
  Alcotest.(check bool) "not very late" false (Db.in_subtype db m1 "very_late_milestone");
  Db.set db m2 "local_time" (Value.Time (Cactis_util.Vtime.of_days 20.0));
  Alcotest.(check bool) "very late" true (Db.in_subtype db m1 "very_late_milestone");
  Alcotest.(check string) "extra attr readable" "\"notify-manager\""
    (Value.to_string (Db.get db m1 "escalation"))

(* Dynamic add_attr while instances exist: each live instance's compiled
   slot layout must grow to cover the new attribute — intrinsics surface
   the declared default, derived attrs evaluate from the extended
   layout, including rules that aggregate across relationships. *)
let test_add_attr_slot_extension () =
  let db, m1, m2, m3 = build_milestones () in
  (* Force evaluation first so the per-type layout is compiled and the
     instances' slot arrays are sized for the original schema. *)
  Alcotest.(check (float 1e-9)) "pre-DDL eval" 2.0 (days (Db.get db m1 "exp_compl"));
  Db.add_attr db ~type_name:"milestone" (Cactis.Rule.intrinsic "priority" (Value.Int 7));
  (* Existing instances see the default through their extended slots... *)
  Alcotest.(check int) "default on old instance" 7 (Value.as_int (Db.get db m1 "priority"));
  Alcotest.(check int) "default on old instance 2" 7 (Value.as_int (Db.get db m3 "priority"));
  (* ...and the new slot is independently writable per instance. *)
  Db.set db m2 "priority" (Value.Int 99);
  Alcotest.(check int) "set on old instance" 99 (Value.as_int (Db.get db m2 "priority"));
  Alcotest.(check int) "others keep default" 7 (Value.as_int (Db.get db m1 "priority"));
  (* A derived attr added after the fact evaluates on old instances,
     reading both the new intrinsic slot and the relationship links. *)
  Db.add_attr db ~type_name:"milestone"
    (Cactis.Rule.derived "load"
       (Cactis.Rule.combine_self_rel "priority" "depends_on" "priority" ~f:(fun own ps ->
            Value.add own (Value.sum ps))));
  (* m1 depends on m2 (99) and m3 (7): 7 + 99 + 7. *)
  Alcotest.(check int) "derived over new slots" 113 (Value.as_int (Db.get db m1 "load"));
  Alcotest.(check int) "leaf derived" 99 (Value.as_int (Db.get db m2 "load"));
  (* The extension ripples like any other dependency. *)
  Db.set db m3 "priority" (Value.Int 1);
  Alcotest.(check int) "ripple through added attr" 107 (Value.as_int (Db.get db m1 "load"));
  (* Old attributes and global invariants are untouched. *)
  Alcotest.(check (float 1e-9)) "old attrs intact" 2.0 (days (Db.get db m1 "exp_compl"));
  Alcotest.(check int) "integrity" 0 (List.length (Cactis.Integrity.check db))

(* Adding a whole class after instances of other types exist: the new
   type gets its own compiled layout, and instances created under it get
   correctly sized slot arrays without disturbing existing layouts. *)
let test_add_type_slot_layout () =
  let db, m1, _, _ = build_milestones () in
  Alcotest.(check (float 1e-9)) "pre-DDL eval" 2.0 (days (Db.get db m1 "exp_compl"));
  Cactis_ddl.Elaborate.extend_db db
    {|
    object class note is
      attributes
        severity : int := 3;
        body : string := "todo";
      rules
        doubled = severity + severity;
    end object;
  |};
  let n1 = Db.create_instance db "note" in
  Alcotest.(check int) "new-type intrinsic" 3 (Value.as_int (Db.get db n1 "severity"));
  Alcotest.(check int) "new-type derived" 6 (Value.as_int (Db.get db n1 "doubled"));
  Db.set db n1 "severity" (Value.Int 10);
  Alcotest.(check int) "new-type update" 20 (Value.as_int (Db.get db n1 "doubled"));
  (* The milestone layout is a different type: unaffected by the DDL. *)
  Alcotest.(check (float 1e-9)) "old type intact" 2.0 (days (Db.get db m1 "exp_compl"));
  Alcotest.(check bool) "old attr absent on new type" true
    (match Db.get db n1 "exp_compl" with
    | _ -> false
    | exception Errors.Unknown _ -> true);
  Alcotest.(check int) "integrity" 0 (List.length (Cactis.Integrity.check db))

(* Figure 1 verbatim: the milestone transmits its expected completion
   across consists_of under the name exp_time, and the rule reads
   depends_on.exp_time — exactly the paper's listing. *)
let figure1_verbatim_src =
  {|
  object class milestone is
    relationships
      depends_on  : milestone multi socket inverse consists_of;
      consists_of : milestone multi plug   inverse depends_on;
    attributes
      sched_compl : time := time(10);
      local_time  : time := time(1);
    rules
      exp_compl = max(depends_on.exp_time default time(0)) + local_time;
      late = later_than(exp_compl, sched_compl);
    transmits
      consists_of.exp_time = exp_compl;
  end object;
|}

let test_figure1_transmission_alias () =
  let items = Parser.parse_schema figure1_verbatim_src in
  Alcotest.(check (list string)) "type-checks through the alias" []
    (Cactis_ddl.Typecheck.check items);
  let db = Db.create (Elaborate.load_string figure1_verbatim_src) in
  let m1 = Db.create_instance db "milestone" in
  let m2 = Db.create_instance db "milestone" in
  Db.link db ~from_id:m1 ~rel:"depends_on" ~to_id:m2;
  Alcotest.(check (float 1e-9)) "alias resolves" 2.0 (days (Db.get db m1 "exp_compl"));
  (* Incremental maintenance flows through the alias too. *)
  Db.set db m2 "local_time" (Value.Time (Cactis_util.Vtime.of_days 12.0));
  Alcotest.(check (float 1e-9)) "ripple through alias" 13.0 (days (Db.get db m1 "exp_compl"));
  (* And matches the from-scratch oracle. *)
  Alcotest.(check (float 1e-9)) "oracle agrees" 13.0
    (days (Cactis.Engine.oracle_value (Db.engine db) m1 "exp_compl"))

let test_transmit_roundtrip () =
  let items = Parser.parse_schema figure1_verbatim_src in
  let printed = Cactis_ddl.Pretty.schema_to_string items in
  Alcotest.(check bool) "transmits section round-trips" true
    (Parser.parse_schema printed = items)

let test_transmit_validation () =
  let bad_rel =
    {| object class c is
         attributes x : int;
         transmits nope.y = x;
       end object; |}
  in
  (match Elaborate.load_string bad_rel with
  | _ -> Alcotest.fail "unknown rel in transmits"
  | exception (Errors.Unknown _ | Errors.Type_error _) -> ());
  let bad_attr =
    {| object class c is
         relationships r : c multi plug inverse ri;
         relationships ri : c multi socket inverse r;
         transmits r.y = nothing;
       end object; |}
  in
  match Elaborate.load_string bad_attr with
  | _ -> Alcotest.fail "unknown attr in transmits"
  | exception (Errors.Unknown _ | Errors.Type_error _) -> ()

let test_constraint_section () =
  let src =
    {|
    object class task is
      attributes
        budget : int := 100;
        spent  : int := 0;
      rules
        remaining = budget - spent;
      constraints
        within_budget = spent <= budget message "over budget";
    end object;
  |}
  in
  let db = Db.create (Elaborate.load_string src) in
  let t1 = Db.create_instance db "task" in
  Db.set db t1 "spent" (Value.Int 50);
  Alcotest.(check string) "remaining" "50" (Value.to_string (Db.get db t1 "remaining"));
  (match Db.set db t1 "spent" (Value.Int 500) with
  | () -> Alcotest.fail "expected violation"
  | exception Errors.Constraint_violation { message; _ } ->
    Alcotest.(check string) "message" "over budget" message);
  Alcotest.(check string) "rolled back" "50" (Value.to_string (Db.get db t1 "spent"))

let test_expr_parsing () =
  let cases =
    [
      ("1 + 2 * 3", "1 + 2 * 3");
      ("(1 + 2) * 3", "(1 + 2) * 3");
      ("a and b or not c", "a and b or not c");
      ("if a > 1 then \"x\" else \"y\"", "if a > 1 then \"x\" else \"y\"");
      ("max(deps.total default 0) + local", "max(deps.total default 0) + local");
      ("later_of(time(1.5), owner.deadline)", "later_of(time(1.5), owner.deadline)");
      ("-x + 4", "-x + 4");
      ("a - b - c", "a - b - c");
    ]
  in
  List.iter
    (fun (src, expected) ->
      let printed = Pretty.expr_to_string (Parser.parse_expr src) in
      Alcotest.(check string) src expected printed)
    cases

let test_expr_roundtrip () =
  (* parse (print (parse src)) = parse src *)
  let sources =
    [
      "1 + 2 * 3 - 4 / 5";
      "(a + b) * (c - d)";
      "not (a or b) and c";
      "if x >= 10 then y else z + 1";
      "sum(children.cost default 0)";
      "count(deps.total) > 3 and all(deps.done)";
      "later_than(exp, sched + 5.0) or very_late";
      "a - (b - c)";
      "time(3.25)";
    ]
  in
  List.iter
    (fun src ->
      let ast1 = Parser.parse_expr src in
      let printed = Pretty.expr_to_string ast1 in
      let ast2 = Parser.parse_expr printed in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" src printed)
        true (ast1 = ast2))
    sources

let test_schema_roundtrip () =
  let items = Parser.parse_schema milestone_src in
  let printed = Pretty.schema_to_string items in
  let items2 = Parser.parse_schema printed in
  Alcotest.(check bool) "schema AST round-trip" true (items = items2)

let test_parse_errors () =
  let bad =
    [
      "object class is end";
      "object class c is attributes x : unknown_type; end object;";
      "object class c is rules x = 1 + ; end object;";
      "object class c is attributes x : int end object;";
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse_schema src with
      | _ -> Alcotest.fail ("expected parse failure: " ^ src)
      | exception (Parser.Error _ | Lexer.Error _) -> ())
    bad

let test_inverse_validation () =
  let src =
    {|
    object class a is
      relationships r : b multi plug inverse nope;
    end object;
    object class b is
    end object;
  |}
  in
  match Elaborate.load_string src with
  | _ -> Alcotest.fail "expected elaboration failure"
  | exception Elaborate.Error _ -> ()

let test_lexer_comments () =
  let toks =
    Lexer.tokenize "a -- line comment\n + /* block\ncomment */ b // another\n"
    |> List.map (fun t -> t.Lexer.token)
  in
  Alcotest.(check bool) "comments skipped" true
    (toks = [ Cactis_ddl.Token.IDENT "a"; Cactis_ddl.Token.PLUS; Cactis_ddl.Token.IDENT "b"; Cactis_ddl.Token.EOF ])



let () =
  Alcotest.run "cactis-ddl"
    [
      ( "elaboration",
        [
          Alcotest.test_case "figure 1 milestone" `Quick test_figure1;
          Alcotest.test_case "figure 1 verbatim (transmission alias)" `Quick
            test_figure1_transmission_alias;
          Alcotest.test_case "transmits round-trip" `Quick test_transmit_roundtrip;
          Alcotest.test_case "transmits validation" `Quick test_transmit_validation;
          Alcotest.test_case "very_late subtype extension" `Quick test_very_late_extension;
          Alcotest.test_case "add_attr extends live slot arrays" `Quick
            test_add_attr_slot_extension;
          Alcotest.test_case "add class gets fresh slot layout" `Quick test_add_type_slot_layout;
          Alcotest.test_case "constraint section" `Quick test_constraint_section;
          Alcotest.test_case "inverse validation" `Quick test_inverse_validation;
        ] );
      ( "parser",
        [
          Alcotest.test_case "expression precedence" `Quick test_expr_parsing;
          Alcotest.test_case "expression round-trip" `Quick test_expr_roundtrip;
          Alcotest.test_case "schema round-trip" `Quick test_schema_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
        ] );
    ]
