test/test_cc.ml: Alcotest Cactis Cactis_cc Cactis_util List Printf
