lib/cc/interleave.mli: Cactis_util Timestamp_cc Workload
