(* Follower-side apply engine.  See the interface for the chain rules. *)

module Db = Cactis.Db
module Codec = Cactis.Codec
module Engine = Cactis.Engine
module Integrity = Cactis.Integrity
module P = Repl_proto

type t = {
  db : Db.t;
  apply : string -> unit;
  mutable cursor : P.cursor;
  mutable seq : int;
  mutable records_applied : int;
}

let default_apply db record =
  let delta =
    try Codec.decode_delta record
    with Codec.Error { offset; message } ->
      raise (P.Corrupt { context = "record"; message = Printf.sprintf "at byte %d: %s" offset message })
  in
  Db.replay_delta db delta;
  Engine.propagate (Db.engine db)

let create ?apply ~cursor db =
  let apply = match apply with Some f -> f | None -> default_apply db in
  { db; apply; cursor; seq = -1; records_applied = 0 }

let db t = t.db
let cursor t = t.cursor
let seq t = t.seq
let records_applied t = t.records_applied

type outcome = Applied | Skipped

let apply_entry t (e : P.entry) =
  if P.cursor_compare e.P.e_cursor t.cursor <= 0 then begin
    (* Already folded into our state: a resumed stream may repeat the
       tail, and a bootstrap snapshot may cover records also present in
       the backlog.  Skipping is the documented duplicate tolerance. *)
    t.seq <- max t.seq e.P.e_seq;
    Skipped
  end
  else if P.cursor_compare e.P.e_prev t.cursor <> 0 then
    raise (Repl_error.Gap { expected = t.cursor; got = e.P.e_prev; seq = e.P.e_seq })
  else begin
    t.apply e.P.e_record;
    t.cursor <- e.P.e_cursor;
    t.seq <- e.P.e_seq;
    t.records_applied <- t.records_applied + 1;
    Applied
  end

let apply_mark t ~seq ~prev ~generation =
  if generation <= t.cursor.P.gen then begin
    t.seq <- max t.seq seq;
    Skipped
  end
  else if P.cursor_compare prev t.cursor <> 0 then
    raise (Repl_error.Gap { expected = t.cursor; got = prev; seq })
  else begin
    t.cursor <- { P.gen = generation; records = 0 };
    t.seq <- seq;
    Applied
  end

let drift_check t =
  match Integrity.check t.db with
  | [] -> ()
  | violations -> raise (Repl_error.Diverged { violations })
