(** The client/server request protocol.

    One request or response per {!Frame}.  Payloads reuse the
    {!Cactis.Codec} primitives (zigzag varints, length-prefixed strings,
    tagged values), so the wire shares its byte-level vocabulary with
    the WAL and binary snapshots.

    Every frame opens with an {!envelope}: the client's request id
    (echoed verbatim in the response, so a pipelining client can match
    replies out of order) and a trace span id.  The span id propagates
    the client's trace context into the server — sampled server-side
    spans carry it as an argument, so a cross-process Chrome trace can
    be stitched by span id.

    Read and Traverse carry [min_version]: the lowest committed version
    the serving replica must have applied before answering.  A client
    that just committed version [v] passes [min_version = v] to get
    read-your-writes; [0] accepts any snapshot. *)

type update =
  | Set of { instance : int; attr : string; value : Cactis.Value.t }
  | Create of { type_name : string }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }

type req =
  | Ping
  | Open_session
  | Read of { min_version : int; instance : int; attr : string }
      (** One attribute of one instance. *)
  | Traverse of { min_version : int; root : int; rel : string; attr : string; depth : int }
      (** Evaluate [attr] over the [rel]-reachable closure of [root] up
          to [depth] hops ([depth < 0] = unbounded) — the paper's
          attribute-evaluation traversal as a server verb. *)
  | Commit of update list  (** Apply all updates as one transaction. *)
  | Stats
  | Metrics
      (** The same merged counters/latencies as [Stats], rendered as an
          OpenMetrics text exposition — for scrapers speaking the cactis
          protocol rather than HTTP. *)

(** Typed error categories, mirroring {!Cactis.Errors} plus transport
    faults.  [Protocol] is a malformed or unknown frame; [Server] is an
    unexpected internal failure. *)
type error_code =
  | E_unknown
  | E_type
  | E_constraint
  | E_cardinality
  | E_cycle
  | E_protocol
  | E_server

(** Per-verb server-side latency digest (seconds). *)
type latency = {
  l_name : string;
  l_count : int;
  l_mean : float;
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
}

type resp =
  | Pong
  | Opened of { version : int; readers : int; instances : int }
  | Value of { version : int; value : Cactis.Value.t }
      (** [version] is the snapshot version that served the read. *)
  | Traversed of { version : int; visited : int; total : Cactis.Value.t }
  | Committed of { version : int; created : int list }
      (** [created] are the new instance ids, in [Create] order. *)
  | Stats_reply of { counters : (string * int) list; latencies : latency list }
  | Metrics_reply of string
      (** OpenMetrics text exposition (identical to what
          [GET /metrics] serves). *)
  | Error of { code : error_code; message : string }

type envelope = {
  req_id : int;
  span_id : int;
}

(** Malformed payload (bad tag, trailing bytes, codec error — the
    message says which, with the byte offset when known). *)
exception Malformed of string

val encode_req : envelope -> req -> string

(** @raise Malformed *)
val decode_req : string -> envelope * req

val encode_resp : envelope -> resp -> string

(** @raise Malformed *)
val decode_resp : string -> envelope * resp

(** The verb's metric name ("read", "commit", …), used for per-verb
    latency histograms on both sides. *)
val verb_name : req -> string

val error_code_name : error_code -> string

(** Map a server-side exception to the typed wire error ([E_server] with
    [Printexc.to_string] for anything unrecognised). *)
val error_of_exn : exn -> resp
