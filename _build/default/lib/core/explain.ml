type node = {
  id : int;
  attr : string;
  value : Value.t;
  fresh : bool;
  kind : [ `Intrinsic | `Derived | `Shared ];
  via : string option;
  children : node list;
}

let tree db root_id root_attr =
  let sch = Db.schema db in
  let store = Db.store db in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec build ?via id attr =
    let inst = Store.get store id in
    let tn = inst.Instance.type_name in
    let def = Schema.attr sch ~type_name:tn attr in
    let slot = Instance.slot inst attr in
    let value = slot.Instance.value in
    let fresh = slot.Instance.state = Instance.Up_to_date in
    match def.Schema.kind with
    | Schema.Intrinsic _ -> { id; attr; value; fresh = true; kind = `Intrinsic; via; children = [] }
    | Schema.Derived rule ->
      if Hashtbl.mem seen (id, attr) then
        { id; attr; value; fresh; kind = `Shared; via; children = [] }
      else begin
        Hashtbl.add seen (id, attr) ();
        let children =
          rule.Schema.sources
          |> List.concat_map (function
               | Schema.Self b -> [ build id b ]
               | Schema.Rel (r, name) ->
                 let rd = Schema.rel sch ~type_name:tn r in
                 let resolved =
                   Schema.resolve_export sch ~type_name:rd.Schema.target ~rel:rd.Schema.inverse
                     name
                 in
                 Instance.linked inst r |> List.map (fun j -> build ~via:r j resolved))
        in
        { id; attr; value; fresh; kind = `Derived; via; children }
      end
  in
  build root_id root_attr

let render db id attr =
  let buf = Buffer.create 256 in
  let rec go depth (n : node) =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    (match n.via with
    | Some r -> Buffer.add_string buf (Printf.sprintf "-[%s]-> " r)
    | None -> ());
    Buffer.add_string buf
      (Printf.sprintf "%d.%s = %s%s%s\n" n.id n.attr (Value.to_string n.value)
         (if n.fresh then "" else "  (stale)")
         (match n.kind with
         | `Shared -> "  (shared, expanded above)"
         | `Intrinsic -> "  [intrinsic]"
         | `Derived -> ""));
    List.iter (go (depth + 1)) n.children
  in
  go 0 (tree db id attr);
  Buffer.contents buf
