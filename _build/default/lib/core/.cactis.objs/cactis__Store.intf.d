lib/core/store.mli: Cactis_storage Cactis_util Instance Schema Value
