examples/quickstart.mli:
