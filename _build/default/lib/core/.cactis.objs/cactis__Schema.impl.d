lib/core/schema.ml: Buffer Errors Hashtbl List Printf String Value
