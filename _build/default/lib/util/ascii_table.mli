(** Minimal ASCII table rendering for benchmark reports.

    [bench/main.exe] prints one table per experiment in the same
    rows/series shape the paper's claims are stated in; this module keeps
    the rendering in one place. *)

type align = Left | Right

(** [render ~headers ?aligns rows] lays the rows out with padded columns
    and a header separator.  [aligns] defaults to left for the first
    column and right for the rest (the common "label, then numbers"
    shape). *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ~title ~headers ?aligns rows] renders with a section title to
    stdout. *)
val print : title:string -> headers:string list -> ?aligns:align list -> string list list -> unit

(** Format helpers used throughout the bench harness. *)
val fmt_int : int -> string

val fmt_float : ?decimals:int -> float -> string

(** [fmt_ratio a b] renders [a/b] as e.g. "12.3x"; "-" when [b] is 0. *)
val fmt_ratio : float -> float -> string
