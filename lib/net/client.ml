type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable watermark : int;  (* version of our last commit *)
  mutable open_ : bool;
}

exception Remote of { code : Proto.error_code; message : string }
exception Transport of string

let connect ?(host = "127.0.0.1") ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; next_id = 1; watermark = 0; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with _ -> ()
  end

let request ?(span = 0) t req =
  if not t.open_ then raise (Transport "client closed");
  let env = { Proto.req_id = t.next_id; span_id = span } in
  t.next_id <- t.next_id + 1;
  Frame.send t.fd (Proto.encode_req env req);
  match Frame.recv t.fd with
  | None -> raise (Transport "connection closed by server")
  | Some payload ->
    let renv, resp = Proto.decode_resp payload in
    (* Protocol errors for undecodable requests echo req_id 0. *)
    if renv.Proto.req_id <> env.Proto.req_id && renv.Proto.req_id <> 0 then
      raise
        (Transport
           (Printf.sprintf "response id %d does not match request id %d" renv.Proto.req_id
              env.Proto.req_id));
    resp

let fail_unexpected resp =
  match resp with
  | Proto.Error { code; message } -> raise (Remote { code; message })
  | _ -> raise (Transport "unexpected response variant")

let ping t = match request t Proto.Ping with Proto.Pong -> () | r -> fail_unexpected r

type session_info = { version : int; readers : int; instances : int }

let open_session t =
  match request t Proto.Open_session with
  | Proto.Opened { version; readers; instances } -> { version; readers; instances }
  | r -> fail_unexpected r

let read ?span ?min_version t ~instance ~attr =
  let min_version = Option.value ~default:t.watermark min_version in
  match request ?span t (Proto.Read { min_version; instance; attr }) with
  | Proto.Value { version; value } -> (value, version)
  | r -> fail_unexpected r

let traverse ?span ?min_version ?(depth = -1) t ~root ~rel ~attr =
  let min_version = Option.value ~default:t.watermark min_version in
  match request ?span t (Proto.Traverse { min_version; root; rel; attr; depth }) with
  | Proto.Traversed { version; visited; total } -> (visited, total, version)
  | r -> fail_unexpected r

let commit ?span t updates =
  match request ?span t (Proto.Commit updates) with
  | Proto.Committed { version; created } ->
    t.watermark <- max t.watermark version;
    (version, created)
  | r -> fail_unexpected r

let last_commit t = t.watermark

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_reply { counters; latencies } -> (counters, latencies)
  | r -> fail_unexpected r

let metrics t =
  match request t Proto.Metrics with
  | Proto.Metrics_reply text -> text
  | r -> fail_unexpected r
