bench/workloads.ml: Array Cactis Cactis_util List
