module Store = Cactis.Store
module Instance = Cactis.Instance
module Usage = Cactis_storage.Usage
module Cluster = Cactis_storage.Cluster
module Rng = Cactis_util.Rng

type t = {
  site_count : int;
  placement : (int, int) Hashtbl.t;
  bounds : int array;  (* by_range only: bounds.(s) = lowest id of site s *)
}

let sites t = t.site_count
let site_of t id = Hashtbl.find_opt t.placement id

let balance t =
  let counts = Array.make t.site_count 0 in
  Hashtbl.iter (fun _ s -> counts.(s) <- counts.(s) + 1) t.placement;
  counts

let check_sites sites = if sites < 1 then invalid_arg "Partition: sites must be >= 1"

let random rng ~ids ~sites =
  check_sites sites;
  let placement = Hashtbl.create (List.length ids) in
  List.iter (fun id -> Hashtbl.replace placement id (Rng.int rng sites)) ids;
  { site_count = sites; placement; bounds = [||] }

let round_robin ~ids ~sites =
  check_sites sites;
  let placement = Hashtbl.create (List.length ids) in
  List.iteri (fun i id -> Hashtbl.replace placement id (i mod sites)) (List.sort compare ids);
  { site_count = sites; placement; bounds = [||] }

(* A site is a block whose capacity is its share of the database; the
   paper's greedy clustering then gravitates hot, tightly-linked
   instances onto the same site. *)
let by_usage store ~sites =
  check_sites sites;
  let ids = Store.instance_ids store in
  let n = List.length ids in
  let capacity = max 1 ((n + sites - 1) / sites) in
  let usage = Store.usage store in
  let instances = List.map (fun id -> (id, Usage.instance_count usage id)) ids in
  let links =
    ids
    |> List.concat_map (fun id ->
           let inst = Store.get store id in
           Instance.all_links inst
           |> List.concat_map (fun (rel, targets) ->
                  List.filter_map
                    (fun other ->
                      if id < other then
                        Some
                          {
                            Cluster.a = id;
                            b = other;
                            rel;
                            count =
                              Usage.crossing_count usage ~from_instance:id ~rel
                                ~to_instance:other;
                          }
                      else None)
                    targets))
  in
  let assignment = Cluster.pack ~block_capacity:capacity ~instances ~links in
  (* The greedy packer may open more "blocks" than sites when capacities
     round awkwardly; fold the overflow back round-robin. *)
  let placement = Hashtbl.create n in
  Hashtbl.iter
    (fun id block -> Hashtbl.replace placement id (block mod sites))
    assignment.Cluster.block_of;
  { site_count = sites; placement; bounds = [||] }

(* Contiguous id-range sharding: sorted ids split into [sites] chunks of
   (near-)equal size.  Unlike the hash/usage placements above, a range
   placement can route an id it has never seen — [site_of_range] only
   compares against the chunk boundaries — which is what a server wants
   when new instances are created after the partition was drawn. *)
let by_range ~ids ~sites =
  check_sites sites;
  let sorted = List.sort_uniq compare ids in
  let n = List.length sorted in
  let arr = Array.of_list sorted in
  let chunk = max 1 ((n + sites - 1) / sites) in
  let bounds =
    Array.init sites (fun s ->
        if n = 0 then 0 else arr.(min (s * chunk) (n - 1)))
  in
  (* First bound covers everything below it too. *)
  if sites > 0 then bounds.(0) <- min_int;
  let placement = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.replace placement id (min (sites - 1) (i / chunk))) arr;
  { site_count = sites; placement; bounds }

let site_of_range t id =
  if Array.length t.bounds = 0 then invalid_arg "Partition.site_of_range: not a range partition";
  let s = ref 0 in
  for i = 1 to t.site_count - 1 do
    if id >= t.bounds.(i) then s := i
  done;
  !s

let range_bounds t = Array.copy t.bounds

let traffic store t ~cross =
  Usage.crossings (Store.usage store)
  |> List.fold_left
       (fun acc ({ Usage.from_instance; to_instance; _ }, count) ->
         match (site_of t from_instance, site_of t to_instance) with
         | Some a, Some b when (a <> b) = cross -> acc + count
         | Some _, Some _ -> acc
         | None, _ | _, None -> acc)
       0

let cross_site_traffic store t = traffic store t ~cross:true
let local_traffic store t = traffic store t ~cross:false
