(** Offline post-mortem analyzer ([cactis doctor]).

    Correlates a flight-recorder dump ({!Cactis_obs.Flight}) with the
    WAL tail of a persistence directory: reconstructs a merged event
    timeline across domains, reports the last durable version against
    the last commit the process attempted, and lists what each domain
    had in flight when the dump was taken.

    Versions in the verdict are relative to the WAL's checkpoint
    baseline: the snapshot holds everything up to the last checkpoint,
    and each intact WAL record is one more durable version on top —
    exactly what {!Persist.recover} will replay.  On a directory that
    has never checkpointed, "records since baseline" {e is} the
    database's version count. *)

module Flight = Cactis_obs.Flight

type wal_info = {
  dw_generation : int;  (** checkpoint generation stamped in the log header *)
  dw_schema_version : int;  (** schema version at log start *)
  dw_records : int;  (** intact records — what recovery will replay *)
  dw_torn : bool;  (** trailing bytes after the intact prefix *)
  dw_undecodable : int;  (** intact frames whose delta failed to decode *)
  dw_data_ops : int;  (** data ops across decodable records *)
  dw_schema_ops : int;  (** schema ops across decodable records *)
}

type report = {
  r_dump : Flight.dump;
  r_last_commit : int;  (** highest committed version in the dump (0 = none) *)
  r_last_attempt : int;  (** highest version a [txn_begin] aimed at (0 = none) *)
  r_open_txns : (string * int) list;
      (** domains holding a txn open at dump time (name, target version) *)
  r_wal : wal_info option;
  r_last_durable : int option;  (** intact WAL records since checkpoint baseline *)
}

(** [load path] — read and decode a [CFR1] dump file. *)
val load : string -> (Flight.dump, string) result

(** [analyze ?wal_dir dump] — correlate the dump with [wal_dir]'s WAL
    (omit [wal_dir] for a flight-only report). *)
val analyze : ?wal_dir:string -> Flight.dump -> report

(** One line for a single event (timeline formatting, no timestamp). *)
val describe_event : Flight.event -> string

(** Full human-readable report: merged timeline (all domains, by
    timestamp, relative ms) followed by the verdict.  [limit] keeps
    only the newest [limit] timeline lines (default unlimited). *)
val render : ?limit:int -> report -> string

(** The verdict as a JSON object (machine-readable [--json] output). *)
val render_json : report -> string
