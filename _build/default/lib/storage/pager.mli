(** Instance-to-block placement plus buffered access.

    The pager is how the database engine touches persistent instances:
    every attribute read or write on an instance calls {!touch}, which
    resolves the instance's block and charges the buffer pool.  New
    instances are appended to the current tail block (sequential
    placement); {!apply_clustering} installs the layout computed by
    {!Cluster.pack}. *)

type t

val create : ?block_capacity:int -> ?buffer_capacity:int -> unit -> t

(** Defaults: [block_capacity = 8] instances per block,
    [buffer_capacity = 64] blocks. *)

(** [register t id] places a newly created instance on the tail block. *)
val register : t -> int -> unit

(** [forget t id] removes a deleted instance from the placement map
    (its slot is not reused until the next re-clustering). *)
val forget : t -> int -> unit

(** [touch t id] charges one buffered access to [id]'s block; returns
    whether the block was already resident.  Unknown instances are
    registered first (defensive, keeps the engine total). *)
val touch : t -> int -> [ `Hit | `Miss ]

(** [resident t id] is true iff [id]'s block is buffered; used by the
    chunk scheduler's high-priority promotion.  Does not affect LRU
    order or statistics. *)
val resident : t -> int -> bool

(** [block_of t id] is the current block of [id], if registered. *)
val block_of : t -> int -> int option

(** [apply_clustering t assignment] replaces the placement map and flushes
    the buffer pool (the reorganized database starts cold). *)
val apply_clustering : t -> Cluster.assignment -> unit

val disk : t -> Disk.t
val pool : t -> Buffer_pool.t
val block_capacity : t -> int

(** Instances currently registered. *)
val instances : t -> int list

(** [reset_io t] clears I/O statistics and flushes the pool; placement is
    kept.  Used between experiment phases. *)
val reset_io : t -> unit
