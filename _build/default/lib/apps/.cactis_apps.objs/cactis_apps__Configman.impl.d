lib/apps/configman.ml: Buffer Cactis Cactis_ddl List Printf
