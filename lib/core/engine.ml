module Counters = Cactis_util.Counters
module Decaying_avg = Cactis_util.Decaying_avg
module Symbol = Cactis_util.Symbol
module Usage = Cactis_storage.Usage
module Clock = Cactis_obs.Clock
module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram
module Profile = Cactis_obs.Profile

type strategy =
  | Cactis
  | Eager_triggers
  | Recompute_all

type recovery = Store.t -> int -> (int * string * Value.t) list

(* Hot-path tables key on [Symbol.pack instance_id attr_symbol] — a
   single immediate int — instead of [(int * string)] pairs; attribute
   and dependency resolution goes through the schema's compiled layouts
   (slot indexes), so steady-state marking/evaluation never hashes a
   string. *)
type t = {
  store : Store.t;
  mutable strategy : strategy;
  mutable sched : Sched.strategy;
  watched : (int, unit) Hashtbl.t;  (* packed (id, attr sym) *)
  pending_important : (int, unit) Hashtbl.t;  (* packed (id, attr sym) *)
  recoveries : (string, recovery) Hashtbl.t;
  mutable repair : (int -> string -> Value.t -> unit) option;
  mutable in_recovery : bool;
  (* Constraint attrs observed false during the current evaluation run. *)
  mutable violations : (int * int) list;  (* (id, attr sym) *)
  (* Cached counter cells (shared with the registry; reset-safe). *)
  c_rule_evals : int ref;
  c_mark_visits : int ref;
  c_mark_cutoffs : int ref;
  c_eval_procs : int ref;
  c_demand_procs : int ref;
  c_constraint_checks : int ref;
  c_intrinsic_sets : int ref;
  c_misses : int ref;
  (* Observability: shared tracer + per-phase latency histograms (always
     on) and an optional propagation profile (installed per commit by
     [Db.set_profiling]). *)
  obs : Cactis_obs.Ctx.t;
  h_mark_wave : Histogram.h;
  h_eval_wave : Histogram.h;
  h_propagate : Histogram.h;
  mutable prof : Profile.t option;
  (* Bounded fixed-point evaluation of convergent cycles ([Far86]):
     [None] = off (cycles raise), [Some n] = iterate up to [n] sweeps. *)
  mutable fixpoint : int option;
  c_fixpoint_runs : int ref;
  c_fixpoint_sweeps : int ref;
  h_fixpoint_iters : Histogram.h;
}

let create ?(strategy = Cactis) ?(sched = Sched.Greedy) store =
  let counters = Store.counters store in
  let obs = Store.obs store in
  let hists = obs.Cactis_obs.Ctx.hists in
  {
    obs;
    h_mark_wave = Histogram.cell hists "mark_wave";
    h_eval_wave = Histogram.cell hists "eval_wave";
    h_propagate = Histogram.cell hists "propagate";
    h_fixpoint_iters = Histogram.cell hists "fixpoint_iters";
    prof = None;
    fixpoint = None;
    store;
    strategy;
    sched;
    watched = Hashtbl.create 32;
    pending_important = Hashtbl.create 32;
    recoveries = Hashtbl.create 8;
    repair = None;
    in_recovery = false;
    violations = [];
    c_rule_evals = Counters.cell counters "rule_evals";
    c_mark_visits = Counters.cell counters "mark_visits";
    c_mark_cutoffs = Counters.cell counters "mark_cutoffs";
    c_eval_procs = Counters.cell counters "eval_procs";
    c_demand_procs = Counters.cell counters "demand_procs";
    c_constraint_checks = Counters.cell counters "constraint_checks";
    c_intrinsic_sets = Counters.cell counters "intrinsic_sets";
    c_misses = Counters.cell counters "block_misses";
    c_fixpoint_runs = Counters.cell counters "fixpoint_runs";
    c_fixpoint_sweeps = Counters.cell counters "fixpoint_sweeps";
  }

let store t = t.store
let strategy t = t.strategy
let set_strategy t s = t.strategy <- s
let sched_strategy t = t.sched
let set_sched_strategy t s = t.sched <- s
let set_repair t f = t.repair <- Some f
let register_recovery t name f = Hashtbl.replace t.recoveries name f
let set_profile t p = t.prof <- p
let profile t = t.prof

let set_fixed_point ?(max_iters = 1000) t on =
  if max_iters < 1 then Errors.type_error "set_fixed_point: max_iters must be positive";
  t.fixpoint <- (if on then Some max_iters else None)

let fixed_point t = t.fixpoint
let trace t = t.obs.Cactis_obs.Ctx.trace

let schema t = Store.schema t.store
let counters t = Store.counters t.store

let slot_info (inst : Instance.t) ix =
  let lay = inst.Instance.layout in
  Schema.refresh_layout lay;
  lay.Schema.lay_slots.(ix)

let link_info (inst : Instance.t) ix =
  let lay = inst.Instance.layout in
  Schema.refresh_layout lay;
  lay.Schema.lay_links.(ix)

let rule_of_si (inst : Instance.t) (si : Schema.slot_info) =
  match si.Schema.si_rule with
  | Some cr -> cr
  | None ->
    Errors.type_error "attribute %s of %s is intrinsic" si.Schema.si_name inst.Instance.type_name

(* ------------------------------------------------------------------ *)
(* Importance                                                          *)

let important_si t id (si : Schema.slot_info) =
  si.Schema.si_constrained || Hashtbl.mem t.watched (Symbol.pack id si.Schema.si_sym)

let watch t id a =
  Hashtbl.replace t.watched (Symbol.pack id (Symbol.intern a)) ();
  match Store.get_opt t.store id with
  | Some inst -> (
    match Instance.find_slot inst a with
    | Some ix ->
      if (Instance.slot_ix inst ix).Instance.state = Instance.Out_of_date then
        Hashtbl.replace t.pending_important (Symbol.pack id (Symbol.intern a)) ()
    | None -> ())
  | None -> ()

let unwatch t id a = Hashtbl.remove t.watched (Symbol.pack id (Symbol.intern a))
let is_watched t id a = Hashtbl.mem t.watched (Symbol.pack id (Symbol.intern a))

(* ------------------------------------------------------------------ *)
(* Dependency enumeration                                              *)

(* A mark/trigger target: attribute [t_ix]/[t_sym] of instance [t_id];
   [t_via] is the (instance, rel symbol) crossing used for usage
   statistics and cost tags. *)
type target = {
  t_id : int;
  t_ix : int;
  t_sym : int;
  t_via : (int * int) option;
}

(* Dependents of slot [ix] of [inst]: within the instance, and across
   each relationship to currently-linked neighbours — all resolved at
   schema-compile time to index/symbol tables. *)
let iter_dependents (inst : Instance.t) ix f =
  let lay = inst.Instance.layout in
  Schema.refresh_layout lay;
  let si = lay.Schema.lay_slots.(ix) in
  Array.iter
    (fun d ->
      let dsi = lay.Schema.lay_slots.(d) in
      f { t_id = inst.Instance.id; t_ix = d; t_sym = dsi.Schema.si_sym; t_via = None })
    si.Schema.si_self_deps;
  Array.iter
    (fun (xd : Schema.cross_dep) ->
      Instance.iter_linked inst xd.Schema.xd_link (fun j ->
          f
            {
              t_id = j;
              t_ix = xd.Schema.xd_slot;
              t_sym = xd.Schema.xd_sym;
              t_via = Some (inst.Instance.id, xd.Schema.xd_rel_sym);
            }))
    si.Schema.si_cross_deps

let dependents_ix inst ix =
  let acc = ref [] in
  iter_dependents inst ix (fun tgt -> acc := tgt :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Environment construction shared by all evaluators                   *)

(* The attribute actually transmitted when [name] is requested across the
   reader's relationship [r]: the target type may alias it (Figure 1's
   [consists_of exp_time = exp_compl]).  String-based variant kept for
   the oracle; the engine proper uses the compiled [r_slot]/[r_sym]. *)
let resolve_transmission t (inst : Instance.t) r name =
  let rd = Schema.rel (schema t) ~type_name:inst.Instance.type_name r in
  Schema.resolve_export (schema t) ~type_name:rd.Schema.target ~rel:rd.Schema.inverse name

(* [fetch_value j slot_ix] must return the (up-to-date) value of a
   possibly-derived slot of instance [j].  Reads are validated against
   the rule's declared sources so an undeclared read fails loudly
   instead of being silently non-incremental. *)
let build_env t (cr : Schema.compiled_rule) (inst : Instance.t) ~fetch_value =
  let srcs = cr.Schema.cr_sources in
  let n = Array.length srcs in
  let self_value b =
    let rec find i =
      if i >= n then
        Errors.type_error "rule on %s reads undeclared source self.%s" inst.Instance.type_name b
      else
        match srcs.(i) with
        | Schema.C_self { s_name; s_slot } when String.equal s_name b ->
          fetch_value inst.Instance.id s_slot
        | _ -> find (i + 1)
    in
    find 0
  in
  let related_values r name =
    let rec find i =
      if i >= n then
        Errors.type_error "rule on %s reads undeclared source %s.%s" inst.Instance.type_name r
          name
      else
        match srcs.(i) with
        | Schema.C_rel c when String.equal c.r_rel r && String.equal c.r_attr name ->
          let usage = Store.usage t.store in
          Instance.linked_ix inst c.r_link
          |> List.map (fun j ->
                 if c.r_slot < 0 then
                   Errors.unknown "type %s has no attribute %s" c.r_target (Symbol.name c.r_sym);
                 Usage.cross_sym usage ~from_instance:inst.Instance.id ~rel_sym:c.r_rel_sym
                   ~to_instance:j;
                 fetch_value j c.r_slot)
        | _ -> find (i + 1)
    in
    find 0
  in
  { Schema.self_value; related_values }

let record_constraint_check t (inst : Instance.t) (si : Schema.slot_info) v =
  if si.Schema.si_constrained then begin
    incr t.c_constraint_checks;
    match v with
    | Value.Bool false ->
      t.violations <- (inst.Instance.id, si.Schema.si_sym) :: t.violations
    | Value.Bool true -> ()
    | other ->
      Errors.type_error "constraint attribute %s.%s evaluated to non-boolean %s"
        inst.Instance.type_name si.Schema.si_name (Value.to_string other)
  end

(* ------------------------------------------------------------------ *)
(* Simple recursive evaluator (used by the baselines, by bootstrap     *)
(* paths, and — without caching — by the oracle)                       *)

let rec eval_rec t path id ix =
  let inst = Store.get t.store id in
  let s = Instance.slot_ix inst ix in
  let si = slot_info inst ix in
  match s.Instance.state with
  | Instance.Up_to_date -> s.Instance.value
  | Instance.In_progress ->
    raise (Errors.Cycle (List.rev ((id, si.Schema.si_name) :: path)))
  | Instance.Out_of_date ->
    if not si.Schema.si_derived then begin
      (* Intrinsic slots are always up to date; an out-of-date intrinsic
         can only be a slot created lazily after a schema extension —
         give it the schema default. *)
      (match si.Schema.si_def.Schema.kind with
      | Schema.Intrinsic default ->
        s.Instance.value <- default;
        s.Instance.state <- Instance.Up_to_date
      | Schema.Derived _ -> assert false);
      s.Instance.value
    end
    else begin
      s.Instance.state <- Instance.In_progress;
      Store.touch t.store id;
      let cr = rule_of_si inst si in
      let fetch_value j jx =
        let jinst = Store.get t.store j in
        if j <> id then Store.touch t.store j;
        let jsi = slot_info jinst jx in
        if jsi.Schema.si_derived then eval_rec t ((id, si.Schema.si_name) :: path) j jx
        else (Instance.slot_ix jinst jx).Instance.value
      in
      let env = build_env t cr inst ~fetch_value in
      let v =
        try cr.Schema.cr_rule.Schema.compute env
        with e ->
          s.Instance.state <- Instance.Out_of_date;
          raise e
      in
      incr t.c_rule_evals;
      (match t.prof with
      | Some p -> Profile.on_eval p ~key:(Symbol.pack id si.Schema.si_sym)
      | None -> ());
      s.Instance.value <- v;
      s.Instance.state <- Instance.Up_to_date;
      Store.notify_write t.store id si.Schema.si_name v;
      Hashtbl.remove t.pending_important (Symbol.pack id si.Schema.si_sym);
      record_constraint_check t inst si v;
      v
    end

(* ------------------------------------------------------------------ *)
(* Mark-out-of-date phase (chunked)                                    *)

let mark_cost t j = if Store.resident t.store j then 0.0 else 1.0

let run_marks t targets =
  if targets <> [] then begin
    let start_ns = Clock.now_ns () in
    let visits0 = !(t.c_mark_visits) and cutoffs0 = !(t.c_mark_cutoffs) in
    let sched = Sched.create t.sched t.store in
    let usage = Store.usage t.store in
    let schedule tgt =
      (match t.prof with Some p -> Profile.on_edge p | None -> ());
      (match tgt.t_via with
      | Some (i, rsym) -> Usage.cross_sym usage ~from_instance:i ~rel_sym:rsym ~to_instance:tgt.t_id
      | None -> ());
      Sched.schedule sched ~instance:tgt.t_id ~cost:(mark_cost t tgt.t_id) tgt
    in
    List.iter schedule targets;
    let rec loop () =
      match Sched.next sched with
      | None -> ()
      | Some tgt ->
        (match Store.get_opt t.store tgt.t_id with
        | None -> ()
        | Some inst ->
          Store.touch t.store tgt.t_id;
          incr t.c_mark_visits;
          let s = Instance.slot_ix inst tgt.t_ix in
          (match s.Instance.state with
          | Instance.Out_of_date ->
            (* Already out of date: the traversal is cut short here — this
               is the source of the O(1) repeated-update behaviour. *)
            incr t.c_mark_cutoffs;
            (match t.prof with Some p -> Profile.on_cutoff p | None -> ())
          | Instance.Up_to_date | Instance.In_progress ->
            s.Instance.state <- Instance.Out_of_date;
            (match t.prof with
            | Some p -> Profile.on_mark p ~key:(Symbol.pack tgt.t_id tgt.t_sym)
            | None -> ());
            Store.notify_mark t.store tgt.t_id (Symbol.name tgt.t_sym);
            if important_si t tgt.t_id (slot_info inst tgt.t_ix) then
              Hashtbl.replace t.pending_important (Symbol.pack tgt.t_id tgt.t_sym) ();
            iter_dependents inst tgt.t_ix schedule));
        loop ()
    in
    loop ();
    Histogram.observe t.h_mark_wave (Clock.elapsed_s ~since:start_ns);
    let tr = trace t in
    if Trace.enabled tr then
      Trace.complete tr ~cat:"engine"
        ~args:
          [
            ("targets", Trace.I (List.length targets));
            ("visits", Trace.I (!(t.c_mark_visits) - visits0));
            ("cutoffs", Trace.I (!(t.c_mark_cutoffs) - cutoffs0));
          ]
        ~start_ns "mark_wave"
  end

(* ------------------------------------------------------------------ *)
(* Demand-driven evaluation phase (chunked)                            *)

type frame = {
  f_id : int;
  f_ix : int;  (* slot index of the attribute being evaluated *)
  f_sym : int;
  mutable f_pending : int;
  mutable f_cost : float;  (* block misses charged to this subtree *)
  f_parent : frame option;
  f_via : (int * int) option;  (* (requesting instance, rel symbol) *)
}

type eval_proc =
  | Demand of {
      d_id : int;
      d_ix : int;
      d_parent : frame option;
      d_via : (int * int) option;
    }
  | Finish of frame

(* ------------------------------------------------------------------ *)
(* Bounded fixed-point evaluation of stuck (cyclic) frames ([Far86])   *)

(* When the demand scheduler drains with frames still open, the
   pending-wait graph contains at least one dependency cycle.  With
   fixed-point mode armed ([set_fixed_point]) and every attribute on a
   cycle carrying a bounded convergence shape ({!Schema.rule_shape}),
   the stuck slots are iterated Gauss-Seidel-style: cycle members with
   a lattice bottom are seeded there (Kleene iteration from bottom, the
   least-fixed-point semantics flow analyses want), the rest join the
   sweeps lazily, and contributions of slots not yet evaluated in the
   current run are dropped from aggregate reads.  Convergence is
   claimed only after an actually change-free sweep, so a mis-declared
   shape costs iterations (up to the cap) but never yields a wrong
   "stable" verdict — at worst the run falls back to [Errors.Cycle]. *)

type fp_entry = {
  e_key : int;  (* packed (id, attr sym) *)
  e_inst : Instance.t;
  e_ix : int;
  e_si : Schema.slot_info;
  mutable e_computed : bool;  (* evaluated at least once this run *)
}

let fp_bottom = function
  | Schema.Shape_bool -> Some (Value.Bool false)
  | Schema.Shape_lattice { bottom; _ } -> Some bottom
  | Schema.Shape_min | Schema.Shape_max | Schema.Shape_count | Schema.Shape_unbounded -> None

(* Longest strictly-increasing chain a slot of this shape can climb:
   the per-slot contribution to the static sweep bound.  Min/max chains
   are bounded by the number of distinct values in the cycle. *)
let fp_height ~n_cyclic = function
  | Schema.Shape_bool | Schema.Shape_count -> 1
  | Schema.Shape_lattice { height; _ } -> height
  | Schema.Shape_min | Schema.Shape_max -> n_cyclic
  | Schema.Shape_unbounded -> max_int

let solve_fixpoint t ~max_iters frames waiters =
  let start_ns = Clock.now_ns () in
  (* Resolve every stuck frame to a live slot; a frame whose instance
     vanished mid-run falls back to the cycle-error path. *)
  let entries =
    Hashtbl.fold
      (fun key (frame : frame) acc ->
        match acc with
        | None -> None
        | Some l -> (
          match Store.get_opt t.store frame.f_id with
          | None -> None
          | Some inst ->
            let si = slot_info inst frame.f_ix in
            Some
              ({ e_key = key; e_inst = inst; e_ix = frame.f_ix; e_si = si; e_computed = false }
              :: l)))
      frames (Some [])
  in
  match entries with
  | None -> false
  | Some entries ->
    (* Deterministic sweep order. *)
    let entries =
      List.sort
        (fun a b ->
          if a.e_inst.Instance.id <> b.e_inst.Instance.id then
            compare a.e_inst.Instance.id b.e_inst.Instance.id
          else String.compare a.e_si.Schema.si_name b.e_si.Schema.si_name)
        entries
    in
    let by_key = Hashtbl.create (2 * List.length entries) in
    List.iter (fun e -> Hashtbl.replace by_key e.e_key e) entries;
    (* Wait graph among stuck frames (waiter -> waited-on key): the
       frames on its cycles must carry bounded shapes; the acyclic cone
       stuck above them just re-evaluates until its inputs settle. *)
    let deps : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let add_dep w k =
      let prev = match Hashtbl.find_opt deps w with Some l -> l | None -> [] in
      Hashtbl.replace deps w (k :: prev)
    in
    Hashtbl.iter
      (fun key r ->
        if Hashtbl.mem by_key key then
          List.iter
            (fun (w : frame) ->
              let wkey = Symbol.pack w.f_id w.f_sym in
              if Hashtbl.mem by_key wkey then add_dep wkey key)
            !r)
      waiters;
    let on_cycle key =
      let seen = Hashtbl.create 8 in
      let rec go k =
        List.exists
          (fun k' ->
            k' = key
            || (not (Hashtbl.mem seen k')
               &&
               (Hashtbl.add seen k' ();
                go k')))
          (match Hashtbl.find_opt deps k with Some l -> l | None -> [])
      in
      go key
    in
    let cyclic : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun e -> if on_cycle e.e_key then Hashtbl.add cyclic e.e_key ()) entries;
    let shape_of e =
      Schema.rule_shape (schema t) ~type_name:e.e_inst.Instance.type_name
        ~attr:e.e_si.Schema.si_name
    in
    let admissible =
      List.for_all
        (fun e ->
          (not (Hashtbl.mem cyclic e.e_key))
          || match shape_of e with Some s -> Schema.shape_bounded s | None -> false)
        entries
    in
    if not admissible then false
    else begin
      let n_cyclic = Hashtbl.length cyclic in
      (* Static bound: one settling sweep + one per lattice step any
         cycle member can climb + one per stuck frame for the cone. *)
      let static_bound =
        List.fold_left
          (fun acc e ->
            if Hashtbl.mem cyclic e.e_key then
              acc + (match shape_of e with Some s -> fp_height ~n_cyclic s | None -> 0)
            else acc)
          (1 + List.length entries)
          entries
      in
      let cap = min max_iters static_bound in
      List.iter
        (fun e ->
          if Hashtbl.mem cyclic e.e_key then
            match shape_of e with
            | Some s -> (
              match fp_bottom s with
              | Some b ->
                (Instance.slot_ix e.e_inst e.e_ix).Instance.value <- b;
                e.e_computed <- true
              | None -> ())
            | None -> ())
        entries;
      (* [None] = the slot belongs to this run and has not been
         evaluated yet: its contribution is dropped from aggregates. *)
      let fetch_opt self_id j jx =
        let jinst = Store.get t.store j in
        if j <> self_id then Store.touch t.store j;
        let s = Instance.slot_ix jinst jx in
        let jsi = slot_info jinst jx in
        match Hashtbl.find_opt by_key (Symbol.pack j jsi.Schema.si_sym) with
        | Some e -> if e.e_computed then Some s.Instance.value else None
        | None ->
          (match s.Instance.state with
          | Instance.Up_to_date -> ()
          | Instance.Out_of_date | Instance.In_progress -> (
            match jsi.Schema.si_def.Schema.kind with
            | Schema.Intrinsic default ->
              s.Instance.value <- default;
              s.Instance.state <- Instance.Up_to_date
            | Schema.Derived _ -> ()));
          Some s.Instance.value
      in
      let env_for (cr : Schema.compiled_rule) (inst : Instance.t) =
        let srcs = cr.Schema.cr_sources in
        let n = Array.length srcs in
        let self_value b =
          let rec find i =
            if i >= n then
              Errors.type_error "rule on %s reads undeclared source self.%s"
                inst.Instance.type_name b
            else
              match srcs.(i) with
              | Schema.C_self { s_name; s_slot } when String.equal s_name b -> (
                match fetch_opt inst.Instance.id inst.Instance.id s_slot with
                | Some v -> v
                | None -> (Instance.slot_ix inst s_slot).Instance.value)
              | _ -> find (i + 1)
          in
          find 0
        in
        let related_values r name =
          let rec find i =
            if i >= n then
              Errors.type_error "rule on %s reads undeclared source %s.%s"
                inst.Instance.type_name r name
            else
              match srcs.(i) with
              | Schema.C_rel c when String.equal c.r_rel r && String.equal c.r_attr name ->
                let usage = Store.usage t.store in
                Instance.linked_ix inst c.r_link
                |> List.filter_map (fun j ->
                       if c.r_slot < 0 then
                         Errors.unknown "type %s has no attribute %s" c.r_target
                           (Symbol.name c.r_sym);
                       Usage.cross_sym usage ~from_instance:inst.Instance.id
                         ~rel_sym:c.r_rel_sym ~to_instance:j;
                       fetch_opt inst.Instance.id j c.r_slot)
              | _ -> find (i + 1)
          in
          find 0
        in
        { Schema.self_value; related_values }
      in
      let sweeps = ref 0 in
      let stable = ref false in
      let converged =
        while (not !stable) && !sweeps < cap do
          incr sweeps;
          let changed = ref false in
          List.iter
            (fun e ->
              Store.touch t.store e.e_inst.Instance.id;
              let cr = rule_of_si e.e_inst e.e_si in
              match cr.Schema.cr_rule.Schema.compute (env_for cr e.e_inst) with
              | v ->
                incr t.c_rule_evals;
                let s = Instance.slot_ix e.e_inst e.e_ix in
                if (not e.e_computed) || not (Value.equal v s.Instance.value) then
                  changed := true;
                e.e_computed <- true;
                s.Instance.value <- v
              | exception _ ->
                (* A rule crashing this sweep (e.g. a virgin Null read of a
                   cone slot whose inputs have not settled yet) is not
                   fatal: the entry stays uncomputed and retries next
                   sweep.  If it never succeeds, the cap expires and the
                   caller reports a plain dependency cycle. *)
                incr t.c_rule_evals)
            entries;
          if (not !changed) && List.for_all (fun e -> e.e_computed) entries then
            stable := true
        done;
        !stable
      in
      if converged then begin
        incr t.c_fixpoint_runs;
        t.c_fixpoint_sweeps := !(t.c_fixpoint_sweeps) + !sweeps;
        Histogram.observe t.h_fixpoint_iters (float_of_int !sweeps);
        List.iter
          (fun e ->
            let s = Instance.slot_ix e.e_inst e.e_ix in
            s.Instance.state <- Instance.Up_to_date;
            Store.notify_write t.store e.e_inst.Instance.id e.e_si.Schema.si_name
              s.Instance.value;
            Hashtbl.remove t.pending_important e.e_key;
            record_constraint_check t e.e_inst e.e_si s.Instance.value)
          entries;
        let tr = t.obs.Cactis_obs.Ctx.trace in
        if Trace.enabled tr then
          Trace.complete tr ~cat:"engine"
            ~args:
              [
                ("frames", Trace.I (List.length entries));
                ("cyclic", Trace.I n_cyclic);
                ("sweeps", Trace.I !sweeps);
              ]
            ~start_ns "fixpoint"
      end;
      converged
    end

let run_eval_inner t roots =
  let sched = Sched.create t.sched t.store in
  let frames : (int, frame) Hashtbl.t = Hashtbl.create 32 in
  let waiters : (int, frame list ref) Hashtbl.t = Hashtbl.create 32 in
  let misses () = !(t.c_misses) in
  let demand_cost via j =
    if Store.resident t.store j then 0.0
    else
      match via with
      | Some (i, rsym) -> Decaying_avg.value (Store.link_tag_sym t.store i rsym)
      | None -> 1.0
  in
  let schedule_demand ~parent ~via j jx =
    (match parent with Some p -> p.f_pending <- p.f_pending + 1 | None -> ());
    Sched.schedule sched ~instance:j ~cost:(demand_cost via j)
      (Demand { d_id = j; d_ix = jx; d_parent = parent; d_via = via })
  in
  let add_waiter key frame =
    match Hashtbl.find_opt waiters key with
    | Some r -> r := frame :: !r
    | None -> Hashtbl.add waiters key (ref [ frame ])
  in
  let schedule_finish frame = Sched.schedule sched ~instance:frame.f_id ~cost:0.0 (Finish frame) in
  let notify frame =
    frame.f_pending <- frame.f_pending - 1;
    if frame.f_pending = 0 then schedule_finish frame
  in
  let notify_waiters key =
    match Hashtbl.find_opt waiters key with
    | None -> ()
    | Some r ->
      let ws = !r in
      Hashtbl.remove waiters key;
      List.iter notify ws
  in
  (* Enumerate the out-of-date derived sources of the frame's attribute,
     demanding each. *)
  let open_frame frame (inst : Instance.t) =
    let cr = rule_of_si inst (slot_info inst frame.f_ix) in
    let demand_source j jx via =
      let jinst = Store.get t.store j in
      let jsi = slot_info jinst jx in
      if jsi.Schema.si_derived then begin
        let s = Instance.slot_ix jinst jx in
        match s.Instance.state with
        | Instance.Up_to_date -> ()
        | Instance.Out_of_date | Instance.In_progress ->
          schedule_demand ~parent:(Some frame) ~via j jx
      end
    in
    Array.iter
      (function
        | Schema.C_self { s_slot; _ } -> demand_source frame.f_id s_slot None
        | Schema.C_rel c ->
          Instance.iter_linked inst c.r_link (fun j ->
              if c.r_slot < 0 then
                Errors.unknown "type %s has no attribute %s" c.r_target (Symbol.name c.r_sym);
              demand_source j c.r_slot (Some (frame.f_id, c.r_rel_sym))))
      cr.Schema.cr_sources
  in
  let finish frame =
    let key = Symbol.pack frame.f_id frame.f_sym in
    match Store.get_opt t.store frame.f_id with
    | None ->
      Hashtbl.remove frames key;
      notify_waiters key
    | Some inst ->
      let before = misses () in
      Store.touch t.store frame.f_id;
      let si = slot_info inst frame.f_ix in
      let cr = rule_of_si inst si in
      let fetch_value j jx =
        let jinst = Store.get t.store j in
        if j <> frame.f_id then Store.touch t.store j;
        let s = Instance.slot_ix jinst jx in
        (match s.Instance.state with
        | Instance.Up_to_date -> ()
        | Instance.Out_of_date | Instance.In_progress -> (
          (* All derived sources were demanded and completed before this
             Finish was scheduled; an out-of-date source here is a
             lazily-created intrinsic slot (schema extension). *)
          match (slot_info jinst jx).Schema.si_def.Schema.kind with
          | Schema.Intrinsic default ->
            s.Instance.value <- default;
            s.Instance.state <- Instance.Up_to_date
          | Schema.Derived _ -> assert false));
        s.Instance.value
      in
      let env = build_env t cr inst ~fetch_value in
      let v = cr.Schema.cr_rule.Schema.compute env in
      incr t.c_rule_evals;
      (match t.prof with Some p -> Profile.on_eval p ~key | None -> ());
      let s = Instance.slot_ix inst frame.f_ix in
      s.Instance.value <- v;
      s.Instance.state <- Instance.Up_to_date;
      Store.notify_write t.store frame.f_id si.Schema.si_name v;
      Hashtbl.remove t.pending_important key;
      Hashtbl.remove frames key;
      record_constraint_check t inst si v;
      frame.f_cost <- frame.f_cost +. float_of_int (misses () - before);
      (* Self-adaptive statistics: the link that requested this value
         learns what the request actually cost (§2.3). *)
      (match frame.f_via with
      | Some (i, rsym) ->
        if Store.mem t.store i then
          Decaying_avg.observe (Store.link_tag_sym t.store i rsym) frame.f_cost
      | None -> ());
      (match frame.f_parent with Some p -> p.f_cost <- p.f_cost +. frame.f_cost | None -> ());
      notify_waiters key
  in
  let run_demand d_id d_ix d_parent d_via =
    match Store.get_opt t.store d_id with
    | None -> (match d_parent with Some p -> notify p | None -> ())
    | Some inst -> (
      let s = Instance.slot_ix inst d_ix in
      let si = slot_info inst d_ix in
      let key = Symbol.pack d_id si.Schema.si_sym in
      match s.Instance.state with
      | Instance.Up_to_date -> ( match d_parent with Some p -> notify p | None -> ())
      | Instance.In_progress -> (
        (* A frame already exists; wait for it. *)
        match d_parent with
        | Some p -> add_waiter key p
        | None -> ())
      | Instance.Out_of_date ->
        if not si.Schema.si_derived then begin
          (match si.Schema.si_def.Schema.kind with
          | Schema.Intrinsic default ->
            s.Instance.value <- default;
            s.Instance.state <- Instance.Up_to_date
          | Schema.Derived _ -> assert false);
          match d_parent with Some p -> notify p | None -> ()
        end
        else begin
          let before = misses () in
          Store.touch t.store d_id;
          incr t.c_demand_procs;
          let frame =
            {
              f_id = d_id;
              f_ix = d_ix;
              f_sym = si.Schema.si_sym;
              f_pending = 0;
              f_cost = float_of_int 0;
              f_parent = d_parent;
              f_via = d_via;
            }
          in
          Hashtbl.add frames key frame;
          (* The parent's pending (incremented at demand time) is settled
             by the waiter notification when this frame finishes. *)
          (match d_parent with Some p -> add_waiter key p | None -> ());
          s.Instance.state <- Instance.In_progress;
          open_frame frame inst;
          frame.f_cost <- frame.f_cost +. float_of_int (misses () - before);
          if frame.f_pending = 0 then schedule_finish frame
        end)
  in
  List.iter (fun (id, ix) -> schedule_demand ~parent:None ~via:None id ix) roots;
  let rec loop () =
    match Sched.next sched with
    | None -> ()
    | Some (Demand { d_id; d_ix; d_parent; d_via }) ->
      incr t.c_eval_procs;
      run_demand d_id d_ix d_parent d_via;
      loop ()
    | Some (Finish frame) ->
      incr t.c_eval_procs;
      finish frame;
      loop ()
  in
  let restore_open_frames () =
    (* A rule raising mid-run must not leave slots In_progress. *)
    Hashtbl.iter
      (fun _ frame ->
        match Store.get_opt t.store frame.f_id with
        | Some inst ->
          let s = Instance.slot_ix inst frame.f_ix in
          if s.Instance.state = Instance.In_progress then s.Instance.state <- Instance.Out_of_date
        | None -> ())
      frames
  in
  (try loop ()
   with e ->
     restore_open_frames ();
     raise e);
  (* Any frame still pending after the scheduler drained is waiting on a
     value that can never arrive: a dependency cycle. *)
  let stuck = Hashtbl.fold (fun _ frame acc -> frame :: acc) frames [] in
  if stuck <> [] then begin
    let solved =
      match t.fixpoint with
      | Some max_iters -> solve_fixpoint t ~max_iters frames waiters
      | None -> false
    in
    if not solved then begin
      (* Restore the stuck slots so the database is not left in
         progress.  (A failed fixed-point attempt may have clobbered
         values with partial iterates; Out_of_date makes them dead.) *)
      List.iter
        (fun frame ->
          match Store.get_opt t.store frame.f_id with
          | Some inst ->
            (Instance.slot_ix inst frame.f_ix).Instance.state <- Instance.Out_of_date
          | None -> ())
        stuck;
      raise
        (Errors.Cycle
           (List.sort compare (List.map (fun f -> (f.f_id, Symbol.name f.f_sym)) stuck)))
    end
  end

(* Timed wrapper around one demand-evaluation wave.  The histogram is
   always fed; the (richer) trace span only when the tracer is on.  The
   observation happens even when a rule raises, so failed waves still
   show up in the latency profile. *)
let run_eval t roots =
  if roots <> [] then begin
    let start_ns = Clock.now_ns () in
    let evals0 = !(t.c_rule_evals) in
    let observe () =
      Histogram.observe t.h_eval_wave (Clock.elapsed_s ~since:start_ns);
      let tr = t.obs.Cactis_obs.Ctx.trace in
      if Trace.enabled tr then
        Trace.complete tr ~cat:"engine"
          ~args:
            [
              ("roots", Trace.I (List.length roots));
              ("evals", Trace.I (!(t.c_rule_evals) - evals0));
            ]
          ~start_ns "eval_wave"
    in
    match run_eval_inner t roots with
    | () -> observe ()
    | exception e ->
      observe ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Constraint-violation handling                                       *)

let rec handle_violations t =
  let vs = List.rev t.violations in
  t.violations <- [];
  match vs with
  | [] -> ()
  | _ ->
    List.iter
      (fun (id, sym) ->
        match Store.get_opt t.store id with
        | None -> ()
        | Some inst -> (
          let ix =
            match Instance.find_slot_sym inst sym with Some ix -> ix | None -> assert false
          in
          let s = Instance.slot_ix inst ix in
          let si = slot_info inst ix in
          (* A recovery applied for an earlier violation in this batch may
             already have repaired (re-marked) this one. *)
          let still_false =
            s.Instance.state = Instance.Up_to_date && Value.equal s.Instance.value (Value.Bool false)
          in
          if still_false then
            let spec =
              match si.Schema.si_def.Schema.constraint_ with
              | Some spec -> spec
              | None -> assert false
            in
            let fail () =
              raise
                (Errors.Constraint_violation
                   { instance = id; attr = si.Schema.si_name; message = spec.Schema.message })
            in
            match spec.Schema.recovery with
            | None -> fail ()
            | Some name -> (
              if t.in_recovery then fail ();
              match (Hashtbl.find_opt t.recoveries name, t.repair) with
              | Some action, Some apply ->
                t.in_recovery <- true;
                let tr = t.obs.Cactis_obs.Ctx.trace in
                let start_ns = Clock.now_ns () in
                Fun.protect
                  ~finally:(fun () ->
                    t.in_recovery <- false;
                    if Trace.enabled tr then
                      Trace.complete tr ~cat:"engine"
                        ~args:[ ("instance", Trace.I id); ("action", Trace.S name) ]
                        ~start_ns "recovery")
                  (fun () ->
                    Counters.incr (counters t) "recoveries_run";
                    List.iter (fun (j, b, v) -> apply j b v) (action t.store id);
                    (* Re-evaluate the constraint after the repair. *)
                    let v = eval_rec t [] id ix in
                    handle_violations t;
                    if Value.equal v (Value.Bool false) then fail ())
              | _ -> fail ())))
      vs

(* ------------------------------------------------------------------ *)
(* Strategy dispatch for change notification                           *)

let invalidate_all t =
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst ->
        let lay = inst.Instance.layout in
        Schema.refresh_layout lay;
        Array.iteri
          (fun ix (si : Schema.slot_info) ->
            if si.Schema.si_derived then begin
              (Instance.slot_ix inst ix).Instance.state <- Instance.Out_of_date;
              Store.notify_mark t.store id si.Schema.si_name;
              if important_si t id si then
                Hashtbl.replace t.pending_important (Symbol.pack id si.Schema.si_sym) ()
            end)
          lay.Schema.lay_slots)
    (Store.instance_ids t.store)

let eval_everything t =
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst ->
        let lay = inst.Instance.layout in
        Schema.refresh_layout lay;
        Array.iteri
          (fun ix (si : Schema.slot_info) ->
            if si.Schema.si_derived then ignore (eval_rec t [] id ix))
          lay.Schema.lay_slots)
    (Store.instance_ids t.store);
  handle_violations t

(* The naive trigger mechanism: each change immediately and recursively
   recomputes every dependent, with no out-of-date marking, in a fixed
   depth-first order.  On diamond-shaped dependency graphs this
   recomputes an exponential number of values — the behaviour the paper's
   algorithm exists to avoid. *)
let rec fire_trigger t tgt =
  match Store.get_opt t.store tgt.t_id with
  | None -> ()
  | Some inst ->
    Store.touch t.store tgt.t_id;
    let si = slot_info inst tgt.t_ix in
    let cr = rule_of_si inst si in
    let fetch_value k kx =
      let kinst = Store.get t.store k in
      if k <> tgt.t_id then Store.touch t.store k;
      let ksi = slot_info kinst kx in
      let s = Instance.slot_ix kinst kx in
      if ksi.Schema.si_derived && s.Instance.state <> Instance.Up_to_date then eval_rec t [] k kx
      else s.Instance.value
    in
    let env = build_env t cr inst ~fetch_value in
    let v = cr.Schema.cr_rule.Schema.compute env in
    incr t.c_rule_evals;
    (match t.prof with
    | Some p -> Profile.on_eval p ~key:(Symbol.pack tgt.t_id si.Schema.si_sym)
    | None -> ());
    let s = Instance.slot_ix inst tgt.t_ix in
    s.Instance.value <- v;
    s.Instance.state <- Instance.Up_to_date;
    Store.notify_write t.store tgt.t_id si.Schema.si_name v;
    record_constraint_check t inst si v;
    List.iter (fire_trigger t) (dependents_ix inst tgt.t_ix)

let after_change t targets =
  match t.strategy with
  | Cactis -> run_marks t targets
  | Eager_triggers ->
    List.iter (fire_trigger t) targets;
    handle_violations t
  | Recompute_all ->
    invalidate_all t;
    eval_everything t

let after_intrinsic_set t id a =
  incr t.c_intrinsic_sets;
  let targets =
    match Store.get_opt t.store id with
    | None -> []
    | Some inst -> (
      match Instance.find_slot inst a with
      | Some ix -> dependents_ix inst ix
      | None -> [])
  in
  after_change t targets

let after_link_change t ~from_id ~rel ~to_id =
  let side id r =
    match Store.get_opt t.store id with
    | None -> []
    | Some inst -> (
      match Instance.find_link inst r with
      | None -> []
      | Some lx ->
        let li = link_info inst lx in
        Array.to_list li.Schema.li_rel_deps
        |> List.map (fun d ->
               let si = slot_info inst d in
               { t_id = id; t_ix = d; t_sym = si.Schema.si_sym; t_via = None }))
  in
  let inverse_of (inst : Instance.t) r =
    match Instance.find_link inst r with
    | Some lx -> (link_info inst lx).Schema.li_def.Schema.inverse
    | None -> Errors.unknown "type %s has no relationship %s" inst.Instance.type_name r
  in
  let inv =
    match Store.get_opt t.store from_id with
    | Some inst -> inverse_of inst rel
    | None -> (
      match Store.get_opt t.store to_id with
      | Some jinst ->
        (* from side gone (undo paths); find inverse from the target. *)
        inverse_of jinst rel
      | None -> rel)
  in
  after_change t (side from_id rel @ side to_id inv)

let on_new_instance t id =
  match Store.get_opt t.store id with
  | None -> ()
  | Some inst -> (
    let lay = inst.Instance.layout in
    Schema.refresh_layout lay;
    match t.strategy with
    | Cactis ->
      (* Creation "does not affect attribute evaluation until
         relationships are established" — but the new instance's own
         constraints must hold at commit. *)
      Array.iter
        (fun (si : Schema.slot_info) ->
          if si.Schema.si_constrained then
            Hashtbl.replace t.pending_important (Symbol.pack id si.Schema.si_sym) ())
        lay.Schema.lay_slots
    | Eager_triggers | Recompute_all ->
      Array.iteri
        (fun ix (si : Schema.slot_info) ->
          if si.Schema.si_derived then ignore (eval_rec t [] id ix))
        lay.Schema.lay_slots;
      handle_violations t)

let on_delete_instance t id =
  let purge tbl =
    let stale =
      Hashtbl.fold (fun k _ acc -> if Symbol.pack_id k = id then k :: acc else acc) tbl []
    in
    List.iter (Hashtbl.remove tbl) stale
  in
  purge t.watched;
  purge t.pending_important

let after_attr_added t ~type_name ~attr =
  let def = Schema.attr (schema t) ~type_name attr in
  List.iter
    (fun id ->
      match Store.get_opt t.store id with
      | None -> ()
      | Some inst -> (
        match Instance.find_slot inst attr with
        | None -> ()
        | Some ix ->
          let s = Instance.slot_ix inst ix in
          (match def.Schema.kind with
          | Schema.Intrinsic default ->
            s.Instance.value <- default;
            s.Instance.state <- Instance.Up_to_date
          | Schema.Derived _ ->
            s.Instance.state <- Instance.Out_of_date;
            if important_si t id (slot_info inst ix) then
              Hashtbl.replace t.pending_important (Symbol.pack id (Symbol.intern attr)) ())))
    (Store.instances_of_type t.store type_name)

let after_attr_retracted t ~type_name ~attr =
  (* Mirror of [after_attr_added] for schema-delta undo: drop the
     watch/pending bookkeeping keyed on the retracted attribute so a
     later propagate never chases a slot the layout no longer compiles.
     The physical slot value needs no repair — undo restored it to the
     default before the retraction (deltas replay in reverse), and a
     re-declaration (redo) re-initializes it through
     [after_attr_added]. *)
  let sym = Symbol.intern attr in
  List.iter
    (fun id ->
      let key = Symbol.pack id sym in
      Hashtbl.remove t.watched key;
      Hashtbl.remove t.pending_important key)
    (Store.instances_of_type t.store type_name)

(* ------------------------------------------------------------------ *)
(* Reading and propagation                                             *)

let peek t id a = (Store.read_slot t.store id a).Instance.value

let is_out_of_date t id a =
  let inst = Store.get t.store id in
  match Instance.slot_opt inst a with
  | Some s -> s.Instance.state <> Instance.Up_to_date
  | None -> true

let read t ?(watch = true) id a =
  let inst = Store.get t.store id in
  match Instance.find_slot inst a with
  | None -> Errors.unknown "type %s has no attribute %s" inst.Instance.type_name a
  | Some ix ->
    Store.touch t.store id;
    let si = slot_info inst ix in
    if not si.Schema.si_derived then (Instance.slot_ix inst ix).Instance.value
    else begin
      (* "If the user explicitly requests the value of attributes (i.e.
         makes a query) they become important" (§2.2). *)
      if watch then Hashtbl.replace t.watched (Symbol.pack id si.Schema.si_sym) ();
      let s = Instance.slot_ix inst ix in
      (match s.Instance.state with
      | Instance.Up_to_date -> ()
      | Instance.Out_of_date | Instance.In_progress -> (
        match t.strategy with
        | Cactis ->
          run_eval t [ (id, ix) ];
          handle_violations t
        | Eager_triggers | Recompute_all ->
          ignore (eval_rec t [] id ix);
          handle_violations t));
      (Instance.slot_ix inst ix).Instance.value
    end

(* Pending roots resolved back to (id, name, slot ix); sorted by
   (id, name) to preserve the evaluation order of the string-keyed
   implementation (deterministic counters). *)
let pending_roots t =
  let roots =
    Hashtbl.fold
      (fun key () acc ->
        let id = Symbol.pack_id key and sym = Symbol.pack_sym key in
        match Store.get_opt t.store id with
        | None -> acc
        | Some inst -> (
          match Instance.find_slot_sym inst sym with
          | None -> acc
          | Some ix ->
            let si = slot_info inst ix in
            if si.Schema.si_derived then (id, si.Schema.si_name, ix) :: acc else acc))
      t.pending_important []
  in
  List.sort
    (fun (i1, n1, _) (i2, n2, _) -> if i1 <> i2 then compare i1 i2 else String.compare n1 n2)
    roots

let propagate t =
  match t.strategy with
  | Cactis ->
    let roots = pending_roots t in
    Hashtbl.reset t.pending_important;
    if roots <> [] then begin
      let start_ns = Clock.now_ns () in
      let observe () =
        Histogram.observe t.h_propagate (Clock.elapsed_s ~since:start_ns);
        let tr = t.obs.Cactis_obs.Ctx.trace in
        if Trace.enabled tr then
          Trace.complete tr ~cat:"engine"
            ~args:[ ("roots", Trace.I (List.length roots)) ]
            ~start_ns "propagate"
      in
      (match
         run_eval t (List.map (fun (id, _, ix) -> (id, ix)) roots);
         handle_violations t
       with
      | () -> observe ()
      | exception e ->
        observe ();
        raise e)
    end
  | Eager_triggers | Recompute_all ->
    let roots = pending_roots t in
    Hashtbl.reset t.pending_important;
    List.iter (fun (id, _, ix) -> ignore (eval_rec t [] id ix)) roots;
    handle_violations t

let pending_important_count t = Hashtbl.length t.pending_important

(* ------------------------------------------------------------------ *)
(* Oracle: reference semantics with no caching and no I/O accounting   *)

let oracle_value t id a =
  let attr_def (inst : Instance.t) b =
    Schema.attr (schema t) ~type_name:inst.Instance.type_name b
  in
  let memo : (int * string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let visiting : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec go path id a =
    match Hashtbl.find_opt memo (id, a) with
    | Some v -> v
    | None ->
      if Hashtbl.mem visiting (id, a) then raise (Errors.Cycle (List.rev ((id, a) :: path)));
      let inst = Store.get t.store id in
      let def = attr_def inst a in
      let v =
        match def.Schema.kind with
        | Schema.Intrinsic _ -> (Instance.slot inst a).Instance.value
        | Schema.Derived rule ->
          Hashtbl.add visiting (id, a) ();
          let declared s = List.exists (fun s' -> s' = s) rule.Schema.sources in
          let env =
            {
              Schema.self_value =
                (fun b ->
                  if not (declared (Schema.Self b)) then
                    Errors.type_error "oracle: undeclared source self.%s" b;
                  go ((id, a) :: path) id b);
              related_values =
                (fun r name ->
                  if not (declared (Schema.Rel (r, name))) then
                    Errors.type_error "oracle: undeclared source %s.%s" r name;
                  let attr = resolve_transmission t inst r name in
                  Instance.linked inst r |> List.map (fun j -> go ((id, a) :: path) j attr));
            }
          in
          let v = rule.Schema.compute env in
          Hashtbl.remove visiting (id, a);
          v
      in
      Hashtbl.replace memo (id, a) v;
      v
  in
  go [] id a
