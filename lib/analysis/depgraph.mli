(** Type-level attribute dependency graph.

    One node per declared attribute [(type, attr)]; one edge from each
    derived attribute to each of its resolved inputs: [Self b] yields an
    {!Diag.S_self} edge within the type, [Rel (r, name)] yields an
    {!Diag.S_rel} edge to the target type's attribute after transmission
    aliases are resolved (Figure 1's [exp_time = exp_compl]).  Sources
    that do not resolve (unknown relationship, attribute the target does
    not declare yet) produce {e no} edge — the dangling-reference pass
    reports them from the view directly.

    A cycle in this graph is exactly a {e potential} evaluation cycle:
    any instance-level dependency cycle projects onto a closed walk
    here, so an acyclic type graph proves no data graph can ever make
    the engine raise [Errors.Cycle]. *)

type t

val build : View.t -> t
val node_count : t -> int
val edge_count : t -> int

(** Nodes in deterministic (declaration) order. *)
val node : t -> int -> Diag.node

val find : t -> string -> string -> int option

(** Outgoing [(target, step)] edges, in declared source order. *)
val adj : t -> int -> (int * Diag.step) list

(** Node ids with at least one incoming edge (attributes some rule or
    predicate reads, post alias resolution). *)
val read_nodes : t -> bool array

(** Strongly connected components (Tarjan), each sorted ascending;
    singletons included only when the node has a self-edge. *)
val cyclic_sccs : t -> int list list

(** Forward-reachable node set from [start] (inclusive), plus whether
    any {!Diag.S_rel} edge was traversed reaching it. *)
val reachable : t -> int -> bool array * bool
