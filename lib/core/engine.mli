(** Incremental attribute evaluation (§2.2) over the chunk scheduler
    (§2.3).

    The engine implements the paper's two-phase algorithm:

    + {b mark out of date} — when an intrinsic attribute changes or a
      relationship is established/broken, the derived attributes that
      (transitively) depend on it are marked out of date.  The traversal
      cuts off at attributes already marked, which is what makes repeated
      changes O(1) and bounds the amortized overhead by the size of the
      reachable dependency subgraph;
    + {b demand-driven evaluation} — only {e important} attributes
      (constraint-carrying, or watched because the user queried them) are
      (re)evaluated, each at most once, pulling in exactly the out-of-date
      attributes they transitively need.

    Both traversals run as chunks on {!Sched}, so the traversal order —
    and hence the number of disk accesses — is chosen dynamically.

    Two baseline strategies are provided for the experiments:
    [Eager_triggers] recomputes dependents immediately and recursively on
    every change (the naive trigger mechanism the paper criticizes — with
    a fixed firing order it recomputes an exponential number of values on
    diamond-shaped graphs), and [Recompute_all] recomputes every derived
    attribute in the database on any change. *)

type strategy =
  | Cactis
  | Eager_triggers
  | Recompute_all

(** A recovery action: given the store and the violating instance,
    produce intrinsic assignments [(instance, attr, value)] that attempt
    to repair the constraint.  Assignments are applied through the
    logged/propagating primitive layer. *)
type recovery = Store.t -> int -> (int * string * Value.t) list

type t

val create : ?strategy:strategy -> ?sched:Sched.strategy -> Store.t -> t

val store : t -> Store.t
val strategy : t -> strategy
val set_strategy : t -> strategy -> unit
val sched_strategy : t -> Sched.strategy
val set_sched_strategy : t -> Sched.strategy -> unit

(** Wire the callback the engine uses to apply recovery assignments
    through the full primitive layer (set by {!Db} at construction). *)
val set_repair : t -> (int -> string -> Value.t -> unit) -> unit

val register_recovery : t -> string -> recovery -> unit

(** {1 Importance} *)

(** [watch t id attr] makes the attribute important: it will be
    re-evaluated during propagation instead of lazily. *)
val watch : t -> int -> string -> unit

val unwatch : t -> int -> string -> unit
val is_watched : t -> int -> string -> bool

(** {1 Change notification (called by {!Db} after raw mutations)} *)

val on_new_instance : t -> int -> unit
val on_delete_instance : t -> int -> unit
val after_intrinsic_set : t -> int -> string -> unit
val after_link_change : t -> from_id:int -> rel:string -> to_id:int -> unit

(** [after_attr_added t ~type_name ~attr] — a new attribute was added to
    the schema: existing instances of the type get an out-of-date slot
    for it (derived) or the default (intrinsic). *)
val after_attr_added : t -> type_name:string -> attr:string -> unit

(** [after_attr_retracted t ~type_name ~attr] — the attribute is being
    retracted (schema-delta undo): drops watch/pending bookkeeping keyed
    on it for every instance of the type, so propagation never chases a
    slot the layout no longer compiles. *)
val after_attr_retracted : t -> type_name:string -> attr:string -> unit

(** {1 Reading and propagation} *)

(** [read t ?watch id attr] returns the attribute's current value,
    evaluating it first if it is derived and out of date.  [watch]
    (default true, the paper's query semantics) promotes it to
    important.
    @raise Errors.Cycle on circular dependencies.
    @raise Errors.Constraint_violation if evaluation trips an
    unrecoverable constraint. *)
val read : t -> ?watch:bool -> int -> string -> Value.t

(** [peek t id attr] returns the stored value without evaluating
    (possibly stale); used by diagnostics and the undo machinery. *)
val peek : t -> int -> string -> Value.t

(** [is_out_of_date t id attr]. *)
val is_out_of_date : t -> int -> string -> bool

(** [propagate t] evaluates every pending important attribute (end of
    transaction). @raise Errors.Constraint_violation / Errors.Cycle. *)
val propagate : t -> unit

(** Number of important attributes currently awaiting evaluation. *)
val pending_important_count : t -> int

(** [invalidate_all t] marks every derived attribute of every instance
    out of date (bulk schema change, oracle resets). *)
val invalidate_all : t -> unit

(** {1 Fixed-point evaluation} *)

(** [set_fixed_point ?max_iters t true] arms bounded fixed-point
    evaluation of dependency cycles ([Far86]).  When armed, a stuck
    evaluation wave whose every on-cycle attribute carries a bounded
    {!Schema.rule_shape} is iterated Gauss-Seidel-style from its
    lattice bottoms instead of raising {!Errors.Cycle}; iteration stops
    at the first change-free sweep (a proven fixed point) and falls
    back to the cycle error after at most [max_iters] sweeps (default
    1000) or on any unbounded/undeclared on-cycle shape.  Sweep counts
    feed the [fixpoint_runs]/[fixpoint_sweeps] counters and the
    [fixpoint_iters] histogram. *)
val set_fixed_point : ?max_iters:int -> t -> bool -> unit

(** Currently configured sweep cap; [None] when the mode is off. *)
val fixed_point : t -> int option

(** {1 Observability} *)

(** [set_profile t (Some p)] arms per-commit propagation profiling: the
    mark and evaluation phases report nodes marked, edges walked,
    cutoffs and per-attribute evaluation counts into [p], which lets
    callers check the paper's evaluated-at-most-once invariant
    mechanically.  [None] (the default) disarms it. *)
val set_profile : t -> Cactis_obs.Profile.t option -> unit

val profile : t -> Cactis_obs.Profile.t option

(** The span tracer shared with the store's {!Cactis_obs.Ctx}.  Mark
    waves, evaluation waves, propagation and recovery actions emit
    spans here when it is enabled. *)
val trace : t -> Cactis_obs.Trace.t

(** {1 Testing support} *)

(** [oracle_value t id attr] computes the attribute's correct value from
    scratch, from intrinsic values and links only, without consulting or
    mutating any cached slot state and without touching the pager.  Used
    by property tests as the reference semantics. *)
val oracle_value : t -> int -> string -> Value.t
