lib/cc/interleave.ml: Array Cactis Cactis_util List Timestamp_cc Workload
