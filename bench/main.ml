(* Experiment harness: one section per figure/claim of the paper (see
   DESIGN.md §4 and EXPERIMENTS.md).  All measurements are event counts
   from deterministic workloads; a short Bechamel wall-clock section
   closes the run.

   Run with: dune exec bench/main.exe            (full)
             dune exec bench/main.exe -- --fast  (smaller sizes)
             dune exec bench/main.exe -- E2 E5   (selected experiments) *)

module Value = Cactis.Value
module Db = Cactis.Db
module Engine = Cactis.Engine
module Sched = Cactis.Sched
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Store = Cactis.Store
module Errors = Cactis.Errors
module Snapshot = Cactis.Snapshot
module Persist = Cactis.Persist
module Rng = Cactis_util.Rng
module W = Workloads
module R = Report

let fast = ref false
let selected : string list ref = ref []

let wants id = !selected = [] || List.mem id !selected

let int n = Value.Int n

let scale l = if !fast then List.filteri (fun i _ -> i < 2) l else l

(* ================================================================== *)
(* F1: Figure 1 — milestone class through the DDL                      *)

let f1 () =
  R.section "F1" "Figure 1: milestone class (DDL)"
    "milestone expected-completion dates ripple along dependencies; late flags derive";
  let m = Cactis_apps.Milestone.create () in
  let module M = Cactis_apps.Milestone in
  let design = M.add m ~name:"design" ~scheduled:10.0 ~local_work:5.0 in
  let code = M.add m ~name:"code" ~scheduled:30.0 ~local_work:10.0 in
  let test = M.add m ~name:"test" ~scheduled:40.0 ~local_work:5.0 in
  M.depends_on m code design;
  M.depends_on m test code;
  let row id = [ M.name m id; Printf.sprintf "%.0f" (M.scheduled m id);
                 Printf.sprintf "%.0f" (M.expected m id);
                 (if M.is_late m id then "LATE" else "on-time") ] in
  print_endline "before slip:";
  R.table ~headers:[ "milestone"; "sched"; "expected"; "status" ] (List.map row [ design; code; test ]);
  M.slip m design 30.0;
  print_endline "after design slips 30 days (one primitive update):";
  R.table ~headers:[ "milestone"; "sched"; "expected"; "status" ] (List.map row [ design; code; test ])

(* ================================================================== *)
(* F2: Figures 2-4 — make facility                                     *)

let f2 () =
  R.section "F2" "Figures 2-4: make facility"
    "dependency+modtime rules trigger exactly the necessary recompilations, in order";
  let module Fs = Cactis_apps.Fs_sim in
  let module Mk = Cactis_apps.Makefac in
  let fs = Fs.create () in
  List.iter (fun f -> Fs.write_file fs f "src") [ "a.c"; "b.c"; "util.h" ];
  let mk = Mk.create fs in
  let src f = Mk.add_rule mk ~file:f ~command:"" in
  let a_c = src "a.c" and b_c = src "b.c" and util = src "util.h" in
  let a_o = Mk.add_rule mk ~file:"a.o" ~command:"cc -c a.c -o a.o" in
  let b_o = Mk.add_rule mk ~file:"b.o" ~command:"cc -c b.c -o b.o" in
  let app = Mk.add_rule mk ~file:"app" ~command:"cc a.o b.o -o app" in
  List.iter (fun (r, d) -> Mk.add_dependency mk ~rule:r ~on:d)
    [ (a_o, a_c); (a_o, util); (b_o, b_c); (b_o, util); (app, a_o); (app, b_o) ];
  let scenario (label, f) =
    f ();
    Mk.sync mk;
    let ran = Mk.build mk app in
    [ label; string_of_int (List.length ran); String.concat "; " ran ]
  in
  (* List.map sequences the scenarios left to right (a bare list literal
     would evaluate them right to left). *)
  let rows =
    List.map scenario
      [
        ("initial build", fun () -> ());
        ("no change", fun () -> ());
        ("edit a.c", fun () -> Fs.touch fs "a.c");
        ("edit util.h", fun () -> Fs.touch fs "util.h");
        ("delete b.o", fun () -> Fs.remove fs "b.o");
      ]
  in
  R.table ~headers:[ "scenario"; "cmds"; "commands run" ] rows

(* ================================================================== *)
(* E1: incremental vs full recomputation                               *)

let e1 () =
  R.section "E1" "incremental evaluation vs recompute-all"
    "\"recompute all attribute values every time a change is made ... is clearly too \
     expensive\"; the incremental algorithm evaluates only attributes that changed";
  let sizes = scale [ 100; 1000; 4000 ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (pos_label, pos) ->
            let run strategy =
              let db = W.make_db () in
              let ids = W.chain db n in
              Db.watch db ids.(0) "total";
              ignore (Db.get db ids.(0) "total");
              Engine.set_strategy (Db.engine db) strategy;
              ignore (Db.get db ids.(0) "total");
              let diff = R.measure db (fun () ->
                  Db.set db ids.(pos) "local" (int 777);
                  ignore (Db.get db ids.(0) "total"))
              in
              R.count diff "rule_evals"
            in
            let inc = run Engine.Cactis in
            let full = run Engine.Recompute_all in
            [ string_of_int n; pos_label; string_of_int inc; string_of_int full;
              Cactis_util.Ascii_table.fmt_ratio (float_of_int full) (float_of_int inc) ])
          [ ("near head (10%)", n / 10); ("at leaf (100%)", n - 1) ])
      sizes
  in
  R.table ~headers:[ "chain n"; "change site"; "evals (Cactis)"; "evals (recompute-all)"; "speedup" ] rows

(* ================================================================== *)
(* E2: naive trigger blowup on diamond ladders                         *)

let e2 () =
  R.section "E2" "fixed-order triggers vs two-phase algorithm"
    "\"[a fixed-order trigger mechanism] in the worst case can recompute an exponential \
     number of values\"; Cactis \"will not evaluate any given attribute more than once\"";
  let depths = scale [ 2; 4; 6; 8; 10; 12; 14 ] in
  let rows =
    List.map
      (fun d ->
        let run strategy =
          let db = W.make_db () in
          let top, bottom = W.diamond_ladder db d in
          Db.watch db top "total";
          ignore (Db.get db top "total");
          Engine.set_strategy (Db.engine db) strategy;
          ignore (Db.get db top "total");
          let diff = R.measure db (fun () ->
              Db.set db bottom "local" (int 9);
              ignore (Db.get db top "total"))
          in
          R.count diff "rule_evals"
        in
        let cactis = run Engine.Cactis in
        let eager = run Engine.Eager_triggers in
        [ string_of_int d; string_of_int ((3 * d) + 1); string_of_int cactis; string_of_int eager ])
      depths
  in
  R.table
    ~headers:[ "ladder depth"; "attrs affected"; "evals (Cactis)"; "evals (eager trigger)" ]
    rows

(* ================================================================== *)
(* E3: O(1) redundant change                                           *)

let e3 () =
  R.section "E3" "repeated assignment before propagation"
    "\"if an attribute A were assigned 2 different values in a row ... the second \
     assignment would only update A ... and hence incur only O(1) overhead\"";
  let n = if !fast then 200 else 1000 in
  let db = W.make_db () in
  let ids = W.chain db n in
  Db.watch db ids.(0) "total";
  ignore (Db.get db ids.(0) "total");
  let mark_cost k =
    let diff = R.measure db (fun () -> Db.set db ids.(n - 1) "local" (int k)) in
    R.count diff "mark_visits"
  in
  (* The repeated assignments happen inside one transaction, i.e. before
     the system propagates — the paper's scenario. *)
  Db.begin_txn db;
  let rows =
    List.map
      (fun (label, k, note) -> [ label; string_of_int (mark_cost k); note ])
      [
        ("1st change", 101, "whole dependent chain marked");
        ("2nd change", 102, "cut off: already out of date");
        ("3rd change", 103, "cut off");
        ("4th change", 104, "cut off");
      ]
  in
  Db.commit db;
  ignore (Db.get db ids.(0) "total");
  let after_commit =
    let diff = R.measure db (fun () ->
        Db.begin_txn db;
        Db.set db ids.(n - 1) "local" (int 105))
    in
    Db.commit db;
    R.count diff "mark_visits"
  in
  R.table ~headers:[ "update"; "mark visits"; "note" ]
    (rows
    @ [ [ "after commit+query"; string_of_int after_commit; "chain up to date again: full marking" ] ])

(* ================================================================== *)
(* E4: laziness — only important attributes evaluated                  *)

let e4 () =
  R.section "E4" "deferred evaluation of unimportant attributes"
    "\"the calculation of attribute values which are not important may be deferred, as \
     they have no immediate affect on the database\"";
  let fan = if !fast then 200 else 1000 in
  let fractions = [ 0.0; 0.01; 0.1; 0.5; 1.0 ] in
  let rows =
    List.map
      (fun frac ->
        let db = W.make_db () in
        let hub, points = W.star db fan in
        let w = int_of_float (frac *. float_of_int fan) in
        Array.iteri (fun i p -> if i < w then Db.watch db p "total") points;
        (* Evaluate everything once so the change has a fully up-to-date
           database to invalidate. *)
        Array.iter (fun p -> ignore (Db.get db ~watch:false p "total")) points;
        Engine.propagate (Db.engine db);
        let diff = R.measure db (fun () -> Db.set db hub "local" (int 5)) in
        [ Printf.sprintf "%.0f%%" (frac *. 100.0); string_of_int w;
          string_of_int (R.count diff "rule_evals");
          string_of_int (R.count diff "mark_visits") ])
      fractions
  in
  R.table
    ~headers:[ "watched fraction"; "watched attrs"; "evals on change"; "marks on change" ]
    rows;
  Printf.printf "(all %d dependent attrs are marked; only the watched ones are evaluated)\n" fan

(* ================================================================== *)
(* E5: usage-based clustering                                          *)

let e5 () =
  R.section "E5" "usage-count clustering"
    "\"this algorithm attempts to place instances which are frequently referenced \
     together, in the same block ... tighten[ing] the locality of reference\"";
  let communities = if !fast then 16 else 32 in
  let size = 8 in
  let rounds = if !fast then 200 else 600 in
  let run_workload db groups rng =
    for _ = 1 to rounds do
      let c = Rng.zipf rng communities 0.8 in
      let group = groups.(c) in
      let member = group.(Rng.int rng size) in
      Db.set db member "local" (int (Rng.int rng 50));
      ignore (Db.get db group.(0) "total")
    done
  in
  let rows =
    List.map
      (fun buffer_capacity ->
        let db = W.make_db ~block_capacity:8 ~buffer_capacity () in
        let groups = W.community_graph db ~communities ~size in
        Cactis_storage.Pager.reset_io (Store.pager (Db.store db));
        run_workload db groups (Rng.create 42);
        let unclustered = R.disk_reads db in
        let blocks = Db.recluster db in
        Cactis_storage.Pager.reset_io (Store.pager (Db.store db));
        run_workload db groups (Rng.create 42);
        let clustered = R.disk_reads db in
        [ string_of_int buffer_capacity; string_of_int blocks; string_of_int unclustered;
          string_of_int clustered;
          Cactis_util.Ascii_table.fmt_ratio (float_of_int unclustered) (float_of_int clustered) ])
      (scale [ 4; 8; 16 ])
  in
  R.table
    ~headers:[ "buffer (blocks)"; "blocks"; "reads scattered"; "reads clustered"; "improvement" ]
    rows

(* ================================================================== *)
(* E6: traversal scheduling                                            *)

let e6 () =
  R.section "E6" "greedy in-memory-first scheduling vs fixed order"
    "\"sub-traversal processes which can be executed without disk access are given \
     highest scheduling priority ... [then] smallest expected number of disk accesses\"";
  let chains = if !fast then 8 else 12 in
  let length = if !fast then 24 else 40 in
  let rows =
    List.map
      (fun (label, sched) ->
        let db = W.make_db ~sched ~block_capacity:8 ~buffer_capacity:4 () in
        let root = W.comb db ~chains ~length in
        Db.watch db root "total";
        Engine.invalidate_all (Db.engine db);
        Cactis_storage.Pager.reset_io (Store.pager (Db.store db));
        ignore (Db.get db root "total");
        let cold = R.disk_reads db in
        Cactis_storage.Pager.reset_io (Store.pager (Db.store db));
        Engine.invalidate_all (Db.engine db);
        ignore (Db.get db root "total");
        let again = R.disk_reads db in
        [ label; string_of_int cold; string_of_int again ])
      [
        ("fifo", Sched.Fifo);
        ("cost-only (no promotion)", Sched.Cost_only);
        ("greedy-adaptive", Sched.Greedy);
      ]
  in
  R.table ~headers:[ "scheduler"; "disk reads (cold)"; "disk reads (repeat)" ] rows;
  Printf.printf "(%d chains x %d nodes, 8 instances/block, 4-block buffer)\n" chains length;
  (* Marking traversal: one change fans out across every chain; the
     worst-case cost estimate is binary (resident or not), so the
     resident-first queue and block promotion are what separate the
     schedulers. *)
  let mark_rows =
    List.map
      (fun (label, sched) ->
        let db = W.make_db ~sched ~block_capacity:8 ~buffer_capacity:4 () in
        let shared, heads = W.inverted_comb db ~chains ~length in
        Array.iter
          (fun h ->
            Db.watch db h "total";
            ignore (Db.get db h "total"))
          heads;
        Cactis_storage.Pager.reset_io (Store.pager (Db.store db));
        Db.begin_txn db;
        Db.set db shared "local" (int 99);
        let reads = R.disk_reads db in
        Db.commit db;
        [ label; string_of_int reads ])
      [
        ("fifo", Sched.Fifo);
        ("cost-only (no promotion)", Sched.Cost_only);
        ("greedy-adaptive", Sched.Greedy);
      ]
  in
  print_endline "marking traversal (one change fanning out over all chains):";
  R.table ~headers:[ "scheduler"; "disk reads (mark phase)" ] mark_rows

(* ================================================================== *)
(* E7: delta size vs derived ripple                                    *)

let e7 () =
  R.section "E7" "undo deltas proportional to primitive changes"
    "\"the information needed to remember a delta is proportional in size to the initial \
     changes made to the database rather than the total change ... because of derived data\"";
  let rows =
    List.map
      (fun n ->
        let db = W.make_db () in
        let ids = W.chain db n in
        Db.watch db ids.(0) "total";
        ignore (Db.get db ids.(0) "total");
        Db.with_txn db (fun () -> Db.set db ids.(n - 1) "local" (int 50));
        let delta_ops = List.nth (Db.delta_sizes db) (List.length (Db.delta_sizes db) - 1) in
        let diff = R.measure db (fun () ->
            Db.undo_last db;
            ignore (Db.get db ids.(0) "total"))
        in
        [ string_of_int n; string_of_int delta_ops; string_of_int n;
          string_of_int (R.count diff "rule_evals") ])
      (scale [ 10; 100; 1000 ])
  in
  R.table
    ~headers:[ "chain n"; "delta ops stored"; "derived attrs affected"; "evals to undo" ]
    rows

(* ================================================================== *)
(* E8: constraints and rollback                                        *)

let e8 () =
  R.section "E8" "constraint enforcement, rollback and recovery"
    "\"whenever an attribute which is designated as testing a constraint evaluates to \
     false, rollback of the current transaction is performed\" (or a recovery action runs)";
  let build with_recovery =
    let sch = Schema.create () in
    Schema.add_type sch "node";
    Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node"
      ~inverse:"rdeps" ~card:Schema.Multi ~inverse_card:Schema.Multi;
    Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
    Schema.add_attr sch ~type_name:"node"
      (Rule.derived "total"
         (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
              Value.add own (Value.sum totals))));
    Schema.add_attr sch ~type_name:"node"
      (Rule.constraint_attr "total_ok"
         ?recovery:(if with_recovery then Some "clamp" else None)
         ~message:"total exceeds budget"
         (Rule.map1 "total" (fun v -> Value.Bool (Value.as_int v <= 500))));
    let db = Db.create sch in
    if with_recovery then
      Db.register_recovery db "clamp" (fun _store id -> [ (id, "local", int 0) ]);
    db
  in
  let run with_recovery =
    let db = build with_recovery in
    let ids = Array.init 20 (fun _ -> Db.create_instance db "node") in
    for i = 0 to 18 do
      Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.(i + 1)
    done;
    let rng = Rng.create 5 in
    let commits = ref 0 and aborts = ref 0 in
    for _ = 1 to 100 do
      let i = Rng.int rng 20 in
      let v = Rng.int rng 120 in
      match Db.with_txn db (fun () -> Db.set db ids.(i) "local" (int v)) with
      | () -> incr commits
      | exception Errors.Constraint_violation _ -> incr aborts
    done;
    let c = Db.counters db in
    let head_total = Value.as_int (Db.get db ids.(0) "total") in
    [
      (if with_recovery then "with recovery action" else "rollback only");
      string_of_int !commits; string_of_int !aborts;
      string_of_int (Cactis_util.Counters.get c "recoveries_run");
      string_of_int head_total;
      string_of_bool (head_total <= 500);
    ]
  in
  R.table
    ~headers:[ "mode"; "commits"; "rollbacks"; "recoveries"; "final total"; "invariant holds" ]
    [ run false; run true ]

(* ================================================================== *)
(* E9: timestamp concurrency control                                   *)

let e9 () =
  R.section "E9" "multi-user operation (timestamp ordering)"
    "Cactis \"uses a timestamping concurrency control technique\" (§1.1); committed \
     schedules are serializable in timestamp order";
  let module Cc = Cactis_cc.Timestamp_cc in
  let module Wl = Cactis_cc.Workload in
  let module Il = Cactis_cc.Interleave in
  let module So = Cactis_cc.Serial_oracle in
  let instances = 8 in
  let txns = if !fast then 5 else 15 in
  let rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun hot ->
            let db, accounts, _ = Wl.counters_db ~instances () in
            let cc = Cc.create db in
            let rng = Rng.create 31 in
            let scripts =
              List.init clients (fun _ ->
                  Wl.generate (Rng.split rng) ~accounts ~txns ~ops_per_txn:4 ~hot_fraction:hot
                    ~read_fraction:0.3)
            in
            let stats = Il.run ~rng ~cc ~clients:scripts () in
            let oracle =
              So.replay
                ~setup:(fun () ->
                  let db, _, _ = Wl.counters_db ~instances () in
                  db)
                ~committed:stats.Il.committed_scripts
            in
            let serializable = So.equivalent db oracle [ "balance" ] in
            [
              string_of_int clients;
              Printf.sprintf "%.0f%%" (hot *. 100.0);
              string_of_int stats.Il.committed;
              string_of_int stats.Il.restarts;
              Printf.sprintf "%.2f"
                (float_of_int stats.Il.committed /. float_of_int (max 1 stats.Il.steps) *. 100.0);
              string_of_bool serializable;
            ])
          [ 0.1; 0.9 ])
      (scale [ 2; 4; 8 ])
  in
  R.table
    ~headers:
      [ "clients"; "hot-key traffic"; "commits"; "restarts"; "commits/100 steps"; "serializable" ]
    rows;
  (* Same workload under REAL parallelism: each client on its own
     domain, the schedule coming from the OS instead of the seeded
     interleaver.  Abort/restart counts vary run to run; the
     serializable verdict (vs the timestamp-ordered serial oracle) must
     not. *)
  let module Cc = Cactis_cc.Timestamp_cc in
  let module Wl = Cactis_cc.Workload in
  let module P = Cactis_cc.Parallel_run in
  let module So = Cactis_cc.Serial_oracle in
  print_endline "same workload on real domains (OS scheduling, nondeterministic counts):";
  let rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun hot ->
            let db, accounts, _ = Wl.counters_db ~instances:8 () in
            let cc = Cc.create db in
            let rng = Rng.create 31 in
            let scripts =
              List.init clients (fun _ ->
                  Wl.generate (Rng.split rng) ~accounts ~txns:(if !fast then 5 else 15)
                    ~ops_per_txn:4 ~hot_fraction:hot ~read_fraction:0.3)
            in
            let stats = P.run ~cc ~clients:scripts () in
            let oracle =
              So.replay
                ~setup:(fun () ->
                  let db, _, _ = Wl.counters_db ~instances:8 () in
                  db)
                ~committed:stats.P.committed_scripts
            in
            let serializable = So.equivalent db oracle [ "balance" ] in
            if not serializable then failwith "E9: parallel run not serializable";
            [
              string_of_int clients;
              Printf.sprintf "%.0f%%" (hot *. 100.0);
              string_of_int stats.P.committed;
              string_of_int stats.P.restarts;
              string_of_int stats.P.starved;
              string_of_int (Cc.aborts cc);
              string_of_bool serializable;
            ])
          [ 0.1; 0.9 ])
      (scale [ 2; 4; 8 ])
  in
  R.table
    ~headers:
      [ "domains"; "hot-key traffic"; "commits"; "restarts"; "starved"; "aborts"; "serializable" ]
    rows

(* ================================================================== *)
(* E10: amortized overhead bound                                       *)

let e10 () =
  R.section "E10" "overhead bounded by the reachable dependency subgraph"
    "\"the overhead of the algorithm ... is O(Nodes(Could_Change(A)) + \
     Edges(Could_Change(A)))\"";
  let n = if !fast then 100 else 400 in
  let rows =
    List.map
      (fun seed ->
        let rng = Rng.create seed in
        let db = W.make_db () in
        let ids = W.random_dag db rng n ~max_deps:3 in
        Array.iteri (fun i id -> if i < 5 then Db.watch db id "total") ids;
        Array.iter (fun id -> ignore (Db.get db ~watch:false id "total")) ids;
        (* |Could_Change| by BFS over the dependents relation.  Sites in
           the last tenth of the DAG have large dependent closures (many
           earlier nodes transitively depend on them). *)
        let site = ids.(Rng.int_in rng (9 * n / 10) (n - 1)) in
        let visited = Hashtbl.create 64 in
        let edges = ref 0 in
        let rec bfs id =
          if not (Hashtbl.mem visited id) then begin
            Hashtbl.add visited id ();
            let parents = Db.related db id "rdeps" in
            edges := !edges + List.length parents;
            List.iter bfs parents
          end
        in
        bfs site;
        let could_change = Hashtbl.length visited + !edges in
        let diff = R.measure db (fun () ->
            Db.set db site "local" (int 1234);
            Db.with_txn db (fun () -> ()))
        in
        let overhead = R.count diff "mark_visits" + R.count diff "rule_evals" in
        [
          Printf.sprintf "seed %d" seed;
          string_of_int (Hashtbl.length visited);
          string_of_int !edges;
          string_of_int could_change;
          string_of_int overhead;
          Printf.sprintf "%.2f" (float_of_int overhead /. float_of_int (max 1 could_change));
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  R.table
    ~headers:
      [ "trial"; "|nodes(CC)|"; "|edges(CC)|"; "N+E bound"; "marks+evals"; "ratio (<= ~1)" ]
    rows

(* ================================================================== *)
(* E11: distributed placement (§5 prototype)                           *)

let e11 () =
  R.section "E11" "distributed placement (directions, §5)"
    "\"different users at different machines ... share information\"; the usage-driven \
     clustering doubles as a partitioner minimizing cross-site traversal messages";
  let module P = Cactis_dist.Partition in
  let communities = if !fast then 8 else 24 in
  let size = 8 in
  let db = W.make_db ~block_capacity:8 ~buffer_capacity:64 () in
  let rng = Rng.create 7 in
  let groups = W.community_graph ~shuffle:(Rng.split rng) db ~communities ~size in
  for _ = 1 to (if !fast then 200 else 800) do
    let g = groups.(Rng.zipf rng communities 0.6) in
    Db.set db g.(Rng.int rng size) "local" (int (Rng.int rng 50));
    ignore (Db.get db g.(0) "total")
  done;
  let store = Db.store db in
  let ids = Db.instance_ids db in
  let rows =
    List.concat_map
      (fun sites ->
        let placements =
          [
            ("striped (round-robin)", P.round_robin ~ids ~sites);
            ("random", P.random (Rng.create 3) ~ids ~sites);
            ("usage-clustered", P.by_usage store ~sites);
          ]
        in
        List.map
          (fun (label, p) ->
            let cross = P.cross_site_traffic store p in
            let local = P.local_traffic store p in
            [
              string_of_int sites; label; string_of_int cross;
              Printf.sprintf "%.1f%%" (100.0 *. float_of_int cross /. float_of_int (max 1 (cross + local)));
            ])
          placements)
      (scale [ 2; 4; 8 ])
  in
  R.table ~headers:[ "sites"; "placement"; "cross-site msgs"; "remote share" ] rows

(* ================================================================== *)
(* E12: attribute index vs full scan                                   *)

let e12 () =
  R.section "E12" "attribute index vs scan (OODB indexing, cf. [MaS86])"
    "an incremental hash index answers value lookups by touching only stale instances, \
     where a scan touches the whole extent on every query";
  let n = if !fast then 300 else 2000 in
  let queries = 50 in
  let updates_per_query = 3 in
  let run use_index =
    let db = W.make_db () in
    let ids = Array.init n (fun _ -> Db.create_instance db "node") in
    let rng = Rng.create 11 in
    Array.iter (fun id -> Db.set db id "local" (int (Rng.int rng 10))) ids;
    let idx =
      if use_index then Some (Cactis.Index.create db ~type_name:"node" ~attr:"local") else None
    in
    let scan v =
      Array.to_list ids
      |> List.filter (fun id -> Value.equal (Db.get db ~watch:false id "local") v)
    in
    let c = Db.counters db in
    let before = Cactis_util.Counters.get c "instance_touches" in
    let total_hits = ref 0 in
    for _ = 1 to queries do
      for _ = 1 to updates_per_query do
        Db.set db ids.(Rng.int rng n) "local" (int (Rng.int rng 10))
      done;
      let v = int (Rng.int rng 10) in
      let hits = match idx with Some idx -> Cactis.Index.lookup idx v | None -> scan v in
      total_hits := !total_hits + List.length hits
    done;
    (Cactis_util.Counters.get c "instance_touches" - before, !total_hits)
  in
  let scan_touches, scan_hits = run false in
  let index_touches, index_hits = run true in
  R.table
    ~headers:[ "access path"; "instance touches"; "result rows" ]
    [
      [ "full scan"; string_of_int scan_touches; string_of_int scan_hits ];
      [ "hash index"; string_of_int index_touches; string_of_int index_hits ];
    ];
  Printf.printf "(%d instances, %d queries, %d updates between queries; identical results)\n" n
    queries updates_per_query

(* ================================================================== *)
(* E13: macro benchmark — the milestone manager under a realistic      *)
(* editing workload                                                    *)

let e13 () =
  R.section "E13" "macro: project plan under a stream of slips and queries"
    "the paper's motivating application — \"changing the expected completion date for one \
     milestone may have effects that ripple throughout ... the system\" — end to end";
  let module M = Cactis_apps.Milestone in
  let layers = if !fast then 10 else 25 in
  let width = if !fast then 8 else 20 in
  let rounds = if !fast then 60 else 200 in
  let run strategy =
    let m = M.create ~strategy () in
    let rng = Rng.create 17 in
    (* Layered DAG: each milestone depends on 1-3 in the previous layer. *)
    let prev = ref [] in
    let final = M.add m ~name:"ship" ~scheduled:(float_of_int (10 * layers)) ~local_work:1.0 in
    for l = 1 to layers do
      let layer =
        List.init width (fun i ->
            M.add m
              ~name:(Printf.sprintf "t%d_%d" l i)
              ~scheduled:(float_of_int (10 * (layers - l)))
              ~local_work:(1.0 +. Rng.float rng 3.0))
      in
      (* The ship milestone depends on the whole first layer; each node
         of a layer depends on 1-2 nodes of the layer below it. *)
      (match !prev with
      | [] -> List.iter (fun id -> M.depends_on m final id) layer
      | above ->
        List.iter
          (fun upper ->
            let deps = 1 + Rng.int rng 2 in
            for _ = 1 to deps do
              let lower = Rng.pick_list rng layer in
              if not (List.mem lower (Db.related (M.db m) upper "depends_on")) then
                M.depends_on m upper lower
            done)
          above);
      prev := layer
    done;
    let db = M.db m in
    let c = Db.counters db in
    ignore (M.expected m final);
    let before_evals = Cactis_util.Counters.get c "rule_evals" in
    let before_marks = Cactis_util.Counters.get c "mark_visits" in
    let t0 = Sys.time () in
    let all = Db.instances_of_type db "milestone" in
    let all_arr = Array.of_list all in
    for round = 1 to rounds do
      (* A slip somewhere in the plan... *)
      let victim = all_arr.(Rng.int rng (Array.length all_arr)) in
      M.slip m victim (Rng.float rng 2.0);
      (* ...the dashboard polls the ship date... *)
      ignore (M.expected m final);
      ignore (M.is_late m final);
      (* ...and every tenth round someone pulls the full report. *)
      if round mod 10 = 0 then ignore (M.report m)
    done;
    let elapsed = Sys.time () -. t0 in
    let evals = Cactis_util.Counters.get c "rule_evals" - before_evals in
    let marks = Cactis_util.Counters.get c "mark_visits" - before_marks in
    (* One extra profiled round — outside the timed window and after the
       counter reads, so the comparison rows stay untouched — checks the
       paper's central invariant mechanically on the macro workload. *)
    let profiled =
      match strategy with
      | Engine.Cactis ->
        Db.set_profiling db true;
        let victim = all_arr.(Rng.int rng (Array.length all_arr)) in
        M.slip m victim 1.0;
        ignore (M.expected m final);
        Db.set_profiling db false;
        Db.last_profile db
      | Engine.Eager_triggers | Engine.Recompute_all -> None
    in
    (evals, marks, elapsed, profiled, db)
  in
  let results =
    List.map
      (fun (label, strategy) ->
        let evals, marks, secs, profiled, db = run strategy in
        (label, evals, marks, secs, profiled, db))
      [
        ("incremental (Cactis)", Engine.Cactis);
        ("eager triggers", Engine.Eager_triggers);
        ("recompute-all", Engine.Recompute_all);
      ]
  in
  let rows =
    List.map
      (fun (label, evals, marks, secs, _, _) ->
        [ label; string_of_int evals; string_of_int marks; Printf.sprintf "%.3f" secs ])
      results
  in
  R.table ~headers:[ "strategy"; "rule evals"; "mark visits"; "cpu seconds" ] rows;
  Printf.printf "(%d layers x %d milestones, %d slip+query rounds)\n" layers width rounds;
  match results with
  | (_, _, _, _, Some prof, db) :: _ ->
    let module P = Cactis_obs.Profile in
    R.table
      ~headers:
        [ "profiled commit"; "marked"; "edges"; "cutoffs"; "evals"; "max/attr"; "work"; "bound" ]
      [
        [
          "slip + ship query";
          string_of_int prof.P.p_nodes_marked;
          string_of_int prof.P.p_edges_walked;
          string_of_int prof.P.p_cutoffs;
          string_of_int prof.P.p_evals;
          string_of_int prof.P.p_max_evals_per_attr;
          string_of_int prof.P.p_work;
          string_of_int prof.P.p_bound;
        ];
      ];
    if not (P.at_most_once prof) then begin
      Printf.printf "ERROR: evaluated-at-most-once violated (max %d evals for one attribute)\n"
        prof.P.p_max_evals_per_attr;
      exit 1
    end;
    Printf.printf "evaluated-at-most-once holds; measured work = %d against O(N+E) bound = %d\n"
      prof.P.p_work prof.P.p_bound;
    R.obs_tables db
  | _ -> ()

(* ================================================================== *)
(* E14: persistence — binary snapshots + write-ahead delta log         *)

let tmp_seq = ref 0

let temp_dir () =
  incr tmp_seq;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cactis_e14_%d_%d" (Unix.getpid ()) !tmp_seq)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let e14 () =
  R.section "E14" "persistence: binary snapshots + write-ahead delta log"
    "\"we need only remember the small changes made in order to restore the database\" (§3) \
     applied to the disk: binary checkpoints for bulk save/load, O(delta) log records for \
     durable commits";
  let now () = Unix.gettimeofday () in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  (* Codec timings start from a settled heap and keep the best of two
     runs: the shared container this runs on has noisy neighbours, and a
     major collection landing inside one measurement would otherwise
     swamp the codec under test. *)
  let time2 f =
    Gc.full_major ();
    let r, t1 = time f in
    let _, t2 = time f in
    (r, Float.min t1 t2)
  in
  let mb bytes = float_of_int bytes /. 1048576.0 in
  (* -- snapshot codec: text vs binary save/load throughput -- *)
  let sizes = if !fast then [ 2_000 ] else [ 20_000; 100_000 ] in
  let codec_rows =
    List.map
      (fun n ->
        let db = W.make_doc_db () in
        let rng = Rng.create 21 in
        ignore (W.docs db ~n ~rng);
        let text, t_st = time2 (fun () -> Snapshot.save db) in
        let bin, t_sb = time2 (fun () -> Snapshot.save_binary db) in
        let db_t, t_lt = time2 (fun () -> Snapshot.load (Db.schema db) text) in
        let db_b, t_lb = time2 (fun () -> Snapshot.load_binary (Db.schema db) bin) in
        (* Both loaders must agree with the source database exactly. *)
        let canonical = Snapshot.save_binary db in
        assert (String.equal canonical (Snapshot.save_binary db_t));
        assert (String.equal canonical (Snapshot.save_binary db_b));
        [
          string_of_int n;
          Printf.sprintf "%.2f" (mb (String.length text));
          Printf.sprintf "%.2f" (mb (String.length bin));
          Printf.sprintf "%.0f" (mb (String.length text) /. t_st);
          Printf.sprintf "%.0f" (mb (String.length bin) /. t_sb);
          Printf.sprintf "%.1fx" (t_st /. t_sb);
          Printf.sprintf "%.0f" (mb (String.length text) /. t_lt);
          Printf.sprintf "%.0f" (mb (String.length bin) /. t_lb);
          Printf.sprintf "%.1fx" (t_lt /. t_lb);
          Printf.sprintf "%.1f" ((t_st +. t_lt) /. (t_sb +. t_lb));
        ])
      sizes
  in
  R.table
    ~headers:
      [
        "docs"; "text MB"; "bin MB"; "text save MB/s"; "bin save MB/s"; "save speedup";
        "text load MB/s"; "bin load MB/s"; "load speedup"; "save+load speedup";
      ]
    codec_rows;
  (* -- commit path: O(delta) log records vs O(db) full re-save -- *)
  let commit_sizes = if !fast then [ 500; 2_000 ] else [ 2_000; 10_000; 50_000 ] in
  let txn_ops = 16 in
  let commits = if !fast then 20 else 40 in
  let commit_rows =
    List.map
      (fun n ->
        let db = W.make_doc_db () in
        let rng = Rng.create 22 in
        let ids = W.docs db ~n ~rng in
        let dir = temp_dir () in
        let p = Persist.attach ~sync_every:1 ~dir db in
        let bytes0 = Persist.wal_bytes p in
        let (), t_wal =
          time (fun () ->
              for _ = 1 to commits do
                W.doc_edit_txn db ids ~ops:txn_ops ~rng
              done)
        in
        let wal_per_commit = (Persist.wal_bytes p - bytes0) / commits in
        let text, t_full = time (fun () -> Snapshot.save db) in
        Persist.close p;
        rm_rf dir;
        [
          string_of_int n;
          string_of_int txn_ops;
          string_of_int wal_per_commit;
          Printf.sprintf "%.0f" (t_wal /. float_of_int commits *. 1e6);
          string_of_int (String.length text);
          Printf.sprintf "%.0f" (t_full *. 1e6);
          Printf.sprintf "%.0fx" (float_of_int (String.length text) /. float_of_int wal_per_commit);
        ])
      commit_sizes
  in
  R.table
    ~headers:
      [
        "docs"; "ops/txn"; "WAL bytes/commit"; "WAL commit us"; "full snapshot bytes";
        "full save us"; "O(db)/O(delta) bytes";
      ]
    commit_rows;
  print_endline
    "(WAL bytes/commit stays flat as the database grows: durability cost follows the delta)";
  (* -- group commit: fsync batching -- *)
  let gc_docs = if !fast then 500 else 2_000 in
  let gc_txns = if !fast then 100 else 400 in
  let gc_rows =
    List.map
      (fun sync_every ->
        let db = W.make_doc_db () in
        let rng = Rng.create 23 in
        let ids = W.docs db ~n:gc_docs ~rng in
        let dir = temp_dir () in
        let p = Persist.attach ~sync_every ~dir db in
        let (), t =
          time (fun () ->
              for _ = 1 to gc_txns do
                W.doc_edit_txn db ids ~ops:4 ~rng
              done;
              Persist.sync p)
        in
        Persist.close p;
        rm_rf dir;
        let label = if sync_every = 0 then "explicit only" else string_of_int sync_every in
        [
          label;
          Printf.sprintf "%.1f" (t *. 1e3);
          Printf.sprintf "%.0f" (float_of_int gc_txns /. t);
        ])
      [ 1; 8; 64; 0 ]
  in
  R.table ~headers:[ "fsync every"; "wall ms"; "commits/s" ] gc_rows;
  (* -- recovery: checkpoint + log tail replay -- *)
  let rec_docs = if !fast then 500 else 5_000 in
  let db = W.make_doc_db () in
  let rng = Rng.create 24 in
  let ids = W.docs db ~n:rec_docs ~rng in
  let dir = temp_dir () in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let tail_txns = if !fast then 20 else 50 in
  for _ = 1 to tail_txns do
    W.doc_edit_txn db ids ~ops:8 ~rng
  done;
  (* Simulated crash: the writer is simply abandoned (every record is
     already fsynced); recovery loads the checkpoint and replays the
     tail. *)
  let p2, t_rec = time (fun () -> Persist.recover ~dir (Db.schema db)) in
  let match1 = String.equal (Snapshot.save_binary db) (Snapshot.save_binary (Persist.db p2)) in
  let replayed1 = Persist.replayed p2 in
  Persist.checkpoint p2;
  Persist.close p2;
  let p3, t_rec2 = time (fun () -> Persist.recover ~dir (Db.schema db)) in
  let match2 = String.equal (Snapshot.save_binary db) (Snapshot.save_binary (Persist.db p3)) in
  let replayed2 = Persist.replayed p3 in
  Persist.close p3;
  Persist.close p;
  rm_rf dir;
  R.table
    ~headers:[ "recovery"; "deltas replayed"; "wall ms"; "state identical" ]
    [
      [ "checkpoint + log tail"; string_of_int replayed1; Printf.sprintf "%.1f" (t_rec *. 1e3);
        string_of_bool match1 ];
      [ "after re-checkpoint"; string_of_int replayed2; Printf.sprintf "%.1f" (t_rec2 *. 1e3);
        string_of_bool match2 ];
    ];
  Printf.printf "(%d docs, %d tail transactions of 8 ops)\n" rec_docs tail_txns

(* ================================================================== *)
(* E15: static schema analysis cost                                    *)

(* A synthetic schema: [classes] object classes in a chain, each with an
   intrinsic [base], [depth] chained derived attributes, and a rule
   reading the neighbour's last derived attribute across a relationship.
   Type-level size grows, data size is irrelevant — the analyzer never
   touches instances. *)
let analysis_schema ~classes ~depth =
  let sch = Schema.create () in
  let cname k = Printf.sprintf "c%d" k in
  for k = 0 to classes - 1 do
    Schema.add_type sch (cname k)
  done;
  for k = 0 to classes - 2 do
    Schema.declare_relationship sch ~from_type:(cname k) ~rel:"down" ~to_type:(cname (k + 1))
      ~inverse:"up" ~card:Schema.Multi ~inverse_card:Schema.One
  done;
  for k = 0 to classes - 1 do
    let tn = cname k in
    Schema.add_attr sch ~type_name:tn (Rule.intrinsic "base" (int 1));
    for d = 0 to depth - 1 do
      let prev = if d = 0 then "base" else Printf.sprintf "d%d" (d - 1) in
      Schema.add_attr sch ~type_name:tn
        (Rule.derived
           (Printf.sprintf "d%d" d)
           (Rule.map1 prev (fun v -> int (Value.as_int v + 1))))
    done;
    if k < classes - 1 then
      Schema.add_attr sch ~type_name:tn
        (Rule.derived "agg"
           (Rule.make
              [ Schema.Rel ("down", Printf.sprintf "d%d" (depth - 1)) ]
              (fun env ->
                int
                  (List.fold_left
                     (fun acc v -> acc + Value.as_int v)
                     0
                     (env.Schema.related_values "down" (Printf.sprintf "d%d" (depth - 1)))))))
  done;
  sch

let e15 () =
  R.section "E15" "static schema analysis cost"
    "the circularity test and lint passes run on the type-level graph: cost scales with \
     declared schema size, never with instance count";
  let module Analyze = Cactis_analysis.Analyze in
  let module Diag = Cactis_analysis.Diag in
  let analyze_counted sch =
    let counters = Cactis_util.Counters.create () in
    let t0 = Unix.gettimeofday () in
    let diags = Analyze.analyze_schema ~counters sch in
    let dt = Unix.gettimeofday () -. t0 in
    (Cactis_util.Counters.snapshot counters, diags, dt)
  in
  let row name sch =
    let counters, diags, dt = analyze_counted sch in
    let get k = try List.assoc k counters with Not_found -> 0 in
    let errors = List.length (Diag.errors diags) in
    [
      name;
      string_of_int (get "analysis_nodes");
      string_of_int (get "analysis_edges");
      string_of_int (get "analysis_sccs");
      string_of_int (get "analysis_diags");
      string_of_int errors;
      Printf.sprintf "%.1f" (dt *. 1e6);
    ]
  in
  let sizes = scale [ (10, 4); (40, 8); (120, 12) ] in
  let rows =
    [
      row "milestone (app)" (Db.schema (Cactis_apps.Milestone.db (Cactis_apps.Milestone.create ())));
      row "flowan (app)" (Cactis_apps.Flowan.schema ());
    ]
    @ List.map
        (fun (classes, depth) ->
          row
            (Printf.sprintf "chain %dx%d" classes depth)
            (analysis_schema ~classes ~depth))
        sizes
  in
  R.table ~headers:[ "schema"; "nodes"; "edges"; "cyclic sccs"; "diags"; "errors"; "wall us" ] rows;
  (* Same schema, growing data: the analyzer's work is constant — it is
     a function of the declarations alone. *)
  let sch () = analysis_schema ~classes:10 ~depth:4 in
  let const_rows =
    List.map
      (fun instances ->
        let s = sch () in
        let db = Db.create s in
        for _ = 1 to instances do
          ignore (Db.create_instance db "c0")
        done;
        let counters, _, dt = analyze_counted s in
        let get k = try List.assoc k counters with Not_found -> 0 in
        [
          string_of_int instances;
          string_of_int (get "analysis_nodes");
          string_of_int (get "analysis_edges");
          Printf.sprintf "%.1f" (dt *. 1e6);
        ])
      (scale [ 0; 1000; 10000 ])
  in
  R.table ~headers:[ "instances"; "nodes"; "edges"; "wall us" ] const_rows

(* ================================================================== *)
(* E16: real-disk pager + clustering strategy shoot-out                *)

let e16 () =
  R.section "E16" "real-disk clustering shoot-out + incremental maintenance"
    "\"this algorithm attempts to place instances which are frequently referenced \
     together, in the same block\" (§2.3) — strategies compared on a real block file, \
     OCB-style traversal workload";
  let objects = if !fast then 512 else 4096 in
  let fanout = 3 in
  let rounds = if !fast then 150 else 800 in
  let depth = 4 in
  let dir = temp_dir () in
  (* --- Strategy shoot-out ---------------------------------------- *)
  (* One database per strategy, identical seeds: same object graph,
     same training trace, same measured trace.  Training accumulates
     usage statistics along the hot paths; the measured replay then
     runs over the strategy's layout. *)
  let seq_reads = ref 0 in
  let best_reads = ref max_int in
  let rows =
    List.map
      (fun strategy ->
        let name = Cactis_storage.Cluster.strategy_name strategy in
        let path = Filename.concat dir ("ocb_" ^ name ^ ".blocks") in
        let db = W.make_ocb_db ~block_capacity:8 ~buffer_capacity:16 ~disk_path:path () in
        let pager = Store.pager (Db.store db) in
        let ids = W.ocb_populate db (Rng.create 7) ~objects ~fanout in
        W.ocb_traversals db (Rng.create 11) ids ~rounds ~depth;
        let blocks = Db.recluster ~strategy db in
        Cactis_storage.Pager.reset_io pager;
        let t0 = Unix.gettimeofday () in
        W.ocb_traversals db (Rng.create 11) ids ~rounds ~depth;
        let dt = Unix.gettimeofday () -. t0 in
        let disk = Cactis_storage.Pager.disk pager in
        let pool = Cactis_storage.Pager.pool pager in
        let reads = Cactis_storage.Disk.reads disk in
        let hits = Cactis_storage.Buffer_pool.hits pool in
        let misses = Cactis_storage.Buffer_pool.misses pool in
        let hit_rate = 100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)) in
        let file_kb = Cactis_storage.Disk.file_size disk / 1024 in
        if strategy = Cactis_storage.Cluster.Sequential then seq_reads := reads
        else if reads < !best_reads then best_reads := reads;
        Cactis_storage.Pager.close pager;
        [
          name; string_of_int blocks; string_of_int reads;
          Printf.sprintf "%.1f%%" hit_rate;
          Printf.sprintf "%.1f" (dt *. 1e3);
          string_of_int file_kb;
          Cactis_util.Ascii_table.fmt_ratio (float_of_int !seq_reads) (float_of_int reads);
        ])
      Cactis_storage.Cluster.all_strategies
  in
  R.table
    ~headers:
      [ "strategy"; "blocks"; "block reads"; "hit rate"; "wall ms"; "file KiB"; "vs sequential" ]
    rows;
  Printf.printf
    "(%d objects x %d module-local refs, %d traversals, depth %d, 8/block, 16-block buffer)\n"
    objects fanout rounds depth;
  (* Hard acceptance bar: usage-driven clustering must at least halve
     the block reads of the sequential baseline on the real device. *)
  if !best_reads * 2 > !seq_reads then begin
    Printf.eprintf "E16 FAILED: best strategy needs %d block reads vs %d sequential (< 2x)\n"
      !best_reads !seq_reads;
    exit 1
  end;
  (* --- Incremental maintenance disruption ------------------------ *)
  (* Same edit workload under three maintenance regimes; the commit
     histogram is reset after the (identical) populate+train phases so
     the stats isolate the edit window, where maintenance runs. *)
  let edit_txns = if !fast then 150 else 600 in
  let ops = 8 in
  let regime name setup mid =
    let path = Filename.concat dir ("edit_" ^ name ^ ".blocks") in
    let db = W.make_ocb_db ~block_capacity:8 ~buffer_capacity:16 ~disk_path:path () in
    let pager = Store.pager (Db.store db) in
    let ids = W.ocb_populate db (Rng.create 7) ~objects ~fanout in
    W.ocb_traversals db (Rng.create 11) ids ~rounds:(rounds / 2) ~depth;
    setup db;
    Cactis_obs.Histogram.reset (Db.obs db).Cactis_obs.Ctx.hists;
    let erng = Rng.create 23 in
    W.ocb_edit_txns db erng ids ~txns:(edit_txns / 2) ~ops;
    let t0 = Unix.gettimeofday () in
    mid db;
    let mid_wall = Unix.gettimeofday () -. t0 in
    W.ocb_edit_txns db erng ids ~txns:(edit_txns / 2) ~ops;
    let snap = Cactis_obs.Histogram.snapshot (Db.obs db).Cactis_obs.Ctx.hists in
    let find n = List.find_opt (fun (s : Cactis_obs.Histogram.stats) -> s.st_name = n) snap in
    let commit = find "commit" in
    (* The single biggest maintenance pause an application thread
       experiences: the whole stop-the-world pass, or one bounded
       incremental slice (which the commit histogram already covers,
       since slices run inside the commit window). *)
    let max_pause =
      match find "recluster_step" with
      | Some s -> s.st_max
      | None -> mid_wall
    in
    (* Cost of cutting a migration plan (full pack over the statistics)
       — the one incremental slice that scales with database size. *)
    let plan_max = Option.map (fun (s : Cactis_obs.Histogram.stats) -> s.st_max) (find "recluster_plan") in
    let c = Db.counters db in
    let steps = Cactis_util.Counters.get c "recluster_steps" in
    let moves = Cactis_util.Counters.get c "recluster_moves" in
    let pending = Store.pending_moves (Db.store db) in
    Cactis_storage.Pager.close pager;
    let us f = Printf.sprintf "%.1f" (f *. 1e6) in
    let plan_cell = match plan_max with Some v -> us v | None -> "-" in
    match commit with
    | Some s ->
      [
        name; string_of_int s.st_count; us s.st_p50; us s.st_p99; us s.st_max;
        us max_pause; plan_cell; string_of_int steps; string_of_int moves;
        string_of_int pending;
      ]
    | None ->
      [ name; "0"; "-"; "-"; "-"; us max_pause; plan_cell; string_of_int steps;
        string_of_int moves; string_of_int pending ]
  in
  let no_op _ = () in
  let regime_rows =
    [
      regime "no maintenance" no_op no_op;
      regime "stop-the-world" no_op (fun db -> ignore (Db.recluster db));
      regime "incremental"
        (fun db -> Db.set_auto_recluster ~drift_threshold:(objects / 2) ~max_moves:32 db true)
        no_op;
    ]
  in
  R.table
    ~headers:
      [ "regime"; "commits"; "p50 (us)"; "p99 (us)"; "max (us)"; "max pause (us)";
        "plan max (us)"; "recluster steps"; "moves"; "pending" ]
    regime_rows;
  print_endline
    "(incremental maintenance bounds per-commit disruption to max_moves block moves; \
     the stop-the-world pass pays the whole reorganization inside one commit window)";
  rm_rf dir

(* ================================================================== *)
(* Timing (Bechamel)                                                   *)

let timing () =
  R.section "T" "wall-clock timing (Bechamel)"
    "relative costs of the strategies on the headline workloads";
  let mk_chain strategy n =
    let db = W.make_db ~strategy () in
    let ids = W.chain db n in
    Db.watch db ids.(0) "total";
    ignore (Db.get db ids.(0) "total");
    let v = ref 0 in
    fun () ->
      incr v;
      (* Change near the head (E1's 10% site): the incremental engine
         re-evaluates ~n/10 attributes, recompute-all evaluates n. *)
      Db.set db ids.(n / 10) "local" (int !v);
      ignore (Db.get db ids.(0) "total")
  in
  let mk_ladder strategy d =
    let db = W.make_db () in
    let top, bottom = W.diamond_ladder db d in
    Db.watch db top "total";
    ignore (Db.get db top "total");
    Engine.set_strategy (Db.engine db) strategy;
    ignore (Db.get db top "total");
    let v = ref 0 in
    fun () ->
      incr v;
      Db.set db bottom "local" (int !v);
      ignore (Db.get db top "total")
  in
  let n = if !fast then 100 else 500 in
  let d = if !fast then 6 else 9 in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:(Printf.sprintf "chain%d/incremental" n)
        (Staged.stage (mk_chain Engine.Cactis n));
      Test.make ~name:(Printf.sprintf "chain%d/recompute-all" n)
        (Staged.stage (mk_chain Engine.Recompute_all n));
      Test.make ~name:(Printf.sprintf "ladder%d/incremental" d)
        (Staged.stage (mk_ladder Engine.Cactis d));
      Test.make ~name:(Printf.sprintf "ladder%d/eager-triggers" d)
        (Staged.stage (mk_ladder Engine.Eager_triggers d));
    ]
  in
  R.run_timing ~quota:0.25 tests

(* ================================================================== *)
(* E17: sustained QPS over TCP (multi-process load driver)             *)

module Net_server = Cactis_net.Server
module Net_client = Cactis_net.Client
module Net_proto = Cactis_net.Proto
module Load = Cactis_net.Load

(* Child roles.  OCaml 5 forbids forking a process with running
   domains, so the parent harness never spawns a domain itself: it
   re-executes this binary as [qps-serve] / [qps-client] children
   (fork+exec via Load.spawn) and only those children go parallel.
   They talk back over stdout in Load's line protocol. *)

let child_arg key default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = key && i + 1 < Array.length Sys.argv then v := Sys.argv.(i + 1))
    Sys.argv;
  !v

let child_int key default = int_of_string (child_arg key (string_of_int default))

let qps_serve_main () =
  let readers = child_int "--readers" 1 in
  let objects = child_int "--objects" 400 in
  let fanout = child_int "--fanout" 3 in
  let seed = child_int "--seed" 7 in
  let db = W.make_ocb_db () in
  let ids = W.ocb_populate db (Rng.create seed) ~objects ~fanout in
  let server =
    Net_server.start ~config:(Net_server.config ~readers ()) ~make_schema:W.ocb_schema db
  in
  let stop = Atomic.make false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true));
  Printf.printf "READY port=%d first=%d last=%d\n%!" (Net_server.port server) ids.(0)
    ids.(Array.length ids - 1);
  while not (Atomic.get stop) do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Net_server.stop server;
  List.iter
    (fun (k, v) -> Printf.printf "STAT %s=%d\n" k v)
    (Cactis_util.Counters.snapshot (Net_server.counters server));
  List.iter
    (fun (s : Cactis_obs.Histogram.stats) ->
      Printf.printf "STAT %s.p50_us=%.1f\nSTAT %s.count=%d\n" s.st_name (s.st_p50 *. 1e6)
        s.st_name s.st_count)
    (Cactis_obs.Histogram.snapshot (Net_server.latencies server));
  exit 0

let qps_client_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let port = child_int "--port" 0 in
  let seconds = float_of_string (child_arg "--seconds" "1.0") in
  let write_pct = child_int "--write-pct" 5 in
  let depth = child_int "--depth" 3 in
  let seed = child_int "--seed" 1 in
  let first = child_int "--first" 0 in
  let last = child_int "--last" 0 in
  let c = Net_client.connect ~port () in
  let rng = Rng.create seed in
  let ops = ref 0 and traversals = ref 0 and commits = ref 0 and errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. seconds in
  while Unix.gettimeofday () < deadline do
    (* Uniform roots: zipf-hot heads would all land on one range-affine
       reader and hide the scaling we are measuring. *)
    let root = first + Rng.int rng (last - first + 1) in
    try
      if Rng.int rng 100 < write_pct then begin
        ignore
          (Net_client.commit c
             [ Net_proto.Set { instance = root; attr = "payload"; value = Value.Int !ops } ]);
        incr commits
      end
      else begin
        (* min_version 0: any snapshot will do for throughput reads. *)
        ignore (Net_client.traverse ~min_version:0 ~depth c ~root ~rel:"refs" ~attr:"payload");
        incr traversals
      end;
      incr ops
    with Net_client.Remote _ -> incr errors
  done;
  let secs = Unix.gettimeofday () -. t0 in
  Net_client.close c;
  Printf.printf "RESULT ops=%d traversals=%d commits=%d errors=%d secs=%.3f\n%!" !ops
    !traversals !commits !errors secs;
  exit 0

let e17 () =
  R.section "E17" "sustained QPS: domain-parallel snapshot reads behind TCP"
    "the paper's closing direction — \"various sub-traversals ... actually running at the \
     same time\"; read throughput should scale with reader domains";
  let objects = if !fast then 400 else 2000 in
  let depth = if !fast then 3 else 4 in
  let seconds = if !fast then 0.6 else 2.0 in
  let n_clients = 4 in
  let assoc k l =
    match List.assoc_opt k l with
    | Some v -> v
    | None -> failwith (Printf.sprintf "E17: missing %s in child line" k)
  in
  let run readers =
    let server =
      Load.spawn
        ~args:
          [ "qps-serve"; "--readers"; string_of_int readers; "--objects";
            string_of_int objects; "--fanout"; "3"; "--seed"; "7" ]
    in
    let ready =
      match Load.read_line ~timeout_s:120. server with
      | Some l -> Load.kv l
      | None -> failwith "E17: server exited before READY"
    in
    if assoc "_tag" ready <> "READY" then failwith "E17: bad server handshake";
    let port = assoc "port" ready in
    let clients =
      List.init n_clients (fun i ->
          Load.spawn
            ~args:
              [ "qps-client"; "--port"; port; "--seconds"; string_of_float seconds;
                "--write-pct"; "5"; "--depth"; string_of_int depth; "--seed";
                string_of_int (100 + i); "--first"; assoc "first" ready; "--last";
                assoc "last" ready ])
    in
    let results =
      List.map
        (fun c ->
          let lines, status = Load.wait c in
          if status <> Unix.WEXITED 0 then failwith "E17: client exited abnormally";
          match List.find_opt (fun l -> List.assoc_opt "_tag" (Load.kv l) = Some "RESULT") lines with
          | Some l -> Load.kv l
          | None -> failwith "E17: client printed no RESULT")
        clients
    in
    let stat_lines, status = Load.terminate server in
    if status <> Unix.WEXITED 0 then failwith "E17: server did not exit cleanly on SIGTERM";
    let stats =
      List.filter_map
        (fun l ->
          let kv = Load.kv l in
          if List.assoc_opt "_tag" kv = Some "STAT" then
            Some (List.filter (fun (k, _) -> k <> "_tag") kv)
          else None)
        stat_lines
      |> List.concat
    in
    let sum key = List.fold_left (fun a r -> a + int_of_string (assoc key r)) 0 results in
    let ops = sum "ops" in
    let errors = sum "errors" in
    let secs =
      List.fold_left (fun a r -> Float.max a (float_of_string (assoc "secs" r))) 0.0 results
    in
    let served =
      match List.assoc_opt "server.req.traverse" stats with Some v -> v | None -> "0"
    in
    (ops, sum "traversals", sum "commits", errors, secs, float_of_int ops /. secs, served)
  in
  let runs = List.map (fun readers -> (readers, run readers)) [ 1; 2; 4 ] in
  let qps_of r =
    let _, (_, _, _, _, _, qps, _) = List.find (fun (n, _) -> n = r) runs in
    qps
  in
  R.table
    ~headers:
      [ "reader domains"; "ops"; "traversals"; "commits"; "client errors";
        "wall (s)"; "qps"; "served traverses"; "speedup vs 1" ]
    (List.map
       (fun (readers, (ops, trav, commits, errors, secs, qps, served)) ->
         [
           string_of_int readers; string_of_int ops; string_of_int trav;
           string_of_int commits; string_of_int errors; Printf.sprintf "%.2f" secs;
           Printf.sprintf "%.0f" qps; served; Printf.sprintf "%.2fx" (qps /. qps_of 1);
         ])
       runs);
  (* Scaling gate: only meaningful with enough cores for 4 readers + a
     writer + a frontend to actually run in parallel.  On smaller
     machines the rows above are still real measurements; the gate
     reports itself skipped rather than lying either way. *)
  let cores = Domain.recommended_domain_count () in
  let scaling = qps_of 4 /. qps_of 1 in
  let verdict =
    if cores >= 4 then
      if scaling >= 2.0 then "pass"
      else
        failwith
          (Printf.sprintf "E17 gate: read throughput scaled only %.2fx from 1 to 4 readers"
             scaling)
    else Printf.sprintf "skipped (%d cores)" cores
  in
  R.table
    ~headers:[ "gate"; "cores"; "qps x1"; "qps x4"; "scaling"; "verdict" ]
    [
      [
        "qps(4 readers) >= 2x qps(1 reader)"; string_of_int cores;
        Printf.sprintf "%.0f" (qps_of 1); Printf.sprintf "%.0f" (qps_of 4);
        Printf.sprintf "%.2fx" scaling; verdict;
      ];
    ]

(* ================================================================== *)
(* E18: flight-recorder overhead — always-on observability must not    *)
(* perturb the engine                                                  *)

let e18 () =
  R.section "E18" "flight recorder overhead: E13 incremental workload, recording on vs off"
    "the ring records every txn/WAL/pager event in production; this run proves the \
     instrumentation neither perturbs the engine's counters nor costs measurable cpu";
  let module M = Cactis_apps.Milestone in
  let layers = if !fast then 10 else 25 in
  let width = if !fast then 8 else 20 in
  let rounds = if !fast then 60 else 200 in
  let reps = if !fast then 1 else 3 in
  (* The E13 incremental workload, verbatim: layered DAG, slips, ship-date
     polls, periodic full reports.  Returns cpu seconds for the editing
     loop and the full engine counter snapshot. *)
  let run_once () =
    let m = M.create ~strategy:Engine.Cactis () in
    let rng = Rng.create 17 in
    let prev = ref [] in
    let final = M.add m ~name:"ship" ~scheduled:(float_of_int (10 * layers)) ~local_work:1.0 in
    for l = 1 to layers do
      let layer =
        List.init width (fun i ->
            M.add m
              ~name:(Printf.sprintf "t%d_%d" l i)
              ~scheduled:(float_of_int (10 * (layers - l)))
              ~local_work:(1.0 +. Rng.float rng 3.0))
      in
      (match !prev with
      | [] -> List.iter (fun id -> M.depends_on m final id) layer
      | above ->
        List.iter
          (fun upper ->
            let deps = 1 + Rng.int rng 2 in
            for _ = 1 to deps do
              let lower = Rng.pick_list rng layer in
              if not (List.mem lower (Db.related (M.db m) upper "depends_on")) then
                M.depends_on m upper lower
            done)
          above);
      prev := layer
    done;
    let db = M.db m in
    ignore (M.expected m final);
    let all_arr = Array.of_list (Db.instances_of_type db "milestone") in
    let t0 = Sys.time () in
    for round = 1 to rounds do
      let victim = all_arr.(Rng.int rng (Array.length all_arr)) in
      M.slip m victim (Rng.float rng 2.0);
      ignore (M.expected m final);
      ignore (M.is_late m final);
      if round mod 10 = 0 then ignore (M.report m)
    done;
    let elapsed = Sys.time () -. t0 in
    (elapsed, Cactis_util.Counters.snapshot (Db.counters db))
  in
  let best recording =
    Cactis_obs.Flight.set_recording recording;
    let best_t = ref infinity in
    let snap = ref [] in
    let events = ref 0 in
    for _ = 1 to reps do
      Cactis_obs.Flight.reset ();
      let t, s = run_once () in
      if t < !best_t then best_t := t;
      snap := s;
      let d = Cactis_obs.Flight.snapshot () in
      events :=
        List.fold_left
          (fun a (sec : Cactis_obs.Flight.section) -> a + sec.Cactis_obs.Flight.fs_total)
          0 d.Cactis_obs.Flight.d_sections
    done;
    (!best_t, !snap, !events)
  in
  let t_on, snap_on, events_on = best true in
  let t_off, snap_off, events_off = best false in
  Cactis_obs.Flight.set_recording true;
  Cactis_obs.Flight.reset ();
  let overhead_pct = if t_off > 0.0 then (t_on -. t_off) /. t_off *. 100.0 else 0.0 in
  R.table
    ~headers:[ "recording"; "best-of cpu (s)"; "flight events"; "engine counters" ]
    [
      [ "on"; Printf.sprintf "%.3f" t_on; string_of_int events_on;
        string_of_int (List.length snap_on) ];
      [ "off"; Printf.sprintf "%.3f" t_off; string_of_int events_off;
        string_of_int (List.length snap_off) ];
    ];
  (* The observability layer must be invisible to the engine: every
     counter the workload bumps must come out bit-identical whether the
     ring was recording or not. *)
  if snap_on <> snap_off then begin
    let dump s = String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) s) in
    Printf.printf "ERROR: counters differ with recording on vs off\n  on : %s\n  off: %s\n"
      (dump snap_on) (dump snap_off);
    exit 1
  end;
  if events_off <> 0 then begin
    Printf.printf "ERROR: %d events recorded while recording was off\n" events_off;
    exit 1
  end;
  Printf.printf "counters bit-identical across %d counter cells; overhead %+.2f%%\n"
    (List.length snap_on) overhead_pct;
  (* The cpu gate only judges full runs: --fast does one short rep and a
     single noisy measurement would fail good code. *)
  if (not !fast) && overhead_pct > 5.0 then begin
    Printf.printf "ERROR: recording overhead %.2f%% exceeds the 5%% budget\n" overhead_pct;
    exit 1
  end

(* ================================================================== *)
(* E19: abstract-interpretation cost model + [Far86] fixed points      *)

let e19 () =
  R.section "E19" "cost/convergence abstract interpretation + fixed-point evaluation"
    "per-attribute cost intervals and convergence verdicts come from the type-level graph \
     alone — analyzer runtime is invariant in instance count — and convergent cycles \
     evaluate to fixed points within the statically computed sweep bound";
  let module Cost = Cactis_analysis.Cost in
  let module Fixpoint = Cactis_analysis.Fixpoint in
  let module View = Cactis_analysis.View in
  let module Depgraph = Cactis_analysis.Depgraph in
  (* 1. Planner-grade per-attribute cost intervals over app schemas. *)
  let cost_rows name sch =
    let c = Cost.analyze_schema sch in
    List.filter_map
      (fun (a : Cost.attr_cost) ->
        (* Intrinsics are free (direct cost exactly [0,0]); everything
           else is a rule worth a row, shaped or not. *)
        let free =
          a.Cost.ac_direct.Cost.lo = 0. && a.Cost.ac_direct.Cost.hi = Some 0.
        in
        if free then None
        else
          Some
            [
              name;
              a.Cost.ac_type ^ "." ^ a.Cost.ac_attr;
              (match a.Cost.ac_shape with Some s -> Schema.shape_name s | None -> "-");
              Cost.interval_to_string a.Cost.ac_direct;
              Cost.interval_to_string a.Cost.ac_cumulative;
            ])
      c.Cost.per_attr
  in
  R.table
    ~headers:[ "schema"; "attribute"; "shape"; "direct"; "cumulative" ]
    (cost_rows "milestone" (Db.schema (Cactis_apps.Milestone.db (Cactis_apps.Milestone.create ())))
    @ cost_rows "flowan" (Cactis_apps.Flowan.schema ()));
  (* 2. Invariance in instance count: the static cost pass never touches
     instances, so its runtime is flat while the database grows. *)
  let inv_rows =
    List.map
      (fun instances ->
        let sch = Db.schema (Cactis_apps.Milestone.db (Cactis_apps.Milestone.create ())) in
        let db = Db.create sch in
        for _ = 1 to instances do
          ignore (Db.create_instance db "milestone")
        done;
        ignore db;
        let t0 = Unix.gettimeofday () in
        let c = Cost.analyze_schema sch in
        let dt = Unix.gettimeofday () -. t0 in
        [
          string_of_int instances;
          string_of_int (List.length c.Cost.per_attr);
          string_of_int c.Cost.convergent_sccs;
          string_of_int c.Cost.divergent_sccs;
          Printf.sprintf "%.1f" (dt *. 1e6);
        ])
      (scale [ 0; 1000; 10000 ])
  in
  R.table
    ~headers:[ "instances"; "attrs costed"; "convergent sccs"; "divergent sccs"; "wall us" ]
    inv_rows;
  (* 3. Fixed-point evaluation: flowan While-loop CFGs of growing body
     size, measured sweeps against the static iteration bound. *)
  let module F = Cactis_apps.Flowan in
  let loop_program n =
    let body =
      List.fold_left
        (fun acc k ->
          let a =
            F.Assign
              { target = "i"; uses = [ "i" ]; label = Printf.sprintf "L%d" k }
          in
          match acc with None -> Some a | Some p -> Some (F.Seq (p, a)))
        None
        (List.init n (fun k -> k))
      |> Option.get
    in
    F.Seq
      ( F.Assign { target = "i"; uses = []; label = "init" },
        F.Seq (F.While { cond_uses = [ "i" ]; body }, F.Assign { target = "r"; uses = [ "i" ]; label = "out" }) )
  in
  let fp_rows =
    List.map
      (fun n ->
        let t = F.analyze ~fixed_point:true ~exit_live:[ "r" ] (loop_program n) in
        let db = F.db t in
        let nodes = F.nodes t in
        let v = View.of_schema (Db.schema db) in
        let g = Depgraph.build v in
        let bound =
          List.fold_left
            (fun acc scc ->
              match
                Fixpoint.iteration_bound ~instances:(List.length nodes)
                  (Fixpoint.classify v g scc)
              with
              | Some b -> acc + b
              | None -> acc)
            0 (Depgraph.cyclic_sccs g)
        in
        List.iter
          (fun id ->
            ignore (F.live_in t id);
            ignore (F.reaching_out t id))
          nodes;
        let snap = Cactis_util.Counters.snapshot (Db.counters db) in
        let get k = try List.assoc k snap with Not_found -> 0 in
        let runs = get "fixpoint_runs" and sweeps = get "fixpoint_sweeps" in
        if sweeps > bound then begin
          Printf.printf "ERROR: E19 measured %d sweeps, static bound is %d\n" sweeps bound;
          exit 1
        end;
        [
          string_of_int n;
          string_of_int (List.length nodes);
          string_of_int runs;
          string_of_int sweeps;
          string_of_int bound;
        ])
      (scale [ 2; 8; 32 ])
  in
  R.table
    ~headers:[ "loop body"; "cfg nodes"; "fixpoint runs"; "sweeps"; "static bound" ]
    fp_rows;
  print_endline "measured sweeps never exceed the static iteration bound"

(* ================================================================== *)
(* E20: WAL-shipping replication — follower lag and catch-up           *)

module Repl_publisher = Cactis_repl.Publisher
module Repl_follower = Cactis_repl.Follower
module Integrity = Cactis.Integrity

(* Writer child: OCB database + Persist + Publisher.  Populating before
   attach forces a baseline checkpoint, so a fresh follower exercises
   the documented bootstrap path (snapshot + log catch-up) rather than
   replaying the populate.  After the paced commit burst — with one
   mid-burst checkpoint, so live followers ride across a generation
   mark — the writer announces its settled head and snapshot digest,
   then keeps serving until SIGTERM. *)
let repl_serve_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true));
  let objects = child_int "--objects" 400 in
  let commits = child_int "--commits" 1000 in
  let seed = child_int "--seed" 7 in
  let dir = temp_dir () in
  let db = W.make_ocb_db () in
  let ids = W.ocb_populate db (Rng.create seed) ~objects ~fanout:3 in
  let p = Persist.attach ~sync_every:0 ~dir db in
  let pub = Repl_publisher.start ~config:(Repl_publisher.config ~heartbeat_s:0.1 ()) p in
  Printf.printf "READY port=%d\n%!" (Repl_publisher.port pub);
  let rng = Rng.create (seed + 1) in
  let n = Array.length ids in
  for k = 1 to commits do
    Db.with_txn db (fun () -> Db.set db ids.(Rng.int rng n) "payload" (int k));
    if k = commits / 2 then Persist.checkpoint p;
    (* Pace the burst so live followers measure real streaming lag
       rather than one giant backlog flush. *)
    if k mod 100 = 0 then Unix.sleepf 0.005
  done;
  (* The head gauge trails commits still in the publisher queue: wait
     for it to stop moving before announcing it. *)
  let rec settle last =
    Unix.sleepf 0.1;
    let h = Repl_publisher.head_seq pub in
    if h <> last then settle h else h
  in
  let head = settle (Repl_publisher.head_seq pub) in
  Printf.printf "DONE head=%d digest=%s\n%!" head
    (Digest.to_hex (Digest.string (Snapshot.save_binary db)));
  while not (Atomic.get stop) do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Repl_publisher.stop pub;
  List.iter
    (fun (k, v) ->
      if String.length k >= 5 && String.sub k 0 5 = "repl." then
        Printf.printf "STAT %s=%d\n" k v)
    (Cactis_util.Counters.snapshot (Db.counters db));
  Persist.close p;
  rm_rf dir;
  exit 0

(* Follower child.  [--mode live] connects while the burst is running
   and streams through it, stopping once synced against a head that has
   stopped moving; [--mode late] connects after the burst and measures
   pure catch-up time to at least [--min-head]. *)
let repl_follow_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let port = child_int "--port" 0 in
  let mode = child_arg "--mode" "live" in
  let min_head = child_int "--min-head" (-1) in
  let f =
    Repl_follower.create
      ~config:(Repl_follower.config ~heartbeat_timeout_s:5.0 ~check_every:64 ())
      ~make_schema:W.ocb_schema ~host:"127.0.0.1" ~port ()
  in
  let t0 = Unix.gettimeofday () in
  if mode = "late" then Repl_follower.run ~until_synced:true f
  else begin
    let d = Domain.spawn (fun () -> try Repl_follower.run f with _ -> ()) in
    let deadline = t0 +. 120.0 in
    let rec wait_stable stable_since last =
      if Unix.gettimeofday () > deadline then failwith "repl-follow: no stable sync";
      let h = Repl_follower.head_seq f in
      let synced = h >= 0 && Repl_follower.applied_seq f >= h in
      if not (synced && h = last && Unix.gettimeofday () -. stable_since >= 0.8) then begin
        Unix.sleepf 0.05;
        if synced && h = last then wait_stable stable_since last
        else wait_stable (Unix.gettimeofday ()) h
      end
    in
    wait_stable (Unix.gettimeofday ()) (-2);
    Repl_follower.stop f;
    Domain.join d
  end;
  let catchup_s = Unix.gettimeofday () -. t0 in
  let fdb =
    match Repl_follower.db f with Some db -> db | None -> failwith "repl-follow: no replica"
  in
  if min_head >= 0 && Repl_follower.applied_seq f < min_head then
    failwith
      (Printf.sprintf "repl-follow: applied %d short of writer head %d"
         (Repl_follower.applied_seq f) min_head);
  let lag =
    List.find_opt
      (fun (s : Cactis_obs.Histogram.stats) -> s.st_name = "repl.lag_s")
      (Cactis_obs.Histogram.snapshot (Db.obs fdb).Cactis_obs.Ctx.hists)
  in
  let p50, p99 =
    match lag with Some s -> (s.st_p50 *. 1e6, s.st_p99 *. 1e6) | None -> (0.0, 0.0)
  in
  let c name = Cactis_util.Counters.get (Db.counters fdb) name in
  Printf.printf
    "RESULT mode=%s catchup_s=%.3f lag_p50_us=%.0f lag_p99_us=%.0f records=%d bootstraps=%d \
     gaps=%d integrity=%d digest=%s\n%!"
    mode catchup_s p50 p99 (c "repl.records") (c "repl.bootstraps") (c "repl.gaps")
    (List.length (Integrity.check fdb))
    (Digest.to_hex (Digest.string (Snapshot.save_binary fdb)));
  exit 0

let e20 () =
  R.section "E20" "WAL-shipping replication: follower lag and catch-up"
    "scaling reads with replicas — a writer ships its commit log to read-only followers; \
     convergence must be exact (binary-snapshot digests), streaming lag bounded, and a \
     late follower's snapshot-bootstrap catch-up fast";
  let objects = if !fast then 200 else 1000 in
  let commits = if !fast then 600 else 4000 in
  let assoc k l =
    match List.assoc_opt k l with
    | Some v -> v
    | None -> failwith (Printf.sprintf "E20: missing %s in child line" k)
  in
  let writer =
    Load.spawn
      ~args:
        [ "repl-serve"; "--objects"; string_of_int objects; "--commits";
          string_of_int commits; "--seed"; "7" ]
  in
  let ready =
    match Load.read_line ~timeout_s:120. writer with
    | Some l -> Load.kv l
    | None -> failwith "E20: writer exited before READY"
  in
  if assoc "_tag" ready <> "READY" then failwith "E20: bad writer handshake";
  let port = assoc "port" ready in
  (* Two live followers stream through the burst... *)
  let live =
    List.init 2 (fun _ -> Load.spawn ~args:[ "repl-follow"; "--port"; port; "--mode"; "live" ])
  in
  let done_kv =
    let rec next () =
      match Load.read_line ~timeout_s:300. writer with
      | None -> failwith "E20: writer exited before DONE"
      | Some l ->
        let kv = Load.kv l in
        if List.assoc_opt "_tag" kv = Some "DONE" then kv else next ()
    in
    next ()
  in
  let head = assoc "head" done_kv in
  let wdigest = assoc "digest" done_kv in
  (* ...and a late follower measures snapshot-bootstrap catch-up to the
     writer's announced head. *)
  let late =
    Load.spawn ~args:[ "repl-follow"; "--port"; port; "--mode"; "late"; "--min-head"; head ]
  in
  let result c =
    let lines, status = Load.wait c in
    if status <> Unix.WEXITED 0 then failwith "E20: follower exited abnormally";
    match
      List.find_opt (fun l -> List.assoc_opt "_tag" (Load.kv l) = Some "RESULT") lines
    with
    | Some l -> Load.kv l
    | None -> failwith "E20: follower printed no RESULT"
  in
  let results = List.map result (live @ [ late ]) in
  let stat_lines, status = Load.terminate writer in
  if status <> Unix.WEXITED 0 then failwith "E20: writer did not exit cleanly on SIGTERM";
  let stats =
    List.filter_map
      (fun l ->
        let kv = Load.kv l in
        if List.assoc_opt "_tag" kv = Some "STAT" then
          Some (List.filter (fun (k, _) -> k <> "_tag") kv)
        else None)
      stat_lines
    |> List.concat
  in
  R.table
    ~headers:
      [ "follower"; "sync (s)"; "lag p50 (us)"; "lag p99 (us)"; "records"; "bootstraps";
        "gaps"; "integrity"; "digest = writer" ]
    (List.mapi
       (fun i r ->
         [
           (if assoc "mode" r = "live" then Printf.sprintf "live %d" (i + 1)
            else "late (catch-up)");
           assoc "catchup_s" r; assoc "lag_p50_us" r; assoc "lag_p99_us" r;
           assoc "records" r; assoc "bootstraps" r; assoc "gaps" r; assoc "integrity" r;
           (if assoc "digest" r = wdigest then "yes" else "NO");
         ])
       results);
  R.table ~headers:[ "writer stat"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (List.sort compare stats));
  List.iter
    (fun r ->
      if assoc "digest" r <> wdigest then
        failwith "E20 gate: a follower diverged from the writer's snapshot digest";
      if assoc "integrity" r <> "0" then
        failwith "E20 gate: a replica failed the integrity audit";
      if assoc "gaps" r <> "0" then
        failwith "E20 gate: a replica saw sequence gaps on a clean network")
    results;
  print_endline
    "all replicas byte-identical to the writer (digest match); integrity clean; no gaps"

(* ================================================================== *)

let () =
  (* Child roles for the E17/E20 multi-process load drivers run before
     ordinary argument parsing (their argv is not experiment ids). *)
  if Array.length Sys.argv > 1 then begin
    match Sys.argv.(1) with
    | "qps-serve" -> qps_serve_main ()
    | "qps-client" -> qps_client_main ()
    | "repl-serve" -> repl_serve_main ()
    | "repl-follow" -> repl_follow_main ()
    | _ -> ()
  end;
  let json = ref false in
  let json_path = ref "BENCH_1.json" in
  let expect_path = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if !expect_path && Filename.check_suffix arg ".json" then begin
          expect_path := false;
          json_path := arg
        end
        else begin
          expect_path := false;
          match arg with
          | "--fast" -> fast := true
          | "--json" ->
              json := true;
              expect_path := true
          | id -> selected := id :: !selected
        end)
    Sys.argv;
  if !json then R.enable_capture ();
  print_endline "Cactis reproduction - experiment harness";
  print_endline "(counts are deterministic; see EXPERIMENTS.md for the paper-vs-measured record)";
  let experiments =
    [
      ("F1", f1); ("F2", f2); ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
      ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("T", timing);
    ]
  in
  List.iter (fun (id, f) -> if wants id then f ()) experiments;
  if !json then begin
    R.write_json !json_path;
    Printf.printf "\nwrote %s\n" !json_path
  end
