(** Block device: logical access accounting over an optional real file.

    The paper's Cactis is "a mass storage database, not an in-memory
    system"; its performance arguments in Section 2.3 are about the
    *number of disk accesses* induced by traversal order and clustering.
    The default (simulated) mode models the disk purely as an accounting
    device, preserving exactly the metric the paper reasons about.

    Passing [~path] backs the device with a real fixed-size block file:
    {!read_block} and {!write_block} then perform a positioned read /
    write of the block's [block_bytes]-byte extent, and {!sync} fsyncs
    the file.  The logical counters count the same events in both modes,
    so experiments can report the paper's metric alongside physical
    wall-clock I/O. *)

type t

(** [create ?path ?block_bytes ()] — simulated device when [path] is
    omitted; otherwise a real block file at [path] (created or
    truncated), [block_bytes] per block (default 4096, minimum 16). *)
val create : ?path:string -> ?block_bytes:int -> unit -> t

(** Whether the device is file-backed. *)
val is_real : t -> bool

val block_bytes : t -> int
val path : t -> string option

(** Record one block read / one block write (counter only, no data —
    used by accounting-only call sites). *)
val read : t -> unit

val write : t -> unit

(** [read_block t block] counts one read and, in real mode, reads the
    block's extent.  The returned buffer is the device's scratch buffer,
    valid until the next block operation; blocks never written read as
    zeroes. *)
val read_block : t -> int -> bytes

(** [write_block t block data] counts one write and, in real mode,
    writes [data] (zero-padded to the block size) at the block's extent.
    @raise Invalid_argument if [data] exceeds the block size. *)
val write_block : t -> int -> bytes -> unit

(** fsync the backing file (no-op when simulated).  The WAL, not the
    block file, is the durability source of truth — see DESIGN.md §9
    for the ordering discipline. *)
val sync : t -> unit

(** Current byte size of the backing file (0 when simulated). *)
val file_size : t -> int

(** Close the backing file descriptor (no-op when simulated). *)
val close : t -> unit

val reads : t -> int
val writes : t -> int

(** Total accesses (reads + writes). *)
val accesses : t -> int

val reset : t -> unit
val pp : Format.formatter -> t -> unit
