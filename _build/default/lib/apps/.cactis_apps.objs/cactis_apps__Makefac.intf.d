lib/apps/makefac.mli: Cactis Cactis_util Fs_sim
