(** Textual snapshots of database {e data}.

    Cactis was a mass-storage DBMS; this reproduction keeps instances in
    memory and simulates the disk, so durability is provided by explicit
    snapshots: {!save} serializes every live instance's identity,
    intrinsic attribute values and relationship links; {!load} rebuilds a
    database from a snapshot against a compatible schema (the schema
    itself — rules are closures — travels separately, e.g. as a
    [.cactis] source file).

    Derived attributes are deliberately {e not} stored: they are
    re-derived on demand after loading, which both keeps snapshots small
    (the same argument as the paper's delta mechanism, §3) and guarantees
    they can never disagree with their rules.

    The format is line-oriented and stable:
    {v
    cactis-snapshot 1
    instance 3 milestone
    attr 3 name s:"design"
    attr 3 local_work f:5.
    link 3 depends_on 7
    v}
    Links are written once per pair (from the lexicographically smaller
    side of the canonical direction) and re-established through the
    normal link primitive, which restores both directions. *)

exception Parse_error of { line : int; message : string }

(** [save db] serializes all live instances. *)
val save : Db.t -> string

(** [load schema text] builds a fresh database (default engine settings)
    holding the snapshot's data.  Instance ids are preserved.
    @raise Parse_error on malformed input.
    @raise Errors.Unknown if the snapshot references types, attributes or
    relationships the schema lacks. *)
val load :
  ?strategy:Engine.strategy ->
  ?sched:Sched.strategy ->
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  Schema.t ->
  string ->
  Db.t

(** [value_to_string] / [value_of_string] — the tagged scalar encoding
    used by the snapshot format (exposed for tests and tools).
    Parse failures report the byte offset within the encoded value. *)
val value_to_string : Value.t -> string

val value_of_string : string -> Value.t

(** {1 Binary snapshots (the hot persistence path)}

    Same data model as the text format, encoded with {!Codec}: an
    8-byte magic ([CACTISB2]), a schema-delta section (the encoded
    schema ops the database had accumulated when the snapshot was
    taken, replayed onto the caller's schema before instances decode —
    this is the snapshot's {e schema version}), the id-allocation
    counter (ids are never reused, even across undone creates), a
    header symbol table
    writing each type/attribute/relationship name once (slots then
    carry only varint refs — the interned-symbol idea applied to
    disk), varint-packed instances and canonical-direction links.
    Several times faster to save and load than the text format; the
    text format stays for debugging and compatibility.

    Snapshots in the previous [CACTISB1] format (no schema-delta
    section) still load, with an empty baseline (schema version 0). *)

(** [save_binary db] serializes all live instances in binary form. *)
val save_binary : Db.t -> string

(** [load_binary schema data] rebuilds a database from a binary
    snapshot.
    @raise Codec.Error on framing errors (with byte offset).
    @raise Parse_error when the magic is missing.
    @raise Errors.Unknown / Errors.Type_error when the snapshot
    references types or attributes the schema lacks (or derived ones). *)
val load_binary :
  ?strategy:Engine.strategy ->
  ?sched:Sched.strategy ->
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  Schema.t ->
  string ->
  Db.t

(** [is_binary data] — does [data] start with a binary magic
    ([CACTISB2] or legacy [CACTISB1])?  Lets tools auto-detect which
    loader to use. *)
val is_binary : string -> bool

(** [binary_schema_version data] — the number of schema deltas in the
    snapshot's schema section (0 for [CACTISB1]), without decoding
    instances or compiling rules.  Persistence uses this to pair a
    checkpoint with its log's schema-version stamp.
    @raise Parse_error when the magic is missing. *)
val binary_schema_version : string -> int
