test/test_gen_schema.mli:
