(* Observability layer tests: tracer ring buffer and Chrome export,
   log-bucketed histograms, the propagation profile's at-most-once
   accounting, and the end-to-end wiring through Db. *)

module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram
module Profile = Cactis_obs.Profile
module Ctx = Cactis_obs.Ctx
module Clock = Cactis_obs.Clock
module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db

let int n = Value.Int n

(* ---- Trace ---- *)

let test_trace_disabled_records_nothing () =
  let t = Trace.create () in
  Trace.instant t "nothing";
  Trace.complete t ~start_ns:(Trace.now_ns ()) "nothing";
  ignore (Trace.span t "nothing" (fun () -> 42));
  Alcotest.(check int) "no events" 0 (Trace.recorded t);
  Alcotest.(check (list string)) "empty" [] (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_records_in_order () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.instant t ~cat:"a" "first";
  ignore (Trace.span t "second" (fun () -> ()));
  Trace.instant t "third";
  Alcotest.(check (list string))
    "oldest first" [ "first"; "second"; "third" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t));
  let span = List.nth (Trace.events t) 1 in
  Alcotest.(check bool) "span is not instant" false span.Trace.ev_instant;
  Alcotest.(check bool) "timestamps non-negative" true
    (List.for_all (fun e -> e.Trace.ev_ts >= 0.0) (Trace.events t))

let test_trace_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  for i = 1 to 10 do
    Trace.instant t (string_of_int i)
  done;
  Alcotest.(check int) "recorded counts all" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped = overflow" 6 (Trace.dropped t);
  Alcotest.(check (list string))
    "ring keeps the newest, oldest first" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_span_records_on_raise () =
  let t = Trace.create () in
  Trace.enable t;
  (try Trace.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string))
    "span captured despite raise" [ "boom" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_chrome_json_shape () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.instant t ~cat:"test" ~args:[ ("k", Trace.S "v\"q"); ("n", Trace.I 3) ] "tick";
  let start_ns = Trace.now_ns () in
  Trace.complete t ~cat:"test" ~args:[ ("ok", Trace.B true) ] ~start_ns "work";
  let json = Trace.to_chrome_json t in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents wrapper" true (has "\"traceEvents\"");
  Alcotest.(check bool) "instant phase" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "complete phase" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "string arg escaped" true (has "\"k\":\"v\\\"q\"");
  Alcotest.(check bool) "int arg" true (has "\"n\":3");
  Alcotest.(check bool) "bool arg" true (has "\"ok\":true")

(* ---- Histogram ---- *)

let test_histogram_quantiles () =
  let reg = Histogram.create () in
  let h = Histogram.cell reg "latency" in
  (* 90 fast observations around 2us, 10 slow around 1ms. *)
  for _ = 1 to 90 do
    Histogram.observe h 2e-6
  done;
  for _ = 1 to 10 do
    Histogram.observe h 1e-3
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  let p50 = Histogram.quantile h 0.5 and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 in the fast bucket" true (p50 < 1e-4);
  Alcotest.(check bool) "p99 in the slow bucket" true (p99 > 1e-4);
  let st = Histogram.stats "latency" h in
  Alcotest.(check bool) "max is exact" true (st.Histogram.st_max = 1e-3);
  Alcotest.(check bool) "quantiles clamp at max" true (st.Histogram.st_p99 <= st.Histogram.st_max)

let test_histogram_snapshot_and_reset () =
  let reg = Histogram.create () in
  let h = Histogram.cell reg "b" in
  Histogram.observe h 1e-5;
  Histogram.observe_named reg "a" 2e-5;
  ignore (Histogram.cell reg "never_observed");
  Alcotest.(check (list string))
    "non-empty only, sorted" [ "a"; "b" ]
    (List.map (fun st -> st.Histogram.st_name) (Histogram.snapshot reg));
  Histogram.reset reg;
  Alcotest.(check (list string)) "reset empties" []
    (List.map (fun st -> st.Histogram.st_name) (Histogram.snapshot reg));
  (* Cached cells survive a reset. *)
  Histogram.observe h 1e-5;
  Alcotest.(check int) "cached cell still live" 1 (Histogram.count h)

let test_ctx_time_observes_on_raise () =
  let ctx = Ctx.create () in
  let h = Histogram.cell ctx.Ctx.hists "op" in
  Trace.enable ctx.Ctx.trace;
  (try Ctx.time ctx h "op" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "histogram fed" 1 (Histogram.count h);
  Alcotest.(check (list string))
    "span recorded" [ "op" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ctx.Ctx.trace))

(* ---- Domain safety (per-domain shards, merge-on-read) ---- *)

let test_counters_multi_domain_hammer () =
  let module Counters = Cactis_util.Counters in
  let c = Counters.create () in
  let domains = 4 and per_domain = 50_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            (* Each domain hammers a shared name through its own cached
               cell plus the cold [incr] path. *)
            let r = Counters.cell c "hits" in
            for _ = 1 to per_domain do
              Stdlib.incr r
            done;
            Counters.add c "per_domain" 1;
            Counters.incr c (Printf.sprintf "domain_%d" d)))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "no lost increments" (domains * per_domain) (Counters.get c "hits");
  Alcotest.(check int) "adds merged" domains (Counters.get c "per_domain");
  for d = 0 to domains - 1 do
    Alcotest.(check int) "per-domain name" 1 (Counters.get c (Printf.sprintf "domain_%d" d))
  done;
  (* Merge-on-read snapshots must diff cleanly in both directions
     (Counters.diff reports before-only names as negative deltas). *)
  let before = Counters.snapshot c in
  Counters.incr c "hits";
  let after = Counters.snapshot c in
  Alcotest.(check (list (pair string int)))
    "diff sees the merged increase"
    [ ("hits", 1) ]
    (List.filter (fun (_, v) -> v <> 0) (Counters.diff ~before ~after));
  Alcotest.(check (list (pair string int)))
    "reverse diff is the negation"
    [ ("hits", -1) ]
    (List.filter (fun (_, v) -> v <> 0) (Counters.diff ~before:after ~after:before));
  Counters.reset c;
  Alcotest.(check int) "reset zeroes all shards" 0 (Counters.get c "hits")

let test_histogram_multi_domain_hammer () =
  let reg = Histogram.create () in
  let domains = 4 and per_domain = 20_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let h = Histogram.cell reg "lat" in
            for i = 1 to per_domain do
              (* Spread observations across buckets; one domain owns the
                 global maximum so the merged max is checkable. *)
              Histogram.observe h (float_of_int (1 + (i mod 64)) *. 1e-6)
            done;
            if d = 0 then Histogram.observe h 1.0))
  in
  Array.iter Domain.join workers;
  match Histogram.snapshot reg with
  | [ st ] ->
    Alcotest.(check string) "name" "lat" st.Histogram.st_name;
    Alcotest.(check int) "no lost observations" ((domains * per_domain) + 1) st.Histogram.st_count;
    Alcotest.(check (float 1e-9)) "merged max" 1.0 st.Histogram.st_max;
    Alcotest.(check bool) "p99 below max" true (st.Histogram.st_p99 <= st.Histogram.st_max);
    Histogram.reset reg;
    Alcotest.(check int) "reset zeroes all shards" 0
      (List.length (Histogram.snapshot reg))
  | other -> Alcotest.failf "expected one merged histogram, got %d" (List.length other)

(* ---- Profile ---- *)

let test_profile_at_most_once () =
  let p = Profile.create () in
  Profile.on_mark p ~key:1;
  Profile.on_mark p ~key:2;
  Profile.on_edge p;
  Profile.on_edge p;
  Profile.on_edge p;
  Profile.on_cutoff p;
  Profile.on_eval p ~key:1;
  Profile.on_eval p ~key:2;
  let s = Profile.snapshot p in
  Alcotest.(check int) "marked" 2 s.Profile.p_nodes_marked;
  Alcotest.(check int) "edges" 3 s.Profile.p_edges_walked;
  Alcotest.(check int) "cutoffs" 1 s.Profile.p_cutoffs;
  Alcotest.(check int) "evals" 2 s.Profile.p_evals;
  Alcotest.(check int) "distinct" 2 s.Profile.p_distinct_evaluated;
  Alcotest.(check bool) "invariant holds" true (Profile.at_most_once s);
  Alcotest.(check int) "bound = nodes+edges" 5 s.Profile.p_bound;
  Alcotest.(check int) "work = marks+cutoffs+evals" 5 s.Profile.p_work

let test_profile_detects_double_eval () =
  let p = Profile.create () in
  Profile.on_eval p ~key:7;
  Profile.on_eval p ~key:7;
  Alcotest.(check bool) "double eval flagged" false (Profile.at_most_once (Profile.snapshot p))

let test_profile_remark_permits_reeval () =
  let p = Profile.create () in
  Profile.on_eval p ~key:7;
  (* An invalidation between the two evaluations makes the second one
     legitimate (recovery actions do this). *)
  Profile.on_mark p ~key:7;
  Profile.on_eval p ~key:7;
  let s = Profile.snapshot p in
  Alcotest.(check bool) "re-marked eval is legitimate" true (Profile.at_most_once s);
  Alcotest.(check int) "both evals counted" 2 s.Profile.p_evals;
  Alcotest.(check int) "one distinct attr" 1 s.Profile.p_distinct_evaluated

(* ---- End-to-end through Db ---- *)

let diamond_schema () =
  (* top depends on left and right, which both depend on base: the
     diamond that makes naive triggers evaluate top twice. *)
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun local totals ->
            Value.add local (Value.sum totals))));
  sch

let diamond db =
  let n () = Db.create_instance db "node" in
  let top = n () and left = n () and right = n () and base = n () in
  Db.link db ~from_id:top ~rel:"deps" ~to_id:left;
  Db.link db ~from_id:top ~rel:"deps" ~to_id:right;
  Db.link db ~from_id:left ~rel:"deps" ~to_id:base;
  Db.link db ~from_id:right ~rel:"deps" ~to_id:base;
  (top, base)

let test_db_profile_on_diamond () =
  let db = Db.create (diamond_schema ()) in
  let top, base = diamond db in
  Alcotest.(check string) "diamond total" "5" (Value.to_string (Db.get db top "total"));
  Db.set_profiling db true;
  Db.begin_txn db;
  Db.set db base "local" (int 10);
  Db.commit db;
  let s = match Db.last_profile db with Some s -> s | None -> Alcotest.fail "no profile" in
  Alcotest.(check bool) "marks happened" true (s.Profile.p_nodes_marked > 0);
  Alcotest.(check bool) "evals happened" true (s.Profile.p_evals > 0);
  Alcotest.(check bool) "at most once on the diamond" true (Profile.at_most_once s);
  Alcotest.(check bool) "work within constant of bound" true
    (Profile.work_ratio s <= 2.0);
  (* The profile is per-commit: an unprofiled commit leaves the last
     snapshot in place, a profiled one replaces it. *)
  Db.set_profiling db false;
  Db.begin_txn db;
  Db.set db base "local" (int 11);
  Db.commit db;
  Alcotest.(check bool) "snapshot kept" true (Db.last_profile db = Some s)

let test_db_tracing_and_histograms () =
  let db = Db.create (diamond_schema ()) in
  let top, base = diamond db in
  ignore (Db.get db top "total");
  Db.set_tracing db true;
  Db.begin_txn db;
  Db.set db base "local" (int 3);
  Db.commit db;
  Db.set_tracing db false;
  let tr = (Db.obs db).Cactis_obs.Ctx.trace in
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events tr) in
  Alcotest.(check bool) "begin_txn instant" true (List.mem "begin_txn" names);
  Alcotest.(check bool) "mark wave span" true (List.mem "mark_wave" names);
  Alcotest.(check bool) "commit span" true (List.mem "commit" names);
  (* Histograms run with tracing off too. *)
  let hists = Histogram.snapshot (Db.obs db).Cactis_obs.Ctx.hists in
  let hnames = List.map (fun st -> st.Histogram.st_name) hists in
  Alcotest.(check bool) "commit histogram" true (List.mem "commit" hnames);
  Alcotest.(check bool) "mark_wave histogram" true (List.mem "mark_wave" hnames)

let () =
  Alcotest.run "cactis-obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_trace_disabled_records_nothing;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "span on raise" `Quick test_trace_span_records_on_raise;
          Alcotest.test_case "chrome json shape" `Quick test_trace_chrome_json_shape;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "snapshot and reset" `Quick test_histogram_snapshot_and_reset;
          Alcotest.test_case "ctx time on raise" `Quick test_ctx_time_observes_on_raise;
        ] );
      ( "domain-safe",
        [
          Alcotest.test_case "counters hammer" `Quick test_counters_multi_domain_hammer;
          Alcotest.test_case "histogram hammer" `Quick test_histogram_multi_domain_hammer;
        ] );
      ( "profile",
        [
          Alcotest.test_case "at most once" `Quick test_profile_at_most_once;
          Alcotest.test_case "double eval detected" `Quick test_profile_detects_double_eval;
          Alcotest.test_case "remark permits re-eval" `Quick test_profile_remark_permits_reeval;
        ] );
      ( "db",
        [
          Alcotest.test_case "profile on diamond" `Quick test_db_profile_on_diamond;
          Alcotest.test_case "tracing and histograms" `Quick test_db_tracing_and_histograms;
        ] );
    ]
