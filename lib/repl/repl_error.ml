(* Typed replication failures; see the interface for the taxonomy. *)

let code_follower_ahead = "follower-ahead"
let code_generation_mismatch = "generation-mismatch"
let code_protocol = "protocol"

exception Refused of { code : string; message : string }

(* Raised by the codec, rebound here so callers catch every replication
   failure through one module. *)
exception Corrupt = Repl_proto.Corrupt

exception
  Gap of { expected : Repl_proto.cursor; got : Repl_proto.cursor; seq : int }

exception Diverged of { violations : string list }
exception Transport of string

let to_string = function
  | Refused { code; message } -> Printf.sprintf "refused [%s]: %s" code message
  | Corrupt { context; message } -> Printf.sprintf "corrupt frame (%s): %s" context message
  | Gap { expected; got; seq } ->
    Printf.sprintf "stream gap at seq %d: replica at %s, record follows %s" seq
      (Repl_proto.cursor_to_string expected)
      (Repl_proto.cursor_to_string got)
  | Diverged { violations } ->
    Printf.sprintf "replica diverged: %s" (String.concat "; " violations)
  | Transport m -> Printf.sprintf "transport: %s" m
  | e -> Printexc.to_string e

let recoverable = function
  | Refused _ | Diverged _ -> false
  | Corrupt _ | Gap _ | Transport _ -> true
  | _ -> false
