test/test_typecheck.ml: Alcotest Cactis_ddl Format List Printf String
