test/test_util.ml: Alcotest Array Cactis_util List QCheck QCheck_alcotest String
