module Pager = Cactis_storage.Pager
module Usage = Cactis_storage.Usage
module Cluster = Cactis_storage.Cluster
module Counters = Cactis_util.Counters
module Decaying_avg = Cactis_util.Decaying_avg
module Symbol = Cactis_util.Symbol

type t = {
  schema : Schema.t;
  instances : (int, Instance.t) Hashtbl.t;
  mutable next_id : int;
  mutable ids_cache : int list option;  (* sorted live ids, invalidated on create/delete *)
  pager : Pager.t;
  usage : Usage.t;
  counters : Counters.t;
  obs : Cactis_obs.Ctx.t;
  c_touches : int ref;
  c_misses : int ref;
  c_slot_writes : int ref;
  c_links : int ref;
  link_tags : (int, Decaying_avg.t) Hashtbl.t;  (* packed (id, rel symbol) *)
  (* Incremental re-clustering plan: (id, target block) moves not yet
     applied.  [plan_pos] is the cursor; the plan is drained by
     {!recluster_step}. *)
  mutable plan : (int * int) array;
  mutable plan_pos : int;
  mutable write_observers : (int -> string -> Value.t -> unit) list;
  mutable create_observers : (int -> unit) list;
  mutable delete_observers : (int -> unit) list;
  mutable mark_observers : (int -> string -> unit) list;
}

let create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes schema =
  let counters = Counters.create () in
  {
    schema;
    instances = Hashtbl.create 256;
    next_id = 1;
    ids_cache = Some [];
    pager = Pager.create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes ();
    usage = Usage.create ();
    counters;
    obs = Cactis_obs.Ctx.create ();
    c_touches = Counters.cell counters "instance_touches";
    c_misses = Counters.cell counters "block_misses";
    c_slot_writes = Counters.cell counters "slot_writes";
    c_links = Counters.cell counters "links_established";
    link_tags = Hashtbl.create 256;
    plan = [||];
    plan_pos = 0;
    write_observers = [];
    create_observers = [];
    delete_observers = [];
    mark_observers = [];
  }

let subscribe_write t f = t.write_observers <- f :: t.write_observers
let subscribe_create t f = t.create_observers <- f :: t.create_observers
let subscribe_delete t f = t.delete_observers <- f :: t.delete_observers
let subscribe_mark t f = t.mark_observers <- f :: t.mark_observers
let notify_mark t id attr = List.iter (fun f -> f id attr) t.mark_observers
let notify_write t id attr v = List.iter (fun f -> f id attr v) t.write_observers

let schema t = t.schema
let pager t = t.pager
let usage t = t.usage
let counters t = t.counters
let obs t = t.obs

let link_tag_sym t id rel_sym =
  let key = Symbol.pack id rel_sym in
  match Hashtbl.find_opt t.link_tags key with
  | Some tag -> tag
  | None ->
    (* Worst-case initial estimate: one block per crossing. *)
    let tag = Decaying_avg.create ~initial:1.0 () in
    Hashtbl.add t.link_tags key tag;
    tag

let link_tag t id rel = link_tag_sym t id (Symbol.intern rel)

let get_opt t id =
  match Hashtbl.find_opt t.instances id with
  | Some inst when inst.Instance.alive -> Some inst
  | Some _ | None -> None

let get t id =
  match get_opt t id with
  | Some inst -> inst
  | None -> Errors.unknown "no live instance %d" id

let mem t id = get_opt t id <> None

let create_instance t type_name =
  let layout = Schema.layout t.schema type_name in
  let id = t.next_id in
  t.next_id <- id + 1;
  let inst = Instance.create ~id ~layout in
  Hashtbl.replace t.instances id inst;
  t.ids_cache <- None;
  Pager.register t.pager id;
  Counters.incr t.counters "instances_created";
  List.iter (fun f -> f id) t.create_observers;
  inst

let next_id t = t.next_id
let reserve_ids t n = if n > t.next_id then t.next_id <- n

let recreate_instance t ~id type_name =
  if mem t id then Errors.type_error "instance %d already live" id;
  let layout = Schema.layout t.schema type_name in
  let inst = Instance.create ~id ~layout in
  Hashtbl.replace t.instances id inst;
  t.ids_cache <- None;
  Pager.register t.pager id;
  if id >= t.next_id then t.next_id <- id + 1;
  List.iter (fun f -> f id) t.create_observers;
  inst

let delete_instance t id =
  let inst = get t id in
  if Instance.all_links inst <> [] then
    Errors.type_error "instance %d still has links; break them before deleting" id;
  List.iter (fun f -> f id) t.delete_observers;
  inst.Instance.alive <- false;
  Hashtbl.remove t.instances id;
  t.ids_cache <- None;
  Pager.forget t.pager id;
  Usage.forget_instance t.usage id;
  Counters.incr t.counters "instances_deleted"

let instance_ids t =
  match t.ids_cache with
  | Some ids -> ids
  | None ->
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.instances [] |> List.sort compare in
    t.ids_cache <- Some ids;
    ids

let instance_count t = Hashtbl.length t.instances

let instances_of_type t type_name =
  Hashtbl.fold
    (fun id (inst : Instance.t) acc ->
      if String.equal inst.type_name type_name then id :: acc else acc)
    t.instances []
  |> List.sort compare

let touch t id =
  Usage.touch_instance t.usage id;
  incr t.c_touches;
  match Pager.touch t.pager id with
  | `Hit -> ()
  | `Miss -> incr t.c_misses

let resident t id = Pager.resident t.pager id

let link t ~from_id ~rel ~to_id =
  let a = get t from_id and b = get t to_id in
  match Instance.find_link a rel with
  | None -> Errors.unknown "type %s has no relationship %s" a.Instance.type_name rel
  | Some ix ->
    let li = a.Instance.layout.Schema.lay_links.(ix) in
    let rd = li.Schema.li_def in
    if not (String.equal b.Instance.type_name rd.Schema.target) then
      Errors.type_error "relationship %s.%s targets %s, not %s" a.Instance.type_name rel
        rd.Schema.target b.Instance.type_name;
    let inv_ix = li.Schema.li_inverse_ix in
    if inv_ix < 0 then
      Errors.unknown "type %s has no relationship %s" b.Instance.type_name rd.Schema.inverse;
    if rd.Schema.card = Schema.One && Instance.link_count_ix a ix > 0 then
      Errors.cardinality "instance %d: relationship %s already occupied" from_id rel;
    let ird = b.Instance.layout.Schema.lay_links.(inv_ix).Schema.li_def in
    if ird.Schema.card = Schema.One && Instance.link_count_ix b inv_ix > 0 then
      Errors.cardinality "instance %d: relationship %s already occupied" to_id rd.Schema.inverse;
    touch t from_id;
    touch t to_id;
    Instance.add_link_ix a ix to_id;
    Instance.add_link_ix b inv_ix from_id;
    Counters.incr t.counters "links_established"

let unlink t ~from_id ~rel ~to_id =
  let a = get t from_id and b = get t to_id in
  match Instance.find_link a rel with
  | None -> Errors.unknown "type %s has no relationship %s" a.Instance.type_name rel
  | Some ix ->
    let li = a.Instance.layout.Schema.lay_links.(ix) in
    touch t from_id;
    touch t to_id;
    let removed = Instance.remove_link_ix a ix to_id in
    if removed then begin
      if li.Schema.li_inverse_ix >= 0 then
        ignore (Instance.remove_link_ix b li.Schema.li_inverse_ix from_id);
      Counters.incr t.counters "links_broken"
    end;
    removed

let linked t id rel =
  let inst = get t id in
  touch t id;
  match Instance.find_link inst rel with
  | Some ix ->
    let ids = Instance.linked_ix inst ix in
    (* Listing a relationship traverses it: record one crossing per
       related instance (§2.3's self-adaptive statistics), so plain
       structural traversals — not just dependency propagation — feed
       the clustering strategies. *)
    let rel_sym = Symbol.intern rel in
    List.iter
      (fun other -> Usage.cross_sym t.usage ~from_instance:id ~rel_sym ~to_instance:other)
      ids;
    ids
  | None -> Errors.unknown "type %s has no relationship %s" inst.Instance.type_name rel

let read_slot t id attr =
  let inst = get t id in
  touch t id;
  Instance.slot inst attr

let write_value t id attr v =
  let s = read_slot t id attr in
  s.Instance.value <- v;
  s.Instance.state <- Instance.Up_to_date;
  Counters.incr t.counters "slot_writes";
  notify_write t id attr v

(* Bulk-load write used by the binary snapshot loader: the slot index is
   already resolved against the instance's layout, and the pager/usage
   charge is skipped — a snapshot load streams every instance exactly
   once, so per-slot residency accounting would only measure the loader
   itself. *)
let load_value_ix t (inst : Instance.t) ix v =
  let s = Instance.slot_ix inst ix in
  s.Instance.value <- v;
  s.Instance.state <- Instance.Up_to_date;
  incr t.c_slot_writes;
  if t.write_observers <> [] then
    notify_write t inst.Instance.id inst.Instance.layout.Schema.lay_slots.(ix).Schema.si_name v

(* Bulk-load link used by the binary snapshot loader: the caller has
   resolved the link slot against [a]'s layout and checked that [b]'s
   type matches the declared target, so only the cardinality invariants
   remain; like [load_value_ix] it skips the pager/usage charge. *)
let load_link_ix t (a : Instance.t) ix (b : Instance.t) =
  let li = a.Instance.layout.Schema.lay_links.(ix) in
  let rd = li.Schema.li_def in
  let inv_ix = li.Schema.li_inverse_ix in
  if inv_ix < 0 then
    Errors.unknown "type %s has no relationship %s" rd.Schema.target rd.Schema.inverse;
  if rd.Schema.card = Schema.One && Instance.link_count_ix a ix > 0 then
    Errors.cardinality "instance %d: relationship %s already occupied" a.Instance.id
      li.Schema.li_name;
  let ird = b.Instance.layout.Schema.lay_links.(inv_ix).Schema.li_def in
  if ird.Schema.card = Schema.One && Instance.link_count_ix b inv_ix > 0 then
    Errors.cardinality "instance %d: relationship %s already occupied" b.Instance.id
      rd.Schema.inverse;
  Instance.add_link_ix a ix b.Instance.id;
  Instance.add_link_ix b inv_ix a.Instance.id;
  incr t.c_links

(* Usage statistics snapshot for the clustering strategies: every live
   instance with its access count, and every structural link with its
   accumulated crossing count (0 for never-traversed links) — the greedy
   inner loop can then pull cold neighbours into a hot block before
   opening a new one. *)
let usage_snapshot t =
  let instances =
    instance_ids t |> List.map (fun id -> (id, Usage.instance_count t.usage id))
  in
  let links =
    instance_ids t
    |> List.concat_map (fun id ->
           let inst = get t id in
           Instance.all_links inst
           |> List.concat_map (fun (rel, ids) ->
                  List.filter_map
                    (fun other ->
                      if id < other then
                        Some
                          {
                            Cluster.a = id;
                            b = other;
                            rel;
                            count =
                              Usage.crossing_count t.usage ~from_instance:id ~rel
                                ~to_instance:other;
                          }
                      else None)
                    ids))
  in
  (instances, links)

(* Cluster time refreshes the worst-case statistics used as initial
   estimates for the decaying averages (§2.3): a link whose two ends now
   share a block costs 0 extra blocks in the worst case, 1 otherwise. *)
let reseed_link_tags t =
  Hashtbl.iter
    (fun key tag ->
      let id = Symbol.pack_id key in
      let rel = Symbol.name (Symbol.pack_sym key) in
      match get_opt t id with
      | None -> ()
      | Some inst ->
        let same_block other =
          Pager.block_of t.pager id <> None
          && Pager.block_of t.pager id = Pager.block_of t.pager other
        in
        let neighbours = Instance.linked inst rel in
        let worst =
          List.fold_left (fun acc o -> if same_block o then acc else acc +. 1.0) 0.0 neighbours
        in
        Decaying_avg.reset tag ~initial:worst)
    t.link_tags

let pack_current t strategy =
  let instances, links = usage_snapshot t in
  Cluster.pack_with strategy ~block_capacity:(Pager.block_capacity t.pager) ~instances ~links

let recluster ?(strategy = Cluster.Greedy) t =
  let assignment = pack_current t strategy in
  Pager.apply_clustering t.pager assignment;
  (* A wholesale reorganization supersedes any in-flight migration. *)
  t.plan <- [||];
  t.plan_pos <- 0;
  reseed_link_tags t;
  Counters.incr t.counters "reclusterings";
  assignment.Cluster.block_count

(* Incremental re-clustering: compute the target placement now, move a
   bounded number of instances per {!recluster_step}.  Target blocks are
   laid out in a fresh region past the current maximum block (copying
   style), so half-migrated states never overfill a block: plan moves
   are the only writers of target blocks, and new instances keep
   appending to the old region until the plan completes. *)
let begin_recluster ?(strategy = Cluster.Greedy) t =
  let assignment = pack_current t strategy in
  let base =
    1
    + List.fold_left
        (fun acc id -> match Pager.block_of t.pager id with Some b -> max acc b | None -> acc)
        (-1) (instance_ids t)
  in
  let moves =
    Hashtbl.fold (fun id block acc -> (id, base + block) :: acc) assignment.Cluster.block_of []
    (* Fill one target block at a time: moves sorted by destination keep
       the dirty working set of a step small and deterministic. *)
    |> List.sort (fun (id1, b1) (id2, b2) ->
           match compare b1 b2 with 0 -> compare id1 id2 | c -> c)
  in
  t.plan <- Array.of_list moves;
  t.plan_pos <- 0;
  (* Reserve the whole target region up front: appends while the
     migration is in flight land beyond it, so plan moves stay the only
     writers of target blocks and their capacity bound holds even when
     instances are created mid-migration. *)
  if moves <> [] then Pager.advance_tail t.pager (base + assignment.Cluster.block_count);
  Array.length t.plan

let pending_moves t = Array.length t.plan - t.plan_pos

let recluster_step t ~max_moves =
  if max_moves < 1 then invalid_arg "Store.recluster_step: max_moves must be >= 1";
  let remaining = pending_moves t in
  if remaining = 0 then 0
  else begin
    let n = min max_moves remaining in
    let max_target = ref (-1) in
    for i = t.plan_pos to t.plan_pos + n - 1 do
      let id, block = t.plan.(i) in
      (* Instances deleted since the plan was computed are skipped;
         relocate is a no-op for unplaced ids. *)
      Pager.relocate t.pager id ~block;
      if block > !max_target then max_target := block
    done;
    t.plan_pos <- t.plan_pos + n;
    Counters.add t.counters "recluster_moves" n;
    Counters.incr t.counters "recluster_steps";
    if pending_moves t = 0 then begin
      (* Migration complete: future appends join the migrated region,
         and the link cost tags are reseeded exactly as after a full
         re-clustering. *)
      Pager.advance_tail t.pager (!max_target + 1);
      t.plan <- [||];
      t.plan_pos <- 0;
      reseed_link_tags t;
      Counters.incr t.counters "reclusterings"
    end;
    n
  end
