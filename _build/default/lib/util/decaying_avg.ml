type t = {
  alpha : float;
  mutable estimate : float;
  mutable count : int;
}

let create ?(alpha = 0.25) ~initial () =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Decaying_avg.create: alpha must be in (0,1]";
  { alpha; estimate = initial; count = 0 }

let observe t x =
  t.estimate <- t.estimate +. (t.alpha *. (x -. t.estimate));
  t.count <- t.count + 1

let value t = t.estimate
let observations t = t.count

let reset t ~initial =
  t.estimate <- initial;
  t.count <- 0

let pp fmt t = Format.fprintf fmt "%.3f (n=%d)" t.estimate t.count
