(* Observability layer tests: tracer ring buffer and Chrome export,
   log-bucketed histograms, the propagation profile's at-most-once
   accounting, and the end-to-end wiring through Db. *)

module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram
module Profile = Cactis_obs.Profile
module Ctx = Cactis_obs.Ctx
module Clock = Cactis_obs.Clock
module Flight = Cactis_obs.Flight
module Metrics = Cactis_obs.Metrics
module Slowlog = Cactis_obs.Slowlog
module Watchdog = Cactis_obs.Watchdog
module Counters = Cactis_util.Counters
module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Persist = Cactis.Persist
module Doctor = Cactis.Doctor

let int n = Value.Int n

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- Trace ---- *)

let test_trace_disabled_records_nothing () =
  let t = Trace.create () in
  Trace.instant t "nothing";
  Trace.complete t ~start_ns:(Trace.now_ns ()) "nothing";
  ignore (Trace.span t "nothing" (fun () -> 42));
  Alcotest.(check int) "no events" 0 (Trace.recorded t);
  Alcotest.(check (list string)) "empty" [] (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_records_in_order () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.instant t ~cat:"a" "first";
  ignore (Trace.span t "second" (fun () -> ()));
  Trace.instant t "third";
  Alcotest.(check (list string))
    "oldest first" [ "first"; "second"; "third" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t));
  let span = List.nth (Trace.events t) 1 in
  Alcotest.(check bool) "span is not instant" false span.Trace.ev_instant;
  Alcotest.(check bool) "timestamps non-negative" true
    (List.for_all (fun e -> e.Trace.ev_ts >= 0.0) (Trace.events t))

let test_trace_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  for i = 1 to 10 do
    Trace.instant t (string_of_int i)
  done;
  Alcotest.(check int) "recorded counts all" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped = overflow" 6 (Trace.dropped t);
  Alcotest.(check (list string))
    "ring keeps the newest, oldest first" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_span_records_on_raise () =
  let t = Trace.create () in
  Trace.enable t;
  (try Trace.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string))
    "span captured despite raise" [ "boom" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

let test_trace_chrome_json_shape () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.instant t ~cat:"test" ~args:[ ("k", Trace.S "v\"q"); ("n", Trace.I 3) ] "tick";
  let start_ns = Trace.now_ns () in
  Trace.complete t ~cat:"test" ~args:[ ("ok", Trace.B true) ] ~start_ns "work";
  let json = Trace.to_chrome_json t in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents wrapper" true (has "\"traceEvents\"");
  Alcotest.(check bool) "instant phase" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "complete phase" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "string arg escaped" true (has "\"k\":\"v\\\"q\"");
  Alcotest.(check bool) "int arg" true (has "\"n\":3");
  Alcotest.(check bool) "bool arg" true (has "\"ok\":true")

(* ---- Histogram ---- *)

let test_histogram_quantiles () =
  let reg = Histogram.create () in
  let h = Histogram.cell reg "latency" in
  (* 90 fast observations around 2us, 10 slow around 1ms. *)
  for _ = 1 to 90 do
    Histogram.observe h 2e-6
  done;
  for _ = 1 to 10 do
    Histogram.observe h 1e-3
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  let p50 = Histogram.quantile h 0.5 and p99 = Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 in the fast bucket" true (p50 < 1e-4);
  Alcotest.(check bool) "p99 in the slow bucket" true (p99 > 1e-4);
  let st = Histogram.stats "latency" h in
  Alcotest.(check bool) "max is exact" true (st.Histogram.st_max = 1e-3);
  Alcotest.(check bool) "quantiles clamp at max" true (st.Histogram.st_p99 <= st.Histogram.st_max)

let test_histogram_snapshot_and_reset () =
  let reg = Histogram.create () in
  let h = Histogram.cell reg "b" in
  Histogram.observe h 1e-5;
  Histogram.observe_named reg "a" 2e-5;
  ignore (Histogram.cell reg "never_observed");
  Alcotest.(check (list string))
    "non-empty only, sorted" [ "a"; "b" ]
    (List.map (fun st -> st.Histogram.st_name) (Histogram.snapshot reg));
  Histogram.reset reg;
  Alcotest.(check (list string)) "reset empties" []
    (List.map (fun st -> st.Histogram.st_name) (Histogram.snapshot reg));
  (* Cached cells survive a reset. *)
  Histogram.observe h 1e-5;
  Alcotest.(check int) "cached cell still live" 1 (Histogram.count h)

let test_ctx_time_observes_on_raise () =
  let ctx = Ctx.create () in
  let h = Histogram.cell ctx.Ctx.hists "op" in
  Trace.enable ctx.Ctx.trace;
  (try Ctx.time ctx h "op" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "histogram fed" 1 (Histogram.count h);
  Alcotest.(check (list string))
    "span recorded" [ "op" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ctx.Ctx.trace))

(* ---- Domain safety (per-domain shards, merge-on-read) ---- *)

let test_counters_multi_domain_hammer () =
  let module Counters = Cactis_util.Counters in
  let c = Counters.create () in
  let domains = 4 and per_domain = 50_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            (* Each domain hammers a shared name through its own cached
               cell plus the cold [incr] path. *)
            let r = Counters.cell c "hits" in
            for _ = 1 to per_domain do
              Stdlib.incr r
            done;
            Counters.add c "per_domain" 1;
            Counters.incr c (Printf.sprintf "domain_%d" d)))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "no lost increments" (domains * per_domain) (Counters.get c "hits");
  Alcotest.(check int) "adds merged" domains (Counters.get c "per_domain");
  for d = 0 to domains - 1 do
    Alcotest.(check int) "per-domain name" 1 (Counters.get c (Printf.sprintf "domain_%d" d))
  done;
  (* Merge-on-read snapshots must diff cleanly in both directions
     (Counters.diff reports before-only names as negative deltas). *)
  let before = Counters.snapshot c in
  Counters.incr c "hits";
  let after = Counters.snapshot c in
  Alcotest.(check (list (pair string int)))
    "diff sees the merged increase"
    [ ("hits", 1) ]
    (List.filter (fun (_, v) -> v <> 0) (Counters.diff ~before ~after));
  Alcotest.(check (list (pair string int)))
    "reverse diff is the negation"
    [ ("hits", -1) ]
    (List.filter (fun (_, v) -> v <> 0) (Counters.diff ~before:after ~after:before));
  Counters.reset c;
  Alcotest.(check int) "reset zeroes all shards" 0 (Counters.get c "hits")

let test_histogram_multi_domain_hammer () =
  let reg = Histogram.create () in
  let domains = 4 and per_domain = 20_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let h = Histogram.cell reg "lat" in
            for i = 1 to per_domain do
              (* Spread observations across buckets; one domain owns the
                 global maximum so the merged max is checkable. *)
              Histogram.observe h (float_of_int (1 + (i mod 64)) *. 1e-6)
            done;
            if d = 0 then Histogram.observe h 1.0))
  in
  Array.iter Domain.join workers;
  match Histogram.snapshot reg with
  | [ st ] ->
    Alcotest.(check string) "name" "lat" st.Histogram.st_name;
    Alcotest.(check int) "no lost observations" ((domains * per_domain) + 1) st.Histogram.st_count;
    Alcotest.(check (float 1e-9)) "merged max" 1.0 st.Histogram.st_max;
    Alcotest.(check bool) "p99 below max" true (st.Histogram.st_p99 <= st.Histogram.st_max);
    Histogram.reset reg;
    Alcotest.(check int) "reset zeroes all shards" 0
      (List.length (Histogram.snapshot reg))
  | other -> Alcotest.failf "expected one merged histogram, got %d" (List.length other)

(* ---- Profile ---- *)

let test_profile_at_most_once () =
  let p = Profile.create () in
  Profile.on_mark p ~key:1;
  Profile.on_mark p ~key:2;
  Profile.on_edge p;
  Profile.on_edge p;
  Profile.on_edge p;
  Profile.on_cutoff p;
  Profile.on_eval p ~key:1;
  Profile.on_eval p ~key:2;
  let s = Profile.snapshot p in
  Alcotest.(check int) "marked" 2 s.Profile.p_nodes_marked;
  Alcotest.(check int) "edges" 3 s.Profile.p_edges_walked;
  Alcotest.(check int) "cutoffs" 1 s.Profile.p_cutoffs;
  Alcotest.(check int) "evals" 2 s.Profile.p_evals;
  Alcotest.(check int) "distinct" 2 s.Profile.p_distinct_evaluated;
  Alcotest.(check bool) "invariant holds" true (Profile.at_most_once s);
  Alcotest.(check int) "bound = nodes+edges" 5 s.Profile.p_bound;
  Alcotest.(check int) "work = marks+cutoffs+evals" 5 s.Profile.p_work

let test_profile_detects_double_eval () =
  let p = Profile.create () in
  Profile.on_eval p ~key:7;
  Profile.on_eval p ~key:7;
  Alcotest.(check bool) "double eval flagged" false (Profile.at_most_once (Profile.snapshot p))

let test_profile_remark_permits_reeval () =
  let p = Profile.create () in
  Profile.on_eval p ~key:7;
  (* An invalidation between the two evaluations makes the second one
     legitimate (recovery actions do this). *)
  Profile.on_mark p ~key:7;
  Profile.on_eval p ~key:7;
  let s = Profile.snapshot p in
  Alcotest.(check bool) "re-marked eval is legitimate" true (Profile.at_most_once s);
  Alcotest.(check int) "both evals counted" 2 s.Profile.p_evals;
  Alcotest.(check int) "one distinct attr" 1 s.Profile.p_distinct_evaluated

(* ---- End-to-end through Db ---- *)

let diamond_schema () =
  (* top depends on left and right, which both depend on base: the
     diamond that makes naive triggers evaluate top twice. *)
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun local totals ->
            Value.add local (Value.sum totals))));
  sch

let diamond db =
  let n () = Db.create_instance db "node" in
  let top = n () and left = n () and right = n () and base = n () in
  Db.link db ~from_id:top ~rel:"deps" ~to_id:left;
  Db.link db ~from_id:top ~rel:"deps" ~to_id:right;
  Db.link db ~from_id:left ~rel:"deps" ~to_id:base;
  Db.link db ~from_id:right ~rel:"deps" ~to_id:base;
  (top, base)

let test_db_profile_on_diamond () =
  let db = Db.create (diamond_schema ()) in
  let top, base = diamond db in
  Alcotest.(check string) "diamond total" "5" (Value.to_string (Db.get db top "total"));
  Db.set_profiling db true;
  Db.begin_txn db;
  Db.set db base "local" (int 10);
  Db.commit db;
  let s = match Db.last_profile db with Some s -> s | None -> Alcotest.fail "no profile" in
  Alcotest.(check bool) "marks happened" true (s.Profile.p_nodes_marked > 0);
  Alcotest.(check bool) "evals happened" true (s.Profile.p_evals > 0);
  Alcotest.(check bool) "at most once on the diamond" true (Profile.at_most_once s);
  Alcotest.(check bool) "work within constant of bound" true
    (Profile.work_ratio s <= 2.0);
  (* The profile is per-commit: an unprofiled commit leaves the last
     snapshot in place, a profiled one replaces it. *)
  Db.set_profiling db false;
  Db.begin_txn db;
  Db.set db base "local" (int 11);
  Db.commit db;
  Alcotest.(check bool) "snapshot kept" true (Db.last_profile db = Some s)

let test_db_tracing_and_histograms () =
  let db = Db.create (diamond_schema ()) in
  let top, base = diamond db in
  ignore (Db.get db top "total");
  Db.set_tracing db true;
  Db.begin_txn db;
  Db.set db base "local" (int 3);
  Db.commit db;
  Db.set_tracing db false;
  let tr = (Db.obs db).Cactis_obs.Ctx.trace in
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events tr) in
  Alcotest.(check bool) "begin_txn instant" true (List.mem "begin_txn" names);
  Alcotest.(check bool) "mark wave span" true (List.mem "mark_wave" names);
  Alcotest.(check bool) "commit span" true (List.mem "commit" names);
  (* Histograms run with tracing off too. *)
  let hists = Histogram.snapshot (Db.obs db).Cactis_obs.Ctx.hists in
  let hnames = List.map (fun st -> st.Histogram.st_name) hists in
  Alcotest.(check bool) "commit histogram" true (List.mem "commit" hnames);
  Alcotest.(check bool) "mark_wave histogram" true (List.mem "mark_wave" hnames)

(* ---- Flight recorder ---- *)

let sole_section (d : Flight.dump) =
  match d.Flight.d_sections with
  | [ s ] -> s
  | ss -> Alcotest.failf "expected one section, got %d" (List.length ss)

let test_flight_wraparound () =
  Flight.reset ();
  let n = Flight.capacity + 100 in
  for i = 1 to n do
    Flight.record Flight.Note ~a:i ~b:0
  done;
  let s = sole_section (Flight.snapshot ()) in
  Alcotest.(check int) "total counts every record" n s.Flight.fs_total;
  let events = s.Flight.fs_events in
  Alcotest.(check bool) "retained at most capacity" true
    (List.length events <= Flight.capacity);
  Alcotest.(check bool) "retained most of capacity" true
    (List.length events >= Flight.capacity - 1);
  (match List.rev events with
  | last :: _ -> Alcotest.(check int) "newest survives the wrap" n last.Flight.fe_a
  | [] -> Alcotest.fail "no events retained");
  (* Oldest-first, contiguous: the wrap dropped a prefix, nothing else. *)
  ignore
    (List.fold_left
       (fun prev (e : Flight.event) ->
         (match prev with
         | Some p -> Alcotest.(check int) "contiguous run" (p + 1) e.Flight.fe_a
         | None -> ());
         Some e.Flight.fe_a)
       None events)

let test_flight_roundtrip () =
  Flight.reset ();
  Flight.name_domain "main";
  Flight.record Flight.Txn_begin ~a:1 ~b:0;
  Flight.record Flight.Txn_commit ~a:1 ~b:3;
  Flight.record_s Flight.Net_verb ~a:1500 ~b:7 "read";
  Flight.record_s Flight.Schema_delta ~a:2 ~b:0 "add_type";
  Flight.note "marker";
  let d = Flight.snapshot () in
  match Flight.decode (Flight.encode d) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok d' ->
    Alcotest.(check int64) "wall clock survives" d.Flight.d_wall_us d'.Flight.d_wall_us;
    Alcotest.(check int64) "mono clock survives" d.Flight.d_mono_ns d'.Flight.d_mono_ns;
    let s = sole_section d and s' = sole_section d' in
    Alcotest.(check string) "domain name survives" s.Flight.fs_name s'.Flight.fs_name;
    Alcotest.(check int) "total survives" s.Flight.fs_total s'.Flight.fs_total;
    Alcotest.(check (list string))
      "kinds survive"
      (List.map (fun e -> Flight.kind_name e.Flight.fe_kind) s.Flight.fs_events)
      (List.map (fun e -> Flight.kind_name e.Flight.fe_kind) s'.Flight.fs_events);
    List.iter2
      (fun (e : Flight.event) (e' : Flight.event) ->
        Alcotest.(check int64) "ts survives" e.Flight.fe_ts_ns e'.Flight.fe_ts_ns;
        Alcotest.(check int) "a survives" e.Flight.fe_a e'.Flight.fe_a;
        Alcotest.(check int) "b survives" e.Flight.fe_b e'.Flight.fe_b;
        Alcotest.(check string) "detail survives" e.Flight.fe_detail e'.Flight.fe_detail)
      s.Flight.fs_events s'.Flight.fs_events

let test_flight_decode_rejects_garbage () =
  (match Flight.decode "not a dump" with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error _ -> ());
  let good = Flight.encode (Flight.snapshot ()) in
  match Flight.decode (String.sub good 0 (String.length good - 3)) with
  | Ok _ -> Alcotest.fail "truncated dump decoded"
  | Error _ -> ()

(* The tentpole consistency claim: snapshots taken while other domains
   record see, per domain, a contiguous oldest-first run with no torn
   or reordered events. *)
let test_flight_snapshot_while_recording () =
  Flight.reset ();
  let per_domain = 30_000 in
  let writers = 3 in
  let workers =
    Array.init writers (fun d ->
        Domain.spawn (fun () ->
            Flight.name_domain (Printf.sprintf "hammer-%d" d);
            for i = 1 to per_domain do
              Flight.record Flight.Note ~a:i ~b:d
            done))
  in
  for _ = 1 to 25 do
    let d = Flight.snapshot () in
    List.iter
      (fun (s : Flight.section) ->
        Alcotest.(check bool) "within capacity" true
          (List.length s.Flight.fs_events <= Flight.capacity);
        ignore
          (List.fold_left
             (fun prev (e : Flight.event) ->
               (match prev with
               | Some p ->
                 if e.Flight.fe_a <> p + 1 then
                   Alcotest.failf "torn snapshot: %d then %d" p e.Flight.fe_a
               | None -> ());
               Some e.Flight.fe_a)
             None s.Flight.fs_events))
      d.Flight.d_sections
  done;
  Array.iter Domain.join workers;
  let d = Flight.snapshot () in
  Alcotest.(check int) "all rings present" writers (List.length d.Flight.d_sections);
  List.iter
    (fun (s : Flight.section) ->
      Alcotest.(check int) "nothing lost" per_domain s.Flight.fs_total;
      match List.rev s.Flight.fs_events with
      | last :: _ -> Alcotest.(check int) "last record retained" per_domain last.Flight.fe_a
      | [] -> Alcotest.fail "empty section")
    d.Flight.d_sections

let test_flight_recording_switch () =
  Flight.reset ();
  Flight.record Flight.Note ~a:1 ~b:0;
  Flight.set_recording false;
  Flight.record Flight.Note ~a:2 ~b:0;
  Flight.set_recording true;
  Flight.record Flight.Note ~a:3 ~b:0;
  let s = sole_section (Flight.snapshot ()) in
  Alcotest.(check (list int))
    "suppressed window recorded nothing" [ 1; 3 ]
    (List.map (fun e -> e.Flight.fe_a) s.Flight.fs_events)

(* ---- Histogram exactness and error bound ---- *)

let test_histogram_sum_count_exact () =
  let reg = Histogram.create () in
  let h = Histogram.cell reg "lat" in
  let values = [ 1e-6; 3e-5; 4.2e-4; 0.011; 0.25; 1.75 ] in
  List.iter (Histogram.observe h) values;
  Alcotest.(check int) "count exact" (List.length values) (Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum exact" (List.fold_left ( +. ) 0.0 values) (Histogram.sum h);
  Alcotest.(check (float 1e-12)) "max exact" 1.75 (Histogram.max_value h)

(* Log2 buckets promise relative error <= sqrt 2 on any quantile: for a
   single observation v, the reconstructed median is the geometric
   bucket midpoint clamped by the exact max, so it lands in
   [v/sqrt 2, v].  Pinned across nine orders of magnitude. *)
let test_histogram_error_bound () =
  let check_value v =
    let reg = Histogram.create () in
    let h = Histogram.cell reg "one" in
    Histogram.observe h v;
    let q = Histogram.quantile h 0.5 in
    if q > v +. 1e-15 then Alcotest.failf "q50 %g above exact value %g" q v;
    if q < (v /. sqrt 2.0) -. 1e-15 then
      Alcotest.failf "q50 %g below %g / sqrt 2 (relative error > sqrt 2)" q v
  in
  List.iter check_value
    [ 1e-6; 2.5e-6; 7e-6; 1e-5; 9e-5; 1.3e-4; 1e-3; 0.02; 0.6; 1.0; 5.0; 60.0; 900.0 ]

(* ---- OpenMetrics exposition ---- *)

let sample_registry () =
  let ctrs = Counters.create () in
  Counters.add ctrs "server.req.read" 7;
  Counters.add ctrs "server.req.commit" 3;
  Counters.add ctrs "server.error.type_error" 1;
  let lats = Histogram.create () in
  let h = Histogram.cell lats "serve.read" in
  List.iter (Histogram.observe h) [ 1e-5; 2e-5; 4e-4; 0.01 ];
  Histogram.observe (Histogram.cell lats "serve.commit") 3e-4;
  (Counters.snapshot ctrs, Histogram.merged_cells lats)

let test_metrics_render_passes_lint () =
  let counters, hists = sample_registry () in
  let text = Metrics.render ~counters ~hists in
  (match Metrics.lint text with
  | [] -> ()
  | errors -> Alcotest.failf "self-lint failed:\n%s" (String.concat "\n" errors));
  let has needle = contains text needle in
  Alcotest.(check bool) "counter family" true (has "# TYPE cactis_server_req_read counter");
  Alcotest.(check bool) "counter sample" true (has "cactis_server_req_read_total 7");
  Alcotest.(check bool) "histogram family" true
    (has "# TYPE cactis_serve_read_seconds histogram");
  Alcotest.(check bool) "+Inf bucket" true (has "cactis_serve_read_seconds_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "exact count" true (has "cactis_serve_read_seconds_count 4");
  Alcotest.(check bool) "sum present" true (has "cactis_serve_read_seconds_sum ");
  Alcotest.(check bool) "EOF terminated" true
    (String.length text >= 6 && String.sub text (String.length text - 6) 6 = "# EOF\n")

let test_metrics_name_collision_sums () =
  (* "a.b" and "a:b"? no — both sanitize differently; "a.b" and "a b"
     both become a_b and must merge into one counter. *)
  let text = Metrics.render ~counters:[ ("a.b", 2); ("a b", 3) ] ~hists:[] in
  (match Metrics.lint text with
  | [] -> ()
  | errors -> Alcotest.failf "collision lint failed:\n%s" (String.concat "\n" errors));
  let has needle = contains text needle in
  Alcotest.(check bool) "collided counters summed" true (has "cactis_a_b_total 5")

let test_metrics_lint_rejects () =
  let reject label text =
    match Metrics.lint text with
    | [] -> Alcotest.failf "%s: lint accepted invalid exposition" label
    | _ -> ()
  in
  reject "missing EOF" "# TYPE cactis_x counter\ncactis_x_total 1\n";
  reject "no final newline" "# TYPE cactis_x counter\ncactis_x_total 1\n# EOF";
  reject "bad suffix for counter" "# TYPE cactis_x counter\ncactis_x_sum 1\n# EOF\n";
  reject "duplicate TYPE"
    "# TYPE cactis_x counter\ncactis_x_total 1\n# TYPE cactis_x counter\ncactis_x_total 2\n# EOF\n";
  reject "non-cumulative buckets"
    "# TYPE cactis_h histogram\n\
     cactis_h_bucket{le=\"0.1\"} 5\n\
     cactis_h_bucket{le=\"1\"} 3\n\
     cactis_h_bucket{le=\"+Inf\"} 5\n\
     cactis_h_sum 1\ncactis_h_count 5\n# EOF\n";
  reject "missing +Inf bucket"
    "# TYPE cactis_h histogram\n\
     cactis_h_bucket{le=\"0.1\"} 5\ncactis_h_sum 1\ncactis_h_count 5\n# EOF\n";
  reject "+Inf disagrees with count"
    "# TYPE cactis_h histogram\n\
     cactis_h_bucket{le=\"+Inf\"} 4\ncactis_h_sum 1\ncactis_h_count 5\n# EOF\n";
  reject "interleaved families"
    "# TYPE cactis_a counter\n# TYPE cactis_b counter\n\
     cactis_a_total 1\ncactis_b_total 1\ncactis_a_total 2\n# EOF\n";
  reject "unparseable sample" "# TYPE cactis_x counter\ncactis_x_total banana\n# EOF\n"

(* ---- Slow-op log ---- *)

let slow_records =
  [
    (* Under the 100 ms default deadline: never logged. *)
    {
      Slowlog.sr_wall_us = 1_700_000_000_000_000L;
      sr_verb = "read";
      sr_dur_s = 0.012;
      sr_deadline_s = 0.0;
      sr_span = 6;
      sr_req = 41;
      sr_version = 9;
      sr_domain = "reader-0";
      sr_pager_hits = 2;
      sr_pager_misses = 0;
    };
    {
      Slowlog.sr_wall_us = 1_700_000_000_100_000L;
      sr_verb = "read";
      sr_dur_s = 0.25;
      sr_deadline_s = 0.0;
      sr_span = 7;
      sr_req = 42;
      sr_version = 9;
      sr_domain = "reader-0";
      sr_pager_hits = 10;
      sr_pager_misses = 3;
    };
    (* Slower than the default but the per-verb commit deadline is what
       gets stamped into the line. *)
    {
      Slowlog.sr_wall_us = 1_700_000_000_200_000L;
      sr_verb = "commit";
      sr_dur_s = 0.3;
      sr_deadline_s = 0.0;
      sr_span = 8;
      sr_req = 43;
      sr_version = 10;
      sr_domain = "writer";
      sr_pager_hits = 0;
      sr_pager_misses = 1;
    };
  ]

let test_slowlog_golden () =
  let lines = ref [] in
  let sl =
    Slowlog.create ~deadline_s:0.1
      ~per_verb:[ ("commit", 0.25) ]
      ~sink:(fun l -> lines := l :: !lines)
      ()
  in
  Alcotest.(check (float 0.0)) "per-verb deadline" 0.25 (Slowlog.deadline_for sl "commit");
  Alcotest.(check (float 0.0)) "default deadline" 0.1 (Slowlog.deadline_for sl "read");
  let verdicts = List.map (Slowlog.observe sl) slow_records in
  Alcotest.(check (list bool)) "only deadline-blowers logged" [ false; true; true ] verdicts;
  Alcotest.(check int) "logged count" 2 (Slowlog.logged sl);
  let got = String.concat "\n" (List.rev !lines) ^ "\n" in
  Alcotest.(check string) "golden JSONL" (read_file "fixtures/obs/slowlog_golden.jsonl") got

(* ---- Watchdog ---- *)

let test_watchdog_p99_regression () =
  let lats = Histogram.create () in
  let h = Histogram.cell lats "serve.read" in
  let trips = ref [] in
  let now = ref 0.0 in
  let wd =
    Watchdog.create ~now:(fun () -> !now)
      { Watchdog.wd_interval_s = 1.0; wd_p99_factor = 4.0; wd_min_count = 50; wd_error_burst = 0 }
      ~lats
      ~errors:(fun () -> 0)
      ~on_trip:(fun ~reason ~detail -> trips := (reason, detail) :: !trips)
  in
  (* Window 1: healthy baseline. *)
  for _ = 1 to 100 do
    Histogram.observe h 1e-5
  done;
  Watchdog.check_now wd;
  Alcotest.(check int) "baseline never trips" 0 (Watchdog.trips wd);
  (* Window 2: 1000x regression. *)
  for _ = 1 to 100 do
    Histogram.observe h 1e-2
  done;
  Watchdog.check_now wd;
  Alcotest.(check int) "regression trips" 1 (Watchdog.trips wd);
  (match !trips with
  | [ (reason, detail) ] ->
    Alcotest.(check string) "reason" "p99-regression" reason;
    Alcotest.(check bool) "detail names the verb" true (contains detail "serve.read")
  | _ -> Alcotest.fail "expected exactly one trip");
  (* Window 3: still slow but no further regression — no re-trip. *)
  for _ = 1 to 100 do
    Histogram.observe h 1e-2
  done;
  Watchdog.check_now wd;
  Alcotest.(check int) "steady state does not re-trip" 1 (Watchdog.trips wd)

let test_watchdog_small_windows_never_judged () =
  let lats = Histogram.create () in
  let h = Histogram.cell lats "serve.read" in
  let trips = ref 0 in
  let wd =
    Watchdog.create ~now:(fun () -> 0.0)
      { Watchdog.wd_interval_s = 1.0; wd_p99_factor = 2.0; wd_min_count = 64; wd_error_burst = 0 }
      ~lats
      ~errors:(fun () -> 0)
      ~on_trip:(fun ~reason:_ ~detail:_ -> incr trips)
  in
  for _ = 1 to 10 do
    Histogram.observe h 1e-5
  done;
  Watchdog.check_now wd;
  for _ = 1 to 10 do
    Histogram.observe h 1.0
  done;
  Watchdog.check_now wd;
  Alcotest.(check int) "10-sample windows below min_count" 0 !trips

let test_watchdog_error_burst () =
  let lats = Histogram.create () in
  let errors = ref 0 in
  let trips = ref [] in
  let wd =
    Watchdog.create ~now:(fun () -> 0.0)
      { Watchdog.wd_interval_s = 1.0; wd_p99_factor = 4.0; wd_min_count = 64; wd_error_burst = 32 }
      ~lats
      ~errors:(fun () -> !errors)
      ~on_trip:(fun ~reason ~detail:_ -> trips := reason :: !trips)
  in
  errors := 10;
  Watchdog.check_now wd;
  Alcotest.(check int) "small burst tolerated" 0 (Watchdog.trips wd);
  errors := 10 + 33;
  Watchdog.check_now wd;
  Alcotest.(check (list string)) "burst trips" [ "error-burst" ] !trips

(* ---- Doctor ---- *)

let golden_dump () =
  let ev ts kind a b detail =
    { Flight.fe_ts_ns = ts; fe_kind = kind; fe_a = a; fe_b = b; fe_detail = detail }
  in
  {
    Flight.d_wall_us = 1_700_000_000_000_000L;
    d_mono_ns = 2_000_000_000L;
    d_sections =
      [
        {
          Flight.fs_domain = 1;
          fs_name = "writer";
          fs_total = 4;
          fs_events =
            [
              ev 1_000_000_000L Flight.Txn_begin 1 0 "";
              ev 1_002_000_000L Flight.Txn_commit 1 2 "";
              ev 1_010_000_000L Flight.Wal_append 64 1 "";
              ev 1_015_000_000L Flight.Txn_begin 2 0 "";
            ];
        };
        {
          Flight.fs_domain = 2;
          fs_name = "frontend";
          fs_total = 2;
          fs_events =
            [
              ev 1_001_000_000L Flight.Net_accept 1 0 "";
              ev 1_012_000_000L Flight.Net_verb 1500 7 "read";
            ];
        };
      ];
  }

let test_doctor_golden_timeline () =
  let report = Doctor.analyze (golden_dump ()) in
  Alcotest.(check int) "last commit" 1 report.Doctor.r_last_commit;
  Alcotest.(check int) "last attempt" 2 report.Doctor.r_last_attempt;
  Alcotest.(check (list (pair string int)))
    "writer holds v2 open"
    [ ("writer", 2) ]
    report.Doctor.r_open_txns;
  Alcotest.(check string) "golden timeline"
    (read_file "fixtures/obs/doctor_golden.txt")
    (Doctor.render report)

let test_doctor_limit_elides () =
  let report = Doctor.analyze (golden_dump ()) in
  let out = Doctor.render ~limit:2 report in
  let has needle = contains out needle in
  Alcotest.(check bool) "elision marker" true (has "4 older events elided");
  Alcotest.(check bool) "newest line kept" true (has "txn_begin v2");
  Alcotest.(check bool) "oldest line dropped" false (has "txn_begin v1")

(* The acceptance scenario: a server-era process crashes with a txn in
   flight; the flight dump plus the WAL tail must reconstruct what was
   durable.  We drive a persistent Db to three durable commits, open a
   fourth txn, dump mid-txn (the "crash"), and check the doctor's
   verdict against what recovery actually replays. *)
let obs_tmp_seq = ref 0

let temp_dir () =
  incr obs_tmp_seq;
  let dir = Printf.sprintf "obs_scratch_%d" !obs_tmp_seq in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let simple_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "item";
  Schema.add_attr sch ~type_name:"item" (Rule.intrinsic "n" (int 0));
  sch

let test_doctor_crash_matches_recovery () =
  Flight.reset ();
  let dir = temp_dir () in
  let p = Persist.recover ~dir (simple_schema ()) in
  let db = Persist.db p in
  Db.begin_txn db;
  let id = Db.create_instance db "item" in
  Db.commit db;
  Db.begin_txn db;
  Db.set db id "n" (int 1);
  Db.commit db;
  Db.begin_txn db;
  Db.set db id "n" (int 2);
  Db.commit db;
  (* Fourth transaction opened, never committed: the crash window. *)
  Db.begin_txn db;
  Db.set db id "n" (int 99);
  let dump_path = Flight.dump_to_file ~dir ~reason:"test-crash" in
  (* Process "dies" here: no commit, no close. *)
  let dump =
    match Doctor.load dump_path with
    | Ok d -> d
    | Error m -> Alcotest.failf "dump unreadable: %s" m
  in
  let report = Doctor.analyze ~wal_dir:dir dump in
  Alcotest.(check int) "three commits visible in flight" 3 report.Doctor.r_last_commit;
  Alcotest.(check int) "fourth txn attempted" 4 report.Doctor.r_last_attempt;
  Alcotest.(check bool) "open txn attributed" true
    (List.exists (fun (_, v) -> v = 4) report.Doctor.r_open_txns);
  let durable =
    match report.Doctor.r_last_durable with
    | Some d -> d
    | None -> Alcotest.fail "no WAL verdict"
  in
  (* The doctor's durable count must match what recovery replays. *)
  let p2 = Persist.recover ~dir (simple_schema ()) in
  Alcotest.(check int) "doctor verdict = recovery replay" (Persist.replayed p2) durable;
  Alcotest.(check string) "uncommitted write rolled back" "2"
    (Value.to_string (Db.get (Persist.db p2) id "n"));
  Persist.close p2;
  let rendered = Doctor.render report in
  let has needle = contains rendered needle in
  Alcotest.(check bool) "verdict calls out the lost txn" true
    (has "attempted v4 never became durable")

let () =
  Alcotest.run "cactis-obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_trace_disabled_records_nothing;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "span on raise" `Quick test_trace_span_records_on_raise;
          Alcotest.test_case "chrome json shape" `Quick test_trace_chrome_json_shape;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "snapshot and reset" `Quick test_histogram_snapshot_and_reset;
          Alcotest.test_case "ctx time on raise" `Quick test_ctx_time_observes_on_raise;
        ] );
      ( "domain-safe",
        [
          Alcotest.test_case "counters hammer" `Quick test_counters_multi_domain_hammer;
          Alcotest.test_case "histogram hammer" `Quick test_histogram_multi_domain_hammer;
        ] );
      ( "profile",
        [
          Alcotest.test_case "at most once" `Quick test_profile_at_most_once;
          Alcotest.test_case "double eval detected" `Quick test_profile_detects_double_eval;
          Alcotest.test_case "remark permits re-eval" `Quick test_profile_remark_permits_reeval;
        ] );
      ( "db",
        [
          Alcotest.test_case "profile on diamond" `Quick test_db_profile_on_diamond;
          Alcotest.test_case "tracing and histograms" `Quick test_db_tracing_and_histograms;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraps, newest wins" `Quick test_flight_wraparound;
          Alcotest.test_case "CFR1 round-trip" `Quick test_flight_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick test_flight_decode_rejects_garbage;
          Alcotest.test_case "snapshot while recording" `Quick test_flight_snapshot_while_recording;
          Alcotest.test_case "recording switch" `Quick test_flight_recording_switch;
        ] );
      ( "histogram-exact",
        [
          Alcotest.test_case "sum/count/max exact" `Quick test_histogram_sum_count_exact;
          Alcotest.test_case "log2 error bound" `Quick test_histogram_error_bound;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "render passes own lint" `Quick test_metrics_render_passes_lint;
          Alcotest.test_case "name collisions sum" `Quick test_metrics_name_collision_sums;
          Alcotest.test_case "lint rejects invalid" `Quick test_metrics_lint_rejects;
        ] );
      ( "slowlog",
        [ Alcotest.test_case "golden JSONL" `Quick test_slowlog_golden ] );
      ( "watchdog",
        [
          Alcotest.test_case "p99 regression" `Quick test_watchdog_p99_regression;
          Alcotest.test_case "small windows ignored" `Quick test_watchdog_small_windows_never_judged;
          Alcotest.test_case "error burst" `Quick test_watchdog_error_burst;
        ] );
      ( "doctor",
        [
          Alcotest.test_case "golden timeline" `Quick test_doctor_golden_timeline;
          Alcotest.test_case "limit elides oldest" `Quick test_doctor_limit_elides;
          Alcotest.test_case "crash verdict matches recovery" `Quick
            test_doctor_crash_matches_recovery;
        ] );
    ]
