(** Length-prefixed binary codec for values and transaction ops.

    The hot persistence path: {!Snapshot} builds binary snapshots from
    the value codec plus a header symbol table, and {!Persist} encodes
    committed {!Txn.delta}s into write-ahead-log records with
    {!encode_delta}.  The text format in {!Snapshot} remains for
    debugging and compatibility.

    Design points:
    - ints are zigzag LEB128 varints; floats and times are raw IEEE 754
      bits, so NaN payloads, infinities and negative zero round-trip
      exactly;
    - strings are length-prefixed raw bytes — embedded NULs and newlines
      are fine;
    - every decode error carries the byte offset it occurred at. *)

exception Error of { offset : int; message : string }

(** {1 Primitive readers/writers}

    Writers append to a [Buffer.t]; readers consume a string through a
    mutable cursor. *)

type reader = {
  src : string;
  mutable pos : int;
}

val reader : ?pos:int -> string -> reader
val at_end : reader -> bool

val write_uint : Buffer.t -> int -> unit
val read_uint : reader -> int
val write_int : Buffer.t -> int -> unit
val read_int : reader -> int
val write_string : Buffer.t -> string -> unit
val read_string : reader -> string

(** {1 Values} *)

val write_value : Buffer.t -> Value.t -> unit
val read_value : reader -> Value.t
val value_to_string : Value.t -> string

(** @raise Error on malformed or trailing input. *)
val value_of_string : string -> Value.t

(** {1 Transaction ops and deltas}

    Attribute/relationship/type names travel inline (interned symbols
    are process-local; the log outlives the process), keeping each
    record self-describing and O(ops in the transaction). *)

(** Schema ops store derived rules as their DDL expression source;
    encoding raises [Errors.Type_error] when a change carries an opaque
    closure with no source, and decoding recompiles the source through
    {!Schema.compile_rule_repr} (typed error when no compiler is
    registered — link the DDL front end). *)

val write_op : Buffer.t -> Txn.op -> unit
val read_op : reader -> Txn.op
val encode_delta : Txn.delta -> string

(** @raise Error on malformed input. *)
val decode_delta : string -> Txn.delta
