(** Structural integrity checking.

    [check db] audits the invariants the primitive layer is supposed to
    maintain and returns a human-readable description of every violation
    (empty = healthy).  The property-test suite runs it after every
    random operation sequence, so any primitive that corrupts structure
    is caught even when no query would notice.

    Checked invariants:
    - every link's endpoint exists, is alive, and has the matching
      inverse entry;
    - link targets satisfy the relationship's declared target type and
      cardinality;
    - no attribute slot is left [In_progress] outside an evaluation;
    - intrinsic slots are always up to date;
    - every slot and link names a declared attribute/relationship;
    - every live instance is placed by the pager;
    - no open transaction was leaked. *)

val check : Db.t -> string list

(** [check_exn db] raises [Errors.Type_error] listing the violations, if
    any. *)
val check_exn : Db.t -> unit
