(** Neutral, declaration-only view of a schema.

    The analyzer runs over this view rather than over {!Cactis.Schema.t}
    directly so the same passes serve two front doors: compiled schemas
    ({!of_schema}) and parsed-but-not-yet-elaborated DDL
    ({!Cactis_ddl.Lint.view_of_ast}).  The DDL path matters because
    elaboration aborts on the first structural error, while a linter
    wants {e all} of them; the view is permissive by construction —
    dangling names are representable and reported by the passes. *)

type attr = {
  a_name : string;
  a_intrinsic : bool;
  a_constrained : bool;
  a_sources : Cactis.Schema.source list;  (** empty for intrinsics *)
  a_shape : Cactis.Schema.rule_shape option;
      (** convergence shape: declared on the schema or inferred from the
          DDL expression; [None] = unknown (treated as divergent) *)
  a_ops : int;
      (** abstract operation count of one rule evaluation (expression
          size for DDL rules; sources+1 for opaque closures; 0 for
          intrinsics) — the cost pass's per-evaluation unit *)
}

type rel = {
  r_name : string;
  r_target : string;
  r_inverse : string;
  r_card : Cactis.Schema.cardinality;
      (** static fan-out bound: [One] caps transmission reads at one *)
}

type vtype = {
  t_name : string;
  t_attrs : attr list;  (** declaration order *)
  t_rels : rel list;
  t_exports : ((string * string) * string) list;  (** (rel, export name) -> attr *)
}

type t = {
  v_types : vtype list;
  v_subtypes : (string * string) list;  (** (subtype, declared parent) *)
}

val of_schema : Cactis.Schema.t -> t

(** Lookups used by the passes; [None] for dangling names. *)
val find_type : t -> string -> vtype option

val find_attr : vtype -> string -> attr option
val find_rel : vtype -> string -> rel option

(** [resolve_export view ~target ~inverse name] — the attribute actually
    transmitted when [name] is requested across a relationship whose
    target type is [target] and whose inverse (the transmitter's side)
    is [inverse]; [name] itself when no alias is declared. *)
val resolve_export : t -> target:string -> inverse:string -> string -> string

(** Attribute names of [vtype] aliased outward by some transmission. *)
val exported_attrs : vtype -> string list

(** Membership attributes ({!Cactis.Schema.membership_attr}) read as
    ["subtype X predicate"] in messages; this maps an attribute name to
    its display form. *)
val attr_display : string -> string

val is_membership : string -> bool
