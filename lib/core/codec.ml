module Vtime = Cactis_util.Vtime

exception Error of { offset : int; message : string }

let error offset fmt =
  Format.kasprintf (fun message -> raise (Error { offset; message })) fmt

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

type reader = {
  src : string;
  mutable pos : int;
}

let reader ?(pos = 0) src = { src; pos }
let at_end r = r.pos >= String.length r.src

let need r n =
  if r.pos + n > String.length r.src then
    error r.pos "truncated input: need %d bytes, have %d" n (String.length r.src - r.pos)

let read_byte r =
  need r 1;
  let b = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  b

(* LEB128 over the raw 63-bit pattern: the logical shift terminates for
   any input, including "negative" patterns produced by zigzagging
   large-magnitude ints (zigzag is a bijection on the bit pattern, not
   on the non-negative range). *)
let write_uint_raw buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read_uint_raw r =
  let start = r.pos in
  let rec go shift acc =
    if shift > 62 then error start "varint too long";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* Unsigned LEB128 for counts, lengths and ids. *)
let write_uint buf n =
  if n < 0 then invalid_arg "Codec.write_uint: negative";
  write_uint_raw buf n

let read_uint r =
  let start = r.pos in
  let n = read_uint_raw r in
  if n < 0 then error start "varint out of unsigned range";
  n

(* Signed ints: zigzag over the raw pattern. *)
let write_int buf n = write_uint_raw buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))
let read_int r =
  let z = read_uint_raw r in
  (z lsr 1) lxor (- (z land 1))

let write_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let read_f64 r =
  need r 8;
  let f = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  f

let write_string buf s =
  write_uint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_uint r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

(* One tag byte, then the payload.  Floats and times are raw IEEE bits
   (exact round-trips including NaN payloads and infinities); strings
   are length-prefixed raw bytes (NULs, newlines, arbitrary binary). *)

let tag_null = 0
and tag_false = 1
and tag_true = 2
and tag_int = 3
and tag_float = 4
and tag_str = 5
and tag_time = 6
and tag_arr = 7
and tag_rec = 8

let rec write_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf (Char.chr tag_null)
  | Value.Bool false -> Buffer.add_char buf (Char.chr tag_false)
  | Value.Bool true -> Buffer.add_char buf (Char.chr tag_true)
  | Value.Int n ->
    Buffer.add_char buf (Char.chr tag_int);
    write_int buf n
  | Value.Float f ->
    Buffer.add_char buf (Char.chr tag_float);
    write_f64 buf f
  | Value.Str s ->
    Buffer.add_char buf (Char.chr tag_str);
    write_string buf s
  | Value.Time t ->
    Buffer.add_char buf (Char.chr tag_time);
    write_f64 buf (Vtime.to_days t)
  | Value.Arr a ->
    Buffer.add_char buf (Char.chr tag_arr);
    write_uint buf (Array.length a);
    Array.iter (write_value buf) a
  | Value.Rec fields ->
    Buffer.add_char buf (Char.chr tag_rec);
    write_uint buf (List.length fields);
    List.iter
      (fun (name, x) ->
        write_string buf name;
        write_value buf x)
      fields

let rec read_value r : Value.t =
  let start = r.pos in
  let tag = read_byte r in
  if tag = tag_null then Value.Null
  else if tag = tag_false then Value.Bool false
  else if tag = tag_true then Value.Bool true
  else if tag = tag_int then Value.Int (read_int r)
  else if tag = tag_float then Value.Float (read_f64 r)
  else if tag = tag_str then Value.Str (read_string r)
  else if tag = tag_time then Value.Time (Vtime.of_days (read_f64 r))
  else if tag = tag_arr then begin
    let n = read_uint r in
    Value.Arr (Array.init n (fun _ -> read_value r))
  end
  else if tag = tag_rec then begin
    let n = read_uint r in
    Value.Rec
      (List.init n (fun _ ->
           let name = read_string r in
           (name, read_value r)))
  end
  else error start "unknown value tag %d" tag

let value_to_string v =
  let buf = Buffer.create 32 in
  write_value buf v;
  Buffer.contents buf

let value_of_string s =
  let r = reader s in
  let v = read_value r in
  if not (at_end r) then error r.pos "trailing bytes after value";
  v

(* ------------------------------------------------------------------ *)
(* Transaction ops / deltas (write-ahead log payloads)                 *)

(* Names travel inline: interned symbols are process-local and a log
   outlives the process, so the O(delta) record stays self-describing. *)

let op_set = 0
and op_link = 1
and op_unlink = 2
and op_create = 3
and op_delete = 4
and op_schema = 5

(* Schema deltas: a derived rule is a closure at run time, so the log
   stores its DDL expression source ([repr]) and decoding recompiles it
   through {!Schema.compile_rule_repr}.  Encoding a derived attribute
   without a source is a typed error — Db refuses to log such a change
   in the first place (see Db's serializability check), this is the
   backstop for snapshots of histories built without a WAL attached. *)

let write_attr_def buf (def : Schema.attr_def) (repr : string option) =
  write_string buf def.Schema.attr_name;
  (match def.Schema.kind with
  | Schema.Intrinsic v ->
    Buffer.add_char buf '\000';
    write_value buf v
  | Schema.Derived _ -> (
    match repr with
    | Some src ->
      Buffer.add_char buf '\001';
      write_string buf src
    | None ->
      Errors.type_error
        "cannot serialize schema delta: derived attribute %s carries no rule expression (declare \
         it through the DDL front end or pass ~expr)"
        def.Schema.attr_name));
  match def.Schema.constraint_ with
  | None -> Buffer.add_char buf '\000'
  | Some c -> (
    Buffer.add_char buf '\001';
    write_string buf c.Schema.message;
    match c.Schema.recovery with
    | None -> Buffer.add_char buf '\000'
    | Some action ->
      Buffer.add_char buf '\001';
      write_string buf action)

let read_flag r =
  let start = r.pos in
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> error start "unknown flag byte %d" b

let read_attr_def r =
  let attr_name = read_string r in
  let kind, repr =
    if read_flag r then begin
      let src = read_string r in
      (Schema.Derived (Schema.compile_rule_repr src), Some src)
    end
    else (Schema.Intrinsic (read_value r), None)
  in
  let constraint_ =
    if read_flag r then begin
      let message = read_string r in
      let recovery = if read_flag r then Some (read_string r) else None in
      Some { Schema.message; recovery }
    end
    else None
  in
  ({ Schema.attr_name; kind; constraint_ }, repr)

let change_type = 0
and change_rel = 1
and change_export = 2
and change_attr = 3
and change_subtype = 4

let write_schema_change buf (c : Txn.schema_change) =
  match c with
  | Txn.Schema_add_type { type_name } ->
    Buffer.add_char buf (Char.chr change_type);
    write_string buf type_name
  | Txn.Schema_add_rel { type_name; rel } ->
    Buffer.add_char buf (Char.chr change_rel);
    write_string buf type_name;
    write_string buf rel.Schema.rel_name;
    write_string buf rel.Schema.target;
    write_string buf rel.Schema.inverse;
    Buffer.add_char buf (match rel.Schema.card with Schema.One -> '\000' | Schema.Multi -> '\001');
    Buffer.add_char buf
      (match rel.Schema.polarity with Schema.Plug -> '\000' | Schema.Socket -> '\001')
  | Txn.Schema_add_export { type_name; rel; export; attr } ->
    Buffer.add_char buf (Char.chr change_export);
    write_string buf type_name;
    write_string buf rel;
    write_string buf export;
    write_string buf attr
  | Txn.Schema_add_attr { type_name; def; repr } ->
    Buffer.add_char buf (Char.chr change_attr);
    write_string buf type_name;
    write_attr_def buf def repr
  | Txn.Schema_add_subtype { def; predicate_repr; attr_reprs } ->
    Buffer.add_char buf (Char.chr change_subtype);
    write_string buf def.Schema.sub_name;
    write_string buf def.Schema.parent;
    (match predicate_repr with
    | Some src -> write_string buf src
    | None ->
      Errors.type_error
        "cannot serialize schema delta: subtype %s carries no predicate expression (declare it \
         through the DDL front end or pass ~predicate_expr)"
        def.Schema.sub_name);
    write_uint buf (List.length def.Schema.extra_attrs);
    List.iter2 (fun a repr -> write_attr_def buf a repr) def.Schema.extra_attrs attr_reprs

let read_schema_change r : Txn.schema_change =
  let start = r.pos in
  let tag = read_byte r in
  if tag = change_type then Txn.Schema_add_type { type_name = read_string r }
  else if tag = change_rel then begin
    let type_name = read_string r in
    let rel_name = read_string r in
    let target = read_string r in
    let inverse = read_string r in
    let card = if read_flag r then Schema.Multi else Schema.One in
    let polarity = if read_flag r then Schema.Socket else Schema.Plug in
    Txn.Schema_add_rel { type_name; rel = { Schema.rel_name; target; inverse; card; polarity } }
  end
  else if tag = change_export then begin
    let type_name = read_string r in
    let rel = read_string r in
    let export = read_string r in
    let attr = read_string r in
    Txn.Schema_add_export { type_name; rel; export; attr }
  end
  else if tag = change_attr then begin
    let type_name = read_string r in
    let def, repr = read_attr_def r in
    Txn.Schema_add_attr { type_name; def; repr }
  end
  else if tag = change_subtype then begin
    let sub_name = read_string r in
    let parent = read_string r in
    let predicate_src = read_string r in
    let n = read_uint r in
    let pairs = List.init n (fun _ -> read_attr_def r) in
    Txn.Schema_add_subtype
      {
        def =
          {
            Schema.sub_name;
            parent;
            predicate = Schema.compile_rule_repr predicate_src;
            extra_attrs = List.map fst pairs;
          };
        predicate_repr = Some predicate_src;
        attr_reprs = List.map snd pairs;
      }
  end
  else error start "unknown schema change tag %d" tag

let write_op buf (op : Txn.op) =
  match op with
  | Txn.Set_intrinsic { id; attr; old_value; new_value } ->
    Buffer.add_char buf (Char.chr op_set);
    write_uint buf id;
    write_string buf attr;
    write_value buf old_value;
    write_value buf new_value
  | Txn.Link { from_id; rel; to_id } ->
    Buffer.add_char buf (Char.chr op_link);
    write_uint buf from_id;
    write_string buf rel;
    write_uint buf to_id
  | Txn.Unlink { from_id; rel; to_id } ->
    Buffer.add_char buf (Char.chr op_unlink);
    write_uint buf from_id;
    write_string buf rel;
    write_uint buf to_id
  | Txn.Create { id; type_name } ->
    Buffer.add_char buf (Char.chr op_create);
    write_uint buf id;
    write_string buf type_name
  | Txn.Delete { id; type_name; intrinsics } ->
    Buffer.add_char buf (Char.chr op_delete);
    write_uint buf id;
    write_string buf type_name;
    write_uint buf (List.length intrinsics);
    List.iter
      (fun (a, v) ->
        write_string buf a;
        write_value buf v)
      intrinsics
  | Txn.Schema { change; retract } ->
    Buffer.add_char buf (Char.chr op_schema);
    Buffer.add_char buf (if retract then '\001' else '\000');
    write_schema_change buf change

let read_op r : Txn.op =
  let start = r.pos in
  let tag = read_byte r in
  if tag = op_set then begin
    let id = read_uint r in
    let attr = read_string r in
    let old_value = read_value r in
    let new_value = read_value r in
    Txn.Set_intrinsic { id; attr; old_value; new_value }
  end
  else if tag = op_link then begin
    let from_id = read_uint r in
    let rel = read_string r in
    let to_id = read_uint r in
    Txn.Link { from_id; rel; to_id }
  end
  else if tag = op_unlink then begin
    let from_id = read_uint r in
    let rel = read_string r in
    let to_id = read_uint r in
    Txn.Unlink { from_id; rel; to_id }
  end
  else if tag = op_create then begin
    let id = read_uint r in
    let type_name = read_string r in
    Txn.Create { id; type_name }
  end
  else if tag = op_delete then begin
    let id = read_uint r in
    let type_name = read_string r in
    let n = read_uint r in
    let intrinsics =
      List.init n (fun _ ->
          let a = read_string r in
          (a, read_value r))
    in
    Txn.Delete { id; type_name; intrinsics }
  end
  else if tag = op_schema then begin
    let retract = read_flag r in
    let change = read_schema_change r in
    Txn.Schema { change; retract }
  end
  else error start "unknown op tag %d" tag

let encode_delta (d : Txn.delta) =
  let buf = Buffer.create 64 in
  (match d.Txn.label with
  | None -> write_uint buf 0
  | Some l ->
    write_uint buf 1;
    write_string buf l);
  write_uint buf (List.length d.Txn.ops);
  List.iter (write_op buf) d.Txn.ops;
  Buffer.contents buf

let decode_delta s =
  let r = reader s in
  let label = if read_uint r = 0 then None else Some (read_string r) in
  let n = read_uint r in
  let ops = List.init n (fun _ -> read_op r) in
  if not (at_end r) then error r.pos "trailing bytes after delta";
  { Txn.ops; label }
