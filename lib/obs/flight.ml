(* Per-domain rings behind domain-local storage: the hot path is one
   flag load, one DLS load, a 5-word record allocation and a slot store
   published through an atomic write index.  The snapshot side relies on
   two facts: slots hold immutable boxed records (a concurrent slot read
   yields some previously stored record, never a torn one), and the
   writer stores the slot *before* bumping the atomic index, so the
   reader can bound which entries a concurrent writer may have been
   recycling and trim exactly those. *)

type kind =
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Wal_append
  | Wal_fsync
  | Checkpoint
  | Pager_miss
  | Pager_writeback
  | Recluster_slice
  | Net_accept
  | Net_verb
  | Net_error
  | Schema_delta
  | Watchdog
  | Note

let kind_tag = function
  | Txn_begin -> 0
  | Txn_commit -> 1
  | Txn_abort -> 2
  | Wal_append -> 3
  | Wal_fsync -> 4
  | Checkpoint -> 5
  | Pager_miss -> 6
  | Pager_writeback -> 7
  | Recluster_slice -> 8
  | Net_accept -> 9
  | Net_verb -> 10
  | Net_error -> 11
  | Schema_delta -> 12
  | Watchdog -> 13
  | Note -> 14

let kind_of_tag = function
  | 0 -> Some Txn_begin
  | 1 -> Some Txn_commit
  | 2 -> Some Txn_abort
  | 3 -> Some Wal_append
  | 4 -> Some Wal_fsync
  | 5 -> Some Checkpoint
  | 6 -> Some Pager_miss
  | 7 -> Some Pager_writeback
  | 8 -> Some Recluster_slice
  | 9 -> Some Net_accept
  | 10 -> Some Net_verb
  | 11 -> Some Net_error
  | 12 -> Some Schema_delta
  | 13 -> Some Watchdog
  | 14 -> Some Note
  | _ -> None

let kind_name = function
  | Txn_begin -> "txn_begin"
  | Txn_commit -> "txn_commit"
  | Txn_abort -> "txn_abort"
  | Wal_append -> "wal_append"
  | Wal_fsync -> "wal_fsync"
  | Checkpoint -> "checkpoint"
  | Pager_miss -> "pager_miss"
  | Pager_writeback -> "pager_writeback"
  | Recluster_slice -> "recluster_slice"
  | Net_accept -> "net_accept"
  | Net_verb -> "net_verb"
  | Net_error -> "net_error"
  | Schema_delta -> "schema_delta"
  | Watchdog -> "watchdog"
  | Note -> "note"

type event = {
  fe_ts_ns : int64;
  fe_kind : kind;
  fe_a : int;
  fe_b : int;
  fe_detail : string;
}

let dummy = { fe_ts_ns = 0L; fe_kind = Note; fe_a = 0; fe_b = 0; fe_detail = "" }

let capacity = 4096
let mask = capacity - 1

type ring = {
  r_domain : int;
  mutable r_name : string;
  slots : event array;
  written : int Atomic.t;  (* events ever recorded; slot = written land mask *)
}

let mu = Mutex.create ()
let rings : ring list ref = ref []  (* guarded by [mu]; grows only *)
let on = Atomic.make true

let key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_domain = (Domain.self () :> int);
          r_name = "";
          slots = Array.make capacity dummy;
          written = Atomic.make 0;
        }
      in
      Mutex.lock mu;
      rings := r :: !rings;
      Mutex.unlock mu;
      r)

let record_s k ~a ~b detail =
  if Atomic.get on then begin
    let detail = if String.length detail > 255 then String.sub detail 0 255 else detail in
    let r = Domain.DLS.get key in
    let w = Atomic.get r.written in
    r.slots.(w land mask) <-
      { fe_ts_ns = Clock.now_ns (); fe_kind = k; fe_a = a; fe_b = b; fe_detail = detail };
    (* The atomic bump publishes the slot store to snapshotting domains. *)
    Atomic.set r.written (w + 1)
  end

let record k ~a ~b = record_s k ~a ~b ""
let note detail = record_s Note ~a:0 ~b:0 detail

let name_domain name =
  let r = Domain.DLS.get key in
  r.r_name <- name

let set_recording v = Atomic.set on v
let recording () = Atomic.get on

type section = {
  fs_domain : int;
  fs_name : string;
  fs_total : int;
  fs_events : event list;
}

type dump = {
  d_wall_us : int64;
  d_mono_ns : int64;
  d_sections : section list;
}

let section_of_ring r =
  let w = Atomic.get r.written in
  let n = min w capacity in
  let tmp = Array.make (max n 1) dummy in
  for i = 0 to n - 1 do
    tmp.(i) <- r.slots.((w - n + i) land mask)
  done;
  let w2 = Atomic.get r.written in
  (* Copied entries hold events [w-n, w-1].  A concurrent writer may
     have stored slots for events [w, w2] (w..w2-1 published since our
     first read, plus at most one unpublished in-flight store for event
     w2 itself).  Entry e was recycled iff e + capacity <= w2, so the
     dirty prefix ends at w2 - capacity. *)
  let dirty = max 0 (min (w - 1) (w2 - capacity) - (w - n) + 1) in
  let evs = ref [] in
  for i = n - 1 downto dirty do
    evs := tmp.(i) :: !evs
  done;
  let name = if r.r_name = "" then Printf.sprintf "domain-%d" r.r_domain else r.r_name in
  { fs_domain = r.r_domain; fs_name = name; fs_total = w2; fs_events = !evs }

let snapshot () =
  Mutex.lock mu;
  let rs = !rings in
  Mutex.unlock mu;
  let sections =
    List.filter_map
      (fun r ->
        let s = section_of_ring r in
        if s.fs_total = 0 then None else Some s)
      rs
    |> List.sort (fun a b -> compare a.fs_domain b.fs_domain)
  in
  {
    d_wall_us = Int64.of_float (Unix.gettimeofday () *. 1e6);
    d_mono_ns = Clock.now_ns ();
    d_sections = sections;
  }

let reset () =
  Mutex.lock mu;
  List.iter
    (fun r ->
      Atomic.set r.written 0;
      r.r_name <- "";
      Array.fill r.slots 0 capacity dummy)
    !rings;
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* CFR1 binary format (self-contained little-endian; see DESIGN.md §12) *)

let magic = "CFR1\n"

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u8 b v;
  add_u8 b (v lsr 8);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 24)

let add_i64 b (v : int64) =
  for i = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let add_int b v = add_i64 b (Int64.of_int v)

let encode d =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_i64 b d.d_wall_us;
  add_i64 b d.d_mono_ns;
  add_u32 b (List.length d.d_sections);
  List.iter
    (fun s ->
      add_u32 b s.fs_domain;
      add_u16 b (String.length s.fs_name);
      Buffer.add_string b s.fs_name;
      add_int b s.fs_total;
      add_u32 b (List.length s.fs_events);
      List.iter
        (fun e ->
          add_u8 b (kind_tag e.fe_kind);
          add_i64 b e.fe_ts_ns;
          add_int b e.fe_a;
          add_int b e.fe_b;
          add_u16 b (String.length e.fe_detail);
          Buffer.add_string b e.fe_detail)
        s.fs_events)
    d.d_sections;
  Buffer.contents b

exception Bad of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let need n what =
    if !pos + n > len then raise (Bad (Printf.sprintf "truncated at byte %d reading %s" !pos what))
  in
  let u8 what =
    need 1 what;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 what =
    let lo = u8 what in
    let hi = u8 what in
    lo lor (hi lsl 8)
  in
  let u32 what =
    let a = u16 what in
    let b = u16 what in
    a lor (b lsl 16)
  in
  let i64 what =
    need 8 what;
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[!pos + i]))
    done;
    pos := !pos + 8;
    !v
  in
  let int_ what = Int64.to_int (i64 what) in
  let str n what =
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    if len < String.length magic || String.sub s 0 (String.length magic) <> magic then
      raise (Bad "bad magic (not a CFR1 flight dump)");
    pos := String.length magic;
    let wall = i64 "wall clock" in
    let mono = i64 "monotonic clock" in
    let nsec = u32 "section count" in
    if nsec > 1_000_000 then raise (Bad "implausible section count");
    let sections =
      List.init nsec (fun _ ->
          let dom = u32 "domain id" in
          let name = str (u16 "name length") "name" in
          let total = int_ "total" in
          let nev = u32 "event count" in
          if nev > 100_000_000 then raise (Bad "implausible event count");
          let events =
            List.init nev (fun _ ->
                let tag = u8 "kind" in
                let kind =
                  match kind_of_tag tag with
                  | Some k -> k
                  | None -> raise (Bad (Printf.sprintf "unknown event kind %d" tag))
                in
                let ts = i64 "timestamp" in
                let a = int_ "a" in
                let b = int_ "b" in
                let detail = str (u16 "detail length") "detail" in
                { fe_ts_ns = ts; fe_kind = kind; fe_a = a; fe_b = b; fe_detail = detail })
          in
          { fs_domain = dom; fs_name = name; fs_total = total; fs_events = events })
    in
    if !pos <> len then raise (Bad (Printf.sprintf "%d trailing bytes" (len - !pos)));
    Ok { d_wall_us = wall; d_mono_ns = mono; d_sections = sections }
  with Bad msg -> Error ("flight dump: " ^ msg)

let sanitize_reason r =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-') r

(* A post-mortem must not be lost to a missing directory: create the
   dump dir (and parents) on demand. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dump_to_file ~dir ~reason =
  mkdir_p dir;
  let d = snapshot () in
  let t = Unix.gmtime (Int64.to_float d.d_wall_us /. 1e6) in
  let name =
    Printf.sprintf "flight-%04d%02d%02dT%02d%02d%02dZ-%d-%s.cfr" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec
      (Unix.getpid ()) (sanitize_reason reason)
  in
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc (encode d);
  close_out oc;
  path
