lib/ddl/typecheck.ml: Ast Elaborate Format Hashtbl List Option Printf
