type state =
  | Up_to_date
  | Out_of_date
  | In_progress

type slot = {
  mutable value : Value.t;
  mutable state : state;
}

type t = {
  id : int;
  type_name : string;
  slots : (string, slot) Hashtbl.t;
  links : (string, int list ref) Hashtbl.t;
  mutable alive : bool;
}

let create ~id ~type_name =
  { id; type_name; slots = Hashtbl.create 8; links = Hashtbl.create 4; alive = true }

let slot t a =
  match Hashtbl.find_opt t.slots a with
  | Some s -> s
  | None ->
    let s = { value = Value.Null; state = Out_of_date } in
    Hashtbl.add t.slots a s;
    s

let slot_opt t a = Hashtbl.find_opt t.slots a

let linked t rel = match Hashtbl.find_opt t.links rel with Some r -> !r | None -> []

let add_link t rel id =
  match Hashtbl.find_opt t.links rel with
  | Some r -> r := !r @ [ id ]
  | None -> Hashtbl.add t.links rel (ref [ id ])

let remove_link t rel id =
  match Hashtbl.find_opt t.links rel with
  | None -> false
  | Some r ->
    let found = ref false in
    let rec drop_first = function
      | [] -> []
      | x :: rest ->
        if (not !found) && x = id then begin
          found := true;
          rest
        end
        else x :: drop_first rest
    in
    r := drop_first !r;
    !found

let all_links t =
  Hashtbl.fold (fun rel ids acc -> if !ids = [] then acc else (rel, !ids) :: acc) t.links []
  |> List.sort compare
