(* Application tests: milestone manager (Fig 1), make facility (Figs 2-4),
   flow analysis, UI demo. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Errors = Cactis.Errors
module Milestone = Cactis_apps.Milestone
module Fs_sim = Cactis_apps.Fs_sim
module Makefac = Cactis_apps.Makefac
module Flowan = Cactis_apps.Flowan
module Uidemo = Cactis_apps.Uidemo

(* ------------------------------------------------------------------ *)
(* Milestones                                                          *)

let build_project () =
  let m = Milestone.create () in
  let design = Milestone.add m ~name:"design" ~scheduled:10.0 ~local_work:5.0 in
  let code = Milestone.add m ~name:"code" ~scheduled:30.0 ~local_work:10.0 in
  let test = Milestone.add m ~name:"test" ~scheduled:40.0 ~local_work:5.0 in
  let docs = Milestone.add m ~name:"docs" ~scheduled:35.0 ~local_work:3.0 in
  Milestone.depends_on m code design;
  Milestone.depends_on m test code;
  Milestone.depends_on m docs design;
  (m, design, code, test, docs)

let test_milestone_ripple () =
  let m, design, code, test, docs = build_project () in
  Alcotest.(check (float 1e-9)) "design" 5.0 (Milestone.expected m design);
  Alcotest.(check (float 1e-9)) "code" 15.0 (Milestone.expected m code);
  Alcotest.(check (float 1e-9)) "test" 20.0 (Milestone.expected m test);
  Alcotest.(check bool) "nothing late" true (Milestone.late_set m = []);
  (* Design slips by 30 days: ripples through code and test. *)
  Milestone.slip m design 30.0;
  Alcotest.(check (float 1e-9)) "design slipped" 35.0 (Milestone.expected m design);
  Alcotest.(check (float 1e-9)) "code rippled" 45.0 (Milestone.expected m code);
  Alcotest.(check (float 1e-9)) "test rippled" 50.0 (Milestone.expected m test);
  Alcotest.(check (list int))
    "all late now"
    (List.sort compare [ design; code; test; docs ])
    (List.sort compare (Milestone.late_set m))

let test_critical_path () =
  let m, design, code, test, _docs = build_project () in
  Alcotest.(check (list int)) "critical path" [ design; code; test ]
    (Milestone.critical_path m test);
  (* A second, slower dependency chain takes over. *)
  let spec = Milestone.add m ~name:"spec" ~scheduled:50.0 ~local_work:100.0 in
  Milestone.depends_on m test spec;
  Alcotest.(check (list int)) "critical path rerouted" [ spec; test ]
    (Milestone.critical_path m test)

let test_very_late_dynamic () =
  let m, design, code, test, _docs = build_project () in
  Milestone.enable_very_late m ~limit_days:10.0;
  Alcotest.(check bool) "none very late" true (Milestone.very_late_set m = []);
  Milestone.slip m design 40.0;
  (* test: expected 60 vs scheduled 40 -> 20 days over the 10-day limit *)
  Alcotest.(check bool) "test very late" true (Milestone.is_very_late m test);
  Alcotest.(check bool) "code very late" true (Milestone.is_very_late m code);
  Alcotest.(check bool) "membership" true (List.mem test (Milestone.very_late_set m))

let test_milestone_undo () =
  let m, design, _, test, _ = build_project () in
  let before = Milestone.expected m test in
  Milestone.slip m design 30.0;
  Alcotest.(check bool) "changed" true (Milestone.expected m test <> before);
  Db.undo_last (Milestone.db m);
  Alcotest.(check (float 1e-9)) "undo restores ripple" before (Milestone.expected m test)

(* ------------------------------------------------------------------ *)
(* Make facility                                                       *)

(* app depends on a.o and b.o; each .o depends on its .c *)
let build_make_project () =
  let fs = Fs_sim.create () in
  Fs_sim.write_file fs "a.c" "int a;";
  Fs_sim.write_file fs "b.c" "int b;";
  let mk = Makefac.create fs in
  let a_o = Makefac.add_rule mk ~file:"a.o" ~command:"cc -c a.c -o a.o" in
  let b_o = Makefac.add_rule mk ~file:"b.o" ~command:"cc -c b.c -o b.o" in
  let a_c = Makefac.add_rule mk ~file:"a.c" ~command:"" in
  let b_c = Makefac.add_rule mk ~file:"b.c" ~command:"" in
  let app = Makefac.add_rule mk ~file:"app" ~command:"cc a.o b.o -o app" in
  Makefac.add_dependency mk ~rule:a_o ~on:a_c;
  Makefac.add_dependency mk ~rule:b_o ~on:b_c;
  Makefac.add_dependency mk ~rule:app ~on:a_o;
  Makefac.add_dependency mk ~rule:app ~on:b_o;
  (fs, mk, app, a_o, b_o, a_c, b_c)

let test_make_full_build () =
  let fs, mk, app, _, _, _, _ = build_make_project () in
  let ran = Makefac.build mk app in
  Alcotest.(check (list string))
    "builds objects then links"
    [ "cc -c a.c -o a.o"; "cc -c b.c -o b.o"; "cc a.o b.o -o app" ]
    ran;
  Alcotest.(check bool) "app exists" true (Fs_sim.exists fs "app");
  (* Second build: everything current, nothing runs. *)
  Alcotest.(check (list string)) "no-op rebuild" [] (Makefac.build mk app)

let test_make_minimal_rebuild () =
  let fs, mk, app, _, _, _, _ = build_make_project () in
  ignore (Makefac.build mk app);
  (* Touch b.c only: exactly b.o and app must rebuild. *)
  Fs_sim.touch fs "b.c";
  Makefac.sync mk;
  let ran = Makefac.build mk app in
  Alcotest.(check (list string))
    "minimal rebuild" [ "cc -c b.c -o b.o"; "cc a.o b.o -o app" ] ran

let test_make_missing_target () =
  let fs, mk, app, a_o, _, _, _ = build_make_project () in
  ignore (Makefac.build mk app);
  Fs_sim.remove fs "a.o";
  Makefac.sync mk;
  Alcotest.(check bool) "a.o stale" true (Makefac.needs_rebuild mk a_o);
  let ran = Makefac.build mk app in
  Alcotest.(check (list string))
    "rebuilds missing object and relinks" [ "cc -c a.c -o a.o"; "cc a.o b.o -o app" ] ran

let test_make_build_plan () =
  let fs, mk, app, _, _, _, _ = build_make_project () in
  (* Everything stale: objects can compile in parallel, then the link. *)
  Alcotest.(check (list (list string)))
    "two parallel stages"
    [ [ "cc -c a.c -o a.o"; "cc -c b.c -o b.o" ]; [ "cc a.o b.o -o app" ] ]
    (Makefac.build_plan mk app);
  ignore (Makefac.build mk app);
  Alcotest.(check (list (list string))) "up to date: empty plan" [] (Makefac.build_plan mk app);
  (* One source touched: its object then the link, sequentially. *)
  Fs_sim.touch fs "b.c";
  Makefac.sync mk;
  Alcotest.(check (list (list string)))
    "incremental plan" [ [ "cc -c b.c -o b.o" ]; [ "cc a.o b.o -o app" ] ]
    (Makefac.build_plan mk app);
  (* Planning must not execute anything. *)
  Alcotest.(check bool) "plan ran nothing" true
    (not (List.exists (fun c -> c = "planned") (Fs_sim.journal fs)))

let test_make_keep_current () =
  let fs, mk, app, _, b_o, _, _ = build_make_project () in
  ignore (Makefac.build mk app);
  Makefac.enable_keep_current mk app;
  Fs_sim.touch fs "b.c";
  let ran = Makefac.auto_build mk in
  Alcotest.(check (list string))
    "auto rebuild through subtype" [ "cc -c b.c -o b.o"; "cc a.o b.o -o app" ] ran;
  ignore b_o

(* ------------------------------------------------------------------ *)
(* Flow analysis                                                       *)

let assign ?(uses = []) target label = Flowan.Assign { target; uses; label }
let seq a b = Flowan.Seq (a, b)

let test_liveness_straightline () =
  (* a := 1; b := a; c := b  — all live along the chain, nothing after c *)
  let p = seq (assign "a" "A1") (seq (assign "b" ~uses:[ "a" ] "B1") (assign "c" ~uses:[ "b" ] "C1")) in
  let t = Flowan.analyze p in
  match Flowan.nodes t with
  | [ n1; n2; n3 ] ->
    Alcotest.(check (list string)) "live out of A1" [ "a" ] (Flowan.live_out t n1);
    Alcotest.(check (list string)) "live out of B1" [ "b" ] (Flowan.live_out t n2);
    Alcotest.(check (list string)) "live out of C1" [] (Flowan.live_out t n3);
    Alcotest.(check (list int)) "c is dead" [ n3 ] (Flowan.dead_assignments t)
  | nodes -> Alcotest.fail (Printf.sprintf "expected 3 nodes, got %d" (List.length nodes))

let test_liveness_branch () =
  (* x := 1; if (p) then y := x else y := 2; z := y *)
  let p =
    seq (assign "x" "X1")
      (seq
         (Flowan.If
            {
              cond_uses = [ "p" ];
              then_ = assign "y" ~uses:[ "x" ] "Y1";
              else_ = assign "y" "Y2";
            })
         (assign "z" ~uses:[ "y" ] "Z1"))
  in
  let t = Flowan.analyze p in
  let by_label l =
    List.find (fun n -> Flowan.label t n = l) (Flowan.nodes t)
  in
  Alcotest.(check (list string)) "x live into if" [ "p"; "x" ] (Flowan.live_in t (by_label "if"));
  Alcotest.(check (list string)) "y live out of Y1" [ "y" ] (Flowan.live_out t (by_label "Y1"));
  (* Reaching definitions at z: both branch definitions of y reach. *)
  Alcotest.(check bool) "Y1 reaches Z1" true (List.mem "Y1" (Flowan.reaching_in t (by_label "Z1")));
  Alcotest.(check bool) "Y2 reaches Z1" true (List.mem "Y2" (Flowan.reaching_in t (by_label "Z1")));
  (* X1 is killed by nothing, reaches the end. *)
  Alcotest.(check bool) "X1 reaches Z1" true (List.mem "X1" (Flowan.reaching_in t (by_label "Z1")))

let test_liveness_incremental () =
  (* Changing a use set updates liveness through the engine. *)
  let p = seq (assign "a" "A1") (assign "b" "B1") in
  let t = Flowan.analyze p in
  let by_label l = List.find (fun n -> Flowan.label t n = l) (Flowan.nodes t) in
  Alcotest.(check (list int)) "a dead initially" [ by_label "A1" ]
    (List.filter (fun n -> Flowan.label t n = "A1") (Flowan.dead_assignments t));
  (* B1 starts using a: A1 is no longer dead. *)
  let database = Flowan.db t in
  Db.set database (by_label "B1") "use"
    (Value.Arr [| Value.Str "a" |]);
  Alcotest.(check bool) "A1 now live" true
    (not (List.mem (by_label "A1") (Flowan.dead_assignments t)))

let test_while_rejected_statically () =
  (* The analyzer's verdict on the flow schema rejects looping programs
     before a single object is built, witness path included. *)
  let p =
    Flowan.While { cond_uses = [ "i" ]; body = assign "i" ~uses:[ "i" ] "I1" }
  in
  match Flowan.analyze p with
  | _ -> Alcotest.fail "expected static rejection"
  | exception Flowan.Rejected { witness; _ } ->
    let mentions sub =
      let n = String.length witness and m = String.length sub in
      let rec go i = i + m <= n && (String.sub witness i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    Alcotest.(check bool) "witness names a flow attribute" true
      (mentions "live_" || mentions "reach_");
    Alcotest.(check bool) "witness crosses succ or pred" true
      (mentions "-[succ]->" || mentions "-[pred]->")

let test_while_cycle_detected () =
  (* With the static check bypassed, the engine's dynamic detector is
     still the backstop: querying the cyclic attributes raises. *)
  let p =
    Flowan.While { cond_uses = [ "i" ]; body = assign "i" ~uses:[ "i" ] "I1" }
  in
  let t = Flowan.analyze ~static_check:false p in
  match Flowan.live_in t (List.hd (Flowan.nodes t)) with
  | _ -> Alcotest.fail "expected cycle"
  | exception Errors.Cycle _ -> ()

let test_while_fixed_point () =
  (* [Far86] mode: the same While-loop CFG evaluates to the textbook
     iterative-dataflow least fixed point instead of raising. *)
  let p =
    seq
      (assign "i" "L1")
      (seq
         (Flowan.While
            {
              cond_uses = [ "i" ];
              body = seq (assign ~uses:[ "i" ] "x" "L2") (assign ~uses:[ "i"; "x" ] "i" "L3");
            })
         (assign ~uses:[ "i" ] "r" "L4"))
  in
  let t = Flowan.analyze ~fixed_point:true ~exit_live:[ "r" ] p in
  let by_label l = List.find (fun n -> Flowan.label t n = l) (Flowan.nodes t) in
  let w = by_label "while" in
  Alcotest.(check (list string)) "live into loop header" [ "i" ] (Flowan.live_in t w);
  Alcotest.(check (list string)) "live out of loop header" [ "i" ] (Flowan.live_out t w);
  Alcotest.(check (list string)) "live out of L2" [ "i"; "x" ] (Flowan.live_out t (by_label "L2"));
  Alcotest.(check (list string)) "live out of L3" [ "i" ] (Flowan.live_out t (by_label "L3"));
  Alcotest.(check (list string)) "defs reaching loop exit" [ "L1"; "L2"; "L3" ]
    (Flowan.reaching_out t w);
  Alcotest.(check (list string)) "defs reaching L4 exit" [ "L1"; "L2"; "L3"; "L4" ]
    (Flowan.reaching_out t (by_label "L4"));
  Alcotest.(check (list int)) "no dead assignments" [] (Flowan.dead_assignments t);
  (* The iteration is observable: at least one fixed-point run ran. *)
  let counters = Cactis_util.Counters.snapshot (Db.counters (Flowan.db t)) in
  let runs = try List.assoc "fixpoint_runs" counters with Not_found -> 0 in
  Alcotest.(check bool) "fixpoint_runs bumped" true (runs > 0);
  (* Incrementality survives the loop: growing the exit-live set ripples
     through the cyclic region to a new fixed point. *)
  Db.set (Flowan.db t) (by_label "L2") "use" (Value.Arr [| Value.Str "i"; Value.Str "q" |]);
  Alcotest.(check bool) "new use ripples into loop header" true
    (List.mem "q" (Flowan.live_in t w))

(* ------------------------------------------------------------------ *)
(* Requirements traceability                                           *)

module Tr = Cactis_apps.Traceability

let build_trace_env () =
  let tr = Tr.create () in
  let proj = Tr.add_project tr ~name:"compiler" in
  let auth = Tr.add_requirement tr ~project:proj ~name:"parse-all-syntax" ~critical:true in
  let perf = Tr.add_requirement tr ~project:proj ~name:"compile-under-1s" ~critical:false in
  let docs = Tr.add_requirement tr ~project:proj ~name:"document-flags" ~critical:true in
  let t1 = Tr.add_test tr ~name:"syntax-suite" in
  let t2 = Tr.add_test tr ~name:"perf-suite" in
  let t3 = Tr.add_test tr ~name:"doc-lint" in
  Tr.verifies tr ~test:t1 ~requirement:auth;
  Tr.verifies tr ~test:t2 ~requirement:perf;
  Tr.verifies tr ~test:t3 ~requirement:docs;
  (tr, proj, auth, perf, docs, t1, t2, t3)

let test_trace_coverage_ripples () =
  let tr, proj, auth, _perf, docs, t1, t2, t3 = build_trace_env () in
  Alcotest.(check (pair int int)) "nothing covered" (0, 3) (Tr.coverage tr proj);
  Alcotest.(check bool) "not ready" false (Tr.release_ready tr proj);
  (* One test-run result ripples into requirement coverage and the
     project dashboard. *)
  Tr.record_run tr ~test:t1 ~passed:true;
  Alcotest.(check bool) "auth covered" true (Tr.covered tr auth);
  Alcotest.(check (pair int int)) "one of three" (1, 3) (Tr.coverage tr proj);
  Alcotest.(check (list string)) "docs still blocks" [ "document-flags" ]
    (List.map (Tr.requirement_name tr) (Tr.blockers tr proj));
  Tr.record_run tr ~test:t3 ~passed:true;
  Alcotest.(check bool) "ready once criticals covered" true (Tr.release_ready tr proj);
  Tr.record_run tr ~test:t2 ~passed:true;
  Alcotest.(check (pair int int)) "full coverage" (3, 3) (Tr.coverage tr proj);
  (* A regression flips everything back. *)
  Tr.record_run tr ~test:t1 ~passed:false;
  Alcotest.(check bool) "regression blocks release" false (Tr.release_ready tr proj);
  ignore docs

let test_trace_shared_tests () =
  (* One test verifying two requirements; coverage counts both. *)
  let tr = Tr.create () in
  let proj = Tr.add_project tr ~name:"p" in
  let r1 = Tr.add_requirement tr ~project:proj ~name:"r1" ~critical:false in
  let r2 = Tr.add_requirement tr ~project:proj ~name:"r2" ~critical:false in
  let t = Tr.add_test tr ~name:"integration" in
  Tr.verifies tr ~test:t ~requirement:r1;
  Tr.verifies tr ~test:t ~requirement:r2;
  Tr.record_run tr ~test:t ~passed:true;
  Alcotest.(check (pair int int)) "both covered by one test" (2, 2) (Tr.coverage tr proj);
  ignore (r1, r2)

(* ------------------------------------------------------------------ *)
(* Configuration management                                            *)

module Cm = Cactis_apps.Configman

let build_config_env () =
  let cm = Cm.create () in
  let lexer = Cm.add_component cm ~name:"lexer.c" ~kind:Cm.Source in
  let lexer_o = Cm.add_component cm ~name:"lexer.o" ~kind:Cm.Object in
  let parser_c = Cm.add_component cm ~name:"parser.c" ~kind:Cm.Source in
  let release = Cm.add_configuration cm ~name:"release" ~require_stable:true in
  let nightly = Cm.add_configuration cm ~name:"nightly" ~require_stable:false in
  List.iter
    (fun c -> Cm.include_component cm ~config:release ~component:c)
    [ lexer; lexer_o; parser_c ];
  List.iter
    (fun c -> Cm.include_component cm ~config:nightly ~component:c)
    [ lexer; parser_c ];
  (cm, lexer, lexer_o, parser_c, release, nightly)

let test_config_derived () =
  let cm, lexer, lexer_o, parser_c, release, nightly = build_config_env () in
  Alcotest.(check int) "release size" 3 (Cm.size cm release);
  Alcotest.(check int) "min version" 1 (Cm.min_version cm release);
  (* Unstable components: the stability-requiring config is inconsistent,
     the nightly one doesn't care. *)
  Alcotest.(check bool) "release inconsistent" false (Cm.consistent cm release);
  Alcotest.(check bool) "nightly fine" true (Cm.consistent cm nightly);
  List.iter (Cm.mark_stable cm) [ lexer; lexer_o; parser_c ];
  Alcotest.(check bool) "release consistent now" true (Cm.consistent cm release);
  (* Bumping one component ripples into every including configuration. *)
  Cm.bump_version cm lexer;
  Alcotest.(check bool) "bump destabilizes release" false (Cm.consistent cm release);
  Alcotest.(check int) "version bumped" 2 (Cm.version cm lexer);
  Alcotest.(check (list int)) "ripple audience" [ release; nightly ]
    (List.sort compare (Cm.configurations_of cm lexer))

let test_config_subtypes () =
  let cm, lexer, lexer_o, parser_c, _, _ = build_config_env () in
  Alcotest.(check (list int)) "sources" [ lexer; parser_c ]
    (List.sort compare (Cm.source_modules cm));
  Alcotest.(check (list int)) "objects" [ lexer_o ] (Cm.object_modules cm)

let test_config_freeze_restore () =
  let cm, lexer, lexer_o, parser_c, release, _ = build_config_env () in
  List.iter (Cm.mark_stable cm) [ lexer; lexer_o; parser_c ];
  Cm.freeze cm ~label:"v1.0";
  Cm.bump_version cm lexer;
  Cm.bump_version cm lexer;
  Alcotest.(check int) "moved on" 3 (Cm.version cm lexer);
  Alcotest.(check bool) "inconsistent after bumps" false (Cm.consistent cm release);
  Cm.restore cm ~label:"v1.0";
  Alcotest.(check int) "frozen version recalled" 1 (Cm.version cm lexer);
  Alcotest.(check bool) "frozen consistency recalled" true (Cm.consistent cm release)

(* ------------------------------------------------------------------ *)
(* UI demo                                                             *)

let test_ui_rendering () =
  let ui = Uidemo.create () in
  let root = Uidemo.add_box ui ~parent:None ~title:"window" in
  let _l1 = Uidemo.add_label ui ~parent:(Some root) ~text:"hello" in
  let box = Uidemo.add_box ui ~parent:(Some root) ~title:"status" in
  let l2 = Uidemo.add_label ui ~parent:(Some box) ~text:"ok" in
  Alcotest.(check string) "initial render" "[window: hello | [status: ok]]" (Uidemo.render_root ui);
  Uidemo.set_text ui l2 "FAIL";
  Alcotest.(check string) "updated render" "[window: hello | [status: FAIL]]"
    (Uidemo.render_root ui);
  (* Only the changed path (l2, box, root) re-renders. *)
  Uidemo.set_text ui l2 "ok again";
  ignore (Uidemo.render_root ui);
  Alcotest.(check bool)
    (Printf.sprintf "path-only re-render (got %d evals)" (Uidemo.last_render_evals ui))
    true
    (Uidemo.last_render_evals ui <= 3)

let () =
  Alcotest.run "cactis-apps"
    [
      ( "milestones",
        [
          Alcotest.test_case "ripple" `Quick test_milestone_ripple;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "very_late dynamic extension" `Quick test_very_late_dynamic;
          Alcotest.test_case "undo ripples back" `Quick test_milestone_undo;
        ] );
      ( "make",
        [
          Alcotest.test_case "full build order" `Quick test_make_full_build;
          Alcotest.test_case "minimal rebuild" `Quick test_make_minimal_rebuild;
          Alcotest.test_case "missing target" `Quick test_make_missing_target;
          Alcotest.test_case "parallel build plan" `Quick test_make_build_plan;
          Alcotest.test_case "keep-current subtype" `Quick test_make_keep_current;
        ] );
      ( "flow-analysis",
        [
          Alcotest.test_case "straight-line liveness" `Quick test_liveness_straightline;
          Alcotest.test_case "branch liveness + reaching" `Quick test_liveness_branch;
          Alcotest.test_case "incremental update" `Quick test_liveness_incremental;
          Alcotest.test_case "while loop rejected statically" `Quick
            test_while_rejected_statically;
          Alcotest.test_case "while loop rejected" `Quick test_while_cycle_detected;
          Alcotest.test_case "while loop fixed point" `Quick test_while_fixed_point;
        ] );
      ( "traceability",
        [
          Alcotest.test_case "coverage ripples" `Quick test_trace_coverage_ripples;
          Alcotest.test_case "shared tests" `Quick test_trace_shared_tests;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "derived consistency" `Quick test_config_derived;
          Alcotest.test_case "source/object subtypes" `Quick test_config_subtypes;
          Alcotest.test_case "freeze & restore" `Quick test_config_freeze_restore;
        ] );
      ( "ui",
        [ Alcotest.test_case "attribute-driven rendering" `Quick test_ui_rendering ] );
    ]
