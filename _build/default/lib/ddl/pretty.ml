module Value = Cactis.Value

(* Operator precedence levels; parentheses are emitted whenever a child's
   level is looser than its context requires. *)
let level = function
  | Ast.If _ -> 0
  | Ast.Binop (Ast.Or, _, _) -> 1
  | Ast.Binop (Ast.And, _, _) -> 2
  | Ast.Unop (Ast.Not, _) -> 3
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 4
  | Ast.Binop ((Ast.Add | Ast.Sub), _, _) -> 5
  | Ast.Binop ((Ast.Mul | Ast.Div), _, _) -> 6
  | Ast.Unop (Ast.Neg, _) -> 7
  | Ast.Lit _ | Ast.Self_attr _ | Ast.Rel_one _ | Ast.Rel_agg _ | Ast.Call _ -> 8

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "and"
  | Ast.Or -> "or"

let pp_float fmt f =
  (* Shortest representation that parses back to the same float, with a
     decimal point so the lexer reads it as a float. *)
  let shortest =
    let rec try_prec p = if p > 17 then Printf.sprintf "%.17g" f else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    try_prec 12
  in
  if String.contains shortest '.' || String.contains shortest 'e' then
    Format.pp_print_string fmt shortest
  else Format.fprintf fmt "%s.0" shortest

let pp_lit fmt (v : Value.t) =
  match v with
  | Value.Int n -> Format.pp_print_int fmt n
  | Value.Float f -> pp_float fmt f
  | Value.Str s -> Format.fprintf fmt "%S" s
  | Value.Bool true -> Format.pp_print_string fmt "true"
  | Value.Bool false -> Format.pp_print_string fmt "false"
  | Value.Null -> Format.pp_print_string fmt "null"
  | Value.Time t -> Format.fprintf fmt "time(%g)" (Cactis_util.Vtime.to_days t)
  | Value.Arr _ | Value.Rec _ -> Format.fprintf fmt "%s" (Value.to_string v)

let rec pp_at min_level fmt expr =
  let self_level = level expr in
  let parens = self_level < min_level in
  if parens then Format.pp_print_string fmt "(";
  (match expr with
  | Ast.Lit v -> pp_lit fmt v
  | Ast.Self_attr a -> Format.pp_print_string fmt a
  | Ast.Rel_one (r, a) -> Format.fprintf fmt "%s.%s" r a
  | Ast.Rel_agg { agg; rel; attr; default } -> (
    Format.fprintf fmt "%s(%s.%s" (Ast.agg_name agg) rel attr;
    (match default with
    | Some d -> Format.fprintf fmt " default %a" (pp_at 0) d
    | None -> ());
    Format.pp_print_string fmt ")")
  | Ast.Unop (Ast.Neg, e) ->
    (* A space avoids "--", which would lex as a line comment. *)
    let rendered = Format.asprintf "%a" (pp_at 7) e in
    if String.length rendered > 0 && rendered.[0] = '-' then
      Format.fprintf fmt "- %s" rendered
    else Format.fprintf fmt "-%s" rendered
  | Ast.Unop (Ast.Not, e) -> Format.fprintf fmt "not %a" (pp_at 3) e
  | Ast.Binop (op, a, b) ->
    (* Comparison operators are non-associative; arithmetic is
       left-associative; and/or are parsed right-associatively, so print
       the right child at the operator's own level. *)
    let lvl = self_level in
    let left_min, right_min =
      match op with
      | Ast.And | Ast.Or -> (lvl + 1, lvl)
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (lvl + 1, lvl + 1)
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (lvl, lvl + 1)
    in
    Format.fprintf fmt "%a %s %a" (pp_at left_min) a (binop_symbol op) (pp_at right_min) b
  | Ast.If (c, t, e) ->
    Format.fprintf fmt "if %a then %a else %a" (pp_at 0) c (pp_at 0) t (pp_at 0) e
  | Ast.Call (name, args) ->
    Format.fprintf fmt "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") (pp_at 0))
      args);
  if parens then Format.pp_print_string fmt ")"

let pp_expr fmt expr = pp_at 0 fmt expr
let expr_to_string expr = Format.asprintf "%a" pp_expr expr

let pp_attr_decl fmt (d : Ast.attr_decl) =
  Format.fprintf fmt "@[<h>%s : %s%t;@]" d.ad_name (Ast.type_name d.ad_type) (fun fmt ->
      match d.ad_default with
      | Some e -> Format.fprintf fmt " := %a" pp_expr e
      | None -> ())

let pp_rel_decl fmt (d : Ast.rel_decl) =
  Format.fprintf fmt "@[<h>%s : %s %s %s inverse %s;@]" d.rd_name d.rd_target
    (match d.rd_card with `One -> "one" | `Multi -> "multi")
    (match d.rd_polarity with `Plug -> "plug" | `Socket -> "socket")
    d.rd_inverse

let pp_rule_decl fmt (d : Ast.rule_decl) =
  Format.fprintf fmt "@[<h>%s = %a;@]" d.ru_name pp_expr d.ru_expr

let pp_constraint_decl fmt (d : Ast.constraint_decl) =
  Format.fprintf fmt "@[<h>%s = %a message %S%t;@]" d.cd_name pp_expr d.cd_expr d.cd_message
    (fun fmt ->
      match d.cd_recovery with
      | Some r -> Format.fprintf fmt " recovery %s" r
      | None -> ())

let pp_transmit_decl fmt (d : Ast.transmit_decl) =
  Format.fprintf fmt "@[<h>%s.%s = %s;@]" d.tr_rel d.tr_export d.tr_attr

let pp_section fmt keyword pp_one = function
  | [] -> ()
  | decls ->
    Format.fprintf fmt "@,@[<v 2>%s@,%a@]" keyword
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_one)
      decls

let pp_class fmt (c : Ast.class_def) =
  Format.fprintf fmt "@[<v 2>object class %s is" c.cl_name;
  pp_section fmt "relationships" pp_rel_decl c.cl_rels;
  pp_section fmt "attributes" pp_attr_decl c.cl_attrs;
  pp_section fmt "rules" pp_rule_decl c.cl_rules;
  pp_section fmt "constraints" pp_constraint_decl c.cl_constraints;
  pp_section fmt "transmits" pp_transmit_decl c.cl_transmits;
  Format.fprintf fmt "@]@,end object;"

let pp_subtype fmt (s : Ast.subtype_def) =
  Format.fprintf fmt "@[<v 2>subtype %s of %s where %a" s.su_name s.su_parent pp_expr
    s.su_predicate;
  (match (s.su_attrs, s.su_rules) with
  | [], [] -> ()
  | attrs, rules ->
    Format.fprintf fmt " is";
    pp_section fmt "attributes" pp_attr_decl attrs;
    pp_section fmt "rules" pp_rule_decl rules);
  Format.fprintf fmt "@]@,end subtype;"

let pp_item fmt = function
  | Ast.Class c -> pp_class fmt c
  | Ast.Subtype s -> pp_subtype fmt s

let pp_schema fmt items =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "@,@,") pp_item)
    items

let schema_to_string items = Format.asprintf "%a@." pp_schema items
