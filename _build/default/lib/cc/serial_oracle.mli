(** Serial re-execution oracle for serializability checking.

    Timestamp ordering guarantees that the concurrent execution of the
    committed transactions is equivalent to their serial execution in
    timestamp order.  The oracle re-runs the committed scripts serially
    (in timestamp order) on a freshly built database and compares the
    final intrinsic state. *)

(** [replay ~setup ~committed] builds a fresh database with [setup] and
    executes each script to completion, in order.  Returns the database. *)
val replay :
  setup:(unit -> Cactis.Db.t) -> committed:(int * Workload.script) list -> Cactis.Db.t

(** [snapshot db attrs] — the values of the named intrinsic attribute on
    every live instance carrying it, sorted by (id, attr). *)
val snapshot : Cactis.Db.t -> string list -> ((int * string) * Cactis.Value.t) list

(** [equivalent db1 db2 attrs] — same snapshot on both sides. *)
val equivalent : Cactis.Db.t -> Cactis.Db.t -> string list -> bool
