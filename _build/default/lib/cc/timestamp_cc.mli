(** Timestamp-ordering concurrency control.

    The paper states that Cactis "uses a timestamping concurrency control
    technique" (§1.1).  This module implements basic timestamp ordering
    with deferred writes over a shared {!Cactis.Db}:

    - every transaction receives a unique, monotonically increasing
      timestamp at start (and a fresh, larger one on restart);
    - each data item (instance id, attribute) carries the largest read
      and write timestamps that have touched it;
    - a read by T of item x is rejected if [ts(T) < write_ts(x)] (T would
      see the future); otherwise it reads committed state (or T's own
      buffered write) and advances [read_ts(x)];
    - a write by T of x is rejected if [ts(T) < read_ts(x)] or
      [ts(T) < write_ts(x)]; otherwise it is buffered in T's private
      workspace;
    - commit re-validates every buffered write (the timestamps may have
      advanced since the write was buffered) and then applies the
      workspace inside a single underlying [Db] transaction.  Under the
      optional {e Thomas write rule}, a commit-time stale write is
      silently skipped instead of aborting the transaction.

    Committed transactions are conflict-serializable in timestamp order,
    which the test suite checks against a serial re-execution oracle. *)

type t

type txn

type key = int * string

val create : ?thomas_write_rule:bool -> Cactis.Db.t -> t

val db : t -> Cactis.Db.t
val set_thomas_write_rule : t -> bool -> unit

val begin_txn : t -> txn

(** The transaction's current timestamp. *)
val timestamp : txn -> int

(** [read t txn id attr] — [Error `Abort] rejects the whole transaction
    (its workspace is discarded); the caller restarts it with a fresh
    timestamp via a new {!begin_txn}. *)
val read : t -> txn -> int -> string -> (Cactis.Value.t, [ `Abort ]) result

val write : t -> txn -> int -> string -> Cactis.Value.t -> (unit, [ `Abort ]) result

val commit : t -> txn -> (unit, [ `Abort ]) result

(** Voluntarily discard the workspace. *)
val abort : t -> txn -> unit

(** {1 Statistics} *)

val commits : t -> int
val aborts : t -> int

(** Stale writes skipped by the Thomas write rule. *)
val thomas_skips : t -> int
