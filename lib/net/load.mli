(** Multi-process load-driver plumbing.

    OCaml 5 forbids forking a process that has running domains, so the
    QPS benchmark never forks workers from a parallel parent: it
    re-executes {e its own binary} ([Sys.executable_name]) via
    fork+exec ([Unix.create_process]) with role-selecting argv, and
    only the children spawn domains.  A child talks back over its
    stdout, one line at a time:

    {v
    READY port=4217          (server child, once listening)
    RESULT ops=8123 ...      (client child, before exiting)
    STAT server.req.read=…   (server child, after SIGTERM)
    v}

    The parent reads lines with a timeout (a wedged child fails the
    run, it does not hang it), terminates the server with SIGTERM and
    checks for a clean exit. *)

type child

(** [spawn ~args] — fork+exec this very binary with [args] appended
    after [argv0], stdout piped to the parent, stderr inherited. *)
val spawn : args:string list -> child

val pid : child -> int

(** [read_line c] — next stdout line.  [None] on EOF.
    @raise Failure on [timeout_s] (default 30s) expiring. *)
val read_line : ?timeout_s:float -> child -> string option

(** [wait c] — drain remaining lines until EOF, reap the child. *)
val wait : child -> string list * Unix.process_status

(** [terminate c] — SIGTERM, then {!wait}.  Safe if already dead. *)
val terminate : child -> string list * Unix.process_status

(** [kv line] — parse ["k1=v1 k2=v2 …"] after a one-word tag into
    assoc pairs; [("_tag", tag)] holds the leading word. *)
val kv : string -> (string * string) list
