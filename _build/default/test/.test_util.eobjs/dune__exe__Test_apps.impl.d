test/test_apps.ml: Alcotest Cactis Cactis_apps List Printf
