lib/core/sched.mli: Store
