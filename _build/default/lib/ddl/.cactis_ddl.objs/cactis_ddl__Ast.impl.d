lib/ddl/ast.ml: Cactis Cactis_util
