lib/core/txn.mli: Format Value
