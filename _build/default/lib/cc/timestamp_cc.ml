module Db = Cactis.Db
module Value = Cactis.Value

type key = int * string

type stamp = {
  mutable read_ts : int;
  mutable write_ts : int;
}

type status =
  | Active
  | Committed
  | Aborted

type txn = {
  ts : int;
  mutable workspace : (key * Value.t) list;  (* newest first; first hit wins *)
  mutable status : status;
}

type t = {
  database : Db.t;
  stamps : (key, stamp) Hashtbl.t;
  mutable clock : int;
  mutable thomas : bool;
  mutable commit_count : int;
  mutable abort_count : int;
  mutable thomas_skip_count : int;
}

let create ?(thomas_write_rule = false) database =
  {
    database;
    stamps = Hashtbl.create 128;
    clock = 0;
    thomas = thomas_write_rule;
    commit_count = 0;
    abort_count = 0;
    thomas_skip_count = 0;
  }

let db t = t.database
let set_thomas_write_rule t b = t.thomas <- b

let stamp t key =
  match Hashtbl.find_opt t.stamps key with
  | Some s -> s
  | None ->
    let s = { read_ts = 0; write_ts = 0 } in
    Hashtbl.add t.stamps key s;
    s

let begin_txn t =
  t.clock <- t.clock + 1;
  { ts = t.clock; workspace = []; status = Active }

let timestamp txn = txn.ts

let require_active txn =
  match txn.status with
  | Active -> ()
  | Committed | Aborted -> invalid_arg "Timestamp_cc: transaction is not active"

let do_abort t txn =
  txn.status <- Aborted;
  txn.workspace <- [];
  t.abort_count <- t.abort_count + 1

let read t txn id attr =
  require_active txn;
  let key = (id, attr) in
  match List.assoc_opt key txn.workspace with
  | Some v -> Ok v  (* read-your-own-writes *)
  | None ->
    let s = stamp t key in
    if txn.ts < s.write_ts then begin
      (* A younger transaction already wrote this item: reading committed
         state would read "around" that write. *)
      do_abort t txn;
      Error `Abort
    end
    else begin
      s.read_ts <- max s.read_ts txn.ts;
      (* ~watch:false: concurrent readers must not permanently change the
         engine's importance bookkeeping on behalf of a client. *)
      Ok (Db.get t.database ~watch:false id attr)
    end

let write t txn id attr v =
  require_active txn;
  let key = (id, attr) in
  let s = stamp t key in
  if txn.ts < s.read_ts || (txn.ts < s.write_ts && not t.thomas) then begin
    do_abort t txn;
    Error `Abort
  end
  else begin
    txn.workspace <- (key, v) :: txn.workspace;
    Ok ()
  end

let commit t txn =
  require_active txn;
  (* Deduplicate: the newest buffered write per key wins. *)
  let seen = Hashtbl.create 8 in
  let writes =
    List.filter
      (fun (key, _) ->
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      txn.workspace
  in
  (* Re-validate: timestamps may have advanced since the writes were
     buffered. *)
  let valid, skipped =
    List.fold_left
      (fun acc (key, v) ->
        match acc with
        | None -> None
        | Some (valid, skipped) ->
          let s = stamp t key in
          if txn.ts < s.read_ts then None
          else if txn.ts < s.write_ts then
            if t.thomas then Some (valid, ((key, v) :: skipped)) else None
          else Some (((key, v) :: valid), skipped))
      (Some ([], []))
      writes
    |> function
    | None -> (None, [])
    | Some (valid, skipped) -> (Some valid, skipped)
  in
  match valid with
  | None ->
    do_abort t txn;
    Error `Abort
  | Some valid ->
    t.thomas_skip_count <- t.thomas_skip_count + List.length skipped;
    (try
       Db.with_txn t.database (fun () ->
           List.iter (fun ((id, attr), v) -> Db.set t.database id attr v) valid)
     with e ->
       (* A constraint violation on apply aborts the CC transaction too
          (the underlying Db transaction already rolled back). *)
       do_abort t txn;
       raise e);
    List.iter (fun ((_, _) as key, _) -> (stamp t key).write_ts <- txn.ts) valid;
    txn.status <- Committed;
    txn.workspace <- [];
    t.commit_count <- t.commit_count + 1;
    Ok ()

let abort t txn =
  require_active txn;
  do_abort t txn

let commits t = t.commit_count
let aborts t = t.abort_count
let thomas_skips t = t.thomas_skip_count
