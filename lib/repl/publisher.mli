(** Writer-side log shipping: stream the WAL to follower replicas.

    One domain owns a TCP listener plus every follower connection.  A
    commit hook (chained after the {!Cactis.Persist} WAL hook, so a
    record is shipped only once it is durable) captures each encoded
    delta together with its post-append cursor and queues it; the
    publisher domain drains the queue — {e group commit on the wire}:
    everything drained in one wake leaves as one [Batch] frame — into
    an in-memory backlog it serves resumes from, and pushes new items
    to every live follower.

    Bootstrap is snapshot + log catch-up: a follower whose cursor the
    backlog no longer covers is sent the on-disk checkpoint file
    (atomic-replaced by {!Cactis.Persist.checkpoint}, so reading it
    races nothing) in chunks, then streamed the records past it.  A
    follower {e ahead} of the writer — a stale writer restarted from
    an old checkpoint — is refused with a typed
    [follower-ahead] error rather than replayed backwards.

    The backlog retains the current and previous checkpoint
    generations (a reconnecting follower can resume across one
    checkpoint); older items are pruned once every connected follower
    has passed them.  A follower further behind than [max_backlog]
    items is evicted and re-bootstraps on reconnect.

    Counters ([repl.ship_*], [repl.snapshots_served], [repl.refusals],
    ...) and the follower-lag histogram land in the database's own
    observability context, so they flow through the existing
    Stats/OpenMetrics path unchanged. *)

type config

(** [config ()] — ephemeral loopback port, 1 s heartbeats, 256k-item
    backlog cap, 5 s per-follower send deadline (a consumer stalled
    longer is dropped; it reconnects and resyncs). *)
val config :
  ?port:int ->
  ?heartbeat_s:float ->
  ?max_backlog:int ->
  ?send_timeout_s:float ->
  ?backlog:int ->
  unit ->
  config

type t

(** [start ?config persist] — install the shipping hook (chained after
    the WAL hook already installed by [persist]) and begin accepting
    followers.  Call before {!Cactis_net.Server.start} if the same
    database also serves clients, so the server's broadcast chains
    after the shipping hook. *)
val start : ?config:config -> Cactis.Persist.t -> t

(** The bound TCP port (useful with [port = 0]). *)
val port : t -> int

(** Currently connected followers. *)
val followers : t -> int

(** Sequence number of the last streamed item ([-1] before any). *)
val head_seq : t -> int

(** Stop accepting, drop every follower, join the domain.  The
    shipping hook stays chained but becomes a no-op.  Idempotent. *)
val stop : t -> unit
