(** Slow-operation log.

    Per-verb latency deadlines: every served operation is offered to
    the log, and the ones that blow their verb's deadline are rendered
    as one structured JSON line each (machine-parseable forensics:
    wall-clock stamp, verb, duration vs deadline, client span id,
    request id, the replica version that served the op, the serving
    domain, and the pager hit/miss delta over the op — enough to tell
    "cold cache" from "slow disk" from "replica lag" after the fact).

    A [t] is safe to share across serving domains: the deadline table
    is immutable and the sink is called under no lock (hand it one
    that serializes, e.g. a mutex-guarded [output_string]). *)

type record = {
  sr_wall_us : int64;  (** wall clock when the op completed, µs *)
  sr_verb : string;
  sr_dur_s : float;
  sr_deadline_s : float;  (** the deadline it was judged against *)
  sr_span : int;  (** client trace span id (0 = none) *)
  sr_req : int;  (** request id from the envelope *)
  sr_version : int;  (** snapshot/commit version serving the op *)
  sr_domain : string;  (** serving domain label *)
  sr_pager_hits : int;  (** buffer-pool hits during the op *)
  sr_pager_misses : int;  (** buffer-pool misses during the op *)
}

(** Deterministic single-line JSON (stable key order, no trailing
    newline). *)
val to_json : record -> string

type t

(** [create ~deadline_s ?per_verb ~sink ()] — [deadline_s] is the
    default per-op deadline; [per_verb] overrides it for named verbs.
    [sink] receives one JSON line (no newline) per slow op. *)
val create :
  deadline_s:float -> ?per_verb:(string * float) list -> sink:(string -> unit) -> unit -> t

(** The deadline that applies to [verb]. *)
val deadline_for : t -> string -> float

(** [observe t record] — if [record.sr_dur_s] meets or exceeds the
    verb's deadline, stamp the deadline into the record, sink its JSON
    line and return [true]. *)
val observe : t -> record -> bool

(** Slow ops logged so far. *)
val logged : t -> int
