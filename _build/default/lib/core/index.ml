type t = {
  db : Db.t;
  tn : string;
  indexed_attr : string;
  buckets : (Value.t, (int, unit) Hashtbl.t) Hashtbl.t;
  current : (int, Value.t) Hashtbl.t;  (* id -> value it is bucketed under *)
  stale : (int, unit) Hashtbl.t;
}

let type_name t = t.tn
let attr t = t.indexed_attr

let bucket t v =
  match Hashtbl.find_opt t.buckets v with
  | Some b -> b
  | None ->
    let b = Hashtbl.create 4 in
    Hashtbl.add t.buckets v b;
    b

let remove_from_bucket t id =
  match Hashtbl.find_opt t.current id with
  | None -> ()
  | Some old ->
    (match Hashtbl.find_opt t.buckets old with
    | Some b ->
      Hashtbl.remove b id;
      if Hashtbl.length b = 0 then Hashtbl.remove t.buckets old
    | None -> ());
    Hashtbl.remove t.current id

let place t id v =
  remove_from_bucket t id;
  Hashtbl.replace (bucket t v) id ();
  Hashtbl.replace t.current id v

let is_member t id =
  match Store.get_opt (Db.store t.db) id with
  | Some inst -> String.equal inst.Instance.type_name t.tn
  | None -> false

let create db ~type_name:tn ~attr:indexed_attr =
  (* Validates existence. *)
  ignore (Schema.attr (Db.schema db) ~type_name:tn indexed_attr);
  let t =
    {
      db;
      tn;
      indexed_attr;
      buckets = Hashtbl.create 32;
      current = Hashtbl.create 64;
      stale = Hashtbl.create 16;
    }
  in
  let store = Db.store db in
  Store.subscribe_write store (fun id a v ->
      if String.equal a indexed_attr && is_member t id then begin
        Hashtbl.remove t.stale id;
        place t id v
      end);
  Store.subscribe_mark store (fun id a ->
      if String.equal a indexed_attr && is_member t id then Hashtbl.replace t.stale id ());
  Store.subscribe_create store (fun id ->
      if is_member t id then Hashtbl.replace t.stale id ());
  Store.subscribe_delete store (fun id ->
      if is_member t id then begin
        remove_from_bucket t id;
        Hashtbl.remove t.stale id
      end);
  (* Populate from existing instances. *)
  List.iter (fun id -> Hashtbl.replace t.stale id ()) (Db.instances_of_type db tn);
  t

(* Force the indexed attribute of every stale instance; the resulting
   write notifications re-bucket them. *)
let refresh t =
  let pending = Hashtbl.fold (fun id () acc -> id :: acc) t.stale [] in
  List.iter
    (fun id ->
      Hashtbl.remove t.stale id;
      if is_member t id then begin
        let v = Db.get t.db ~watch:false id t.indexed_attr in
        (* Intrinsic reads produce no write notification; bucket
           explicitly (idempotent for derived reads). *)
        place t id v
      end)
    pending

let lookup t v =
  refresh t;
  match Hashtbl.find_opt t.buckets v with
  | None -> []
  | Some b -> Hashtbl.fold (fun id () acc -> id :: acc) b [] |> List.sort compare

let distinct_values t =
  refresh t;
  Hashtbl.fold (fun v _ acc -> v :: acc) t.buckets [] |> List.sort Value.compare

let stale_count t = Hashtbl.length t.stale
