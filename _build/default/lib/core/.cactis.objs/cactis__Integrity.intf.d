lib/core/integrity.mli: Db
