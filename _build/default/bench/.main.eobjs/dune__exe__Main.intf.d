bench/main.mli:
