lib/core/txn.ml: Format List Value
