(** Blocking TCP client for {!Server}.

    One outstanding request per client; the request id in the envelope
    is still checked against the response, so a desynchronized stream
    is detected rather than mis-attributed.

    The client remembers the version of its own last commit and sends
    it as the default [min_version] on reads and traversals — {e
    read-your-writes by default}.  Pass [~min_version:0] to accept any
    snapshot (the fastest option under load). *)

type t

(** A typed error response from the server. *)
exception Remote of { code : Proto.error_code; message : string }

(** The stream broke or a response did not match its request. *)
exception Transport of string

(** [connect ~port ()] dials loopback (or [host]). *)
val connect : ?host:string -> port:int -> unit -> t

val close : t -> unit

(** Raw request/response (tests and tools).  [span] propagates a trace
    span id to the server. *)
val request : ?span:int -> t -> Proto.req -> Proto.resp

val ping : t -> unit

type session_info = { version : int; readers : int; instances : int }

val open_session : t -> session_info

(** [read t ~instance ~attr] — the attribute value and the snapshot
    version that served it. *)
val read :
  ?span:int -> ?min_version:int -> t -> instance:int -> attr:string -> Cactis.Value.t * int

(** [traverse t ~root ~rel ~attr] — (visited count, aggregate value,
    serving version).  [depth] bounds the descent in hops (default
    unbounded). *)
val traverse :
  ?span:int ->
  ?min_version:int ->
  ?depth:int ->
  t ->
  root:int ->
  rel:string ->
  attr:string ->
  int * Cactis.Value.t * int

(** [commit t updates] — (committed version, created instance ids).
    Updates the client's read-your-writes watermark. *)
val commit : ?span:int -> t -> Proto.update list -> int * int list

(** Version of this client's last commit (0 before any). *)
val last_commit : t -> int

val stats : t -> (string * int) list * Proto.latency list

(** The server's OpenMetrics text exposition (same body the HTTP
    [GET /metrics] endpoint serves). *)
val metrics : t -> string
