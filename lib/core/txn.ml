type schema_change =
  | Schema_add_type of { type_name : string }
  | Schema_add_rel of { type_name : string; rel : Schema.rel_def }
  | Schema_add_export of { type_name : string; rel : string; export : string; attr : string }
  | Schema_add_attr of { type_name : string; def : Schema.attr_def; repr : string option }
  | Schema_add_subtype of {
      def : Schema.subtype_def;
      predicate_repr : string option;
      attr_reprs : string option list;
    }

type op =
  | Set_intrinsic of { id : int; attr : string; old_value : Value.t; new_value : Value.t }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }
  | Create of { id : int; type_name : string }
  | Delete of { id : int; type_name : string; intrinsics : (string * Value.t) list }
  | Schema of { change : schema_change; retract : bool }

type delta = {
  ops : op list;
  label : string option;
}

let inverse_op = function
  | Set_intrinsic { id; attr; old_value; new_value } ->
    Set_intrinsic { id; attr; old_value = new_value; new_value = old_value }
  | Link { from_id; rel; to_id } -> Unlink { from_id; rel; to_id }
  | Unlink { from_id; rel; to_id } -> Link { from_id; rel; to_id }
  | Create { id; type_name } -> Delete { id; type_name; intrinsics = [] }
  | Delete { id; type_name; intrinsics = _ } ->
    (* The inverse of deletion is re-creation; intrinsic values are
       restored by the surrounding replay (see Db.apply_inverse), which
       has access to the recorded snapshot. *)
    Create { id; type_name }
  | Schema { change; retract } -> Schema { change; retract = not retract }

let inverse d = { ops = List.rev_map inverse_op d.ops; label = d.label }

let size d = List.length d.ops

let is_schema_op = function Schema _ -> true | _ -> false

let pp_schema_change fmt = function
  | Schema_add_type { type_name } -> Format.fprintf fmt "type %s" type_name
  | Schema_add_rel { type_name; rel } ->
    Format.fprintf fmt "rel %s.%s -> %s" type_name rel.Schema.rel_name rel.Schema.target
  | Schema_add_export { type_name; rel; export; attr } ->
    Format.fprintf fmt "transmit %s.%s.%s = %s" type_name rel export attr
  | Schema_add_attr { type_name; def; _ } ->
    Format.fprintf fmt "%s %s.%s"
      (match def.Schema.kind with Schema.Intrinsic _ -> "attr" | Schema.Derived _ -> "rule")
      type_name def.Schema.attr_name
  | Schema_add_subtype { def; _ } ->
    Format.fprintf fmt "subtype %s of %s" def.Schema.sub_name def.Schema.parent

let pp_op fmt = function
  | Set_intrinsic { id; attr; old_value; new_value } ->
    Format.fprintf fmt "set %d.%s: %a -> %a" id attr Value.pp old_value Value.pp new_value
  | Link { from_id; rel; to_id } -> Format.fprintf fmt "link %d -[%s]-> %d" from_id rel to_id
  | Unlink { from_id; rel; to_id } -> Format.fprintf fmt "unlink %d -[%s]-> %d" from_id rel to_id
  | Create { id; type_name } -> Format.fprintf fmt "create %d : %s" id type_name
  | Delete { id; type_name; intrinsics } ->
    Format.fprintf fmt "delete %d : %s (%d intrinsics)" id type_name (List.length intrinsics)
  | Schema { change; retract } ->
    Format.fprintf fmt "schema %s %a" (if retract then "retract" else "add") pp_schema_change change

let pp fmt d =
  Format.fprintf fmt "@[<v>delta%s (%d ops):@,%a@]"
    (match d.label with Some l -> " " ^ l | None -> "")
    (size d)
    (Format.pp_print_list pp_op)
    d.ops
