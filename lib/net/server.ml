module Db = Cactis.Db
module Schema = Cactis.Schema
module Snapshot = Cactis.Snapshot
module Codec = Cactis.Codec
module Value = Cactis.Value
module Engine = Cactis.Engine
module Store = Cactis.Store
module Counters = Cactis_util.Counters
module Histogram = Cactis_obs.Histogram
module Trace = Cactis_obs.Trace
module Flight = Cactis_obs.Flight
module Metrics = Cactis_obs.Metrics
module Slowlog = Cactis_obs.Slowlog
module Watchdog = Cactis_obs.Watchdog
module Pager = Cactis_storage.Pager
module Buffer_pool = Cactis_storage.Buffer_pool
module Partition = Cactis_dist.Partition

type config = {
  cfg_port : int;
  cfg_readers : int;
  cfg_trace_sample : int;
  cfg_backlog : int;
  cfg_metrics_port : int option;  (* plain-HTTP GET /metrics listener (0 = ephemeral) *)
  cfg_slow_ms : float;  (* slow-op deadline; <= 0 disables the slowlog *)
  cfg_slowlog_sink : (string -> unit) option;  (* default: one line to stderr *)
  cfg_watchdog : Watchdog.config option;
  cfg_flight_dir : string option;  (* where crash/watchdog flight dumps land *)
  cfg_read_only : bool;  (* replica mode: refuse client commits *)
}

let config ?(port = 0) ?(readers = 1) ?(trace_sample = 64) ?(backlog = 64) ?metrics_port
    ?(slow_ms = 100.0) ?slowlog_sink ?watchdog ?flight_dir ?(read_only = false) () =
  if readers < 1 then invalid_arg "Server.config: readers must be >= 1";
  {
    cfg_port = port;
    cfg_readers = readers;
    cfg_trace_sample = trace_sample;
    cfg_backlog = backlog;
    cfg_metrics_port = metrics_port;
    cfg_slow_ms = slow_ms;
    cfg_slowlog_sink = slowlog_sink;
    cfg_watchdog = watchdog;
    cfg_flight_dir = flight_dir;
    cfg_read_only = read_only;
  }

(* A connection is read only by the front end; responses are written by
   whichever domain served the request, serialized per connection by
   [out_mu] so frames never interleave. *)
type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  out_mu : Mutex.t;
  mutable alive : bool;
}

type job = {
  j_conn : conn;
  j_env : Proto.envelope;
  j_req : Proto.req;
  j_start_ns : int64;
}

(* A replicated record handed to the writer domain from outside the
   client protocol (the WAL-shipping follower).  The injecting thread
   blocks on [f_state] so it observes the published version — and any
   replay failure — synchronously. *)
type feed = {
  f_record : string;  (* encoded delta, as shipped / as logged *)
  f_mu : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : (int, exn) result option;
}

type msg =
  | Apply of int * string  (* version, encoded delta *)
  | Serve of job
  | Feed of feed
  | Quit

type queue = {
  qmu : Mutex.t;
  qcond : Condition.t;
  qitems : msg Queue.t;
}

let queue () = { qmu = Mutex.create (); qcond = Condition.create (); qitems = Queue.create () }

let push q m =
  Mutex.lock q.qmu;
  Queue.push m q.qitems;
  Condition.signal q.qcond;
  Mutex.unlock q.qmu

let pop q =
  Mutex.lock q.qmu;
  while Queue.is_empty q.qitems do
    Condition.wait q.qcond q.qmu
  done;
  let m = Queue.pop q.qitems in
  Mutex.unlock q.qmu;
  m

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  bound_metrics_port : int option;
  stop_flag : bool Atomic.t;
  published : int Atomic.t;
  writer_q : queue;
  reader_qs : queue array;
  partition : Partition.t;
  ctrs : Counters.t;
  lats : Histogram.t;
  tracer : Trace.t;
  db_counters : Counters.t;
  db_hists : Histogram.t;
  slowlog : Slowlog.t option;
  mutable watchdog : Watchdog.t option;
  names_mu : Mutex.t;
  mutable domain_names : (int * string) list;  (* domain id -> server role *)
  mutable domains : unit Domain.t list;
}

let port t = t.bound_port
let metrics_port t = t.bound_metrics_port
let readers t = Array.length t.reader_qs
let published_version t = Atomic.get t.published
let counters t = t.ctrs
let latencies t = t.lats
let trace t = t.tracer
let slowlog t = t.slowlog
let watchdog t = t.watchdog

let elapsed_s start_ns = Int64.to_float (Int64.sub (Trace.now_ns ()) start_ns) *. 1e-9

let domain_label t =
  let did = (Domain.self () :> int) in
  Mutex.lock t.names_mu;
  let name = List.assoc_opt did t.domain_names in
  Mutex.unlock t.names_mu;
  match name with Some n -> n | None -> Printf.sprintf "domain-%d" did

(* Reply on the job's connection.  A dead peer only kills that
   connection, never the serving domain.  [version] is the snapshot /
   commit version that served the op and [pager] the (hits, misses)
   the op cost — both feed the slow-op log. *)
let send_resp ?(version = 0) ?(pager = (0, 0)) t conn env resp ~verb ~start_ns =
  let payload = Proto.encode_resp env resp in
  (* Record the latency before the bytes leave: once a client holds the
     response, a Stats request is guaranteed to see this observation. *)
  let dur = elapsed_s start_ns in
  Histogram.observe (Histogram.cell t.lats ("serve." ^ verb)) dur;
  Flight.record_s Flight.Net_verb ~a:(int_of_float (dur *. 1e6)) ~b:env.Proto.req_id verb;
  (match t.slowlog with
  | Some sl when dur >= Slowlog.deadline_for sl verb ->
    let hits, misses = pager in
    Counters.incr t.ctrs "server.slow_ops";
    ignore
      (Slowlog.observe sl
         {
           Slowlog.sr_wall_us = Int64.of_float (Unix.gettimeofday () *. 1e6);
           sr_verb = verb;
           sr_dur_s = dur;
           sr_deadline_s = 0.0;  (* stamped by observe *)
           sr_span = env.Proto.span_id;
           sr_req = env.Proto.req_id;
           sr_version = version;
           sr_domain = domain_label t;
           sr_pager_hits = hits;
           sr_pager_misses = misses;
         })
  | _ -> ());
  Mutex.lock conn.out_mu;
  (try if conn.alive then Frame.send conn.fd payload
   with _ -> conn.alive <- false);
  Mutex.unlock conn.out_mu;
  match resp with
  | Proto.Error { code; _ } ->
    Flight.record_s Flight.Net_error ~a:env.Proto.req_id ~b:0 (Proto.error_code_name code);
    Counters.incr t.ctrs ("server.error." ^ Proto.error_code_name code)
  | _ -> ()

let pool_stats db =
  let pool = Pager.pool (Store.pager (Db.store db)) in
  (Buffer_pool.hits pool, Buffer_pool.misses pool)

(* ---- Writer domain ---- *)

let apply_update db created = function
  | Proto.Set { instance; attr; value } -> Db.set db instance attr value
  | Proto.Create { type_name } -> created := Db.create_instance db type_name :: !created
  | Proto.Link { from_id; rel; to_id } -> Db.link db ~from_id ~rel ~to_id
  | Proto.Unlink { from_id; rel; to_id } -> Db.unlink db ~from_id ~rel ~to_id

let writer_serve t db { j_conn; j_env; j_req; j_start_ns } =
  match j_req with
  | Proto.Commit updates ->
    let h0, m0 = pool_stats db in
    let resp =
      try
        let created = ref [] in
        Db.with_txn db (fun () -> List.iter (apply_update db created) updates);
        let version = Atomic.get t.published in
        (* Sampled tracing: one commit in [trace_sample] records a span
           carrying the client's span id, so traces stitch across the
           wire. *)
        if t.cfg.cfg_trace_sample > 0 && version mod t.cfg.cfg_trace_sample = 0 then
          Trace.complete t.tracer ~cat:"server"
            ~args:[ ("span_id", Trace.I j_env.Proto.span_id); ("version", Trace.I version) ]
            ~start_ns:j_start_ns "commit";
        Proto.Committed { version; created = List.rev !created }
      with e -> Proto.error_of_exn e
    in
    let h1, m1 = pool_stats db in
    send_resp t j_conn j_env resp ~verb:"commit" ~start_ns:j_start_ns
      ~version:(Atomic.get t.published)
      ~pager:(h1 - h0, m1 - m0)
  | Proto.Open_session ->
    let resp =
      Proto.Opened
        {
          version = Atomic.get t.published;
          readers = Array.length t.reader_qs;
          instances = List.length (Db.instance_ids db);
        }
    in
    send_resp t j_conn j_env resp ~verb:"open" ~start_ns:j_start_ns
  | req ->
    send_resp t j_conn j_env
      (Proto.Error
         { code = Proto.E_server; message = "writer cannot serve " ^ Proto.verb_name req })
      ~verb:(Proto.verb_name req) ~start_ns:j_start_ns

let writer_loop t db =
  (* Chain the delta broadcast after whatever durability hook (the WAL)
     is already installed; runs on this domain, during commit, so the
     broadcast always precedes the client's Committed response — which
     is what makes a subsequent min_version read safe to route. *)
  let prior = Db.commit_hook db in
  Db.set_commit_hook db
    (Some
       (fun delta ->
         (match prior with Some f -> f delta | None -> ());
         let v = Atomic.get t.published + 1 in
         let encoded = Codec.encode_delta delta in
         Array.iter (fun q -> push q (Apply (v, encoded))) t.reader_qs;
         Atomic.set t.published v));
  let rec loop () =
    match pop t.writer_q with
    | Quit -> ()
    | Apply _ -> loop ()
    | Serve job ->
      writer_serve t db job;
      loop ()
    | Feed f ->
      (* Replicated records bypass the commit hook by construction
         ([replay_delta] never re-logs), so the reader broadcast that
         normally rides the hook happens explicitly here. *)
      let result =
        try
          Db.replay_delta db (Codec.decode_delta f.f_record);
          Engine.propagate (Db.engine db);
          let v = Atomic.get t.published + 1 in
          Array.iter (fun q -> push q (Apply (v, f.f_record))) t.reader_qs;
          Atomic.set t.published v;
          Counters.incr t.ctrs "server.repl_applied";
          Ok v
        with e -> Error e
      in
      Mutex.lock f.f_mu;
      f.f_state <- Some result;
      Condition.signal f.f_cond;
      Mutex.unlock f.f_mu;
      loop ()
  in
  loop ()

(* ---- Reader domains ---- *)

(* Depth-limited reachability: a node is visited at the shallowest
   depth it is seen at, so [depth] bounds hops from the root ([< 0] =
   unbounded). *)
let traverse db ~root ~rel ~attr ~depth =
  let seen = Hashtbl.create 64 in
  let values = ref [] in
  let frontier = ref [ root ] in
  let d = ref 0 in
  while !frontier <> [] && (depth < 0 || !d <= depth) do
    let next = ref [] in
    List.iter
      (fun id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          values := Db.get db id attr :: !values;
          next := List.rev_append (Db.related db id rel) !next
        end)
      !frontier;
    frontier := !next;
    incr d
  done;
  (Hashtbl.length seen, Value.sum !values)

let reader_serve t replica ~applied { j_conn; j_env; j_req; j_start_ns } =
  let h0, m0 = pool_stats replica in
  let resp =
    try
      match j_req with
      | Proto.Read { instance; attr; _ } ->
        Proto.Value { version = applied; value = Db.get replica instance attr }
      | Proto.Traverse { root; rel; attr; depth; _ } ->
        let visited, total = traverse replica ~root ~rel ~attr ~depth in
        Proto.Traversed { version = applied; visited; total }
      | req ->
        Proto.Error
          { code = Proto.E_server; message = "reader cannot serve " ^ Proto.verb_name req }
    with e -> Proto.error_of_exn e
  in
  let h1, m1 = pool_stats replica in
  send_resp t j_conn j_env resp ~verb:(Proto.verb_name j_req) ~start_ns:j_start_ns
    ~version:applied
    ~pager:(h1 - h0, m1 - m0)

let job_min_version job =
  match job.j_req with
  | Proto.Read { min_version; _ } | Proto.Traverse { min_version; _ } -> min_version
  | _ -> 0

let reader_loop t master_snapshot make_schema =
  let replica = Snapshot.load_binary (make_schema ()) master_snapshot in
  let applied = ref 0 in
  (* The broadcast happens during commit, strictly before the Committed
     response, so a read naming version v always queues behind Apply v.
     [deferred] is a safety net, not the expected path. *)
  let deferred = ref [] in
  let flush_deferred q_self =
    let ready, still = List.partition (fun j -> job_min_version j <= !applied) !deferred in
    deferred := still;
    List.iter (fun j -> reader_serve t replica ~applied:!applied j) ready;
    ignore q_self
  in
  let rec loop q =
    match pop q with
    | Quit -> ()
    | Apply (v, delta) ->
      Db.replay_delta replica (Codec.decode_delta delta);
      Engine.propagate (Db.engine replica);
      applied := v;
      flush_deferred q;
      loop q
    | Serve job ->
      if job_min_version job <= !applied then reader_serve t replica ~applied:!applied job
      else deferred := job :: !deferred;
      loop q
    | Feed _ -> loop q  (* writer-queue only *)
  in
  loop

(* ---- Front end ---- *)

(* Closing takes the same mutex responses are written under, so a
   worker mid-reply either finishes its frame first or sees [alive =
   false] — the fd is never closed (and possibly reused) under a
   concurrent write. *)
let kill_conn conn =
  Mutex.lock conn.out_mu;
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with _ -> ())
  end;
  Mutex.unlock conn.out_mu

let close_conn conns conn =
  kill_conn conn;
  Hashtbl.remove conns conn.fd

let stats_reply t =
  let server = Counters.snapshot t.ctrs in
  let db = List.map (fun (n, v) -> ("db." ^ n, v)) (Counters.snapshot t.db_counters) in
  let latencies =
    List.map
      (fun st ->
        {
          Proto.l_name = st.Histogram.st_name;
          l_count = st.Histogram.st_count;
          l_mean = st.Histogram.st_mean;
          l_p50 = st.Histogram.st_p50;
          l_p95 = st.Histogram.st_p95;
          l_p99 = st.Histogram.st_p99;
          l_max = st.Histogram.st_max;
        })
      (Histogram.snapshot t.lats)
  in
  Proto.Stats_reply { counters = server @ db; latencies }

(* The OpenMetrics exposition: server counters/latencies merged with
   the writer db's — the same numbers Stats reports, rendered for a
   Prometheus scraper.  Served both as the Metrics proto verb and over
   plain HTTP on the metrics port. *)
let metrics_body t =
  let counters =
    Counters.snapshot t.ctrs
    @ List.map (fun (n, v) -> ("db." ^ n, v)) (Counters.snapshot t.db_counters)
  in
  let hists =
    Histogram.merged_cells t.lats
    @ List.map (fun (n, h) -> ("db." ^ n, h)) (Histogram.merged_cells t.db_hists)
  in
  Metrics.render ~counters ~hists

let route t id = Partition.site_of_range t.partition id

let dispatch t conn payload =
  let start_ns = Trace.now_ns () in
  match Proto.decode_req payload with
  | exception Proto.Malformed m ->
    send_resp t conn { Proto.req_id = 0; span_id = 0 }
      (Proto.Error { code = Proto.E_protocol; message = m })
      ~verb:"protocol" ~start_ns
  | env, req -> (
    Counters.incr t.ctrs ("server.req." ^ Proto.verb_name req);
    let job = { j_conn = conn; j_env = env; j_req = req; j_start_ns = start_ns } in
    let check_version min_version k =
      if min_version > Atomic.get t.published then
        send_resp t conn env
          (Proto.Error
             {
               code = Proto.E_protocol;
               message =
                 Printf.sprintf "min_version %d not yet committed (latest %d)" min_version
                   (Atomic.get t.published);
             })
          ~verb:(Proto.verb_name req) ~start_ns
      else k ()
    in
    match req with
    | Proto.Ping -> send_resp t conn env Proto.Pong ~verb:"ping" ~start_ns
    | Proto.Stats -> send_resp t conn env (stats_reply t) ~verb:"stats" ~start_ns
    | Proto.Metrics ->
      send_resp t conn env (Proto.Metrics_reply (metrics_body t)) ~verb:"metrics" ~start_ns
    | Proto.Commit _ when t.cfg.cfg_read_only ->
      Counters.incr t.ctrs "server.read_only_rejects";
      send_resp t conn env
        (Proto.Error
           { code = Proto.E_protocol; message = "read-only replica: commits go to the writer" })
        ~verb:"commit" ~start_ns
    | Proto.Open_session | Proto.Commit _ -> push t.writer_q (Serve job)
    | Proto.Read { min_version; instance; _ } ->
      check_version min_version (fun () ->
          push t.reader_qs.(route t instance) (Serve job))
    | Proto.Traverse { min_version; root; _ } ->
      check_version min_version (fun () -> push t.reader_qs.(route t root) (Serve job)))

(* One-shot plain-HTTP scrape endpoint: accept, answer [GET /metrics]
   (anything else gets 404), close.  Blocking is fine — the body is
   built from in-memory snapshots and the peer is a scraper on
   loopback; a stalled scraper delays the front end at most one
   request, never the serving domains. *)
let handle_metrics_conn t mfd =
  match Unix.accept ~cloexec:true mfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception _ -> ()
  | client_fd, _ ->
    Counters.incr t.ctrs "server.metrics_scrapes";
    (try
       let buf = Bytes.create 4096 in
       let n = Unix.read client_fd buf 0 (Bytes.length buf) in
       let req = Bytes.sub_string buf 0 (max n 0) in
       let line = match String.index_opt req '\r' with
         | Some i -> String.sub req 0 i
         | None -> (match String.index_opt req '\n' with
           | Some i -> String.sub req 0 i
           | None -> req)
       in
       let response =
         if line = "GET /metrics HTTP/1.1" || line = "GET /metrics HTTP/1.0" then
           let body = metrics_body t in
           Printf.sprintf
             "HTTP/1.0 200 OK\r\n\
              Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
              Content-Length: %d\r\n\r\n%s"
             (String.length body) body
         else "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
       in
       let rec write_all off len =
         if len > 0 then begin
           let w = Unix.write_substring client_fd response off len in
           write_all (off + w) (len - w)
         end
       in
       write_all 0 (String.length response)
     with _ -> ());
    (try Unix.close client_fd with _ -> ())

let frontend_loop t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let buf = Bytes.create 65536 in
  let handle_readable conn =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn conns conn
    | n -> (
      Frame.feed conn.dec (Bytes.sub_string buf 0 n);
      try
        let rec drain () =
          match Frame.next conn.dec with
          | Some payload ->
            dispatch t conn payload;
            drain ()
          | None -> ()
        in
        drain ()
      with Frame.Too_large len ->
        send_resp t conn { Proto.req_id = 0; span_id = 0 }
          (Proto.Error
             {
               code = Proto.E_protocol;
               message = Printf.sprintf "frame length %d exceeds %d" len Frame.max_payload;
             })
          ~verb:"protocol" ~start_ns:(Trace.now_ns ());
        close_conn conns conn)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception _ -> close_conn conns conn
  in
  let base_fds =
    match t.metrics_fd with Some m -> [ t.listen_fd; m ] | None -> [ t.listen_fd ]
  in
  while not (Atomic.get t.stop_flag) do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns base_fds in
    (match Unix.select fds [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.listen_fd then begin
            match Unix.accept ~cloexec:true t.listen_fd with
            | client_fd, _ ->
              Unix.set_nonblock client_fd;
              Counters.incr t.ctrs "server.connections";
              Hashtbl.replace conns client_fd
                {
                  fd = client_fd;
                  dec = Frame.decoder ();
                  out_mu = Mutex.create ();
                  alive = true;
                };
              Flight.record Flight.Net_accept ~a:(Hashtbl.length conns) ~b:0
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              -> ()
            | exception _ -> ()
          end
          else if Some fd = t.metrics_fd then handle_metrics_conn t fd
          else
            match Hashtbl.find_opt conns fd with
            | Some conn -> handle_readable conn
            | None -> ())
        readable);
    (* The watchdog rides the front end's idle heartbeat: at most one
       histogram diff per interval, on a domain that never serves
       queries. *)
    match t.watchdog with Some wd -> Watchdog.tick wd | None -> ()
  done;
  Hashtbl.iter (fun _ conn -> kill_conn conn) conns

(* ---- Lifecycle ---- *)

(* Where crash/watchdog flight dumps land; stderr-only when no dir was
   configured. *)
let flight_dump t reason =
  match t.cfg.cfg_flight_dir with
  | None -> None
  | Some dir -> (
    try Some (Flight.dump_to_file ~dir ~reason)
    with e ->
      (* A failed dump must not take the server down with it, but it
         must not vanish either. *)
      Printf.eprintf "cactis: flight dump to %s failed: %s\n%!" dir (Printexc.to_string e);
      None)

(* Every server domain runs under this wrapper: names the domain for
   flight dumps / trace export / slowlog attribution, and turns an
   uncaught exception into a post-mortem flight dump instead of a
   silent [Domain.join] surprise. *)
let run_domain t name f =
  Mutex.lock t.names_mu;
  t.domain_names <- ((Domain.self () :> int), name) :: t.domain_names;
  Mutex.unlock t.names_mu;
  Flight.name_domain name;
  Trace.name_thread t.tracer name;
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Counters.incr t.ctrs "server.domain_crashes";
    Flight.record_s Flight.Note ~a:0 ~b:0 ("crash: " ^ Printexc.to_string e);
    let dumped = flight_dump t ("crash-" ^ name) in
    Printf.eprintf "cactis-server: domain %s died: %s%s\n%!" name (Printexc.to_string e)
      (match dumped with Some p -> " (flight dump: " ^ p ^ ")" | None -> "");
    Printexc.raise_with_backtrace e bt

let start ?(config = config ()) ~make_schema db =
  (* A client that disconnects mid-reply must surface as EPIPE on the
     write (handled per connection), not as a process-killing SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let master_snapshot = Snapshot.save_binary db in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.cfg_port));
  Unix.listen listen_fd config.cfg_backlog;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let metrics_fd, bound_metrics_port =
    match config.cfg_metrics_port with
    | None -> (None, None)
    | Some p ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      Unix.listen fd 8;
      Unix.set_nonblock fd;
      let bp =
        match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
      in
      (Some fd, Some bp)
  in
  let tracer = Trace.create () in
  Trace.enable tracer;
  let slowlog =
    if config.cfg_slow_ms <= 0.0 then None
    else
      let sink =
        match config.cfg_slowlog_sink with
        | Some f -> f
        | None ->
          let mu = Mutex.create () in
          fun line ->
            Mutex.lock mu;
            Printf.eprintf "cactis-slowop %s\n%!" line;
            Mutex.unlock mu
      in
      (* Commits do WAL + fsync + broadcast work reads never pay; give
         them 2.5x the read budget rather than flooding the log. *)
      let deadline_s = config.cfg_slow_ms *. 1e-3 in
      Some
        (Slowlog.create ~deadline_s
           ~per_verb:[ ("commit", deadline_s *. 2.5) ]
           ~sink ())
  in
  let t =
    {
      cfg = config;
      listen_fd;
      bound_port;
      metrics_fd;
      bound_metrics_port;
      stop_flag = Atomic.make false;
      published = Atomic.make 0;
      writer_q = queue ();
      reader_qs = Array.init config.cfg_readers (fun _ -> queue ());
      partition = Partition.by_range ~ids:(Db.instance_ids db) ~sites:config.cfg_readers;
      ctrs = Counters.create ();
      lats = Histogram.create ();
      tracer;
      db_counters = Db.counters db;
      db_hists = (Db.obs db).Cactis_obs.Ctx.hists;
      slowlog;
      watchdog = None;
      names_mu = Mutex.create ();
      domain_names = [];
      domains = [];
    }
  in
  (match config.cfg_watchdog with
  | None -> ()
  | Some wd_cfg ->
    let errors () =
      List.fold_left
        (fun acc (name, v) ->
          if String.length name >= 13 && String.sub name 0 13 = "server.error." then acc + v
          else acc)
        0
        (Counters.snapshot t.ctrs)
    in
    let on_trip ~reason ~detail =
      Counters.incr t.ctrs "server.watchdog_trips";
      let dumped = flight_dump t ("watchdog-" ^ reason) in
      Printf.eprintf "cactis-anomaly reason=%s detail=%S%s\n%!" reason detail
        (match dumped with Some p -> " flight=" ^ p | None -> "")
    in
    t.watchdog <- Some (Watchdog.create wd_cfg ~lats:t.lats ~errors ~on_trip));
  let reader_domains =
    Array.to_list
      (Array.mapi
         (fun i q ->
           Domain.spawn (fun () ->
               run_domain t (Printf.sprintf "reader-%d" i) (fun () ->
                   reader_loop t master_snapshot make_schema q)))
         t.reader_qs)
  in
  let writer_domain =
    Domain.spawn (fun () -> run_domain t "writer" (fun () -> writer_loop t db))
  in
  let frontend_domain =
    Domain.spawn (fun () -> run_domain t "frontend" (fun () -> frontend_loop t))
  in
  t.domains <- (frontend_domain :: writer_domain :: reader_domains);
  t

let inject t record =
  let f =
    { f_record = record; f_mu = Mutex.create (); f_cond = Condition.create (); f_state = None }
  in
  push t.writer_q (Feed f);
  Mutex.lock f.f_mu;
  while f.f_state = None do
    Condition.wait f.f_cond f.f_mu
  done;
  Mutex.unlock f.f_mu;
  match f.f_state with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let dump_flight t ~reason = flight_dump t reason

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    push t.writer_q Quit;
    Array.iter (fun q -> push q Quit) t.reader_qs;
    List.iter Domain.join t.domains;
    (try Unix.close t.listen_fd with _ -> ());
    match t.metrics_fd with
    | Some fd -> ( try Unix.close fd with _ -> ())
    | None -> ()
  end
