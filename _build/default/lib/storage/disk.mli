(** Simulated block device.

    The paper's Cactis is "a mass storage database, not an in-memory
    system"; its performance arguments in Section 2.3 are about the
    *number of disk accesses* induced by traversal order and clustering.
    We therefore model the disk purely as an accounting device: reading a
    block that is not buffered costs one logical read.  No bytes are
    actually stored — instance data lives in the heap — which preserves
    exactly the metric the paper reasons about. *)

type t

val create : unit -> t

(** Record one block read / one block write. *)
val read : t -> unit

val write : t -> unit

val reads : t -> int
val writes : t -> int

(** Total accesses (reads + writes). *)
val accesses : t -> int

val reset : t -> unit
val pp : Format.formatter -> t -> unit
