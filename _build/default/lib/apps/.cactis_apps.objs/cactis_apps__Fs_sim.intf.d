lib/apps/fs_sim.mli: Cactis_util
