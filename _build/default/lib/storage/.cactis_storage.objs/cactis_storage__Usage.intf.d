lib/storage/usage.mli:
