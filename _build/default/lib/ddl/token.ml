(** Tokens of the Cactis data-definition language.

    The surface syntax follows the paper's Figure 1/2 class listings,
    regularized: [object class … is … end object], sections for
    relationships / attributes / rules / constraints, and an expression
    language for attribute evaluation rules. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | KW_OBJECT
  | KW_CLASS
  | KW_IS
  | KW_END
  | KW_RELATIONSHIPS
  | KW_ATTRIBUTES
  | KW_RULES
  | KW_CONSTRAINTS
  | KW_TRANSMITS
  | KW_ONE
  | KW_MULTI
  | KW_PLUG
  | KW_SOCKET
  | KW_INVERSE
  | KW_SUBTYPE
  | KW_OF
  | KW_WHERE
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_DEFAULT
  | KW_MESSAGE
  | KW_RECOVERY
  (* punctuation / operators *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ASSIGN  (** [:=] *)
  | EQ
  | NEQ  (** [<>] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

let keywords =
  [
    ("object", KW_OBJECT);
    ("class", KW_CLASS);
    ("is", KW_IS);
    ("end", KW_END);
    ("relationships", KW_RELATIONSHIPS);
    ("attributes", KW_ATTRIBUTES);
    ("rules", KW_RULES);
    ("constraints", KW_CONSTRAINTS);
    ("transmits", KW_TRANSMITS);
    ("one", KW_ONE);
    ("multi", KW_MULTI);
    ("plug", KW_PLUG);
    ("socket", KW_SOCKET);
    ("inverse", KW_INVERSE);
    ("subtype", KW_SUBTYPE);
    ("of", KW_OF);
    ("where", KW_WHERE);
    ("if", KW_IF);
    ("then", KW_THEN);
    ("else", KW_ELSE);
    ("and", KW_AND);
    ("or", KW_OR);
    ("not", KW_NOT);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("null", KW_NULL);
    ("default", KW_DEFAULT);
    ("message", KW_MESSAGE);
    ("recovery", KW_RECOVERY);
  ]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | KW_OBJECT -> "'object'"
  | KW_CLASS -> "'class'"
  | KW_IS -> "'is'"
  | KW_END -> "'end'"
  | KW_RELATIONSHIPS -> "'relationships'"
  | KW_ATTRIBUTES -> "'attributes'"
  | KW_RULES -> "'rules'"
  | KW_CONSTRAINTS -> "'constraints'"
  | KW_TRANSMITS -> "'transmits'"
  | KW_ONE -> "'one'"
  | KW_MULTI -> "'multi'"
  | KW_PLUG -> "'plug'"
  | KW_SOCKET -> "'socket'"
  | KW_INVERSE -> "'inverse'"
  | KW_SUBTYPE -> "'subtype'"
  | KW_OF -> "'of'"
  | KW_WHERE -> "'where'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | KW_AND -> "'and'"
  | KW_OR -> "'or'"
  | KW_NOT -> "'not'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_NULL -> "'null'"
  | KW_DEFAULT -> "'default'"
  | KW_MESSAGE -> "'message'"
  | KW_RECOVERY -> "'recovery'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ASSIGN -> "':='"
  | EQ -> "'='"
  | NEQ -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"
