(** Named event counters.

    Every measurable event in the reproduction — rule executions,
    out-of-date marks, disk block reads, buffer hits, transaction aborts —
    increments a counter in one of these registries.  Experiments snapshot
    and diff registries rather than timing wall clocks, because the
    paper's performance claims are stated in terms of counts (attributes
    recomputed, disk accesses incurred).

    Registries are {e domain-safe}: cells are sharded per domain
    ({!cell} returns a cell private to the calling domain, so
    increments are race-free plain [int ref] bumps), and readers
    ({!get}, {!snapshot}, {!pp}) merge the shards by summing per name.
    Totals are exact once the incrementing domains have been joined; a
    snapshot taken {e while} other domains increment sees a consistent
    prefix of each cell (int loads never tear).  Single-domain programs
    see bit-identical values to the historical unsharded registry. *)

type t

val create : unit -> t

(** [incr t name] adds one to [name] (creating it at 0 first). *)
val incr : t -> string -> unit

(** [add t name n] adds [n] to [name]. *)
val add : t -> string -> int -> unit

(** [get t name] is the current value (0 if never touched). *)
val get : t -> string -> int

(** [cell t name] is the counter's underlying cell for the {e calling
    domain} (created at 0 on first use).  Hot paths cache the ref to
    skip the string lookup; [reset] zeroes cells in place, so cached
    refs stay valid.  A cached cell must only be incremented from the
    domain that obtained it (merge-on-read sums all domains' cells). *)
val cell : t -> string -> int ref

(** [reset t] zeroes every counter. *)
val reset : t -> unit

(** [snapshot t] captures the current values, sorted by name. *)
val snapshot : t -> (string * int) list

(** [diff ~before ~after] is the per-counter increase between two
    snapshots, over the union of both name sets: counters absent from
    [before] count from 0, and counters present only in [before] report
    their negative delta.  Sorted by name. *)
val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list

val pp : Format.formatter -> t -> unit
