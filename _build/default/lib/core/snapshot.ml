module Vtime = Cactis_util.Vtime

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Value encoding                                                      *)

(* Floats use %h (hexadecimal) for exact round-trips. *)
let rec value_to_buf buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int n -> Buffer.add_string buf (Printf.sprintf "i:%d" n)
  | Value.Float f -> Buffer.add_string buf (Printf.sprintf "f:%h" f)
  | Value.Str s -> Buffer.add_string buf (Printf.sprintf "s:%S" s)
  | Value.Time t -> Buffer.add_string buf (Printf.sprintf "t:%h" (Vtime.to_days t))
  | Value.Arr a ->
    Buffer.add_string buf "a:[";
    Array.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        value_to_buf buf x)
      a;
    Buffer.add_char buf ']'
  | Value.Rec fields ->
    Buffer.add_string buf "r:{";
    List.iteri
      (fun i (name, x) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf name;
        Buffer.add_char buf '=';
        value_to_buf buf x)
      fields;
    Buffer.add_char buf '}'

let value_to_string v =
  let buf = Buffer.create 32 in
  value_to_buf buf v;
  Buffer.contents buf

(* Cursor-based reader for the same encoding. *)
type cursor = {
  src : string;
  mutable pos : int;
}

let fail_at _c fmt = Format.kasprintf (fun m -> failwith m) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let expect_char c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail_at c "expected %C, found %C" ch x
  | None -> fail_at c "expected %C, found end of input" ch

let take_while c pred =
  let start = c.pos in
  while (match peek c with Some ch -> pred ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  String.sub c.src start (c.pos - start)

let read_quoted_string c =
  (* Scans an OCaml %S-escaped string literal. *)
  expect_char c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail_at c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some c0 when c0 >= '0' && c0 <= '9' ->
        (* \DDD decimal escape *)
        let d = String.sub c.src c.pos 3 in
        c.pos <- c.pos + 2;
        Buffer.add_char buf (Char.chr (int_of_string d))
      | Some c0 -> fail_at c "bad escape \\%c" c0
      | None -> fail_at c "unterminated escape");
      c.pos <- c.pos + 1;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let is_number_char ch =
  (ch >= '0' && ch <= '9')
  || (ch >= 'a' && ch <= 'f')
  || (ch >= 'A' && ch <= 'F')
  || ch = 'x' || ch = 'X' || ch = '.' || ch = '-' || ch = '+' || ch = 'p' || ch = 'P'
  || ch = 'i' || ch = 'n' || ch = 't' || ch = 'y'
(* hex floats (0x1.8p+1), "infinity", "nan" *)

let rec read_value c : Value.t =
  match peek c with
  | Some 'n' when String.length c.src >= c.pos + 4 && String.sub c.src c.pos 4 = "null" ->
    c.pos <- c.pos + 4;
    Value.Null
  | Some 't' when String.length c.src >= c.pos + 4 && String.sub c.src c.pos 4 = "true" ->
    c.pos <- c.pos + 4;
    Value.Bool true
  | Some 'f' when String.length c.src >= c.pos + 5 && String.sub c.src c.pos 5 = "false" ->
    c.pos <- c.pos + 5;
    Value.Bool false
  | Some 'i' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Int (int_of_string (take_while c (fun ch -> ch = '-' || (ch >= '0' && ch <= '9'))))
  | Some 'f' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Float (float_of_string (take_while c is_number_char))
  | Some 't' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Time (Vtime.of_days (float_of_string (take_while c is_number_char)))
  | Some 's' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Str (read_quoted_string c)
  | Some 'a' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    expect_char c '[';
    let items = ref [] in
    if peek c = Some ']' then c.pos <- c.pos + 1
    else begin
      let rec loop () =
        items := read_value c :: !items;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          loop ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> fail_at c "expected ',' or ']' in array"
      in
      loop ()
    end;
    Value.Arr (Array.of_list (List.rev !items))
  | Some 'r' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    expect_char c '{';
    let fields = ref [] in
    if peek c = Some '}' then c.pos <- c.pos + 1
    else begin
      let rec loop () =
        let name = take_while c (fun ch -> ch <> '=' && ch <> ',' && ch <> '}') in
        expect_char c '=';
        fields := (name, read_value c) :: !fields;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          loop ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> fail_at c "expected ',' or '}' in record"
      in
      loop ()
    end;
    Value.Rec (List.rev !fields)
  | Some ch -> fail_at c "unexpected %C in value" ch
  | None -> fail_at c "unexpected end of value"

let value_of_string s =
  let c = { src = s; pos = 0 } in
  let v = read_value c in
  if c.pos <> String.length s then failwith "trailing garbage after value";
  v

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

(* A structural link appears twice (once per direction); it is written
   from the side whose (type, rel) key is smaller — with id order as the
   tiebreak for symmetric self-relationships. *)
let owns_link sch (inst : Instance.t) rel j ~target_type =
  let rd = Schema.rel sch ~type_name:inst.Instance.type_name rel in
  let this_key = (inst.Instance.type_name, rel) in
  let other_key = (target_type, rd.Schema.inverse) in
  if this_key < other_key then true
  else if this_key > other_key then false
  else inst.Instance.id <= j

let save db =
  let sch = Db.schema db in
  let store = Db.store db in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "cactis-snapshot 1\n";
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let tn = inst.Instance.type_name in
      Buffer.add_string buf (Printf.sprintf "instance %d %s\n" id tn);
      List.iter
        (fun (d : Schema.attr_def) ->
          match d.Schema.kind with
          | Schema.Intrinsic _ ->
            let v = (Instance.slot inst d.Schema.attr_name).Instance.value in
            Buffer.add_string buf
              (Printf.sprintf "attr %d %s %s\n" id d.Schema.attr_name (value_to_string v))
          | Schema.Derived _ -> ())
        (Schema.attrs sch ~type_name:tn))
    (Db.instance_ids db);
  (* Links after all instances so loading can wire in one pass. *)
  List.iter
    (fun id ->
      let inst = Store.get store id in
      List.iter
        (fun (rel, ids) ->
          let rd = Schema.rel sch ~type_name:inst.Instance.type_name rel in
          List.iter
            (fun j ->
              if owns_link sch inst rel j ~target_type:rd.Schema.target then
                Buffer.add_string buf (Printf.sprintf "link %d %s %d\n" id rel j))
            ids)
        (Instance.all_links inst))
    (Db.instance_ids db);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let load ?strategy ?sched ?block_capacity ?buffer_capacity schema text =
  let db = Db.create ?strategy ?sched ?block_capacity ?buffer_capacity schema in
  let store = Db.store db in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | header :: _ when String.trim header = "cactis-snapshot 1" -> ()
  | _ -> parse_error 1 "missing 'cactis-snapshot 1' header");
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if lineno = 1 || line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | "instance" :: id :: type_name :: [] -> (
          match int_of_string_opt id with
          | Some id -> ignore (Store.recreate_instance store ~id type_name)
          | None -> parse_error lineno "bad instance id %s" id)
        | "attr" :: id :: attr :: rest -> (
          match int_of_string_opt id with
          | None -> parse_error lineno "bad instance id %s" id
          | Some id ->
            let inst = Store.get store id in
            (match Schema.attr schema ~type_name:inst.Instance.type_name attr with
            | { Schema.kind = Schema.Intrinsic _; _ } -> ()
            | { Schema.kind = Schema.Derived _; _ } ->
              parse_error lineno "attr %s of %d is derived; snapshots store intrinsics only" attr
                id);
            let encoded = String.concat " " rest in
            let v =
              try value_of_string encoded
              with Failure m -> parse_error lineno "bad value %S: %s" encoded m
            in
            Store.write_value store id attr v)
        | "link" :: a :: rel :: b :: [] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> Store.link store ~from_id:a ~rel ~to_id:b
          | _ -> parse_error lineno "bad link ids")
        | cmd :: _ -> parse_error lineno "unknown directive %s" cmd
        | [] -> ())
    lines;
  (* Constraint attributes of loaded instances must hold; register them
     as pending so the first propagation checks them. *)
  List.iter (fun id -> Engine.on_new_instance (Db.engine db) id) (Db.instance_ids db);
  db
