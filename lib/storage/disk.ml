(* Block device: logical access counters plus (optionally) a real
   fixed-size block file.

   The simulated mode is the original accounting stub — reading a block
   that is not buffered costs one logical read, no bytes move — and it
   remains the default so the engine's deterministic experiments keep
   their exact counters.  Real mode backs every block with [block_bytes]
   bytes of an ordinary file: [read_block] seeks and reads the block's
   extent, [write_block] seeks and writes it, [sync] fsyncs.  The
   read/write counters count the same logical events in both modes, so
   the paper's §2.3 metric (number of disk accesses) is identical; real
   mode adds the physical I/O underneath it. *)

type backing = {
  fd : Unix.file_descr;
  path : string;
}

type t = {
  mutable read_count : int;
  mutable write_count : int;
  block_size : int;
  backing : backing option;
  scratch : bytes;  (* read target; one allocation per device *)
}

let default_block_bytes = 4096

let create ?path ?(block_bytes = default_block_bytes) () =
  if block_bytes < 16 then invalid_arg "Disk.create: block_bytes must be >= 16";
  let backing =
    match path with
    | None -> None
    | Some p ->
      let fd = Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Some { fd; path = p }
  in
  {
    read_count = 0;
    write_count = 0;
    block_size = block_bytes;
    backing;
    scratch = Bytes.create block_bytes;
  }

let is_real t = t.backing <> None
let block_bytes t = t.block_size
let path t = match t.backing with Some b -> Some b.path | None -> None

let read t = t.read_count <- t.read_count + 1
let write t = t.write_count <- t.write_count + 1
let reads t = t.read_count
let writes t = t.write_count
let accesses t = t.read_count + t.write_count

(* Positioned I/O: the OCaml Unix module has no pread/pwrite binding, so
   each block access is an explicit seek plus a full-extent read/write
   loop.  The device is driven from one domain, so the file offset is
   not shared state. *)

let really_read fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let really_write fd buf len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd buf !sent (len - !sent)
  done

(* [read_block t block] — one logical read; in real mode also the
   physical read of the block's extent.  A block beyond the current end
   of file (never yet written) reads as zeroes, like a fresh page. *)
let read_block t block =
  t.read_count <- t.read_count + 1;
  match t.backing with
  | None -> t.scratch
  | Some b ->
    ignore (Unix.lseek b.fd (block * t.block_size) Unix.SEEK_SET);
    let got = really_read b.fd t.scratch t.block_size in
    if got < t.block_size then Bytes.fill t.scratch got (t.block_size - got) '\000';
    t.scratch

(* [write_block t block data] — one logical write; in real mode the
   physical write of exactly one block extent.  [data] shorter than the
   block is zero-padded; longer is an error (block images are fixed
   size). *)
let write_block t block data =
  t.write_count <- t.write_count + 1;
  match t.backing with
  | None -> ()
  | Some b ->
    let len = Bytes.length data in
    if len > t.block_size then
      invalid_arg
        (Printf.sprintf "Disk.write_block: %d bytes exceeds block size %d" len t.block_size);
    ignore (Unix.lseek b.fd (block * t.block_size) Unix.SEEK_SET);
    if len = t.block_size then really_write b.fd data t.block_size
    else begin
      Bytes.blit data 0 t.scratch 0 len;
      Bytes.fill t.scratch len (t.block_size - len) '\000';
      really_write b.fd t.scratch t.block_size
    end

(* fsync the block file.  Ordering discipline against the WAL: the log
   is the source of truth and is fsynced by its own writer at commit;
   block images are a rebuildable materialization, synced only at
   re-clustering boundaries (see DESIGN.md §9). *)
let sync t =
  match t.backing with
  | None -> ()
  | Some b -> ( try Unix.fsync b.fd with Unix.Unix_error _ -> ())

let file_size t =
  match t.backing with None -> 0 | Some b -> (Unix.fstat b.fd).Unix.st_size

let close t =
  match t.backing with
  | None -> ()
  | Some b -> ( try Unix.close b.fd with Unix.Unix_error _ -> ())

let reset t =
  t.read_count <- 0;
  t.write_count <- 0

let pp fmt t = Format.fprintf fmt "reads=%d writes=%d" t.read_count t.write_count
