(* Versions via deltas (§2.2, §3): committed transactions form a delta
   chain; tags name positions; checkout replays deltas backwards or
   forwards.  The delta is proportional to the primitive changes made,
   not to the derived ripple they cause.

   Run with: dune exec examples/versions_demo.exe *)

module M = Cactis_apps.Milestone
module Db = Cactis.Db

let () =
  let m = M.create () in
  let db = M.db m in
  (* A chain of 30 milestones: a 1-op change at the tail ripples through
     all 30 derived expectations, yet the delta stores exactly 1 op. *)
  let ids =
    List.init 30 (fun i ->
        M.add m ~name:(Printf.sprintf "step%02d" i) ~scheduled:(float_of_int (10 * (i + 1)))
          ~local_work:5.0)
  in
  let rec wire = function
    | a :: (b :: _ as rest) ->
      M.depends_on m b a;
      wire rest
    | _ -> ()
  in
  wire ids;
  let first = List.hd ids and last = List.nth ids 29 in
  Printf.printf "expected completion of last step: %.1f days\n" (M.expected m last);

  Db.tag db "baseline";

  Db.with_txn db (fun () -> M.slip m first 100.0);
  Db.tag db "slipped";
  Printf.printf "after slip: %.1f days (30 derived values changed)\n" (M.expected m last);

  let sizes = Db.delta_sizes db in
  Printf.printf "last delta size: %d primitive op(s) — §3's 'proportional to the initial changes'\n"
    (List.nth sizes (List.length sizes - 1));

  Db.with_txn db (fun () ->
      M.set_local_work m first 2.0;
      M.slip m last 7.0);
  Db.tag db "replanned";

  let show_at tag =
    Db.checkout db tag;
    Printf.printf "%-10s -> last step expected %.1f days\n" tag (M.expected m last)
  in
  print_endline "\ncheckout across versions:";
  List.iter show_at [ "baseline"; "replanned"; "slipped"; "baseline" ];

  Printf.printf "\nversion tags: %s\n"
    (String.concat ", " (List.map (fun (n, p) -> Printf.sprintf "%s@%d" n p) (Db.tags db)));

  (* Versions form a tree: committing after a checkout grows a sibling
     branch, and the previously-tagged states remain reachable. *)
  print_endline "\nbranching: replan from the baseline without losing anything:";
  Db.checkout db "baseline";
  Db.with_txn db (fun () -> M.set_local_work m first 1.0);
  Db.tag db "fast-track";
  Printf.printf "fast-track  -> last step expected %.1f days\n" (M.expected m last);
  Db.checkout db "slipped";
  Printf.printf "slipped     -> still reachable: %.1f days\n" (M.expected m last);
  Db.checkout db "fast-track";
  Printf.printf "fast-track  -> back across the branch point: %.1f days\n" (M.expected m last)
