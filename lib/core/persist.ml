module Wal = Cactis_storage.Wal
module Counters = Cactis_util.Counters

type t = {
  dir : string;
  db : Db.t;
  mutable wal : Wal.writer;
  sync_every : int;
  auto_checkpoint : int;  (* WAL bytes that trigger a checkpoint; 0 = never *)
  mutable cp_base : int;  (* appended_bytes at the last checkpoint *)
  mutable replayed : int;
  mutable torn : bool;
  mutable closed : bool;
}

let snapshot_file dir = Filename.concat dir "snapshot.bin"
let wal_file dir = Filename.concat dir "wal.log"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    Errors.type_error "persistence path %s exists and is not a directory" dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let db t = t.db
let dir t = t.dir
let replayed t = t.replayed
let recovered_torn t = t.torn

(* WAL frame bytes appended since the last checkpoint — the O(delta)
   commit cost the experiments measure. *)
let wal_bytes t = Wal.appended_bytes t.wal - t.cp_base

let checkpoint t =
  if Db.in_txn t.db then Errors.type_error "cannot checkpoint inside a transaction";
  let data = Snapshot.save_binary t.db in
  Wal.write_file_durable (snapshot_file t.dir) data;
  Wal.reset t.wal;
  t.cp_base <- Wal.appended_bytes t.wal;
  Counters.incr (Db.counters t.db) "checkpoints"

let install_hook t =
  Db.set_commit_hook t.db
    (Some
       (fun delta ->
         Wal.append t.wal (Codec.encode_delta delta);
         Counters.incr (Db.counters t.db) "wal_appends";
         if t.auto_checkpoint > 0 && wal_bytes t >= t.auto_checkpoint then checkpoint t))

let attach ?(sync_every = 1) ?(auto_checkpoint = 0) ~dir db =
  ensure_dir dir;
  let existing = Wal.read (wal_file dir) in
  let wal = Wal.open_writer ~sync_every ~truncate_at:existing.Wal.valid_end (wal_file dir) in
  let t =
    {
      dir;
      db;
      wal;
      sync_every;
      auto_checkpoint;
      cp_base = 0;
      replayed = 0;
      torn = false;
      closed = false;
    }
  in
  (* A database that already holds state needs a baseline the log can
     replay against. *)
  if Db.instance_ids db <> [] && not (Sys.file_exists (snapshot_file dir)) then checkpoint t;
  install_hook t;
  t

let recover ?strategy ?sched ?block_capacity ?buffer_capacity ?(sync_every = 1)
    ?(auto_checkpoint = 0) ~dir schema =
  ensure_dir dir;
  let db =
    let sf = snapshot_file dir in
    if Sys.file_exists sf then
      Snapshot.load_binary ?strategy ?sched ?block_capacity ?buffer_capacity schema (read_file sf)
    else Db.create ?strategy ?sched ?block_capacity ?buffer_capacity schema
  in
  let { Wal.records; valid_end; torn } = Wal.read (wal_file dir) in
  List.iter (fun record -> Db.replay_delta db (Codec.decode_delta record)) records;
  Engine.propagate (Db.engine db);
  let wal = Wal.open_writer ~sync_every ~truncate_at:valid_end (wal_file dir) in
  let t =
    {
      dir;
      db;
      wal;
      sync_every;
      auto_checkpoint;
      cp_base = 0;
      replayed = List.length records;
      torn;
      closed = false;
    }
  in
  install_hook t;
  t

let sync t = Wal.sync t.wal

let close t =
  if not t.closed then begin
    t.closed <- true;
    Db.set_commit_hook t.db None;
    Wal.close t.wal
  end
