(** Exceptions raised by the Cactis core.

    Following the paper: data cycles are not supported (detected
    dynamically, {!Cycle}); a constraint predicate evaluating to false
    forces the invoking transaction to fail ({!Constraint_violation});
    schema misuse is reported eagerly. *)

(** A derived attribute transitively depends on itself.  The payload
    lists the (instance id, attribute) pairs on the cycle. *)
exception Cycle of (int * string) list

(** A constraint attribute evaluated to [false] and no recovery action
    repaired it.  [instance]/[attr] identify the violated constraint;
    [message] is the schema-supplied description. *)
exception Constraint_violation of { instance : int; attr : string; message : string }

(** Unknown type / attribute / relationship / instance. *)
exception Unknown of string

(** Value of the wrong shape for an operation (e.g. arithmetic on a
    string, intrinsic write to a derived attribute). *)
exception Type_error of string

(** Cardinality violation on a [One] relationship. *)
exception Cardinality of string

let unknown fmt = Format.kasprintf (fun s -> raise (Unknown s)) fmt
let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt
let cardinality fmt = Format.kasprintf (fun s -> raise (Cardinality s)) fmt
