lib/core/value.ml: Array Bool Cactis_util Errors Float Format Int List Stdlib String
