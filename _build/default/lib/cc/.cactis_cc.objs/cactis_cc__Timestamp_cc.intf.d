lib/cc/timestamp_cc.mli: Cactis
