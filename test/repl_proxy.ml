(* Fault-injection TCP proxy for the replication tests.

   Sits between a Follower and a Publisher and mangles the
   writer->follower byte stream in controlled ways: truncating at a
   byte offset, flipping a byte, dropping everything after N frames
   (silence, for heartbeat-timeout tests), duplicating or reordering
   whole frames, stalling.  The follower->writer direction always
   passes through untouched.

   Faults are consumed one per accepted connection, in order; once the
   list is exhausted every further connection passes clean — which is
   exactly the shape reconnect-and-converge tests want: first contact
   hits the fault, the retry sees an honest network. *)

module Frame = Cactis_net.Frame

type fault =
  | Pass
  | Truncate_after of int  (* forward N stream bytes, then cut both ways *)
  | Corrupt_byte of int  (* XOR stream byte at offset N with 0x41 *)
  | Drop_after_frames of int  (* forward N whole frames, then silence *)
  | Duplicate_frame of int  (* send frame N twice *)
  | Reorder_frames of int  (* swap frames N and N+1 *)
  | Stall_after of int * float  (* after N bytes, stop forwarding for S seconds *)

let fault_name = function
  | Pass -> "pass"
  | Truncate_after n -> Printf.sprintf "truncate@%d" n
  | Corrupt_byte n -> Printf.sprintf "corrupt@%d" n
  | Drop_after_frames n -> Printf.sprintf "drop-after-%d-frames" n
  | Duplicate_frame n -> Printf.sprintf "dup-frame-%d" n
  | Reorder_frames n -> Printf.sprintf "reorder-frames-%d" n
  | Stall_after (n, s) -> Printf.sprintf "stall@%d(%gs)" n s

type t = {
  listen_fd : Unix.file_descr;
  pport : int;
  target_port : int;
  faults_mu : Mutex.t;
  mutable faults : fault list;
  mutable served : int;  (* connections accepted *)
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  conns_mu : Mutex.t;
  mutable live_fds : Unix.file_descr list;
  mutable conn_domains : unit Domain.t list;
}

let port t = t.pport
let served t = t.served

(* Frame-granular faults parse the downstream with a Frame.decoder and
   re-emit Frame.encode payloads — byte-identical framing, so a clean
   frame passed through is indistinguishable from the original. *)
type frame_mode = { mutable emitted : int; mutable held : string option }

type conn_state = {
  fault : fault;
  mutable fwd_bytes : int;  (* server->client bytes forwarded *)
  mutable cut : bool;  (* stop forwarding (and maybe close) *)
  dec : Frame.decoder;
  fm : frame_mode;
  mutable stalled : bool;
}

let new_state fault =
  {
    fault;
    fwd_bytes = 0;
    cut = false;
    dec = Frame.decoder ();
    fm = { emitted = 0; held = None };
    stalled = false;
  }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Byte-offset faults (truncate/corrupt/stall) act on the raw stream —
   frame headers included — so they can hit a length prefix or a CRC
   with equal probability, like a real half-written TCP segment. *)
let transform_bytes st raw =
  match st.fault with
  | Truncate_after n ->
    if st.fwd_bytes + String.length raw <= n then Some raw
    else begin
      st.cut <- true;
      Some (String.sub raw 0 (max 0 (n - st.fwd_bytes)))
    end
  | Corrupt_byte n ->
    if n >= st.fwd_bytes && n < st.fwd_bytes + String.length raw then begin
      let b = Bytes.of_string raw in
      let i = n - st.fwd_bytes in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
      Some (Bytes.to_string b)
    end
    else Some raw
  | Stall_after (n, s) ->
    if (not st.stalled) && st.fwd_bytes + String.length raw > n then begin
      st.stalled <- true;
      Unix.sleepf s
    end;
    Some raw
  | Pass -> Some raw
  | Drop_after_frames _ | Duplicate_frame _ | Reorder_frames _ ->
    (* handled at frame granularity *)
    Some raw

let transform_frames st raw =
  Frame.feed st.dec raw;
  let out = Buffer.create (String.length raw) in
  let emit payload = Buffer.add_string out (Frame.encode payload) in
  let rec drain () =
    match Frame.next st.dec with
    | None -> ()
    | Some payload ->
      let i = st.fm.emitted in
      st.fm.emitted <- i + 1;
      (match st.fault with
      | Drop_after_frames n -> if i < n then emit payload else st.cut <- true
      | Duplicate_frame n ->
        emit payload;
        if i = n then emit payload
      | Reorder_frames n ->
        if i = n then st.fm.held <- Some payload
        else begin
          emit payload;
          match st.fm.held with
          | Some h when i = n + 1 ->
            st.fm.held <- None;
            emit h
          | _ -> ()
        end
      | _ -> emit payload);
      drain ()
  in
  drain ();
  Buffer.contents out

let is_frame_fault = function
  | Drop_after_frames _ | Duplicate_frame _ | Reorder_frames _ -> true
  | _ -> false

(* One proxied connection: select over both sockets, forward bytes,
   apply the fault downstream.  Runs on its own domain so a stalled or
   half-dead connection never blocks the accept loop. *)
let pump_connection st client_fd server_fd =
  let buf = Bytes.create 65536 in
  let open_both = ref true in
  (* When Drop_after_frames has cut the downstream we keep the sockets
     open (silence, not closure) but stop forwarding. *)
  let hard_cut () = match st.fault with Truncate_after _ -> st.cut | _ -> false in
  while !open_both do
    match Unix.select [ client_fd; server_fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> open_both := false
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if !open_both && List.memq fd readable then
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> open_both := false
            | n -> (
              let raw = Bytes.sub_string buf 0 n in
              (* The peer may already have hung up (a follower that hit
                 its heartbeat timeout mid-stall closes its socket);
                 EPIPE here ends the connection, it must not escape the
                 pump domain. *)
              try
                if fd == client_fd then write_all server_fd raw
                else begin
                  (if not st.cut then
                     let out =
                       if is_frame_fault st.fault then transform_frames st raw
                       else match transform_bytes st raw with Some s -> s | None -> ""
                     in
                     if String.length out > 0 then write_all client_fd out;
                     st.fwd_bytes <- st.fwd_bytes + String.length raw);
                  if hard_cut () then open_both := false
                end
              with Unix.Unix_error _ -> open_both := false)
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              -> ()
            | exception Unix.Unix_error (_, _, _) -> open_both := false)
        [ client_fd; server_fd ]
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ client_fd; server_fd ]

let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop_flag true
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error _ -> ()
      | client_fd, _ ->
        let fault =
          Mutex.lock t.faults_mu;
          let f = match t.faults with [] -> Pass | f :: rest -> t.faults <- rest; f in
          t.served <- t.served + 1;
          Mutex.unlock t.faults_mu;
          f
        in
        (match
           let server_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try
              Unix.connect server_fd
                (Unix.ADDR_INET (Unix.inet_addr_loopback, t.target_port));
              (try Unix.setsockopt server_fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              (try Unix.setsockopt client_fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ())
            with e ->
              (try Unix.close server_fd with Unix.Unix_error _ -> ());
              raise e);
           server_fd
         with
        | exception _ -> ( try Unix.close client_fd with Unix.Unix_error _ -> ())
        | server_fd ->
          let d =
            Domain.spawn (fun () -> pump_connection (new_state fault) client_fd server_fd)
          in
          Mutex.lock t.conns_mu;
          t.live_fds <- client_fd :: server_fd :: t.live_fds;
          t.conn_domains <- d :: t.conn_domains;
          Mutex.unlock t.conns_mu))
  done

let start ~target_port faults =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 16;
  let pport =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let t =
    {
      listen_fd;
      pport;
      target_port;
      faults_mu = Mutex.create ();
      faults;
      served = 0;
      stop_flag = Atomic.make false;
      domain = None;
      conns_mu = Mutex.create ();
      live_fds = [];
      conn_domains = [];
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    Mutex.lock t.conns_mu;
    let fds = t.live_fds and doms = t.conn_domains in
    t.live_fds <- [];
    t.conn_domains <- [];
    Mutex.unlock t.conns_mu;
    (* Shutdown (not close — the pump domain owns closing) breaks any
       blocked transfer; then join so no domain outlives the proxy.
       EBADF/ENOTCONN races with a pump that already closed are
       expected and harmless. *)
    List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds;
    List.iter Domain.join doms
  end
