lib/ddl/lexer.ml: Buffer Format List String Token
