lib/apps/milestone.ml: Buffer Cactis Cactis_ddl Cactis_util List Printf
