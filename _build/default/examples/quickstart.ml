(* Quickstart: define a schema with derived attributes, create objects,
   watch changes propagate incrementally, and undo a transaction.

   Run with: dune exec examples/quickstart.exe *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db

let () =
  (* A tiny bill-of-materials: parts with intrinsic unit costs; an
     assembly's cost is derived as the sum of its components' costs. *)
  let sch = Schema.create () in
  Schema.add_type sch "part";
  Schema.declare_relationship sch ~from_type:"part" ~rel:"components" ~to_type:"part"
    ~inverse:"used_in" ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"part" (Rule.intrinsic "name" (Value.Str ""));
  Schema.add_attr sch ~type_name:"part" (Rule.intrinsic "unit_cost" (Value.Int 0));
  Schema.add_attr sch ~type_name:"part"
    (Rule.derived "total_cost"
       (Rule.combine_self_rel "unit_cost" "components" "total_cost" ~f:(fun own comps ->
            Value.add own (Value.sum comps))));

  let db = Db.create sch in
  let part name cost =
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "part" in
        Db.set db id "name" (Value.Str name);
        Db.set db id "unit_cost" (Value.Int cost);
        id)
  in
  let bolt = part "bolt" 1 in
  let plate = part "plate" 5 in
  let frame = part "frame" 20 in
  let engine = part "engine" 500 in
  let tractor = part "tractor" 100 in
  List.iter
    (fun (whole, piece) -> Db.link db ~from_id:whole ~rel:"components" ~to_id:piece)
    [ (frame, bolt); (frame, plate); (tractor, frame); (tractor, engine) ];

  let show label =
    Printf.printf "%-22s tractor total cost = %s\n" label
      (Value.to_string (Db.get db tractor "total_cost"))
  in
  show "initial:";

  (* A change to a deep component ripples to every assembly using it —
     but only when somebody actually looks. *)
  Db.set db bolt "unit_cost" (Value.Int 3);
  show "bolt price raised:";

  (* Everything is a transaction; the paper's Undo meta-action reverses
     the last one, restoring derived values by restoring the intrinsics
     that produced them. *)
  Db.undo_last db;
  show "after undo:";

  Printf.printf "\nengine counters:\n";
  List.iter
    (fun (name, v) -> Printf.printf "  %-20s %d\n" name v)
    (Cactis_util.Counters.snapshot (Db.counters db))
