module Vtime = Cactis_util.Vtime

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Value encoding                                                      *)

(* Floats use %h (hexadecimal) for exact round-trips. *)
let rec value_to_buf buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int n -> Buffer.add_string buf (Printf.sprintf "i:%d" n)
  | Value.Float f -> Buffer.add_string buf (Printf.sprintf "f:%h" f)
  | Value.Str s -> Buffer.add_string buf (Printf.sprintf "s:%S" s)
  | Value.Time t -> Buffer.add_string buf (Printf.sprintf "t:%h" (Vtime.to_days t))
  | Value.Arr a ->
    Buffer.add_string buf "a:[";
    Array.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        value_to_buf buf x)
      a;
    Buffer.add_char buf ']'
  | Value.Rec fields ->
    Buffer.add_string buf "r:{";
    List.iteri
      (fun i (name, x) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf name;
        Buffer.add_char buf '=';
        value_to_buf buf x)
      fields;
    Buffer.add_char buf '}'

let value_to_string v =
  let buf = Buffer.create 32 in
  value_to_buf buf v;
  Buffer.contents buf

(* Cursor-based reader for the same encoding. *)
type cursor = {
  src : string;
  mutable pos : int;
}

(* Value-parse failures carry the cursor's byte offset; [load] adds the
   snapshot line number on top when one is available. *)
let fail_at c fmt =
  Format.kasprintf (fun m -> failwith (Printf.sprintf "at byte %d: %s" c.pos m)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let expect_char c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail_at c "expected %C, found %C" ch x
  | None -> fail_at c "expected %C, found end of input" ch

let take_while c pred =
  let start = c.pos in
  while (match peek c with Some ch -> pred ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  String.sub c.src start (c.pos - start)

let read_quoted_string c =
  (* Scans an OCaml %S-escaped string literal. *)
  expect_char c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail_at c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some c0 when c0 >= '0' && c0 <= '9' ->
        (* \DDD decimal escape *)
        let d = String.sub c.src c.pos 3 in
        c.pos <- c.pos + 2;
        Buffer.add_char buf (Char.chr (int_of_string d))
      | Some c0 -> fail_at c "bad escape \\%c" c0
      | None -> fail_at c "unterminated escape");
      c.pos <- c.pos + 1;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let is_number_char ch =
  (ch >= '0' && ch <= '9')
  || (ch >= 'a' && ch <= 'f')
  || (ch >= 'A' && ch <= 'F')
  || ch = 'x' || ch = 'X' || ch = '.' || ch = '-' || ch = '+' || ch = 'p' || ch = 'P'
  || ch = 'i' || ch = 'n' || ch = 't' || ch = 'y'
(* hex floats (0x1.8p+1), "infinity", "nan" *)

let rec read_value c : Value.t =
  match peek c with
  | Some 'n' when String.length c.src >= c.pos + 4 && String.sub c.src c.pos 4 = "null" ->
    c.pos <- c.pos + 4;
    Value.Null
  | Some 't' when String.length c.src >= c.pos + 4 && String.sub c.src c.pos 4 = "true" ->
    c.pos <- c.pos + 4;
    Value.Bool true
  | Some 'f' when String.length c.src >= c.pos + 5 && String.sub c.src c.pos 5 = "false" ->
    c.pos <- c.pos + 5;
    Value.Bool false
  | Some 'i' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Int (int_of_string (take_while c (fun ch -> ch = '-' || (ch >= '0' && ch <= '9'))))
  | Some 'f' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Float (float_of_string (take_while c is_number_char))
  | Some 't' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Time (Vtime.of_days (float_of_string (take_while c is_number_char)))
  | Some 's' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    Value.Str (read_quoted_string c)
  | Some 'a' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    expect_char c '[';
    let items = ref [] in
    if peek c = Some ']' then c.pos <- c.pos + 1
    else begin
      let rec loop () =
        items := read_value c :: !items;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          loop ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> fail_at c "expected ',' or ']' in array"
      in
      loop ()
    end;
    Value.Arr (Array.of_list (List.rev !items))
  | Some 'r' ->
    c.pos <- c.pos + 1;
    expect_char c ':';
    expect_char c '{';
    let fields = ref [] in
    if peek c = Some '}' then c.pos <- c.pos + 1
    else begin
      let rec loop () =
        let name = take_while c (fun ch -> ch <> '=' && ch <> ',' && ch <> '}') in
        expect_char c '=';
        fields := (name, read_value c) :: !fields;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          loop ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> fail_at c "expected ',' or '}' in record"
      in
      loop ()
    end;
    Value.Rec (List.rev !fields)
  | Some ch -> fail_at c "unexpected %C in value" ch
  | None -> fail_at c "unexpected end of value"

let value_of_string s =
  let c = { src = s; pos = 0 } in
  let v = read_value c in
  if c.pos <> String.length s then fail_at c "trailing garbage after value";
  v

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

(* A structural link appears twice (once per direction); it is written
   from the side whose (type, rel) key is smaller — with id order as the
   tiebreak for symmetric self-relationships. *)
let owns_link sch (inst : Instance.t) rel j ~target_type =
  let rd = Schema.rel sch ~type_name:inst.Instance.type_name rel in
  let this_key = (inst.Instance.type_name, rel) in
  let other_key = (target_type, rd.Schema.inverse) in
  if this_key < other_key then true
  else if this_key > other_key then false
  else inst.Instance.id <= j

let save db =
  let sch = Db.schema db in
  let store = Db.store db in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "cactis-snapshot 1\n";
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let tn = inst.Instance.type_name in
      Buffer.add_string buf (Printf.sprintf "instance %d %s\n" id tn);
      List.iter
        (fun (d : Schema.attr_def) ->
          match d.Schema.kind with
          | Schema.Intrinsic _ ->
            let v = (Instance.slot inst d.Schema.attr_name).Instance.value in
            Buffer.add_string buf
              (Printf.sprintf "attr %d %s %s\n" id d.Schema.attr_name (value_to_string v))
          | Schema.Derived _ -> ())
        (Schema.attrs sch ~type_name:tn))
    (Db.instance_ids db);
  (* Links after all instances so loading can wire in one pass. *)
  List.iter
    (fun id ->
      let inst = Store.get store id in
      List.iter
        (fun (rel, ids) ->
          let rd = Schema.rel sch ~type_name:inst.Instance.type_name rel in
          List.iter
            (fun j ->
              if owns_link sch inst rel j ~target_type:rd.Schema.target then
                Buffer.add_string buf (Printf.sprintf "link %d %s %d\n" id rel j))
            ids)
        (Instance.all_links inst))
    (Db.instance_ids db);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let load ?strategy ?sched ?block_capacity ?buffer_capacity schema text =
  let db = Db.create ?strategy ?sched ?block_capacity ?buffer_capacity schema in
  let store = Db.store db in
  let lines = String.split_on_char '\n' text in
  (match lines with
  | header :: _ when String.trim header = "cactis-snapshot 1" -> ()
  | _ -> parse_error 1 "missing 'cactis-snapshot 1' header");
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if lineno = 1 || line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | "instance" :: id :: type_name :: [] -> (
          match int_of_string_opt id with
          | Some id -> ignore (Store.recreate_instance store ~id type_name)
          | None -> parse_error lineno "bad instance id %s" id)
        | "attr" :: id :: attr :: rest -> (
          match int_of_string_opt id with
          | None -> parse_error lineno "bad instance id %s" id
          | Some id ->
            let inst = Store.get store id in
            (match Schema.attr schema ~type_name:inst.Instance.type_name attr with
            | { Schema.kind = Schema.Intrinsic _; _ } -> ()
            | { Schema.kind = Schema.Derived _; _ } ->
              parse_error lineno "attr %s of %d is derived; snapshots store intrinsics only" attr
                id);
            let encoded = String.concat " " rest in
            let v =
              try value_of_string encoded
              with Failure m -> parse_error lineno "bad value %S: %s" encoded m
            in
            Store.write_value store id attr v)
        | "link" :: a :: rel :: b :: [] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> Store.link store ~from_id:a ~rel ~to_id:b
          | _ -> parse_error lineno "bad link ids")
        | cmd :: _ -> parse_error lineno "unknown directive %s" cmd
        | [] -> ())
    lines;
  (* Constraint attributes of loaded instances must hold; register them
     as pending so the first propagation checks them. *)
  List.iter (fun id -> Engine.on_new_instance (Db.engine db) id) (Db.instance_ids db);
  db

(* ------------------------------------------------------------------ *)
(* Binary format (the hot persistence path)                            *)

(* Layout after an 8-byte magic:
     symbol table   varint count, then length-prefixed names (each
                    type/attribute/relationship name written once)
     instances      varint count; per instance: varint id, varint type
                    ref, varint intrinsic count, (varint attr ref,
                    value)*
     links          varint count; per link: varint from, varint rel
                    ref, varint to (canonical direction only)
   Values use the Codec encoding (raw IEEE float bits, length-prefixed
   strings), so round-trips are exact without any escaping. *)

let binary_magic = "CACTISB2"

(* The previous binary format: identical except there is no schema-delta
   section between the magic and the symbol table.  Still loadable; such
   snapshots have schema version 0 (no baseline schema deltas). *)
let binary_magic_v1 = "CACTISB1"

(* Per-layout write plan: the canonical-direction class of one link slot
   and the file refs of the type and every intrinsic slot. *)
type ownership = Own_always | Own_never | Own_ties

type link_plan = { lp_ref : int; lp_own : ownership }

type lay_plan = {
  pl_ty_ref : int;
  pl_intrinsics : int;
  pl_attr_refs : int array;  (* per slot index; -1 = derived, not written *)
  pl_links : link_plan array;
}

let has_magic s m =
  String.length s >= String.length m && String.equal (String.sub s 0 (String.length m)) m

let is_binary s = has_magic s binary_magic || has_magic s binary_magic_v1

(* Schema version (count of baseline schema deltas) of a binary
   snapshot, read shallowly — the section's label flag and op count are
   decoded but the ops themselves are not, so no rule compiler is
   needed. *)
let binary_schema_version data =
  if has_magic data binary_magic_v1 then 0
  else if has_magic data binary_magic then begin
    let r = Codec.reader ~pos:(String.length binary_magic) data in
    let section = Codec.read_string r in
    let sr = Codec.reader section in
    if Codec.read_uint sr <> 0 then ignore (Codec.read_string sr);
    Codec.read_uint sr
  end
  else parse_error 1 "missing %S binary snapshot magic" binary_magic

let save_binary db =
  let store = Db.store db in
  (* File-local symbol table: interned process symbols map to dense file
     refs, so each name is written once in the header and every slot
     carries only a varint. *)
  let sym_refs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let names = ref [] in
  let n_names = ref 0 in
  let ref_of_sym sym name =
    match Hashtbl.find_opt sym_refs sym with
    | Some r -> r
    | None ->
      let r = !n_names in
      Hashtbl.add sym_refs sym r;
      names := name :: !names;
      incr n_names;
      r
  in
  let ref_of name = ref_of_sym (Cactis_util.Symbol.intern name) name in
  (* Everything name-dependent is resolved once per layout rather than
     once per instance or link: the type/attr/rel file refs and the
     canonical-direction verdict for each link slot (the (type, rel) key
     comparison of [owns_link], hoisted out of the per-link loop). *)
  let plans = ref [] in
  let plan_of (inst : Instance.t) =
    let lay = inst.Instance.layout in
    match List.assq_opt lay !plans with
    | Some p -> p
    | None ->
      Schema.refresh_layout lay;
      let tn = inst.Instance.type_name in
      let attr_refs =
        Array.map
          (fun (si : Schema.slot_info) ->
            if si.Schema.si_derived then -1 else ref_of_sym si.Schema.si_sym si.Schema.si_name)
          lay.Schema.lay_slots
      in
      let intrinsics = Array.fold_left (fun n r -> if r >= 0 then n + 1 else n) 0 attr_refs in
      let links =
        Array.map
          (fun (li : Schema.link_info) ->
            let rd = li.Schema.li_def in
            let this_key = (tn, li.Schema.li_name) in
            let other_key = (rd.Schema.target, rd.Schema.inverse) in
            let own =
              if this_key < other_key then Own_always
              else if this_key > other_key then Own_never
              else Own_ties
            in
            { lp_ref = ref_of li.Schema.li_name; lp_own = own })
          lay.Schema.lay_links
      in
      let p =
        { pl_ty_ref = ref_of tn; pl_intrinsics = intrinsics; pl_attr_refs = attr_refs;
          pl_links = links }
      in
      plans := (lay, p) :: !plans;
      p
  in
  let ids = Db.instance_ids db in
  (* Counting pre-pass: resolves every layout's plan (which fills the
     symbol table), counts instances and owned links, and upper-bounds
     the encoded size, so the file streams into one exactly-sized buffer
     — no staging buffers to compose and no doubling copies, which on a
     memory-bound host each cost an extra pass over the whole file. *)
  let rec value_hint (v : Value.t) =
    match v with
    | Value.Str s -> 11 + String.length s
    | Value.Arr a -> Array.fold_left (fun n x -> n + value_hint x) 11 a
    | Value.Rec fields ->
      List.fold_left (fun n (name, x) -> n + String.length name + 11 + value_hint x) 11 fields
    | _ -> 11
  in
  let n_instances = ref 0 in
  let n_links = ref 0 in
  let bytes = ref 64 in
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let plan = plan_of inst in
      incr n_instances;
      bytes := !bytes + 33;
      Array.iteri
        (fun ix aref ->
          if aref >= 0 then
            bytes := !bytes + 6 + value_hint (Instance.slot_ix inst ix).Instance.value)
        plan.pl_attr_refs;
      Array.iteri
        (fun ix (lp : link_plan) ->
          match lp.lp_own with
          | Own_never -> ()
          | Own_always -> n_links := !n_links + Instance.link_count_ix inst ix
          | Own_ties -> Instance.iter_linked inst ix (fun j -> if id <= j then incr n_links))
        plan.pl_links)
    ids;
  List.iter (fun n -> bytes := !bytes + String.length n + 6) !names;
  (* Schema-delta section: every schema op folded into the current state
     (snapshot baseline plus the ops on the history path), so loading
     replays them onto the caller's code-supplied schema before any
     instance is decoded.  Encoding raises a typed error on derived
     rules that carry no DDL source (they cannot be rebuilt). *)
  let schema_section =
    Codec.encode_delta { Txn.ops = Db.schema_ops_on_path db; label = None }
  in
  let out = Buffer.create (!bytes + (!n_links * 16) + String.length schema_section + 10) in
  Buffer.add_string out binary_magic;
  Codec.write_string out schema_section;
  (* The id-allocation counter: ids are never reused, so a history with
     undone creates leaves holes above the live ids.  Restoring the
     counter keeps post-restore allocation identical to a database that
     never went through a snapshot. *)
  Codec.write_uint out (Store.next_id store);
  Codec.write_uint out !n_names;
  List.iter (fun n -> Codec.write_string out n) (List.rev !names);
  Codec.write_uint out !n_instances;
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let plan = plan_of inst in
      Codec.write_uint out id;
      Codec.write_uint out plan.pl_ty_ref;
      Codec.write_uint out plan.pl_intrinsics;
      Array.iteri
        (fun ix aref ->
          if aref >= 0 then begin
            Codec.write_uint out aref;
            Codec.write_value out (Instance.slot_ix inst ix).Instance.value
          end)
        plan.pl_attr_refs)
    ids;
  Codec.write_uint out !n_links;
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let plan = plan_of inst in
      Array.iteri
        (fun ix (lp : link_plan) ->
          let emit j =
            Codec.write_uint out id;
            Codec.write_uint out lp.lp_ref;
            Codec.write_uint out j
          in
          match lp.lp_own with
          | Own_never -> ()
          | Own_always -> Instance.iter_linked inst ix emit
          | Own_ties -> Instance.iter_linked inst ix (fun j -> if id <= j then emit j))
        plan.pl_links)
    ids;
  Buffer.contents out

let load_binary ?strategy ?sched ?block_capacity ?buffer_capacity schema data =
  if not (is_binary data) then
    parse_error 1 "missing %S binary snapshot magic" binary_magic;
  let db = Db.create ?strategy ?sched ?block_capacity ?buffer_capacity schema in
  let store = Db.store db in
  let r = Codec.reader ~pos:(String.length binary_magic) data in
  (* CACTISB2: replay the schema-delta section onto the caller's schema
     before decoding instances — slots saved under an evolved schema
     resolve only once those deltas are applied.  CACTISB1 has no such
     section (baseline stays empty). *)
  if not (has_magic data binary_magic_v1) then begin
    let ops = (Codec.decode_delta (Codec.read_string r)).Txn.ops in
    Db.install_baseline_schema db ops;
    Store.reserve_ids store (Codec.read_uint r)
  end;
  let n_names = Codec.read_uint r in
  let names = Array.init n_names (fun _ -> Codec.read_string r) in
  let name_of rf =
    if rf < 0 || rf >= n_names then
      raise (Codec.Error { offset = r.Codec.pos; message = Printf.sprintf "symbol ref %d out of range" rf });
    names.(rf)
  in
  (* Per-type slot resolution is done once per (type ref, attr ref) pair
     and cached as int arrays, so the per-instance loop never touches a
     name after the first instance of each type. *)
  let layouts : Schema.layout option array = Array.make (max 1 n_names) None in
  let slot_ix : int array option array = Array.make (max 1 n_names) None in
  let layout_of rf =
    match layouts.(rf) with
    | Some lay -> lay
    | None ->
      let lay = Schema.layout schema (name_of rf) in
      layouts.(rf) <- Some lay;
      lay
  in
  let slot_of tyref lay attr_ref =
    let table =
      match slot_ix.(tyref) with
      | Some t -> t
      | None ->
        let t = Array.make n_names (-2) in
        slot_ix.(tyref) <- Some t;
        t
    in
    match table.(attr_ref) with
    | -2 ->
      let attr = name_of attr_ref in
      let ix =
        match Schema.slot_index lay attr with
        | Some ix ->
          if lay.Schema.lay_slots.(ix).Schema.si_derived then
            Errors.type_error "attr %s of type %s is derived; snapshots store intrinsics only"
              attr lay.Schema.lay_type
          else ix
        | None -> Errors.unknown "type %s has no attribute %s" lay.Schema.lay_type attr
      in
      table.(attr_ref) <- ix;
      ix
    | ix -> ix
  in
  let n_instances = Codec.read_uint r in
  let loaded_ids = ref [] in
  for _ = 1 to n_instances do
    let id = Codec.read_uint r in
    let tyref = Codec.read_uint r in
    let lay = layout_of tyref in
    let inst = Store.recreate_instance store ~id lay.Schema.lay_type in
    loaded_ids := id :: !loaded_ids;
    let n_attrs = Codec.read_uint r in
    for _ = 1 to n_attrs do
      let attr_ref = Codec.read_uint r in
      let v = Codec.read_value r in
      Store.load_value_ix store inst (slot_of tyref lay attr_ref) v
    done
  done;
  let n_links = Codec.read_uint r in
  (* Link slots are resolved once per (layout, rel ref) — the scan list
     holds one entry per type owning links of that name — so the
     per-link work is two instance lookups and the wiring itself. *)
  let link_cache : (Schema.layout * (int * Schema.rel_def)) list array =
    Array.make (max 1 n_names) []
  in
  for _ = 1 to n_links do
    let from_id = Codec.read_uint r in
    let rel_ref = Codec.read_uint r in
    let to_id = Codec.read_uint r in
    if rel_ref < 0 || rel_ref >= n_names then ignore (name_of rel_ref);
    let a = Store.get store from_id and b = Store.get store to_id in
    let lay = a.Instance.layout in
    let ix, rd =
      match List.assq_opt lay link_cache.(rel_ref) with
      | Some resolved -> resolved
      | None ->
        let rel = name_of rel_ref in
        (match Instance.find_link a rel with
        | None -> Errors.unknown "type %s has no relationship %s" a.Instance.type_name rel
        | Some ix ->
          let resolved = (ix, lay.Schema.lay_links.(ix).Schema.li_def) in
          link_cache.(rel_ref) <- (lay, resolved) :: link_cache.(rel_ref);
          resolved)
    in
    if not (String.equal b.Instance.type_name rd.Schema.target) then
      Errors.type_error "relationship %s.%s targets %s, not %s" a.Instance.type_name
        rd.Schema.rel_name rd.Schema.target b.Instance.type_name;
    Store.load_link_ix store a ix b
  done;
  if not (Codec.at_end r) then
    raise (Codec.Error { offset = r.Codec.pos; message = "trailing bytes after snapshot" });
  (* The ids were collected during the instance pass — registration order
     does not matter to the engine, so skip rebuilding the sorted id
     list. *)
  List.iter (fun id -> Engine.on_new_instance (Db.engine db) id) !loaded_ids;
  db
