lib/ddl/elaborate.ml: Ast Cactis Cactis_util Float Format List Option Parser String
