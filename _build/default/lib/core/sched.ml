module Pqueue = Cactis_util.Pqueue
module Pager = Cactis_storage.Pager

type strategy =
  | Fifo
  | Cost_only
  | Greedy

type 'a entry = {
  payload : 'a;
  instance : int;
  mutable consumed : bool;
  mutable promoted : bool;  (* already moved to the high-priority queue *)
}

type 'a t = {
  strategy : strategy;
  store : Store.t;
  fifo : 'a entry Queue.t;
  high : 'a entry Queue.t;
  cost_heap : 'a entry Pqueue.t;
  by_block : (int, 'a entry list ref) Hashtbl.t;
  mutable count : int;  (* live (unconsumed) entries *)
}

let create strategy store =
  {
    strategy;
    store;
    fifo = Queue.create ();
    high = Queue.create ();
    cost_heap = Pqueue.create ();
    by_block = Hashtbl.create 64;
    count = 0;
  }

let schedule t ~instance ~cost payload =
  let entry = { payload; instance; consumed = false; promoted = false } in
  t.count <- t.count + 1;
  match t.strategy with
  | Fifo -> Queue.push entry t.fifo
  | Cost_only -> Pqueue.push t.cost_heap cost entry
  | Greedy ->
    if Store.resident t.store instance then begin
      entry.promoted <- true;
      Queue.push entry t.high
    end
    else begin
      Pqueue.push t.cost_heap cost entry;
      match Pager.block_of (Store.pager t.store) instance with
      | None -> ()
      | Some block -> (
        match Hashtbl.find_opt t.by_block block with
        | Some r -> r := entry :: !r
        | None -> Hashtbl.add t.by_block block (ref [ entry ]))
    end

(* Called when the chunk we are about to hand out will load [block]: all
   other pending chunks on that block become free and jump the queue. *)
let promote_block t block =
  match Hashtbl.find_opt t.by_block block with
  | None -> ()
  | Some r ->
    List.iter
      (fun e ->
        if (not e.consumed) && not e.promoted then begin
          e.promoted <- true;
          Queue.push e t.high
        end)
      !r;
    Hashtbl.remove t.by_block block

let rec pop_queue q =
  match Queue.take_opt q with
  | None -> None
  | Some e -> if e.consumed then pop_queue q else Some e

let rec pop_heap t =
  match Pqueue.pop_opt t.cost_heap with
  | None -> None
  | Some e -> if e.consumed || e.promoted then pop_heap t else Some e

let take t e =
  e.consumed <- true;
  t.count <- t.count - 1;
  Some e.payload

let next t =
  match t.strategy with
  | Fifo -> (
    match pop_queue t.fifo with
    | Some e -> take t e
    | None -> None)
  | Cost_only -> (
    match pop_heap t with
    | Some e -> take t e
    | None -> None)
  | Greedy -> (
    match pop_queue t.high with
    | Some e -> take t e
    | None -> (
      match pop_heap t with
      | None -> None
      | Some e ->
        (* Running this chunk will fault its block in; everything else on
           that block is then free. *)
        (match Pager.block_of (Store.pager t.store) e.instance with
        | Some block -> promote_block t block
        | None -> ());
        take t e))

let pending t = t.count
let is_empty t = t.count = 0
