(* Property-based tests of the core engine (qcheck via QCheck_alcotest).

   The central property is oracle consistency: after an arbitrary
   sequence of primitive operations, every derived attribute the user can
   query equals a from-scratch recomputation from intrinsic values and
   links.  Around it: undo/redo round-trips, equivalence of the
   evaluation strategies, and the at-most-once evaluation invariant. *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Engine = Cactis.Engine
module Instance = Cactis.Instance
module Store = Cactis.Store
module Counters = Cactis_util.Counters

let int n = Value.Int n

(* ------------------------------------------------------------------ *)
(* Random operation sequences                                          *)

type op =
  | Create
  | Set_local of int * int  (* instance index, new value *)
  | Link of int * int  (* indices; applied older -> newer to stay acyclic *)
  | Unlink of int * int
  | Delete of int
  | Query of int
  | Undo
  | Redo

let pp_op = function
  | Create -> "create"
  | Set_local (i, v) -> Printf.sprintf "set %d %d" i v
  | Link (i, j) -> Printf.sprintf "link %d %d" i j
  | Unlink (i, j) -> Printf.sprintf "unlink %d %d" i j
  | Delete i -> Printf.sprintf "delete %d" i
  | Query i -> Printf.sprintf "query %d" i
  | Undo -> "undo"
  | Redo -> "redo"

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Create);
        (6, map2 (fun i v -> Set_local (i, v)) (int_range 0 30) (int_range 0 100));
        (5, map2 (fun i j -> Link (i, j)) (int_range 0 30) (int_range 0 30));
        (2, map2 (fun i j -> Unlink (i, j)) (int_range 0 30) (int_range 0 30));
        (1, map (fun i -> Delete i) (int_range 0 30));
        (4, map (fun i -> Query i) (int_range 0 30));
        (1, return Undo);
        (1, return Redo);
      ])

let ops_arbitrary ?(len = 50) () =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 len) op_gen)

(* The node schema of the experiments: total = local + sum(deps.total). *)
let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  sch

(* Applies an op sequence, skipping ops that are invalid in the current
   state (dead instance, missing link, nothing to undo).  Decisions
   depend only on database state, so two databases fed the same sequence
   perform the same primitive calls. *)
let apply_ops ?(allow_undo = true) db ops =
  let created = ref [] in
  let nth i =
    let l = !created in
    match l with [] -> None | _ -> List.nth_opt l (i mod List.length l)
  in
  let live i =
    match nth i with
    | Some id when List.mem id (Db.instance_ids db) -> Some id
    | Some _ | None -> None
  in
  List.iter
    (fun op ->
      match op with
      | Create -> created := !created @ [ Db.create_instance db "node" ]
      | Set_local (i, v) -> (
        match live i with Some id -> Db.set db id "local" (int v) | None -> ())
      | Link (i, j) -> (
        match (live i, live j) with
        | Some a, Some b when a <> b ->
          (* Always link the older (smaller id) to the newer: ids ascend,
             so the dependency graph stays acyclic. *)
          let from_id = min a b and to_id = max a b in
          if not (List.mem to_id (Db.related db from_id "deps")) then
            Db.link db ~from_id ~rel:"deps" ~to_id
        | _ -> ())
      | Unlink (i, j) -> (
        match (live i, live j) with
        | Some a, Some b ->
          let from_id = min a b and to_id = max a b in
          if List.mem to_id (Db.related db from_id "deps") then
            Db.unlink db ~from_id ~rel:"deps" ~to_id
        | _ -> ())
      | Delete i -> ( match live i with Some id -> Db.delete_instance db id | None -> ())
      | Query i -> (
        match live i with Some id -> ignore (Db.get db id "total") | None -> ())
      | Undo -> if allow_undo && Db.position db > 0 then Db.undo_last db
      | Redo -> if allow_undo then ( try Db.redo db with Cactis.Errors.Type_error _ -> ()))
    ops

(* Full observable state: intrinsics, links, and every derived value
   (queried, hence evaluated). *)
let state_snapshot db =
  Db.instance_ids db
  |> List.map (fun id ->
         ( id,
           Value.to_string (Db.get db ~watch:false id "local"),
           Value.to_string (Db.get db ~watch:false id "total"),
           List.sort compare (Db.related db id "deps") ))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_oracle_consistency =
  QCheck.Test.make ~name:"derived values match from-scratch oracle" ~count:120
    (ops_arbitrary ())
    (fun ops ->
      let db = Db.create (node_schema ()) in
      apply_ops db ops;
      Cactis.Integrity.check db = []
      && List.for_all
           (fun id ->
             Value.equal (Db.get db ~watch:false id "total")
               (Engine.oracle_value (Db.engine db) id "total"))
           (Db.instance_ids db))

let prop_oracle_consistency_txn =
  QCheck.Test.make ~name:"oracle consistency with batched transactions" ~count:80
    QCheck.(pair (ops_arbitrary ~len:20 ()) (ops_arbitrary ~len:20 ()))
    (fun (setup, batch) ->
      let db = Db.create (node_schema ()) in
      apply_ops db setup;
      Db.with_txn db (fun () -> apply_ops ~allow_undo:false db batch);
      List.for_all
        (fun id ->
          Value.equal (Db.get db ~watch:false id "total")
            (Engine.oracle_value (Db.engine db) id "total"))
        (Db.instance_ids db))

(* A wider schema than [node_schema]: several intrinsic and derived
   slots per instance, transmissions across both link directions, and a
   mid-run DDL extension.  Exercises the compiled slot layouts (multiple
   slot indices per type, cross-deps through both the relationship and
   its inverse) rather than the single-derived-attr shape above. *)
let rich_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "weight" (int 2));
  (* self-only derived: two own slots combined *)
  Schema.add_attr sch ~type_name:"node" (Rule.derived "scaled" (Rule.map2 "local" "weight" Value.mul));
  (* recursive aggregate over the forward link, rooted in a derived slot *)
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "scaled" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  (* recursive max over the forward link *)
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "peak"
       (Rule.combine_self_rel "local" "deps" "peak" ~f:(fun own peaks ->
            Value.max_ ~default:own (own :: peaks))));
  (* aggregate across the inverse link, over a derived source *)
  Schema.add_attr sch ~type_name:"node" (Rule.derived "fanin" (Rule.count_rel "rdeps" "scaled"));
  sch

let rich_attrs = [ "scaled"; "total"; "peak"; "fanin" ]

let prop_compiled_layout_oracle =
  QCheck.Test.make ~name:"compiled slot layouts match oracle on multi-attr schema" ~count:80
    QCheck.(pair (ops_arbitrary ~len:35 ()) (ops_arbitrary ~len:15 ()))
    (fun (setup, more) ->
      let db = Db.create (rich_schema ()) in
      apply_ops db setup;
      (* DDL while instances exist: the new attr must get a fresh slot in
         every live instance's (already compiled) layout.  add_attr is a
         logged schema delta now, so keep undo out of the follow-up batch
         — it would retract the attribute this property reads. *)
      Db.add_attr db ~type_name:"node"
        (Rule.derived "boosted" (Rule.map2 "total" "weight" Value.add));
      apply_ops ~allow_undo:false db more;
      let ok attr id =
        Value.equal (Db.get db ~watch:false id attr) (Engine.oracle_value (Db.engine db) id attr)
      in
      Cactis.Integrity.check db = []
      && List.for_all
           (fun id -> List.for_all (fun attr -> ok attr id) ("boosted" :: rich_attrs))
           (Db.instance_ids db))

let prop_undo_roundtrip =
  QCheck.Test.make ~name:"txn + undo restores the observable state" ~count:120
    QCheck.(pair (ops_arbitrary ~len:25 ()) (ops_arbitrary ~len:15 ()))
    (fun (setup, batch) ->
      let db = Db.create (node_schema ()) in
      apply_ops db setup;
      let before = state_snapshot db in
      let pos = Db.position db in
      Db.with_txn db (fun () -> apply_ops ~allow_undo:false db batch);
      if Db.position db > pos then Db.undo_last db;
      Cactis.Integrity.check db = [] && state_snapshot db = before)

let prop_undo_redo_roundtrip =
  QCheck.Test.make ~name:"undo then redo restores the new state" ~count:120
    QCheck.(pair (ops_arbitrary ~len:25 ()) (ops_arbitrary ~len:15 ()))
    (fun (setup, batch) ->
      let db = Db.create (node_schema ()) in
      apply_ops db setup;
      let pos = Db.position db in
      Db.with_txn db (fun () -> apply_ops ~allow_undo:false db batch);
      if Db.position db > pos then begin
        let after = state_snapshot db in
        Db.undo_last db;
        Db.redo db;
        state_snapshot db = after
      end
      else true)

let prop_strategies_agree =
  QCheck.Test.make ~name:"evaluation strategies compute the same values" ~count:60
    (ops_arbitrary ~len:30 ())
    (fun ops ->
      let run strategy =
        let db = Db.create ~strategy (node_schema ()) in
        apply_ops ~allow_undo:false db ops;
        state_snapshot db
      in
      let reference = run Engine.Cactis in
      run Engine.Eager_triggers = reference && run Engine.Recompute_all = reference)

let prop_schedulers_agree =
  QCheck.Test.make ~name:"fifo and greedy schedulers compute the same values" ~count:60
    (ops_arbitrary ~len:40 ())
    (fun ops ->
      let run sched =
        let db = Db.create ~sched ~block_capacity:2 ~buffer_capacity:2 (node_schema ()) in
        apply_ops db ops;
        state_snapshot db
      in
      let reference = run Cactis.Sched.Fifo in
      run Cactis.Sched.Greedy = reference && run Cactis.Sched.Cost_only = reference)

let prop_single_evaluation =
  QCheck.Test.make ~name:"no attribute evaluated twice per propagation" ~count:80
    (ops_arbitrary ~len:30 ())
    (fun ops ->
      let db = Db.create (node_schema ()) in
      apply_ops ~allow_undo:false db ops;
      (* Settle: evaluate everything. *)
      List.iter (fun id -> ignore (Db.get db ~watch:false id "total")) (Db.instance_ids db);
      match Db.instance_ids db with
      | [] -> true
      | ids ->
        let n = List.length ids in
        let target = List.nth ids (n / 2) in
        let c = Db.counters db in
        let before = Counters.get c "rule_evals" in
        Db.set db target "local" (int 424242);
        List.iter (fun id -> ignore (Db.get db ~watch:false id "total")) ids;
        let evals = Counters.get c "rule_evals" - before in
        (* Each of the n derived attributes may be evaluated at most
           once. *)
        evals <= n)

let prop_marks_bounded_by_affected =
  QCheck.Test.make ~name:"mark visits bounded by dependents subgraph" ~count:80
    (ops_arbitrary ~len:30 ())
    (fun ops ->
      let db = Db.create (node_schema ()) in
      apply_ops ~allow_undo:false db ops;
      List.iter (fun id -> ignore (Db.get db ~watch:false id "total")) (Db.instance_ids db);
      match Db.instance_ids db with
      | [] -> true
      | ids ->
        let target = List.hd ids in
        (* Nodes + edges of the dependent closure of target. *)
        let visited = Hashtbl.create 16 in
        let edges = ref 0 in
        let rec bfs id =
          if not (Hashtbl.mem visited id) then begin
            Hashtbl.add visited id ();
            let parents = Db.related db id "rdeps" in
            edges := !edges + List.length parents;
            List.iter bfs parents
          end
        in
        bfs target;
        let bound = Hashtbl.length visited + !edges in
        let c = Db.counters db in
        let before = Counters.get c "mark_visits" in
        Db.set db target "local" (int 31337);
        Counters.get c "mark_visits" - before <= bound)

let prop_no_eval_without_demand =
  QCheck.Test.make ~name:"unqueried attributes are never evaluated" ~count:80
    (ops_arbitrary ~len:30 ())
    (fun ops ->
      (* Filter out queries: with no demand and no constraints, the
         engine must not run a single rule. *)
      let mutations =
        List.filter (function Query _ | Undo | Redo -> false | _ -> true) ops
      in
      let db = Db.create (node_schema ()) in
      apply_ops ~allow_undo:false db mutations;
      Counters.get (Db.counters db) "rule_evals" = 0)

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot save/load preserves observable state" ~count:80
    (ops_arbitrary ~len:40 ())
    (fun ops ->
      let db = Db.create (node_schema ()) in
      apply_ops db ops;
      let db2 = Cactis.Snapshot.load (Db.schema db) (Cactis.Snapshot.save db) in
      Cactis.Integrity.check db2 = [] && state_snapshot db = state_snapshot db2)

let prop_cc_serializable =
  QCheck.Test.make ~name:"timestamp CC schedules are serializable" ~count:40
    QCheck.(
      make
        ~print:(fun (seed, clients, hot) -> Printf.sprintf "seed=%d clients=%d hot=%.2f" seed clients hot)
        Gen.(
          let* seed = int_range 0 10_000 in
          let* clients = int_range 2 5 in
          let* hot = float_range 0.0 1.0 in
          return (seed, clients, hot)))
    (fun (seed, clients, hot) ->
      let module Cc = Cactis_cc.Timestamp_cc in
      let module Wl = Cactis_cc.Workload in
      let module Il = Cactis_cc.Interleave in
      let module So = Cactis_cc.Serial_oracle in
      let instances = 5 in
      let db, accounts, _ = Wl.counters_db ~instances () in
      let cc = Cc.create db in
      let rng = Cactis_util.Rng.create seed in
      let scripts =
        List.init clients (fun _ ->
            Wl.generate
              (Cactis_util.Rng.split rng)
              ~accounts ~txns:4 ~ops_per_txn:3 ~hot_fraction:hot ~read_fraction:0.3)
      in
      let stats = Il.run ~rng ~cc ~clients:scripts () in
      let oracle =
        So.replay
          ~setup:(fun () ->
            let db, _, _ = Wl.counters_db ~instances () in
            db)
          ~committed:stats.Il.committed_scripts
      in
      So.equivalent db oracle [ "balance" ])

(* ------------------------------------------------------------------ *)
(* Make facility: random dependency DAGs and touch sequences           *)

let prop_make_builds_minimal_and_complete =
  let module Fs = Cactis_apps.Fs_sim in
  let module Mk = Cactis_apps.Makefac in
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 10 in
      let* touches = list_size (int_range 0 6) (int_range 0 (n - 1)) in
      return (n, touches))
  in
  QCheck.Test.make ~name:"make: builds are complete and minimal" ~count:100
    (QCheck.make
       ~print:(fun (n, touches) ->
         Printf.sprintf "n=%d touches=[%s]" n (String.concat ";" (List.map string_of_int touches)))
       gen)
    (fun (n, touches) ->
      let fs = Fs.create () in
      let mk = Mk.create fs in
      (* Rule i depends on rules with larger index (a random DAG). *)
      let rules =
        Array.init n (fun i ->
            Mk.add_rule mk
              ~file:(Printf.sprintf "f%d" i)
              ~command:(Printf.sprintf "build f%d" i))
      in
      for i = 0 to n - 2 do
        (* deterministic pseudo-random edges derived from i *)
        let j = i + 1 + ((i * 7) mod (n - 1 - i)) in
        Mk.add_dependency mk ~rule:rules.(i) ~on:rules.(j);
        if (i * 3) mod 2 = 0 && i + 1 <= n - 1 then
          if not (List.mem rules.(i + 1) (Db.related (Mk.db mk) rules.(i) "depends_on")) then
            Mk.add_dependency mk ~rule:rules.(i) ~on:rules.(i + 1)
      done;
      (* Full build, then apply the touch sequence and rebuild. *)
      ignore (Mk.build_all mk);
      List.iter (fun i -> Fs.touch fs (Printf.sprintf "f%d" i)) touches;
      Mk.sync mk;
      let stale_before =
        List.filter (fun r -> Mk.needs_rebuild mk r) (Array.to_list rules)
      in
      let plan = Mk.build_plan mk rules.(0) in
      let ran = Mk.build mk rules.(0) in
      (* Complete: nothing in the target's dependency closure is stale. *)
      let rec closure acc id =
        if List.mem id acc then acc
        else List.fold_left closure (id :: acc) (Db.related (Mk.db mk) id "depends_on")
      in
      let reachable = closure [] rules.(0) in
      Mk.sync mk;
      List.for_all (fun id -> not (Mk.needs_rebuild mk id)) reachable
      (* Sound: every command that ran was stale before, or depended on
         something stale (flattened plan = run order). *)
      && List.concat plan <> [] = (ran <> [])
      && List.length ran >= List.length (List.filter (fun r -> List.mem r reachable) stale_before)
      && List.sort compare (List.concat plan) = List.sort compare ran)

(* ------------------------------------------------------------------ *)
(* DDL expression round-trip on generated ASTs                         *)

module Ast = Cactis_ddl.Ast

let expr_gen =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "bb"; "c0"; "rate"; "x" ] in
  let rel = oneofl [ "deps"; "kids" ] in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Lit (Value.Int n)) (int_range 0 99);
        map (fun b -> Ast.Lit (Value.Bool b)) bool;
        map (fun f -> Ast.Lit (Value.Float f)) (float_range 0.0 10.0);
        map (fun s -> Ast.Self_attr s) ident;
        map2 (fun r a -> Ast.Rel_one (r, a)) rel ident;
      ]
  in
  let rec expr n =
    if n <= 0 then leaf
    else
      let sub = expr (n / 2) in
      oneof
        [
          leaf;
          map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) sub sub;
          map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) sub sub;
          map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) sub sub;
          map2 (fun a b -> Ast.Binop (Ast.Lt, a, b)) sub sub;
          map2 (fun a b -> Ast.Binop (Ast.And, a, b)) sub sub;
          map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) sub sub;
          map (fun a -> Ast.Unop (Ast.Not, a)) sub;
          map (fun a -> Ast.Unop (Ast.Neg, a)) sub;
          map3 (fun c t e -> Ast.If (c, t, e)) sub sub sub;
          map2
            (fun r d -> Ast.Rel_agg { agg = Ast.Max; rel = r; attr = "v"; default = Some d })
            rel sub;
          map2 (fun a b -> Ast.Call ("later_of", [ a; b ])) sub sub;
        ]
  in
  expr 8

let prop_expr_print_parse =
  QCheck.Test.make ~name:"print . parse is identity on rule expressions" ~count:500
    (QCheck.make ~print:Cactis_ddl.Pretty.expr_to_string expr_gen)
    (fun ast ->
      let printed = Cactis_ddl.Pretty.expr_to_string ast in
      match Cactis_ddl.Parser.parse_expr printed with
      | ast2 -> ast2 = ast
      | exception _ -> false)

(* ------------------------------------------------------------------ *)

let all_props =
  [
    prop_oracle_consistency;
    prop_oracle_consistency_txn;
    prop_compiled_layout_oracle;
    prop_undo_roundtrip;
    prop_undo_redo_roundtrip;
    prop_strategies_agree;
    prop_schedulers_agree;
    prop_single_evaluation;
    prop_marks_bounded_by_affected;
    prop_no_eval_without_demand;
    prop_snapshot_roundtrip;
    prop_cc_serializable;
    prop_make_builds_minimal_and_complete;
    prop_expr_print_parse;
  ]

let () =
  Alcotest.run "cactis-properties"
    [ ("engine", List.map QCheck_alcotest.to_alcotest all_props) ]
