(** The log-shipping wire protocol.

    One message per {!Cactis_net.Frame}; payloads reuse the
    {!Cactis.Codec} primitives, so the replication stream shares its
    byte-level vocabulary with the WAL and binary snapshots.  Every
    message is wrapped in a whole-message CRC-32 ([u32 LE] over the
    body), and every shipped record additionally carries its own
    CRC-32 — the same checksum the WAL frames it with on disk — so a
    flipped byte anywhere surfaces as a typed {!Corrupt} error, never
    as a silently divergent replica.

    {2 Cursors}

    A replica's position is a {!cursor} [(generation, records)]: the
    state reached by loading checkpoint [generation] and applying
    [records] log records on top.  Cursors are totally ordered
    ({!cursor_compare}, lexicographic) because a checkpoint folds all
    prior records into the next generation's snapshot.

    {2 The chain}

    Every streamed item carries the cursor it applies {e on top of}
    ([prev]) and the cursor it produces.  A follower applies an item
    iff [prev] equals its own cursor; an already-passed item is
    skipped (duplicate tolerance), anything else is a typed gap.  This
    makes the stream self-verifying under truncation, duplication and
    reordering — the fault-injection suite exercises exactly these. *)

type cursor = { gen : int; records : int }

val cursor_zero : cursor
val cursor_compare : cursor -> cursor -> int
val cursor_to_string : cursor -> string

(** One shipped WAL record. *)
type entry = {
  e_seq : int;  (** absolute position in the publisher's stream *)
  e_prev : cursor;  (** state this record applies on top of *)
  e_cursor : cursor;  (** state after applying it *)
  e_record : string;  (** {!Cactis.Codec.encode_delta} bytes *)
}

(** Raised on any CRC, framing or tag violation while decoding
    (rebound as {!Repl_error.Corrupt}). *)
exception Corrupt of { context : string; message : string }

(** Follower → writer. *)
type client_msg =
  | Hello of { cursor : cursor; schema_version : int }
      (** Session open: the durable position the follower resumes
          from.  [cursor_zero] for a fresh replica. *)
  | Ack of { seq : int; cursor : cursor; lag_us : int }
      (** Applied through [seq]; [lag_us] is receive-to-applied. *)

(** Writer → follower. *)
type server_msg =
  | Refuse of { code : string; message : string }
      (** Handshake rejected; see {!Repl_error} codes.  Fatal. *)
  | Snap_begin of { generation : int; schema_version : int; size : int }
      (** Bootstrap: a checkpoint snapshot follows in chunks. *)
  | Snap_chunk of { last : bool; data : string }
  | Batch of { sent_us : int; entries : entry list }
      (** Group-commit: every record drained since the last wake, in
          commit order. *)
  | Mark of { seq : int; prev : cursor; generation : int }
      (** Checkpoint notification: the state at [prev] now equals
          checkpoint [generation] — advance to [(generation, 0)]
          without applying anything. *)
  | Heartbeat of { head_seq : int; cursor : cursor; sent_us : int }
      (** Liveness + lag: the writer's stream head and cursor. *)

val encode_client : client_msg -> string
val encode_server : server_msg -> string

(** @raise Corrupt on a CRC mismatch, bad tag, truncation or trailing
    bytes. *)
val decode_client : string -> client_msg

val decode_server : string -> server_msg

(** Chunk size for snapshot shipping (comfortably under
    {!Cactis_net.Frame.max_payload}). *)
val snap_chunk_bytes : int
