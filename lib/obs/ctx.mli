(** Per-database observability context.

    One [Ctx.t] travels with each store/database: a shared tracer
    (disabled by default) and a shared histogram registry (always on).
    Layers cache the histogram cells they observe into at construction
    time and consult [trace] at each recording site. *)

type t = {
  trace : Trace.t;
  hists : Histogram.t;
}

val create : ?trace_capacity:int -> unit -> t

(** [time ctx h name f] — run [f], observe its duration into [h], and
    record a span named [name] when tracing is enabled.  The duration is
    recorded even if [f] raises. *)
val time : t -> Histogram.h -> ?cat:string -> string -> (unit -> 'a) -> 'a
