lib/core/snapshot.mli: Db Engine Sched Schema Value
