type link = {
  a : int;
  b : int;
  rel : string;
  count : int;
}

type assignment = {
  block_of : (int, int) Hashtbl.t;
  block_count : int;
}

type strategy =
  | Sequential
  | Greedy
  | Dstc
  | Bfs_affinity

let all_strategies = [ Sequential; Greedy; Dstc; Bfs_affinity ]

let strategy_name = function
  | Sequential -> "sequential"
  | Greedy -> "greedy"
  | Dstc -> "dstc"
  | Bfs_affinity -> "bfs-affinity"

let strategy_of_string = function
  | "sequential" -> Some Sequential
  | "greedy" -> Some Greedy
  | "dstc" -> Some Dstc
  | "bfs-affinity" | "bfs_affinity" | "bfs" -> Some Bfs_affinity
  | _ -> None

(* Shared adjacency builder: instance -> links touching it, restricted
   to links whose both ends are known instances. *)
let build_adj instances links =
  let known = Hashtbl.create (List.length instances) in
  List.iter (fun (id, _) -> Hashtbl.replace known id ()) instances;
  let adj : (int, link list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_adj id l =
    match Hashtbl.find_opt adj id with
    | Some r -> r := l :: !r
    | None -> Hashtbl.add adj id (ref [ l ])
  in
  List.iter
    (fun l ->
      if Hashtbl.mem known l.a && Hashtbl.mem known l.b then begin
        add_adj l.a l;
        add_adj l.b l
      end)
    links;
  adj

(* ------------------------------------------------------------------ *)
(* Paper §2.3: greedy usage-count packing                              *)

(* The outer loop wants "the most referenced unassigned instance"; the
   inner loop wants "the highest-count link from the block to an
   unassigned outside instance".  Both are served by priority heaps with
   lazy deletion — entries whose instance has been assigned in the
   meantime are skipped when popped — so packing is O((V + E) log E)
   rather than the quadratic rescan of the literal pseudo-code.
   Priorities are negated (Pqueue is a min-heap) and tie-broken by
   instance id for determinism. *)

let priority count id = (-.float_of_int count) +. (float_of_int id *. 1e-9)

let pack ~block_capacity ~instances ~links =
  if block_capacity < 1 then invalid_arg "Cluster.pack: block_capacity must be >= 1";
  let block_of = Hashtbl.create (List.length instances) in
  let assigned id = Hashtbl.mem block_of id in
  let adj = build_adj instances links in
  let seeds = Cactis_util.Pqueue.create () in
  List.iter (fun (id, accesses) -> Cactis_util.Pqueue.push seeds (priority accesses id) id) instances;
  let next_block = ref 0 in
  let rec next_seed () =
    match Cactis_util.Pqueue.pop_opt seeds with
    | None -> None
    | Some id -> if assigned id then next_seed () else Some id
  in
  let assign_to_block block id candidates =
    Hashtbl.replace block_of id block;
    let neighbours = match Hashtbl.find_opt adj id with Some r -> !r | None -> [] in
    List.iter
      (fun l ->
        let other = if l.a = id then l.b else l.a in
        if not (assigned other) then
          Cactis_util.Pqueue.push candidates (priority l.count other) other)
      neighbours
  in
  let rec fill_block block candidates used =
    if used >= block_capacity then ()
    else
      match Cactis_util.Pqueue.pop_opt candidates with
      | None -> ()
      | Some id ->
        if assigned id then fill_block block candidates used
        else begin
          assign_to_block block id candidates;
          fill_block block candidates (used + 1)
        end
  in
  let rec outer () =
    match next_seed () with
    | None -> ()
    | Some seed ->
      let block = !next_block in
      incr next_block;
      let candidates = Cactis_util.Pqueue.create () in
      assign_to_block block seed candidates;
      fill_block block candidates 1;
      outer ()
  in
  outer ();
  { block_of; block_count = !next_block }

let sequential ~block_capacity ~instances =
  if block_capacity < 1 then invalid_arg "Cluster.sequential: block_capacity must be >= 1";
  let sorted = List.sort compare instances in
  let block_of = Hashtbl.create (List.length sorted) in
  let n = ref 0 in
  List.iteri (fun i id ->
      let block = i / block_capacity in
      Hashtbl.replace block_of id block;
      n := block + 1)
    sorted;
  { block_of; block_count = !n }

(* ------------------------------------------------------------------ *)
(* DSTC-style dynamic statistics clustering                            *)

(* After Bullat & Schneider's DSTC as surveyed by Darmont & Gruenwald:
   clustering units are built bottom-up from the *link* statistics —
   the hottest links are consolidated first, agglomerating instances
   into units no larger than a block — and the units are then laid out
   by descending unit heat (first-fit decreasing into blocks).  Where
   the paper's greedy algorithm grows one block at a time from the
   hottest *instance*, DSTC optimizes the hottest *edges* globally,
   which keeps tightly-coupled pairs together even when neither end is
   individually hot. *)

let pack_dstc ~block_capacity ~instances ~links =
  if block_capacity < 1 then invalid_arg "Cluster.pack_dstc: block_capacity must be >= 1";
  let n = List.length instances in
  let known = Hashtbl.create n in
  List.iter (fun (id, heat) -> Hashtbl.replace known id heat) instances;
  (* Union-find with size caps: merging never builds a unit larger than
     a block, so layout is a plain bin pack of whole units. *)
  let parent = Hashtbl.create n in
  let size = Hashtbl.create n in
  let heat = Hashtbl.create n in
  List.iter
    (fun (id, h) ->
      Hashtbl.replace parent id id;
      Hashtbl.replace size id 1;
      Hashtbl.replace heat id h)
    instances;
  let rec find id =
    let p = Hashtbl.find parent id in
    if p = id then id
    else begin
      let root = find p in
      Hashtbl.replace parent id root;
      root
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let sa = Hashtbl.find size ra and sb = Hashtbl.find size rb in
      if sa + sb <= block_capacity then begin
        (* Canonical root: smaller id, for determinism. *)
        let keep, drop = if ra < rb then (ra, rb) else (rb, ra) in
        Hashtbl.replace parent drop keep;
        Hashtbl.replace size keep (sa + sb);
        Hashtbl.replace heat keep (Hashtbl.find heat ra + Hashtbl.find heat rb)
      end
    end
  in
  (* Hottest links first; ties by (a, b) for determinism. *)
  let sorted_links =
    links
    |> List.filter (fun l -> l.a <> l.b && Hashtbl.mem known l.a && Hashtbl.mem known l.b)
    |> List.sort (fun l1 l2 ->
           match compare l2.count l1.count with
           | 0 -> compare (min l1.a l1.b, max l1.a l1.b) (min l2.a l2.b, max l2.a l2.b)
           | c -> c)
  in
  List.iter (fun l -> union l.a l.b) sorted_links;
  (* Gather units, order by descending heat (tie: smallest member id). *)
  let members = Hashtbl.create n in
  List.iter
    (fun (id, _) ->
      let r = find id in
      match Hashtbl.find_opt members r with
      | Some l -> l := id :: !l
      | None -> Hashtbl.add members r (ref [ id ]))
    instances;
  let units =
    Hashtbl.fold
      (fun root l acc ->
        let ids = List.sort compare !l in
        (Hashtbl.find heat root, List.hd ids, ids) :: acc)
      members []
    |> List.sort (fun (h1, m1, _) (h2, m2, _) ->
           match compare h2 h1 with 0 -> compare m1 m2 | c -> c)
  in
  (* First-fit decreasing into blocks. *)
  let block_of = Hashtbl.create n in
  let block_used = ref [||] in
  let block_count = ref 0 in
  let place ids =
    let need = List.length ids in
    let rec first_fit b =
      if b >= !block_count then begin
        if !block_count >= Array.length !block_used then begin
          let bigger = Array.make (max 16 (2 * Array.length !block_used)) 0 in
          Array.blit !block_used 0 bigger 0 (Array.length !block_used);
          block_used := bigger
        end;
        incr block_count;
        b
      end
      else if !block_used.(b) + need <= block_capacity then b
      else first_fit (b + 1)
    in
    let b = first_fit 0 in
    !block_used.(b) <- !block_used.(b) + need;
    List.iter (fun id -> Hashtbl.replace block_of id b) ids
  in
  List.iter (fun (_, _, ids) -> place ids) units;
  { block_of; block_count = !block_count }

(* ------------------------------------------------------------------ *)
(* BFS / type-affinity placement                                       *)

(* The static placement-tree family in the Darmont & Gruenwald taxonomy
   (Cactis's contemporaries ORION / O2): ignore dynamic counts and lay
   instances out in breadth-first traversal order of the structural
   graph — children next to parents, siblings adjacent — on the theory
   that applications traverse composition hierarchies breadth-first.
   Seeds are picked by access count (hottest component first) so
   disconnected components still order sensibly; within a frontier,
   neighbours are visited grouped by relationship name (type affinity),
   then by id. *)

let pack_bfs ~block_capacity ~instances ~links =
  if block_capacity < 1 then invalid_arg "Cluster.pack_bfs: block_capacity must be >= 1";
  let adj = build_adj instances links in
  let block_of = Hashtbl.create (List.length instances) in
  let placed = ref 0 in
  let order = Queue.create () in
  let visited = Hashtbl.create (List.length instances) in
  let visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      Queue.push id order
    end
  in
  let seeds =
    List.sort
      (fun (id1, h1) (id2, h2) -> match compare h2 h1 with 0 -> compare id1 id2 | c -> c)
      instances
  in
  List.iter
    (fun (seed, _) ->
      if not (Hashtbl.mem visited seed) then begin
        visit seed;
        (* Plain FIFO BFS; the queue outlives each seed's component. *)
        let frontier = Queue.create () in
        Queue.push seed frontier;
        while not (Queue.is_empty frontier) do
          let id = Queue.pop frontier in
          let neighbours =
            (match Hashtbl.find_opt adj id with Some r -> !r | None -> [])
            |> List.map (fun l -> ((l.rel : string), if l.a = id then l.b else l.a))
            |> List.sort compare
          in
          List.iter
            (fun (_, other) ->
              if not (Hashtbl.mem visited other) then begin
                visit other;
                Queue.push other frontier
              end)
            neighbours
        done
      end)
    seeds;
  let block_count = ref 0 in
  Queue.iter
    (fun id ->
      let b = !placed / block_capacity in
      Hashtbl.replace block_of id b;
      incr placed;
      block_count := b + 1)
    order;
  { block_of; block_count = !block_count }

(* ------------------------------------------------------------------ *)

let pack_with strategy ~block_capacity ~instances ~links =
  match strategy with
  | Sequential -> sequential ~block_capacity ~instances:(List.map fst instances)
  | Greedy -> pack ~block_capacity ~instances ~links
  | Dstc -> pack_dstc ~block_capacity ~instances ~links
  | Bfs_affinity -> pack_bfs ~block_capacity ~instances ~links
