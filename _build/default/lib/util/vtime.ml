type t = float

let epoch = 0.0
let far_future = infinity
let of_days d = d
let to_days t = t
let add_days t d = t +. d
let later_of a b = if a >= b then a else b
let earlier_of a b = if a <= b then a else b
let later_than a b = a > b
let equal (a : t) b = a = b
let compare (a : t) b = Float.compare a b

let pp fmt t =
  if t = far_future then Format.pp_print_string fmt "far-future"
  else Format.fprintf fmt "day %.2f" t

let to_string t = Format.asprintf "%a" pp t
