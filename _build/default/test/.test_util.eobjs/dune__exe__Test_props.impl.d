test/test_props.ml: Alcotest Array Cactis Cactis_apps Cactis_cc Cactis_ddl Cactis_util Gen Hashtbl List Printf QCheck QCheck_alcotest String
