module Schema = Cactis.Schema
module Store = Cactis.Store
module Usage = Cactis_storage.Usage
module Decaying_avg = Cactis_util.Decaying_avg

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)

type interval = {
  lo : float;
  hi : float option;  (* None = unbounded *)
}

let exact x = { lo = x; hi = Some x }
let zero = exact 0.0
let unbounded_above lo = { lo; hi = None }

let add a b =
  {
    lo = a.lo +. b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x +. y) | _ -> None);
  }

let mul a b =
  {
    lo = a.lo *. b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x *. y) | _ -> None);
  }

let scale k a =
  { lo = k *. a.lo; hi = (match a.hi with Some x -> Some (k *. x) | None -> None) }

(* ------------------------------------------------------------------ *)
(* Fan-out statistics                                                  *)

(* Per (type, relationship): how many related instances one traversal
   yields, and what crossing one link costs in expected block reads.
   Static bounds come from the declared cardinality; a live store
   sharpens them to the measured extremes and prices crossings with the
   links' decaying-average cost tags (§2.3). *)
type rel_stats = {
  fan : interval;
  fan_mean : float;  (* for expected-I/O weighting *)
  io_per_cross : float;  (* expected blocks per link traversal *)
}

let static_rel_stats (r : View.rel) =
  match r.View.r_card with
  | Schema.One -> { fan = { lo = 0.0; hi = Some 1.0 }; fan_mean = 1.0; io_per_cross = 1.0 }
  | Schema.Multi -> { fan = unbounded_above 0.0; fan_mean = 1.0; io_per_cross = 1.0 }

let measured_rel_stats st tn (r : View.rel) =
  let ids = Store.instances_of_type st tn in
  match ids with
  | [] -> static_rel_stats r
  | _ ->
    let counts = List.map (fun id -> List.length (Store.linked st id r.View.r_name)) ids in
    let lo = List.fold_left min max_int counts and hi = List.fold_left max 0 counts in
    let total = List.fold_left ( + ) 0 counts in
    let tags =
      List.map (fun id -> Decaying_avg.value (Store.link_tag st id r.View.r_name)) ids
    in
    let io =
      match tags with
      | [] -> 1.0
      | _ -> List.fold_left ( +. ) 0.0 tags /. float_of_int (List.length tags)
    in
    {
      fan = { lo = float_of_int lo; hi = Some (float_of_int hi) };
      fan_mean = float_of_int total /. float_of_int (List.length ids);
      io_per_cross = io;
    }

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

type attr_cost = {
  ac_type : string;
  ac_attr : string;
  ac_shape : Schema.rule_shape option;
  ac_direct : interval;  (* one rule evaluation, sources assumed fresh *)
  ac_cumulative : interval;  (* worst case: every transitive source recomputes *)
  ac_io : float option;  (* expected blocks per evaluation; None without a store *)
}

type t = {
  per_attr : attr_cost list;  (* sorted by (type, attr) *)
  per_type : (string * interval) list;  (* cumulative rollup, sorted *)
  total : interval;
  convergent_sccs : int;
  divergent_sccs : int;
}

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

let analyze ?store (v : View.t) =
  let g = Depgraph.build v in
  let rel_stats_tbl : (string * string, rel_stats) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (t : View.vtype) ->
      List.iter
        (fun (r : View.rel) ->
          let stats =
            match store with
            | Some st -> measured_rel_stats st t.View.t_name r
            | None -> static_rel_stats r
          in
          Hashtbl.replace rel_stats_tbl (t.View.t_name, r.View.r_name) stats)
        t.View.t_rels)
    v.View.v_types;
  let rel_stats tn r =
    match Hashtbl.find_opt rel_stats_tbl (tn, r) with
    | Some s -> s
    | None -> { fan = zero; fan_mean = 0.0; io_per_cross = 0.0 }  (* dangling rel *)
  in
  let attr_of tn a =
    Option.bind (View.find_type v tn) (fun t -> View.find_attr t a)
  in
  (* Direct cost: the rule's own operations plus one unit per fetched
     source value (fan-out-many sources contribute their fan-out). *)
  let direct tn (a : View.attr) =
    if a.View.a_intrinsic then zero
    else
      List.fold_left
        (fun acc src ->
          match src with
          | Schema.Self _ -> add acc (exact 1.0)
          | Schema.Rel (r, _) -> add acc (rel_stats tn r).fan)
        (exact (float_of_int a.View.a_ops))
        a.View.a_sources
  in
  let expected_io tn (a : View.attr) =
    match store with
    | None -> None
    | Some _ ->
      if a.View.a_intrinsic then Some 0.0
      else
        Some
          (List.fold_left
             (fun acc src ->
               match src with
               | Schema.Self _ -> acc
               | Schema.Rel (r, _) ->
                 let s = rel_stats tn r in
                 acc +. (s.fan_mean *. s.io_per_cross))
             0.0 a.View.a_sources)
  in
  (* Resolved sources of a node as (fan interval, target node id). *)
  let resolved_sources tn (a : View.attr) =
    List.filter_map
      (fun src ->
        match src with
        | Schema.Self b ->
          Option.map (fun i -> (exact 1.0, i)) (Depgraph.find g tn b)
        | Schema.Rel (r, name) -> (
          match Option.bind (View.find_type v tn) (fun t -> View.find_rel t r) with
          | None -> None
          | Some rd ->
            let resolved =
              View.resolve_export v ~target:rd.View.r_target ~inverse:rd.View.r_inverse name
            in
            Option.map
              (fun i -> ((rel_stats tn r).fan, i))
              (Depgraph.find g rd.View.r_target resolved)))
      a.View.a_sources
  in
  (* Cumulative cost by SCC condensation: sources outside the SCC first,
     then the component as a whole.  A convergent SCC re-evaluates its
     members at most [coeff] times per participating slot (type-level
    coefficient from the convergence pass); a divergent one has no
     upper bound. *)
  let sccs = Depgraph.cyclic_sccs g in
  let verdicts = List.map (Fixpoint.classify v g) sccs in
  let scc_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun si comp -> List.iter (fun i -> Hashtbl.replace scc_of i si) comp) sccs;
  let verdict_arr = Array.of_list verdicts in
  let scc_arr = Array.of_list sccs in
  let memo : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let rec cum i =
    match Hashtbl.find_opt memo i with
    | Some c -> c
    | None ->
      (match Hashtbl.find_opt scc_of i with
      | Some si -> compute_scc si
      | None ->
        let n = Depgraph.node g i in
        let c =
          match attr_of n.Diag.n_type n.Diag.n_attr with
          | None -> zero
          | Some a ->
            List.fold_left
              (fun acc (fan, j) -> add acc (mul fan (cum j)))
              (direct n.Diag.n_type a)
              (resolved_sources n.Diag.n_type a)
        in
        Hashtbl.add memo i c);
      Hashtbl.find memo i
  and compute_scc si =
    let comp = scc_arr.(si) in
    let member = Hashtbl.create 8 in
    List.iter (fun i -> Hashtbl.replace member i ()) comp;
    (* Each member's one-round cost: direct plus external inputs. *)
    let locals =
      List.map
        (fun i ->
          let n = Depgraph.node g i in
          let c =
            match attr_of n.Diag.n_type n.Diag.n_attr with
            | None -> zero
            | Some a ->
              List.fold_left
                (fun acc (fan, j) ->
                  if Hashtbl.mem member j then acc else add acc (mul fan (cum j)))
                (direct n.Diag.n_type a)
                (resolved_sources n.Diag.n_type a)
          in
          (i, c))
        comp
    in
    let round = List.fold_left (fun acc (_, c) -> add acc c) zero locals in
    let scc_hi =
      match verdict_arr.(si) with
      | Fixpoint.Convergent { coeff; _ } -> scale (float_of_int coeff) round
      | Fixpoint.Divergent _ -> unbounded_above round.lo
    in
    List.iter (fun (i, c) -> Hashtbl.add memo i { lo = c.lo; hi = scc_hi.hi }) locals
  in
  let per_attr =
    v.View.v_types
    |> List.concat_map (fun (t : View.vtype) ->
           t.View.t_attrs
           |> List.map (fun (a : View.attr) ->
                  let tn = t.View.t_name in
                  let cumulative =
                    match Depgraph.find g tn a.View.a_name with
                    | Some i -> cum i
                    | None -> zero
                  in
                  {
                    ac_type = tn;
                    ac_attr = a.View.a_name;
                    ac_shape = a.View.a_shape;
                    ac_direct = direct tn a;
                    ac_cumulative = cumulative;
                    ac_io = expected_io tn a;
                  }))
    |> List.sort (fun a b ->
           match String.compare a.ac_type b.ac_type with
           | 0 -> String.compare a.ac_attr b.ac_attr
           | c -> c)
  in
  let per_type =
    v.View.v_types
    |> List.map (fun (t : View.vtype) ->
           ( t.View.t_name,
             List.fold_left
               (fun acc ac ->
                 if String.equal ac.ac_type t.View.t_name then add acc ac.ac_cumulative
                 else acc)
               zero per_attr ))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let total = List.fold_left (fun acc (_, c) -> add acc c) zero per_type in
  let convergent_sccs =
    List.length (List.filter (function Fixpoint.Convergent _ -> true | _ -> false) verdicts)
  in
  {
    per_attr;
    per_type;
    total;
    convergent_sccs;
    divergent_sccs = List.length verdicts - convergent_sccs;
  }

let analyze_schema ?db sch =
  analyze ?store:(Option.map Cactis.Db.store db) (View.of_schema sch)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let num x =
  (* Stable fixed-precision rendering; integral values print bare. *)
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let interval_to_json i =
  Printf.sprintf "{\"lo\":%s,\"hi\":%s}" (num i.lo)
    (match i.hi with Some h -> num h | None -> "null")

let to_json t =
  let attrs =
    t.per_attr
    |> List.map (fun a ->
           Printf.sprintf
             "{\"type\":\"%s\",\"attr\":\"%s\",\"shape\":%s,\"direct\":%s,\"cumulative\":%s,\"io\":%s}"
             a.ac_type a.ac_attr
             (match a.ac_shape with
             | Some s -> Printf.sprintf "\"%s\"" (Schema.shape_name s)
             | None -> "null")
             (interval_to_json a.ac_direct)
             (interval_to_json a.ac_cumulative)
             (match a.ac_io with Some io -> num io | None -> "null"))
    |> String.concat ","
  in
  let types =
    t.per_type
    |> List.map (fun (tn, c) ->
           Printf.sprintf "{\"name\":\"%s\",\"cumulative\":%s}" tn (interval_to_json c))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"schema\":{\"total\":%s,\"convergent_sccs\":%d,\"divergent_sccs\":%d},\"types\":[%s],\"attrs\":[%s]}"
    (interval_to_json t.total) t.convergent_sccs t.divergent_sccs types attrs

let interval_to_string i =
  match i.hi with
  | Some h when h = i.lo -> num i.lo
  | Some h -> Printf.sprintf "[%s, %s]" (num i.lo) (num h)
  | None -> Printf.sprintf "[%s, unbounded)" (num i.lo)

let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun a ->
      if a.ac_direct.hi <> Some 0.0 || a.ac_direct.lo <> 0.0 then
        Buffer.add_string buf
          (Printf.sprintf "%-40s direct %-14s cumulative %-18s%s%s\n"
             (a.ac_type ^ "." ^ a.ac_attr)
             (interval_to_string a.ac_direct)
             (interval_to_string a.ac_cumulative)
             (match a.ac_shape with
             | Some s -> " shape " ^ Schema.shape_name s
             | None -> "")
             (match a.ac_io with
             | Some io when io > 0.0 -> Printf.sprintf " io %s" (num io)
             | _ -> "")))
    t.per_attr;
  Buffer.add_string buf
    (Printf.sprintf "schema total %s (%d convergent cycle(s), %d divergent)\n"
       (interval_to_string t.total) t.convergent_sccs t.divergent_sccs);
  Buffer.contents buf
