lib/util/counters.ml: Format Hashtbl List Option Stdlib String
