(** Simulated filesystem for the make facility (Figures 2-4).

    The paper's make capability reads file modification times and issues
    shell commands to recreate files.  To keep the reproduction
    deterministic and observable we simulate the filesystem: files carry
    contents and modification times on a virtual clock, and every command
    execution is journalled, so tests can assert exactly which rebuilds
    ran and in what order. *)

type t

val create : unit -> t

(** Current virtual time.  The clock advances by one tick on every
    file-mutating operation, so distinct writes get distinct times. *)
val now : t -> Cactis_util.Vtime.t

(** [advance t days] moves the clock forward explicitly. *)
val advance : t -> float -> unit

val write_file : t -> string -> string -> unit
val read_file : t -> string -> string option
val remove : t -> string -> unit
val exists : t -> string -> bool

(** [touch t path] bumps the file's modification time (creating an empty
    file if needed). *)
val touch : t -> string -> unit

(** Modification time; [Vtime.far_future] when the file does not exist —
    the exact convention of Figure 3 ("a time in the distant future if
    the file does not exist"), which forces a rebuild. *)
val mod_time : t -> string -> Cactis_util.Vtime.t

(** [run_command t cmd] journals and interprets a command.  The built-in
    interpreter understands ["make <path>"] / ["cc -o <path> …"]-style
    commands whose first output is the word after [-o] or the last word:
    it (re)creates that file at the current clock.  Install a custom
    interpreter with {!set_interpreter} for richer behaviour. *)
val run_command : t -> string -> unit

val set_interpreter : t -> (t -> string -> unit) -> unit

(** Commands executed so far, oldest first. *)
val journal : t -> string list

val clear_journal : t -> unit

(** All existing paths, sorted. *)
val files : t -> string list
