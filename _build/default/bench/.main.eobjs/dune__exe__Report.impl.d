bench/report.ml: Analyze Bechamel Benchmark Cactis Cactis_storage Cactis_util Hashtbl List Measure Printf String Time Toolkit
