module Db = Cactis.Db
module Schema = Cactis.Schema
module Snapshot = Cactis.Snapshot
module Codec = Cactis.Codec
module Value = Cactis.Value
module Engine = Cactis.Engine
module Counters = Cactis_util.Counters
module Histogram = Cactis_obs.Histogram
module Trace = Cactis_obs.Trace
module Partition = Cactis_dist.Partition

type config = {
  cfg_port : int;
  cfg_readers : int;
  cfg_trace_sample : int;
  cfg_backlog : int;
}

let config ?(port = 0) ?(readers = 1) ?(trace_sample = 64) ?(backlog = 64) () =
  if readers < 1 then invalid_arg "Server.config: readers must be >= 1";
  { cfg_port = port; cfg_readers = readers; cfg_trace_sample = trace_sample; cfg_backlog = backlog }

(* A connection is read only by the front end; responses are written by
   whichever domain served the request, serialized per connection by
   [out_mu] so frames never interleave. *)
type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  out_mu : Mutex.t;
  mutable alive : bool;
}

type job = {
  j_conn : conn;
  j_env : Proto.envelope;
  j_req : Proto.req;
  j_start_ns : int64;
}

type msg =
  | Apply of int * string  (* version, encoded delta *)
  | Serve of job
  | Quit

type queue = {
  qmu : Mutex.t;
  qcond : Condition.t;
  qitems : msg Queue.t;
}

let queue () = { qmu = Mutex.create (); qcond = Condition.create (); qitems = Queue.create () }

let push q m =
  Mutex.lock q.qmu;
  Queue.push m q.qitems;
  Condition.signal q.qcond;
  Mutex.unlock q.qmu

let pop q =
  Mutex.lock q.qmu;
  while Queue.is_empty q.qitems do
    Condition.wait q.qcond q.qmu
  done;
  let m = Queue.pop q.qitems in
  Mutex.unlock q.qmu;
  m

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  published : int Atomic.t;
  writer_q : queue;
  reader_qs : queue array;
  partition : Partition.t;
  ctrs : Counters.t;
  lats : Histogram.t;
  tracer : Trace.t;
  db_counters : Counters.t;
  mutable domains : unit Domain.t list;
}

let port t = t.bound_port
let readers t = Array.length t.reader_qs
let published_version t = Atomic.get t.published
let counters t = t.ctrs
let latencies t = t.lats
let trace t = t.tracer

let elapsed_s start_ns = Int64.to_float (Int64.sub (Trace.now_ns ()) start_ns) *. 1e-9

(* Reply on the job's connection.  A dead peer only kills that
   connection, never the serving domain. *)
let send_resp t conn env resp ~verb ~start_ns =
  let payload = Proto.encode_resp env resp in
  (* Record the latency before the bytes leave: once a client holds the
     response, a Stats request is guaranteed to see this observation. *)
  Histogram.observe (Histogram.cell t.lats ("serve." ^ verb)) (elapsed_s start_ns);
  Mutex.lock conn.out_mu;
  (try if conn.alive then Frame.send conn.fd payload
   with _ -> conn.alive <- false);
  Mutex.unlock conn.out_mu;
  match resp with
  | Proto.Error { code; _ } ->
    Counters.incr t.ctrs ("server.error." ^ Proto.error_code_name code)
  | _ -> ()

(* ---- Writer domain ---- *)

let apply_update db created = function
  | Proto.Set { instance; attr; value } -> Db.set db instance attr value
  | Proto.Create { type_name } -> created := Db.create_instance db type_name :: !created
  | Proto.Link { from_id; rel; to_id } -> Db.link db ~from_id ~rel ~to_id
  | Proto.Unlink { from_id; rel; to_id } -> Db.unlink db ~from_id ~rel ~to_id

let writer_serve t db { j_conn; j_env; j_req; j_start_ns } =
  match j_req with
  | Proto.Commit updates ->
    let resp =
      try
        let created = ref [] in
        Db.with_txn db (fun () -> List.iter (apply_update db created) updates);
        let version = Atomic.get t.published in
        (* Sampled tracing: one commit in [trace_sample] records a span
           carrying the client's span id, so traces stitch across the
           wire. *)
        if t.cfg.cfg_trace_sample > 0 && version mod t.cfg.cfg_trace_sample = 0 then
          Trace.complete t.tracer ~cat:"server"
            ~args:[ ("span_id", Trace.I j_env.Proto.span_id); ("version", Trace.I version) ]
            ~start_ns:j_start_ns "commit";
        Proto.Committed { version; created = List.rev !created }
      with e -> Proto.error_of_exn e
    in
    send_resp t j_conn j_env resp ~verb:"commit" ~start_ns:j_start_ns
  | Proto.Open_session ->
    let resp =
      Proto.Opened
        {
          version = Atomic.get t.published;
          readers = Array.length t.reader_qs;
          instances = List.length (Db.instance_ids db);
        }
    in
    send_resp t j_conn j_env resp ~verb:"open" ~start_ns:j_start_ns
  | req ->
    send_resp t j_conn j_env
      (Proto.Error
         { code = Proto.E_server; message = "writer cannot serve " ^ Proto.verb_name req })
      ~verb:(Proto.verb_name req) ~start_ns:j_start_ns

let writer_loop t db =
  (* Chain the delta broadcast after whatever durability hook (the WAL)
     is already installed; runs on this domain, during commit, so the
     broadcast always precedes the client's Committed response — which
     is what makes a subsequent min_version read safe to route. *)
  let prior = Db.commit_hook db in
  Db.set_commit_hook db
    (Some
       (fun delta ->
         (match prior with Some f -> f delta | None -> ());
         let v = Atomic.get t.published + 1 in
         let encoded = Codec.encode_delta delta in
         Array.iter (fun q -> push q (Apply (v, encoded))) t.reader_qs;
         Atomic.set t.published v));
  let rec loop () =
    match pop t.writer_q with
    | Quit -> ()
    | Apply _ -> loop ()
    | Serve job ->
      writer_serve t db job;
      loop ()
  in
  loop ()

(* ---- Reader domains ---- *)

(* Depth-limited reachability: a node is visited at the shallowest
   depth it is seen at, so [depth] bounds hops from the root ([< 0] =
   unbounded). *)
let traverse db ~root ~rel ~attr ~depth =
  let seen = Hashtbl.create 64 in
  let values = ref [] in
  let frontier = ref [ root ] in
  let d = ref 0 in
  while !frontier <> [] && (depth < 0 || !d <= depth) do
    let next = ref [] in
    List.iter
      (fun id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          values := Db.get db id attr :: !values;
          next := List.rev_append (Db.related db id rel) !next
        end)
      !frontier;
    frontier := !next;
    incr d
  done;
  (Hashtbl.length seen, Value.sum !values)

let reader_serve t replica ~applied { j_conn; j_env; j_req; j_start_ns } =
  let resp =
    try
      match j_req with
      | Proto.Read { instance; attr; _ } ->
        Proto.Value { version = applied; value = Db.get replica instance attr }
      | Proto.Traverse { root; rel; attr; depth; _ } ->
        let visited, total = traverse replica ~root ~rel ~attr ~depth in
        Proto.Traversed { version = applied; visited; total }
      | req ->
        Proto.Error
          { code = Proto.E_server; message = "reader cannot serve " ^ Proto.verb_name req }
    with e -> Proto.error_of_exn e
  in
  send_resp t j_conn j_env resp ~verb:(Proto.verb_name j_req) ~start_ns:j_start_ns

let job_min_version job =
  match job.j_req with
  | Proto.Read { min_version; _ } | Proto.Traverse { min_version; _ } -> min_version
  | _ -> 0

let reader_loop t master_snapshot make_schema =
  let replica = Snapshot.load_binary (make_schema ()) master_snapshot in
  let applied = ref 0 in
  (* The broadcast happens during commit, strictly before the Committed
     response, so a read naming version v always queues behind Apply v.
     [deferred] is a safety net, not the expected path. *)
  let deferred = ref [] in
  let flush_deferred q_self =
    let ready, still = List.partition (fun j -> job_min_version j <= !applied) !deferred in
    deferred := still;
    List.iter (fun j -> reader_serve t replica ~applied:!applied j) ready;
    ignore q_self
  in
  let rec loop q =
    match pop q with
    | Quit -> ()
    | Apply (v, delta) ->
      Db.replay_delta replica (Codec.decode_delta delta);
      Engine.propagate (Db.engine replica);
      applied := v;
      flush_deferred q;
      loop q
    | Serve job ->
      if job_min_version job <= !applied then reader_serve t replica ~applied:!applied job
      else deferred := job :: !deferred;
      loop q
  in
  loop

(* ---- Front end ---- *)

(* Closing takes the same mutex responses are written under, so a
   worker mid-reply either finishes its frame first or sees [alive =
   false] — the fd is never closed (and possibly reused) under a
   concurrent write. *)
let kill_conn conn =
  Mutex.lock conn.out_mu;
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with _ -> ())
  end;
  Mutex.unlock conn.out_mu

let close_conn conns conn =
  kill_conn conn;
  Hashtbl.remove conns conn.fd

let stats_reply t =
  let server = Counters.snapshot t.ctrs in
  let db = List.map (fun (n, v) -> ("db." ^ n, v)) (Counters.snapshot t.db_counters) in
  let latencies =
    List.map
      (fun st ->
        {
          Proto.l_name = st.Histogram.st_name;
          l_count = st.Histogram.st_count;
          l_mean = st.Histogram.st_mean;
          l_p50 = st.Histogram.st_p50;
          l_p95 = st.Histogram.st_p95;
          l_p99 = st.Histogram.st_p99;
          l_max = st.Histogram.st_max;
        })
      (Histogram.snapshot t.lats)
  in
  Proto.Stats_reply { counters = server @ db; latencies }

let route t id = Partition.site_of_range t.partition id

let dispatch t conn payload =
  let start_ns = Trace.now_ns () in
  match Proto.decode_req payload with
  | exception Proto.Malformed m ->
    send_resp t conn { Proto.req_id = 0; span_id = 0 }
      (Proto.Error { code = Proto.E_protocol; message = m })
      ~verb:"protocol" ~start_ns
  | env, req -> (
    Counters.incr t.ctrs ("server.req." ^ Proto.verb_name req);
    let job = { j_conn = conn; j_env = env; j_req = req; j_start_ns = start_ns } in
    let check_version min_version k =
      if min_version > Atomic.get t.published then
        send_resp t conn env
          (Proto.Error
             {
               code = Proto.E_protocol;
               message =
                 Printf.sprintf "min_version %d not yet committed (latest %d)" min_version
                   (Atomic.get t.published);
             })
          ~verb:(Proto.verb_name req) ~start_ns
      else k ()
    in
    match req with
    | Proto.Ping -> send_resp t conn env Proto.Pong ~verb:"ping" ~start_ns
    | Proto.Stats -> send_resp t conn env (stats_reply t) ~verb:"stats" ~start_ns
    | Proto.Open_session | Proto.Commit _ -> push t.writer_q (Serve job)
    | Proto.Read { min_version; instance; _ } ->
      check_version min_version (fun () ->
          push t.reader_qs.(route t instance) (Serve job))
    | Proto.Traverse { min_version; root; _ } ->
      check_version min_version (fun () -> push t.reader_qs.(route t root) (Serve job)))

let frontend_loop t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let buf = Bytes.create 65536 in
  let handle_readable conn =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn conns conn
    | n -> (
      Frame.feed conn.dec (Bytes.sub_string buf 0 n);
      try
        let rec drain () =
          match Frame.next conn.dec with
          | Some payload ->
            dispatch t conn payload;
            drain ()
          | None -> ()
        in
        drain ()
      with Frame.Too_large len ->
        send_resp t conn { Proto.req_id = 0; span_id = 0 }
          (Proto.Error
             {
               code = Proto.E_protocol;
               message = Printf.sprintf "frame length %d exceeds %d" len Frame.max_payload;
             })
          ~verb:"protocol" ~start_ns:(Trace.now_ns ());
        close_conn conns conn)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception _ -> close_conn conns conn
  in
  while not (Atomic.get t.stop_flag) do
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [ t.listen_fd ] in
    match Unix.select fds [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.listen_fd then begin
            match Unix.accept ~cloexec:true t.listen_fd with
            | client_fd, _ ->
              Unix.set_nonblock client_fd;
              Counters.incr t.ctrs "server.connections";
              Hashtbl.replace conns client_fd
                {
                  fd = client_fd;
                  dec = Frame.decoder ();
                  out_mu = Mutex.create ();
                  alive = true;
                }
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
              -> ()
            | exception _ -> ()
          end
          else
            match Hashtbl.find_opt conns fd with
            | Some conn -> handle_readable conn
            | None -> ())
        readable
  done;
  Hashtbl.iter (fun _ conn -> kill_conn conn) conns

(* ---- Lifecycle ---- *)

let start ?(config = config ()) ~make_schema db =
  (* A client that disconnects mid-reply must surface as EPIPE on the
     write (handled per connection), not as a process-killing SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let master_snapshot = Snapshot.save_binary db in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.cfg_port));
  Unix.listen listen_fd config.cfg_backlog;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let tracer = Trace.create () in
  Trace.enable tracer;
  let t =
    {
      cfg = config;
      listen_fd;
      bound_port;
      stop_flag = Atomic.make false;
      published = Atomic.make 0;
      writer_q = queue ();
      reader_qs = Array.init config.cfg_readers (fun _ -> queue ());
      partition = Partition.by_range ~ids:(Db.instance_ids db) ~sites:config.cfg_readers;
      ctrs = Counters.create ();
      lats = Histogram.create ();
      tracer;
      db_counters = Db.counters db;
      domains = [];
    }
  in
  let reader_domains =
    Array.to_list
      (Array.map
         (fun q -> Domain.spawn (fun () -> reader_loop t master_snapshot make_schema q))
         t.reader_qs)
  in
  let writer_domain = Domain.spawn (fun () -> writer_loop t db) in
  let frontend_domain = Domain.spawn (fun () -> frontend_loop t) in
  t.domains <- (frontend_domain :: writer_domain :: reader_domains);
  t

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    push t.writer_q Quit;
    Array.iter (fun q -> push q Quit) t.reader_qs;
    List.iter Domain.join t.domains;
    (try Unix.close t.listen_fd with _ -> ())
  end
