lib/core/core.ml:
