(* A miniature software environment with Cactis as its central store —
   the paper's motivating scenario (§3): "a DBMS structures an otherwise
   chaotic system of files, provides a framework for specifying their
   interrelationships and dependencies, and for defining the precise
   effects of the programs which act on these files."

   One database holds the whole project: source modules with build
   dependencies (make facility), milestones tracking the schedule, and a
   bug-report class wired to modules — all with derived attributes kept
   consistent by the incremental engine, queried ad hoc, versioned, and
   persisted to a snapshot.

   Run with: dune exec examples/software_env.exe *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Fs = Cactis_apps.Fs_sim
module Mk = Cactis_apps.Makefac
module Query = Cactis_ddl.Query

let () =
  (* ---- one schema for the whole environment ---- *)
  let fs = Fs.create () in
  List.iter (fun f -> Fs.write_file fs f "source")
    [ "lexer.c"; "parser.c"; "eval.c" ];
  let mk = Mk.create fs in
  let db = Mk.db mk in
  let sch = Db.schema db in

  (* Modules: a thin wrapper over make rules with an owner and a derived
     health status aggregated from open bug reports. *)
  Schema.add_type sch "bug_report";
  Schema.declare_relationship sch ~from_type:"bug_report" ~rel:"about" ~to_type:"make_rule"
    ~inverse:"bugs" ~card:Schema.One ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"bug_report" (Rule.intrinsic "title" (Value.Str ""));
  Schema.add_attr sch ~type_name:"bug_report" (Rule.intrinsic "open_" (Value.Bool true));
  Db.add_attr db ~type_name:"make_rule"
    (Rule.derived "open_bugs"
       (Rule.make [ Schema.Rel ("bugs", "open_") ] (fun env ->
            Value.Int
              (List.length
                 (List.filter Value.as_bool (env.Schema.related_values "bugs" "open_"))))));
  Db.add_attr db ~type_name:"make_rule"
    (Rule.derived "healthy" (Rule.map1 "open_bugs" (fun v -> Value.Bool (Value.as_int v = 0))));

  (* ---- the build graph ---- *)
  let obj name =
    let o =
      Mk.add_rule mk ~file:(name ^ ".o")
        ~command:(Printf.sprintf "cc -c %s.c -o %s.o" name name)
    in
    let s = Mk.add_rule mk ~file:(name ^ ".c") ~command:"" in
    Mk.add_dependency mk ~rule:o ~on:s;
    o
  in
  let lexer = obj "lexer" and parser_o = obj "parser" and eval = obj "eval" in
  let interp = Mk.add_rule mk ~file:"interp" ~command:"cc lexer.o parser.o eval.o -o interp" in
  List.iter (fun o -> Mk.add_dependency mk ~rule:interp ~on:o) [ lexer; parser_o; eval ];

  Printf.printf "== initial build ==\n";
  List.iter (fun c -> Printf.printf "  $ %s\n" c) (Mk.build mk interp);

  (* ---- bug reports against modules ---- *)
  let file_bug ~about title =
    Db.with_txn db (fun () ->
        let b = Db.create_instance db "bug_report" in
        Db.set db b "title" (Value.Str title);
        Db.link db ~from_id:b ~rel:"about" ~to_id:about;
        b)
  in
  let b1 = file_bug ~about:parser_o "precedence wrong for unary minus" in
  let _b2 = file_bug ~about:parser_o "crash on empty input" in
  let _b3 = file_bug ~about:eval "division by zero unchecked" in

  let show_health () =
    List.iter
      (fun id ->
        Printf.printf "  %-10s open bugs: %s  healthy: %s\n"
          (Value.as_string (Db.get db ~watch:false id "file_name"))
          (Value.to_string (Db.get db id "open_bugs"))
          (Value.to_string (Db.get db id "healthy")))
      [ lexer; parser_o; eval; interp ]
  in
  Printf.printf "\n== module health (derived from bug reports) ==\n";
  show_health ();

  (* Ad-hoc query over the live database. *)
  Printf.printf "\nunhealthy modules: %s\n"
    (String.concat ", "
       (List.map
          (fun id -> Value.as_string (Db.get db ~watch:false id "file_name"))
          (Query.select db ~type_name:"make_rule" ~where:"not healthy")));

  (* ---- fix a bug: edit the file, close the report, rebuild ---- *)
  Printf.printf "\n== fixing '%s' ==\n" (Value.as_string (Db.get db ~watch:false b1 "title"));
  Db.tag db "before-fix";
  Db.with_txn db (fun () -> Db.set db b1 "open_" (Value.Bool false));
  Fs.touch fs "parser.c";
  Mk.sync mk;
  List.iter (fun c -> Printf.printf "  $ %s\n" c) (Mk.build mk interp);
  show_health ();

  (* ---- versions: the whole environment state is checkpointable ---- *)
  Db.tag db "after-fix";
  Db.checkout db "before-fix";
  Printf.printf "\nchecked out 'before-fix': parser open bugs = %s\n"
    (Value.to_string (Db.get db parser_o "open_bugs"));
  Db.checkout db "after-fix";
  Printf.printf "checked out 'after-fix':  parser open bugs = %s\n"
    (Value.to_string (Db.get db parser_o "open_bugs"));

  (* ---- persistence: snapshot the store ---- *)
  let snapshot = Cactis.Snapshot.save db in
  let db2 = Cactis.Snapshot.load (Db.schema db) snapshot in
  Printf.printf "\nsnapshot: %d lines; reloaded database has %d instances, parser healthy = %s\n"
    (List.length (String.split_on_char '\n' snapshot))
    (List.length (Db.instance_ids db2))
    (Value.to_string (Db.get db2 parser_o "healthy"))
