lib/core/instance.ml: Hashtbl List Value
