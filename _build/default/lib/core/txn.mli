(** Transaction deltas: the logged primitive operations and their
    inverses.

    The paper's key observation (§2.2, §3): "all of the actions that take
    place as a consequence of changing an attribute value can be undone
    simply by restoring the old value of the attribute … we need only
    remember the small changes made in order to restore the database to
    its old status."  A delta therefore records {e only the primitive
    changes} (intrinsic writes, links made/broken, instances
    created/deleted); derived consequences are re-derived by the engine
    after the inverse operations are replayed. *)

type op =
  | Set_intrinsic of { id : int; attr : string; old_value : Value.t; new_value : Value.t }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }
  | Create of { id : int; type_name : string }
  | Delete of { id : int; type_name : string; intrinsics : (string * Value.t) list }
      (** all links are guaranteed broken (and logged) before deletion *)

(** A committed transaction's log, oldest op first. *)
type delta = {
  ops : op list;
  label : string option;
}

(** [inverse_op op] is the primitive that undoes [op]. *)
val inverse_op : op -> op

(** [inverse d] is the delta that undoes [d] (ops reversed and
    inverted). *)
val inverse : delta -> delta

(** Number of primitive ops — the paper's "size of the delta". *)
val size : delta -> int

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> delta -> unit
