lib/dist/partition.ml: Array Cactis Cactis_storage Cactis_util Hashtbl List
