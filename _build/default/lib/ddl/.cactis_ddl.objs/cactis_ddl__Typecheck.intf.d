lib/ddl/typecheck.mli: Ast
