module Schema = Cactis.Schema

type t = {
  nodes : Diag.node array;
  index : (string * string, int) Hashtbl.t;
  mutable edges : int;
  out_edges : (int * Diag.step) list array;  (* reversed during build, fixed after *)
}

let node_count g = Array.length g.nodes
let edge_count g = g.edges
let node g i = g.nodes.(i)
let find g tn a = Hashtbl.find_opt g.index (tn, a)
let adj g i = g.out_edges.(i)

let build (v : View.t) =
  let nodes =
    v.View.v_types
    |> List.concat_map (fun (t : View.vtype) ->
           List.map (fun (a : View.attr) -> { Diag.n_type = t.View.t_name; n_attr = a.View.a_name })
             t.View.t_attrs)
    |> Array.of_list
  in
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i (n : Diag.node) -> Hashtbl.replace index (n.Diag.n_type, n.Diag.n_attr) i) nodes;
  let g = { nodes; index; edges = 0; out_edges = Array.make (Array.length nodes) [] } in
  List.iter
    (fun (t : View.vtype) ->
      List.iter
        (fun (a : View.attr) ->
          match Hashtbl.find_opt index (t.View.t_name, a.View.a_name) with
          | None -> ()
          | Some from ->
            List.iter
              (fun src ->
                let target =
                  match src with
                  | Schema.Self b -> Option.map (fun i -> (i, Diag.S_self)) (find g t.View.t_name b)
                  | Schema.Rel (r, name) -> (
                    match View.find_rel t r with
                    | None -> None
                    | Some rd ->
                      let resolved =
                        View.resolve_export v ~target:rd.View.r_target ~inverse:rd.View.r_inverse
                          name
                      in
                      Option.map
                        (fun i -> (i, Diag.S_rel r))
                        (find g rd.View.r_target resolved))
                in
                match target with
                | None -> ()
                | Some e ->
                  g.edges <- g.edges + 1;
                  g.out_edges.(from) <- e :: g.out_edges.(from))
              a.View.a_sources)
        t.View.t_attrs)
    v.View.v_types;
  Array.iteri (fun i es -> g.out_edges.(i) <- List.rev es) g.out_edges;
  g

let read_nodes g =
  let read = Array.make (node_count g) false in
  Array.iteri (fun _ es -> List.iter (fun (j, _) -> read.(j) <- true) es) g.out_edges;
  read

(* Tarjan's algorithm, recursive: schema graphs are small (one node per
   declared attribute). *)
let cyclic_sccs g =
  let n = node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (adj g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      let cyclic =
        match comp with
        | [ w ] -> List.exists (fun (x, _) -> x = w) (adj g w)
        | _ -> true
      in
      if cyclic then sccs := List.sort Int.compare comp :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !sccs

let reachable g start =
  let n = node_count g in
  let seen = Array.make n false in
  let via_rel = ref false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter
        (fun (w, step) ->
          (match step with Diag.S_rel _ -> via_rel := true | Diag.S_self -> ());
          go w)
        (adj g v)
    end
  in
  go start;
  (seen, !via_rel)
