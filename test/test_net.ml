(* The TCP serving layer: frame robustness (partial reads, torn frames,
   oversized headers), QCheck protocol roundtrips, and an in-process
   end-to-end server exercising every verb, read-your-writes,
   multi-domain clients and the WAL chain. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Persist = Cactis.Persist
module Frame = Cactis_net.Frame
module Proto = Cactis_net.Proto
module Server = Cactis_net.Server
module Client = Cactis_net.Client

let int n = Value.Int n

(* ---- Frames ---- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let d = Frame.decoder () in
      Frame.feed d (Frame.encode payload);
      Alcotest.(check (option string)) "roundtrip" (Some payload) (Frame.next d);
      Alcotest.(check (option string)) "drained" None (Frame.next d);
      Alcotest.(check int) "no residue" 0 (Frame.buffered d))
    [ ""; "x"; String.make 1000 '\xff'; "embedded\x00nul\nnewline" ]

let test_frame_byte_at_a_time () =
  let payload = "hello frames" in
  let wire = Frame.encode payload in
  let d = Frame.decoder () in
  String.iteri
    (fun i c ->
      (* Until the last byte arrives, no frame may be produced. *)
      if i < String.length wire - 1 then
        Alcotest.(check (option string))
          (Printf.sprintf "partial at %d" i) None (Frame.next d);
      Frame.feed d (String.make 1 c))
    wire;
  Alcotest.(check (option string)) "complete" (Some payload) (Frame.next d)

let test_frame_torn_then_completed () =
  let a = Frame.encode "first" and b = Frame.encode "second" in
  let d = Frame.decoder () in
  (* Feed: all of a + half of b's header, then the rest. *)
  Frame.feed d (a ^ String.sub b 0 2);
  Alcotest.(check (option string)) "first pops" (Some "first") (Frame.next d);
  Alcotest.(check (option string)) "second torn" None (Frame.next d);
  Frame.feed d (String.sub b 2 (String.length b - 2));
  Alcotest.(check (option string)) "second completes" (Some "second") (Frame.next d)

let test_frame_multiple_in_one_feed () =
  let d = Frame.decoder () in
  Frame.feed d (Frame.encode "a" ^ Frame.encode "bb" ^ Frame.encode "ccc");
  Alcotest.(check (list string)) "all three" [ "a"; "bb"; "ccc" ]
    (List.filter_map (fun () -> Frame.next d) [ (); (); () ])

let test_frame_oversized_rejected () =
  (* A poisoned header must raise as soon as it is visible, before the
     body arrives — the receiver must not wait for (or allocate) 2 GiB. *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 0x7fff_ffffl;
  let d = Frame.decoder () in
  Frame.feed d (Bytes.to_string hdr);
  (match Frame.next d with
  | exception Frame.Too_large n -> Alcotest.(check int) "length reported" 0x7fffffff n
  | _ -> Alcotest.fail "expected Too_large");
  match Frame.encode (String.make (Frame.max_payload + 1) 'x') with
  | exception Frame.Too_large _ -> ()
  | _ -> Alcotest.fail "encode should reject oversized payload"

(* ---- Protocol roundtrips ---- *)

let value_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Value.Null;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) small_signed_int;
              map (fun f -> Value.Float f) (float_bound_inclusive 1e6);
              map (fun s -> Value.Str s) string_small;
            ]
        in
        if n = 0 then scalar
        else
          frequency
            [
              (4, scalar);
              (1, map (fun vs -> Value.Arr (Array.of_list vs)) (list_size (int_bound 4) (self (n / 2))));
            ]))

let update_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun instance attr value -> Proto.Set { instance; attr; value })
          small_nat string_small value_gen;
        map (fun type_name -> Proto.Create { type_name }) string_small;
        map3 (fun from_id rel to_id -> Proto.Link { from_id; rel; to_id }) small_nat string_small
          small_nat;
        map3
          (fun from_id rel to_id -> Proto.Unlink { from_id; rel; to_id })
          small_nat string_small small_nat;
      ])

let req_gen =
  QCheck.Gen.(
    oneof
      [
        return Proto.Ping;
        return Proto.Open_session;
        return Proto.Stats;
        map3
          (fun min_version instance attr -> Proto.Read { min_version; instance; attr })
          small_nat small_nat string_small;
        map3
          (fun min_version root (rel, depth) ->
            Proto.Traverse { min_version; root; rel; attr = "total"; depth })
          small_nat small_nat
          (pair string_small (int_range (-1) 8));
        map (fun updates -> Proto.Commit updates) (list_size (int_bound 6) update_gen);
      ])

let env_gen =
  QCheck.Gen.(map2 (fun req_id span_id -> { Proto.req_id; span_id }) small_nat small_nat)

let test_qcheck_req_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode roundtrip"
    (QCheck.make QCheck.Gen.(pair env_gen req_gen))
    (fun (env, req) ->
      let env', req' = Proto.decode_req (Proto.encode_req env req) in
      env' = env && req' = req)

let resp_gen =
  QCheck.Gen.(
    oneof
      [
        return Proto.Pong;
        map3
          (fun version readers instances -> Proto.Opened { version; readers; instances })
          small_nat small_nat small_nat;
        map2 (fun version value -> Proto.Value { version; value }) small_nat value_gen;
        map3
          (fun version visited total -> Proto.Traversed { version; visited; total })
          small_nat small_nat value_gen;
        map2
          (fun version created -> Proto.Committed { version; created })
          small_nat
          (list_size (int_bound 5) small_nat);
        map2
          (fun counters latencies ->
            let latencies =
              List.map
                (fun (l_name, l_count) ->
                  {
                    Proto.l_name;
                    l_count;
                    l_mean = 1e-4;
                    l_p50 = 1e-4;
                    l_p95 = 2e-4;
                    l_p99 = 3e-4;
                    l_max = 4e-4;
                  })
                latencies
            in
            Proto.Stats_reply { counters; latencies })
          (list_size (int_bound 5) (pair string_small small_signed_int))
          (list_size (int_bound 3) (pair string_small small_nat));
        map2
          (fun tag message ->
            let code =
              match tag mod 7 with
              | 0 -> Proto.E_unknown
              | 1 -> Proto.E_type
              | 2 -> Proto.E_constraint
              | 3 -> Proto.E_cardinality
              | 4 -> Proto.E_cycle
              | 5 -> Proto.E_protocol
              | _ -> Proto.E_server
            in
            Proto.Error { code; message })
          small_nat string_small;
      ])

let test_qcheck_resp_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode roundtrip"
    (QCheck.make QCheck.Gen.(pair env_gen resp_gen))
    (fun (env, resp) ->
      let env', resp' = Proto.decode_resp (Proto.encode_resp env resp) in
      env' = env && resp' = resp)

let test_malformed_payloads () =
  List.iter
    (fun bad ->
      match Proto.decode_req bad with
      | exception Proto.Malformed _ -> ()
      | _ -> Alcotest.failf "payload %S should not decode" bad)
    [
      "";
      "\x00";  (* envelope truncated *)
      "\x00\x00\x63";  (* unknown verb tag 99 *)
      Proto.encode_req { Proto.req_id = 1; span_id = 0 } Proto.Ping ^ "junk";
    ]

(* ---- End-to-end server ---- *)

let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  sch

(* Three-node chain a -> b -> c with local values 1, 2, 3. *)
let chain_db () =
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  let b = Db.create_instance db "node" in
  let c = Db.create_instance db "node" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  Db.link db ~from_id:b ~rel:"deps" ~to_id:c;
  Db.set db a "local" (int 1);
  Db.set db b "local" (int 2);
  Db.set db c "local" (int 3);
  (db, a, b, c)

let with_server ?(readers = 2) ?(prepare = fun _ -> ()) f =
  let db, a, b, c = chain_db () in
  prepare db;
  let server =
    Server.start ~config:(Server.config ~readers ()) ~make_schema:node_schema db
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server (a, b, c))

let test_server_verbs () =
  with_server (fun server (a, _, c) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      Client.ping cl;
      let info = Client.open_session cl in
      Alcotest.(check int) "readers" 2 info.Client.readers;
      Alcotest.(check int) "instances" 3 info.Client.instances;
      (* Reads come from a reader replica, never the writer. *)
      let v, ver = Client.read cl ~instance:c ~attr:"local" in
      Alcotest.(check bool) "c local" true (Value.equal v (int 3));
      Alcotest.(check int) "snapshot version 0" 0 ver;
      let visited, total, _ = Client.traverse cl ~root:a ~rel:"deps" ~attr:"local" in
      Alcotest.(check int) "traversal visits chain" 3 visited;
      Alcotest.(check bool) "traversal total" true (Value.equal total (int 6));
      let visited, total, _ = Client.traverse cl ~depth:1 ~root:a ~rel:"deps" ~attr:"local" in
      Alcotest.(check int) "depth 1 stops at b" 2 visited;
      Alcotest.(check bool) "depth 1 total" true (Value.equal total (int 3));
      let visited, _, _ = Client.traverse cl ~depth:0 ~root:a ~rel:"deps" ~attr:"local" in
      Alcotest.(check int) "depth 0 is just the root" 1 visited;
      (* Derived attribute on the replica. *)
      let v, _ = Client.read cl ~instance:a ~attr:"total" in
      Alcotest.(check bool) "derived total" true (Value.equal v (int 6)))

let test_read_your_writes () =
  with_server (fun server (a, _, c) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      let version, created =
        Client.commit cl [ Proto.Set { instance = c; attr = "local"; value = int 30 } ]
      in
      Alcotest.(check int) "first commit is version 1" 1 version;
      Alcotest.(check (list int)) "nothing created" [] created;
      (* Default min_version is the commit we just made: the replica
         must show the write and the derived ripple. *)
      let v, ver = Client.read cl ~instance:c ~attr:"local" in
      Alcotest.(check bool) "write visible" true (Value.equal v (int 30));
      Alcotest.(check bool) "served at or after commit" true (ver >= version);
      let v, _ = Client.read cl ~instance:a ~attr:"total" in
      Alcotest.(check bool) "derived rippled" true (Value.equal v (int 33));
      (* Create + link through the wire. *)
      let _, created =
        Client.commit cl
          [
            Proto.Create { type_name = "node" };
            Proto.Set { instance = a; attr = "local"; value = int 10 };
          ]
      in
      (match created with
      | [ fresh ] ->
        let version, _ =
          Client.commit cl
            [
              Proto.Link { from_id = fresh; rel = "deps"; to_id = a };
              Proto.Set { instance = fresh; attr = "local"; value = int 100 };
            ]
        in
        let visited, total, ver = Client.traverse cl ~root:fresh ~rel:"deps" ~attr:"local" in
        Alcotest.(check int) "new node reaches chain" 4 visited;
        Alcotest.(check bool) "totals include new node" true
          (Value.equal total (int (100 + 10 + 2 + 30)));
        Alcotest.(check bool) "fresh enough" true (ver >= version)
      | other -> Alcotest.failf "expected one created id, got %d" (List.length other)))

let test_typed_errors () =
  with_server (fun server (a, _, _) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      (match Client.read cl ~instance:a ~attr:"no_such_attr" with
      | exception Client.Remote { code = Proto.E_unknown; _ } -> ()
      | _ -> Alcotest.fail "expected E_unknown");
      (match Client.read cl ~instance:99999 ~attr:"local" with
      | exception Client.Remote { code = Proto.E_unknown; _ } -> ()
      | _ -> Alcotest.fail "expected E_unknown for missing instance");
      (* Writing a derived attribute is a type error, and the failed
         transaction must not poison the writer. *)
      (match
         Client.commit cl [ Proto.Set { instance = a; attr = "total"; value = int 0 } ]
       with
      | exception Client.Remote { code = Proto.E_type; _ } -> ()
      | _ -> Alcotest.fail "expected E_type");
      let version, _ =
        Client.commit cl [ Proto.Set { instance = a; attr = "local"; value = int 5 } ]
      in
      Alcotest.(check bool) "writer survives failed txn" true (version >= 1);
      (* Asking for an uncommitted version is a protocol error. *)
      match Client.read cl ~min_version:9999 ~instance:a ~attr:"local" with
      | exception Client.Remote { code = Proto.E_protocol; _ } -> ()
      | _ -> Alcotest.fail "expected E_protocol")

let test_stats_verb () =
  with_server (fun server (a, _, _) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      Client.ping cl;
      ignore (Client.read cl ~instance:a ~attr:"local");
      ignore (Client.commit cl [ Proto.Set { instance = a; attr = "local"; value = int 2 } ]);
      let counters, latencies = Client.stats cl in
      let get name = Option.value ~default:0 (List.assoc_opt name counters) in
      Alcotest.(check bool) "ping counted" true (get "server.req.ping" >= 1);
      Alcotest.(check bool) "read counted" true (get "server.req.read" >= 1);
      Alcotest.(check bool) "commit counted" true (get "server.req.commit" >= 1);
      Alcotest.(check bool) "connection counted" true (get "server.connections" >= 1);
      Alcotest.(check bool) "db counters forwarded" true
        (List.exists (fun (n, _) -> String.length n > 3 && String.sub n 0 3 = "db.") counters);
      let lat_names = List.map (fun l -> l.Proto.l_name) latencies in
      Alcotest.(check bool) "read latency present" true (List.mem "serve.read" lat_names);
      Alcotest.(check bool) "commit latency present" true (List.mem "serve.commit" lat_names);
      List.iter
        (fun l ->
          Alcotest.(check bool)
            (l.Proto.l_name ^ " quantiles ordered")
            true
            (l.Proto.l_p50 <= l.Proto.l_p99 +. 1e-12 && l.Proto.l_count > 0))
        latencies)

let test_garbage_frame_gets_protocol_error () =
  with_server (fun server _ ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
      Frame.send fd "\xde\xad\xbe\xef";
      match Frame.recv fd with
      | Some payload -> (
        match Proto.decode_resp payload with
        | _, Proto.Error { code = Proto.E_protocol; _ } -> ()
        | _ -> Alcotest.fail "expected protocol error response")
      | None -> Alcotest.fail "expected a response frame")

let test_concurrent_clients () =
  with_server ~readers:2 (fun server (a, b, c) ->
      let port = Server.port server in
      let clients = 4 and rounds = 50 in
      let workers =
        Array.init clients (fun w ->
            Domain.spawn (fun () ->
                let cl = Client.connect ~port () in
                Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
                let writes = ref 0 in
                for i = 1 to rounds do
                  if w = 0 then begin
                    (* One writer client; the others read under it. *)
                    let _ =
                      Client.commit cl
                        [ Proto.Set { instance = c; attr = "local"; value = int i } ]
                    in
                    incr writes;
                    let v, _ = Client.read cl ~instance:c ~attr:"local" in
                    if not (Value.equal v (int i)) then failwith "lost read-your-write"
                  end
                  else begin
                    let target = match i mod 3 with 0 -> a | 1 -> b | _ -> c in
                    let v, _ = Client.read cl ~min_version:0 ~instance:target ~attr:"local" in
                    ignore v;
                    let visited, _, _ =
                      Client.traverse cl ~min_version:0 ~root:a ~rel:"deps" ~attr:"local"
                    in
                    if visited < 3 then failwith "truncated traversal"
                  end
                done;
                !writes))
      in
      let writes = Array.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
      Alcotest.(check int) "writer client committed every round" rounds writes;
      Alcotest.(check int) "all commits published" rounds (Server.published_version server))

(* ---- Observability endpoints ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_server_cfg config f =
  let db, a, b, c = chain_db () in
  let server = Server.start ~config ~make_schema:node_schema db in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server (a, b, c))

let test_metrics_verb () =
  with_server_cfg (Server.config ()) (fun server (a, _, _) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      Client.ping cl;
      ignore (Client.read cl ~instance:a ~attr:"local");
      let text = Client.metrics cl in
      (match Cactis_obs.Metrics.lint text with
      | [] -> ()
      | errors ->
        Alcotest.failf "exposition fails lint:\n%s" (String.concat "\n" errors));
      Alcotest.(check bool) "ping counted" true (contains text "cactis_server_req_ping_total");
      Alcotest.(check bool) "read latency exposed" true
        (contains text "cactis_serve_read_seconds_bucket");
      Alcotest.(check bool) "db-side merged in" true (contains text "cactis_db_"))

(* A raw HTTP/1.0 scrape against the metrics listener: status line,
   OpenMetrics content type, body identical in validity to the proto
   verb's. *)
let test_http_metrics_scrape () =
  with_server_cfg (Server.config ~metrics_port:0 ()) (fun server _ ->
      let mport =
        match Server.metrics_port server with
        | Some p -> p
        | None -> Alcotest.fail "metrics port not bound"
      in
      let scrape path =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, mport));
        let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        in
        drain ();
        Buffer.contents buf
      in
      let resp = scrape "/metrics" in
      Alcotest.(check bool) "200" true (contains resp "HTTP/1.0 200 OK");
      Alcotest.(check bool) "openmetrics content type" true
        (contains resp "application/openmetrics-text");
      let body =
        match String.index_opt resp '\n' with
        | None -> Alcotest.fail "no header/body split"
        | Some _ -> (
          let rec find i =
            if i + 4 > String.length resp then Alcotest.fail "no blank line"
            else if String.sub resp i 4 = "\r\n\r\n" then String.sub resp (i + 4) (String.length resp - i - 4)
            else find (i + 1)
          in
          find 0)
      in
      (match Cactis_obs.Metrics.lint body with
      | [] -> ()
      | errors -> Alcotest.failf "scraped body fails lint:\n%s" (String.concat "\n" errors));
      (* Anything but /metrics is a 404; the server survives both. *)
      let resp404 = scrape "/other" in
      Alcotest.(check bool) "404 for other paths" true (contains resp404 "404"))

let test_slowlog_catches_slow_verbs () =
  let mu = Mutex.create () in
  let lines = ref [] in
  let sink l =
    Mutex.lock mu;
    lines := l :: !lines;
    Mutex.unlock mu
  in
  (* A 1 ns deadline makes every op "slow": the log must fire with the
     verb, version and pager fields populated. *)
  with_server_cfg
    (Server.config ~slow_ms:1e-6 ~slowlog_sink:sink ())
    (fun server (a, _, c) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      ignore (Client.commit cl [ Proto.Set { instance = c; attr = "local"; value = int 7 } ]);
      ignore (Client.read cl ~instance:a ~attr:"total");
      Mutex.lock mu;
      let all = String.concat "\n" !lines in
      Mutex.unlock mu;
      Alcotest.(check bool) "commit logged" true (contains all "\"verb\":\"commit\"");
      Alcotest.(check bool) "read logged" true (contains all "\"verb\":\"read\"");
      Alcotest.(check bool) "domain attributed" true (contains all "\"domain\":\"");
      Alcotest.(check bool) "version stamped" true (contains all "\"version\":1");
      match Server.slowlog server with
      | Some sl -> Alcotest.(check bool) "logged counter" true (Cactis_obs.Slowlog.logged sl >= 2)
      | None -> Alcotest.fail "slowlog not enabled")

let test_flight_records_server_era () =
  Cactis_obs.Flight.reset ();
  with_server_cfg (Server.config ()) (fun server (_, _, c) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      ignore (Client.commit cl [ Proto.Set { instance = c; attr = "local"; value = int 9 } ]);
      ignore (Client.read cl ~instance:c ~attr:"local");
      ignore (Client.request cl (Proto.Read { min_version = 0; instance = 999999; attr = "x" }));
      ());
  (* After stop the domains are joined: the snapshot is complete. *)
  let dump = Cactis_obs.Flight.snapshot () in
  let all_events =
    List.concat_map (fun (s : Cactis_obs.Flight.section) -> s.Cactis_obs.Flight.fs_events)
      dump.Cactis_obs.Flight.d_sections
  in
  let names =
    List.map (fun (s : Cactis_obs.Flight.section) -> s.Cactis_obs.Flight.fs_name)
      dump.Cactis_obs.Flight.d_sections
  in
  let has_kind k =
    List.exists (fun (e : Cactis_obs.Flight.event) -> e.Cactis_obs.Flight.fe_kind = k) all_events
  in
  Alcotest.(check bool) "net_accept recorded" true (has_kind Cactis_obs.Flight.Net_accept);
  Alcotest.(check bool) "net_verb recorded" true (has_kind Cactis_obs.Flight.Net_verb);
  Alcotest.(check bool) "txn_commit recorded" true (has_kind Cactis_obs.Flight.Txn_commit);
  Alcotest.(check bool) "error recorded" true (has_kind Cactis_obs.Flight.Net_error);
  Alcotest.(check bool) "writer named" true (List.mem "writer" names);
  Alcotest.(check bool) "frontend named" true (List.mem "frontend" names)

let test_wal_chain_survives_restart () =
  let dir = "net_scratch_wal" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  let captured = ref [] in
  with_server
    ~prepare:(fun db -> ignore (Persist.attach ~dir db))
    (fun server (a, _, c) ->
      let cl = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
      ignore (Client.commit cl [ Proto.Set { instance = c; attr = "local"; value = int 42 } ]);
      ignore (Client.commit cl [ Proto.Set { instance = a; attr = "local"; value = int 7 } ]);
      captured := [ (a, 7); (c, 42) ]);
  (* The server is gone; the WAL (written by the chained hook) must
     replay both commits. *)
  let p = Persist.recover ~dir (node_schema ()) in
  let db = Persist.db p in
  List.iter
    (fun (id, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d recovered" id)
        true
        (Value.equal (Db.get db id "local") (int expected)))
    !captured;
  Persist.close p;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "cactis-net"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte at a time" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "torn then completed" `Quick test_frame_torn_then_completed;
          Alcotest.test_case "multiple per feed" `Quick test_frame_multiple_in_one_feed;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized_rejected;
        ] );
      ( "proto",
        [
          QCheck_alcotest.to_alcotest test_qcheck_req_roundtrip;
          QCheck_alcotest.to_alcotest test_qcheck_resp_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick test_malformed_payloads;
        ] );
      ( "server",
        [
          Alcotest.test_case "verbs" `Quick test_server_verbs;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "stats" `Quick test_stats_verb;
          Alcotest.test_case "garbage frame" `Quick test_garbage_frame_gets_protocol_error;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "wal chain survives restart" `Quick test_wal_chain_survives_restart;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics verb lints clean" `Quick test_metrics_verb;
          Alcotest.test_case "http scrape" `Quick test_http_metrics_scrape;
          Alcotest.test_case "slowlog fires" `Quick test_slowlog_catches_slow_verbs;
          Alcotest.test_case "flight records server era" `Quick test_flight_records_server_era;
        ] );
    ]
