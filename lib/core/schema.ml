module Symbol = Cactis_util.Symbol

type source =
  | Self of string
  | Rel of string * string

type env = {
  self_value : string -> Value.t;
  related_values : string -> string -> Value.t list;
}

type rule = {
  sources : source list;
  compute : env -> Value.t;
}

(* Monotone-lattice shape of a derived rule, the input of the [Far86]
   convergence test: a dependency cycle whose every rule is monotone
   over a bounded lattice reaches a fixed point under iteration.  The
   shape is declarative metadata — compute functions are opaque
   closures, so shapes are either inferred syntactically from DDL
   expressions (Elaborate) or promised explicitly by an application
   ([declare_rule_shape]).  An undeclared shape means "assume
   divergent". *)
type rule_shape =
  | Shape_min  (* monotone decreasing toward the least contribution *)
  | Shape_max  (* monotone increasing toward the greatest contribution *)
  | Shape_bool  (* and/or/all/any closure over the two-point lattice *)
  | Shape_count  (* structure-only: fixed while links are fixed *)
  | Shape_lattice of { height : int; bottom : Value.t }
      (* monotone over a declared lattice of this height, iterated up
         from the given bottom element *)
  | Shape_unbounded  (* e.g. sums: each iteration can keep growing *)

let shape_name = function
  | Shape_min -> "min"
  | Shape_max -> "max"
  | Shape_bool -> "bool"
  | Shape_count -> "count"
  | Shape_lattice { height; _ } -> Printf.sprintf "lattice(%d)" height
  | Shape_unbounded -> "unbounded"

let shape_bounded = function Shape_unbounded -> false | _ -> true

type attr_kind =
  | Intrinsic of Value.t
  | Derived of rule

type constraint_spec = {
  message : string;
  recovery : string option;
}

type attr_def = {
  attr_name : string;
  kind : attr_kind;
  constraint_ : constraint_spec option;
}

type cardinality = One | Multi
type polarity = Plug | Socket

type rel_def = {
  rel_name : string;
  target : string;
  inverse : string;
  card : cardinality;
  polarity : polarity;
}

type subtype_def = {
  sub_name : string;
  parent : string;
  predicate : rule;
  extra_attrs : attr_def list;
}

type type_def = {
  type_name : string;
  attr_tbl : (string, attr_def) Hashtbl.t;
  mutable attr_order : string list;  (* declaration order, reversed *)
  rel_tbl : (string, rel_def) Hashtbl.t;
  mutable rel_order : string list;
  mutable sub_names : string list;
  exports : (string * string, string) Hashtbl.t;  (* (rel, export name) -> attr *)
}

type t = {
  types : (string, type_def) Hashtbl.t;
  mutable type_order : string list;
  subs : (string, subtype_def) Hashtbl.t;
  mutable sub_order : string list;
  mutable schema_version : int;
  (* Memoized reverse-dependency tables, invalidated on mutation. *)
  mutable cache_version : int;
  self_dep_cache : (string * string, string list) Hashtbl.t;
  cross_dep_cache : (string * string, (string * string) list) Hashtbl.t;
  rel_dep_cache : (string * string, string list) Hashtbl.t;
  (* Compiled per-type layouts (slot/link index assignment plus resolved
     dependency tables), recompiled in place when [schema_version]
     moves.  The [layout] records themselves are allocated once per type
     and never replaced: instances hold direct pointers to them. *)
  layouts : (string, layout) Hashtbl.t;
  mutable layouts_version : int;
  mutable strict : bool;
  mutable validating : bool;  (* re-entrancy guard: the validator reads the schema *)
  (* Declared rule shapes, keyed (type, attr); see {!rule_shape}. *)
  shapes : (string * string, rule_shape) Hashtbl.t;
  (* Incremental re-validation support: [Some l] means every mutation
     since the last {e clean} validation was an [add_attr] of the listed
     attributes, so a validator may restrict itself to dependency cones
     through them; [None] demands a full pass.  Maintained by [bump]
     (reset) / [add_attr] (append) / [validation_errors] (clear). *)
  mutable touched : (string * string) list option;
}

and layout = {
  lay_schema : t;
  lay_type : string;
  mutable lay_slots : slot_info array;
  mutable lay_links : link_info array;
  lay_slot_ix : (string, int) Hashtbl.t;
  lay_slot_ix_sym : (int, int) Hashtbl.t;
  lay_link_ix : (string, int) Hashtbl.t;
}

and slot_info = {
  si_name : string;
  si_sym : int;
  si_def : attr_def;
  si_derived : bool;
  si_rule : compiled_rule option;
  si_constrained : bool;
  si_self_deps : int array;
  si_cross_deps : cross_dep array;
}

and cross_dep = {
  xd_link : int;
  xd_rel_sym : int;
  xd_slot : int;
  xd_sym : int;
}

and link_info = {
  li_name : string;
  li_sym : int;
  li_def : rel_def;
  li_inverse_ix : int;
  li_rel_deps : int array;
}

and compiled_rule = {
  cr_rule : rule;
  cr_sources : compiled_source array;
}

and compiled_source =
  | C_self of { s_name : string; s_slot : int }
  | C_rel of {
      r_rel : string;
      r_attr : string;
      r_link : int;
      r_rel_sym : int;
      r_target : string;
      r_slot : int;
      r_sym : int;
    }

let create () =
  {
    types = Hashtbl.create 16;
    type_order = [];
    subs = Hashtbl.create 8;
    sub_order = [];
    schema_version = 0;
    cache_version = -1;
    self_dep_cache = Hashtbl.create 64;
    cross_dep_cache = Hashtbl.create 64;
    rel_dep_cache = Hashtbl.create 64;
    layouts = Hashtbl.create 16;
    layouts_version = -1;
    strict = false;
    validating = false;
    shapes = Hashtbl.create 16;
    touched = None;
  }

let bump t =
  t.schema_version <- t.schema_version + 1;
  (* Arbitrary mutation: incremental re-validation is no longer sound.
     [add_attr] restores its finer bookkeeping after calling us. *)
  t.touched <- None

let version t = t.schema_version

let has_type t name = Hashtbl.mem t.types name
let type_names t = List.rev t.type_order

let find_type t name =
  match Hashtbl.find_opt t.types name with
  | Some td -> td
  | None -> Errors.unknown "unknown type %s" name

let add_type t name =
  if has_type t name then Errors.type_error "type %s already declared" name;
  Hashtbl.add t.types name
    {
      type_name = name;
      attr_tbl = Hashtbl.create 8;
      attr_order = [];
      rel_tbl = Hashtbl.create 4;
      rel_order = [];
      sub_names = [];
      exports = Hashtbl.create 4;
    };
  t.type_order <- name :: t.type_order;
  bump t

let attr_opt t ~type_name a = Hashtbl.find_opt (find_type t type_name).attr_tbl a

let attr t ~type_name a =
  match attr_opt t ~type_name a with
  | Some d -> d
  | None -> Errors.unknown "type %s has no attribute %s" type_name a

let attrs t ~type_name =
  let td = find_type t type_name in
  List.rev_map (fun a -> Hashtbl.find td.attr_tbl a) td.attr_order

let rel_opt t ~type_name r = Hashtbl.find_opt (find_type t type_name).rel_tbl r

let rel t ~type_name r =
  match rel_opt t ~type_name r with
  | Some d -> d
  | None -> Errors.unknown "type %s has no relationship %s" type_name r

let rels t ~type_name =
  let td = find_type t type_name in
  List.rev_map (fun r -> Hashtbl.find td.rel_tbl r) td.rel_order

let validate_sources t ~type_name sources =
  List.iter
    (function
      | Self a ->
        if attr_opt t ~type_name a = None then
          Errors.type_error "rule on type %s reads unknown attribute %s" type_name a
      | Rel (r, _) ->
        (* The target attribute cannot be validated eagerly: the inverse
           type may legitimately gain it later (extensibility), and
           Figure 2's auxiliary connector objects rely on that.  The
           relationship itself must exist. *)
        if rel_opt t ~type_name r = None then
          Errors.type_error "rule on type %s reads unknown relationship %s" type_name r)
    sources

let add_attr t ~type_name (def : attr_def) =
  let td = find_type t type_name in
  if Hashtbl.mem td.attr_tbl def.attr_name then
    Errors.type_error "type %s already has attribute %s" type_name def.attr_name;
  (match (def.kind, def.constraint_) with
  | Intrinsic _, Some _ ->
    Errors.type_error "constraint on intrinsic attribute %s.%s (constraints are derived predicates)"
      type_name def.attr_name
  | Derived rule, _ -> validate_sources t ~type_name rule.sources
  | Intrinsic _, None -> ());
  let prev_touched = t.touched in
  Hashtbl.add td.attr_tbl def.attr_name def;
  td.attr_order <- def.attr_name :: td.attr_order;
  bump t;
  (* A fresh attribute only adds dependency edges through its own node:
     a validator that already accepted the rest of the schema need only
     re-examine cycles through the attributes added since. *)
  t.touched <-
    (match prev_touched with
    | Some l -> Some ((type_name, def.attr_name) :: l)
    | None -> None)

let add_rel t ~type_name (def : rel_def) =
  let td = find_type t type_name in
  if Hashtbl.mem td.rel_tbl def.rel_name then
    Errors.type_error "type %s already has relationship %s" type_name def.rel_name;
  if not (has_type t def.target) then
    Errors.unknown "relationship %s.%s targets unknown type %s" type_name def.rel_name def.target;
  Hashtbl.add td.rel_tbl def.rel_name def;
  td.rel_order <- def.rel_name :: td.rel_order;
  bump t

let declare_relationship t ~from_type ~rel ~to_type ~inverse ~card ~inverse_card =
  add_rel t ~type_name:from_type
    { rel_name = rel; target = to_type; inverse; card; polarity = Plug };
  add_rel t ~type_name:to_type
    { rel_name = inverse; target = from_type; inverse = rel; card = inverse_card; polarity = Socket }

let membership_attr sub_name = "$in:" ^ sub_name

let subtype t name =
  match Hashtbl.find_opt t.subs name with
  | Some d -> d
  | None -> Errors.unknown "unknown subtype %s" name

let subtypes_of t ~parent =
  let td = find_type t parent in
  List.rev_map (fun s -> Hashtbl.find t.subs s) td.sub_names

let subtype_names t = List.rev t.sub_order

let add_subtype t (def : subtype_def) =
  if Hashtbl.mem t.subs def.sub_name then
    Errors.type_error "subtype %s already declared" def.sub_name;
  let td = find_type t def.parent in
  (* Membership is an ordinary derived attribute, so the incremental
     engine maintains it like any other functionally-defined value
     ("it is possible to use values such as the very_late attribute to
     change subtype membership of an object dynamically", §4). *)
  add_attr t ~type_name:def.parent
    {
      attr_name = membership_attr def.sub_name;
      kind = Derived def.predicate;
      constraint_ = None;
    };
  List.iter (fun a -> add_attr t ~type_name:def.parent a) def.extra_attrs;
  Hashtbl.add t.subs def.sub_name def;
  t.sub_order <- def.sub_name :: t.sub_order;
  td.sub_names <- def.sub_name :: td.sub_names;
  bump t

let constraint_attrs t ~type_name =
  List.filter (fun (d : attr_def) -> d.constraint_ <> None) (attrs t ~type_name)

let add_export t ~type_name ~rel:r ~export ~attr:a =
  let td = find_type t type_name in
  ignore (rel t ~type_name r);
  ignore (attr t ~type_name a);
  if Hashtbl.mem td.exports (r, export) then
    Errors.type_error "type %s already transmits %s across %s" type_name export r;
  Hashtbl.add td.exports (r, export) a;
  bump t

(* ------------------------------------------------------------------ *)
(* Retraction (the inverse of declaration).

   Undo and checkout replay deltas in exact reverse order, so a schema
   declaration is only ever retracted while it is still the {e newest}
   of its kind — which is why every retraction below head-checks the
   declaration-order list (stored reversed, newest first).  Popping the
   head keeps all surviving slot/link indexes stable: a retraction
   followed by a re-declaration (redo) reassigns the same indexes. *)

let retract_order what name order =
  match order with
  | n :: rest when String.equal n name -> rest
  | _ -> Errors.type_error "cannot retract %s: it is not the most recently declared" what

let retract_attr t ~type_name name =
  let td = find_type t type_name in
  td.attr_order <-
    retract_order (Printf.sprintf "attribute %s.%s" type_name name) name td.attr_order;
  Hashtbl.remove td.attr_tbl name;
  Hashtbl.remove t.shapes (type_name, name);
  bump t

let retract_rel t ~type_name name =
  let td = find_type t type_name in
  td.rel_order <-
    retract_order (Printf.sprintf "relationship %s.%s" type_name name) name td.rel_order;
  Hashtbl.remove td.rel_tbl name;
  bump t

let retract_export t ~type_name ~rel:r ~export =
  let td = find_type t type_name in
  if not (Hashtbl.mem td.exports (r, export)) then
    Errors.type_error "cannot retract transmission %s.%s: type %s does not declare it" r export
      type_name;
  Hashtbl.remove td.exports (r, export);
  bump t

let retract_type t name =
  t.type_order <- retract_order ("type " ^ name) name t.type_order;
  Hashtbl.remove t.types name;
  Hashtbl.fold (fun ((tn, _) as k) _ acc -> if String.equal tn name then k :: acc else acc)
    t.shapes []
  |> List.iter (Hashtbl.remove t.shapes);
  (* The compiled layout must go too: [refresh_layouts] only recompiles
     layouts of declared types, so a stale survivor would keep serving
     lookups for a type that no longer exists.  A later re-declaration
     (redo) allocates a fresh layout record; that is safe because
     retraction is only reachable once every instance of the type has
     been deleted (undo replays the instance deletions first). *)
  Hashtbl.remove t.layouts name;
  bump t

let retract_subtype t name =
  let def = subtype t name in
  t.sub_order <- retract_order ("subtype " ^ name) name t.sub_order;
  let td = find_type t def.parent in
  td.sub_names <- retract_order ("subtype " ^ name) name td.sub_names;
  (* Reverse of add_subtype: extra attributes (newest first), then the
     hidden membership attribute. *)
  List.iter
    (fun (a : attr_def) -> retract_attr t ~type_name:def.parent a.attr_name)
    (List.rev def.extra_attrs);
  retract_attr t ~type_name:def.parent (membership_attr name);
  Hashtbl.remove t.subs name;
  bump t

(* ------------------------------------------------------------------ *)
(* Rule recompilation hook.

   Derived rules are closures; the WAL stores their DDL expression
   source instead.  The DDL front end (which the core does not depend
   on) registers a compiler here so {!Codec} can rebuild the closure
   when a schema delta is decoded. *)

let rule_compiler : (string -> rule) option ref = ref None

let set_rule_compiler f = rule_compiler := Some f

let compile_rule_repr src =
  match !rule_compiler with
  | Some f -> f src
  | None ->
    Errors.type_error
      "no rule compiler registered: cannot rebuild derived rule from %S (link the DDL front end \
       and call Elaborate.install_rule_compiler)"
      src

(* ------------------------------------------------------------------ *)
(* Rule shapes (convergence metadata).                                  *)

let declare_rule_shape t ~type_name ~attr shape =
  (* Metadata only: layouts do not depend on shapes, so no [bump]. *)
  Hashtbl.replace t.shapes (type_name, attr) shape

let rule_shape t ~type_name ~attr = Hashtbl.find_opt t.shapes (type_name, attr)

(* Like the rule compiler, the shape classifier is registered by the DDL
   front end (it inspects expression syntax).  Unlike the compiler it is
   optional everywhere: an unclassifiable or unregistered rule simply
   stays shapeless, which the convergence pass treats as divergent. *)
let rule_classifier : (string -> rule_shape) option ref = ref None

let set_rule_classifier f = rule_classifier := Some f

let classify_rule_repr src = Option.map (fun f -> f src) !rule_classifier

let resolve_export t ~type_name ~rel:r name =
  let td = find_type t type_name in
  match Hashtbl.find_opt td.exports (r, name) with
  | Some a -> a
  | None -> name

let exports t ~type_name =
  let td = find_type t type_name in
  Hashtbl.fold (fun (r, e) a acc -> (r, e, a) :: acc) td.exports []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Validator hook.                                                     *)

let validator : (t -> string list) option ref = ref None

let set_validator f = validator := Some f

let validation_errors t =
  match !validator with
  | None -> []
  | Some f ->
    if t.validating then []
    else begin
      t.validating <- true;
      let msgs = Fun.protect ~finally:(fun () -> t.validating <- false) (fun () -> f t) in
      (* A clean validation re-arms incremental re-validation: until the
         next non-add_attr mutation, only cycles through newly added
         attributes can appear. *)
      if msgs = [] then t.touched <- Some [];
      msgs
    end

let touched_since_validation t = t.touched

let validate t =
  match validation_errors t with
  | [] -> ()
  | msgs -> Errors.type_error "schema rejected by validator:\n%s" (String.concat "\n" msgs)

(* ------------------------------------------------------------------ *)
(* Reverse-dependency tables.                                          *)

let refresh_caches t =
  if t.cache_version <> t.schema_version then begin
    Hashtbl.reset t.self_dep_cache;
    Hashtbl.reset t.cross_dep_cache;
    Hashtbl.reset t.rel_dep_cache;
    t.cache_version <- t.schema_version
  end

let derived_sources (d : attr_def) =
  match d.kind with Derived rule -> rule.sources | Intrinsic _ -> []

let compute_self_dependents t ~type_name a =
  attrs t ~type_name
  |> List.filter_map (fun (d : attr_def) ->
         if List.exists (function Self x -> String.equal x a | Rel _ -> false) (derived_sources d)
         then Some d.attr_name
         else None)

let compute_cross_dependents t ~type_name a =
  (* For every relationship r of this type (target U, inverse r'), the
     attributes b of U reading [Rel (r', name)] depend on our a whenever
     the requested name resolves to a — directly, or through a
     transmission alias declared on our side of r. *)
  rels t ~type_name
  |> List.concat_map (fun (r : rel_def) ->
         if not (has_type t r.target) then []
         else
           attrs t ~type_name:r.target
           |> List.filter_map (fun (d : attr_def) ->
                  if
                    List.exists
                      (function
                        | Rel (r', name) ->
                          String.equal r' r.inverse
                          && String.equal (resolve_export t ~type_name ~rel:r.rel_name name) a
                        | Self _ -> false)
                      (derived_sources d)
                  then Some (r.rel_name, d.attr_name)
                  else None))

let compute_rel_dependents t ~type_name r =
  attrs t ~type_name
  |> List.filter_map (fun (d : attr_def) ->
         if List.exists (function Rel (r', _) -> String.equal r' r | Self _ -> false)
              (derived_sources d)
         then Some d.attr_name
         else None)

let memo cache compute key =
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add cache key v;
    v

let self_dependents t ~type_name a =
  refresh_caches t;
  memo t.self_dep_cache (fun () -> compute_self_dependents t ~type_name a) (type_name, a)

let cross_dependents t ~type_name a =
  refresh_caches t;
  memo t.cross_dep_cache (fun () -> compute_cross_dependents t ~type_name a) (type_name, a)

let rel_dependents t ~type_name r =
  refresh_caches t;
  memo t.rel_dep_cache (fun () -> compute_rel_dependents t ~type_name r) (type_name, r)

(* ------------------------------------------------------------------ *)
(* Compiled layouts                                                    *)

(* Slot and link indexes are {e stable}: [attr_order] / [rel_order] grow
   at the head and shrink only by popping the head (retraction is
   restricted to the newest declaration, see above), so a recompile
   after a DDL change assigns every surviving name the same index and
   instances only ever need to {e extend} their slot arrays, never remap
   them.  A retracted slot's index is reused by the next declaration,
   which re-initializes it (Engine.after_attr_added). *)

let empty_layout t tn =
  {
    lay_schema = t;
    lay_type = tn;
    lay_slots = [||];
    lay_links = [||];
    lay_slot_ix = Hashtbl.create 8;
    lay_slot_ix_sym = Hashtbl.create 8;
    lay_link_ix = Hashtbl.create 4;
  }

let slot_ix_of t tn a = Hashtbl.find (Hashtbl.find t.layouts tn).lay_slot_ix a

let compile_rule t (td : type_def) lay (r : rule) =
  let compile_source = function
    | Self a -> C_self { s_name = a; s_slot = Hashtbl.find lay.lay_slot_ix a }
    | Rel (rl, name) ->
      let rd = Hashtbl.find td.rel_tbl rl in
      (* The attribute actually transmitted may be aliased by an export
         declared on the target side (Figure 1's [exp_time = exp_compl]);
         it may also legitimately not exist yet — flagged as slot -1 and
         reported only if a link is ever traversed (extensibility, §3). *)
      let resolved = resolve_export t ~type_name:rd.target ~rel:rd.inverse name in
      let r_slot =
        match Hashtbl.find_opt (Hashtbl.find t.layouts rd.target).lay_slot_ix resolved with
        | Some ix -> ix
        | None -> -1
      in
      C_rel
        {
          r_rel = rl;
          r_attr = name;
          r_link = Hashtbl.find lay.lay_link_ix rl;
          r_rel_sym = Symbol.intern rl;
          r_target = rd.target;
          r_slot;
          r_sym = Symbol.intern resolved;
        }
  in
  { cr_rule = r; cr_sources = Array.of_list (List.map compile_source r.sources) }

let compile_layout t lay =
  let tn = lay.lay_type in
  let td = find_type t tn in
  let slots =
    List.rev td.attr_order
    |> List.map (fun a ->
           let def = Hashtbl.find td.attr_tbl a in
           let rule =
             match def.kind with
             | Derived r -> Some (compile_rule t td lay r)
             | Intrinsic _ -> None
           in
           let self_deps =
             compute_self_dependents t ~type_name:tn a
             |> List.map (Hashtbl.find lay.lay_slot_ix)
             |> Array.of_list
           in
           let cross_deps =
             compute_cross_dependents t ~type_name:tn a
             |> List.map (fun (r, b) ->
                    let rd = Hashtbl.find td.rel_tbl r in
                    {
                      xd_link = Hashtbl.find lay.lay_link_ix r;
                      xd_rel_sym = Symbol.intern r;
                      xd_slot = slot_ix_of t rd.target b;
                      xd_sym = Symbol.intern b;
                    })
             |> Array.of_list
           in
           {
             si_name = a;
             si_sym = Symbol.intern a;
             si_def = def;
             si_derived = rule <> None;
             si_rule = rule;
             si_constrained = def.constraint_ <> None;
             si_self_deps = self_deps;
             si_cross_deps = cross_deps;
           })
    |> Array.of_list
  in
  let links =
    List.rev td.rel_order
    |> List.map (fun r ->
           let rd = Hashtbl.find td.rel_tbl r in
           let inverse_ix =
             match Hashtbl.find_opt t.layouts rd.target with
             | None -> -1
             | Some tl -> (
               match Hashtbl.find_opt tl.lay_link_ix rd.inverse with
               | Some ix -> ix
               | None -> -1)
           in
           let rel_deps =
             compute_rel_dependents t ~type_name:tn r
             |> List.map (Hashtbl.find lay.lay_slot_ix)
             |> Array.of_list
           in
           {
             li_name = r;
             li_sym = Symbol.intern r;
             li_def = rd;
             li_inverse_ix = inverse_ix;
             li_rel_deps = rel_deps;
           })
    |> Array.of_list
  in
  lay.lay_slots <- slots;
  lay.lay_links <- links

let refresh_layouts t =
  if t.layouts_version <> t.schema_version then begin
    t.layouts_version <- t.schema_version;
    let tns = type_names t in
    (* Pass 1: (re)assign name -> index maps for every type, so pass 2
       can resolve cross-type references in any declaration order. *)
    List.iter
      (fun tn ->
        let lay =
          match Hashtbl.find_opt t.layouts tn with
          | Some l -> l
          | None ->
            let l = empty_layout t tn in
            Hashtbl.add t.layouts tn l;
            l
        in
        let td = find_type t tn in
        Hashtbl.reset lay.lay_slot_ix;
        Hashtbl.reset lay.lay_slot_ix_sym;
        Hashtbl.reset lay.lay_link_ix;
        List.iteri
          (fun ix a ->
            Hashtbl.replace lay.lay_slot_ix a ix;
            Hashtbl.replace lay.lay_slot_ix_sym (Symbol.intern a) ix)
          (List.rev td.attr_order);
        List.iteri (fun ix r -> Hashtbl.replace lay.lay_link_ix r ix) (List.rev td.rel_order))
      tns;
    (* Pass 2: compile slot/link infos against the fresh index maps. *)
    List.iter (fun tn -> compile_layout t (Hashtbl.find t.layouts tn)) tns;
    if t.strict && not t.validating then begin
      match validation_errors t with
      | [] -> ()
      | msgs ->
        (* Stay dirty: every access keeps failing until the schema is
           fixed, not just the first one after the bad mutation. *)
        t.layouts_version <- -1;
        Errors.type_error "schema rejected by validator:\n%s" (String.concat "\n" msgs)
    end
  end

let refresh t = refresh_layouts t

let set_strict t flag =
  t.strict <- flag;
  if flag then begin
    t.layouts_version <- -1;
    refresh_layouts t
  end

let strict t = t.strict

let layout t tn =
  refresh_layouts t;
  match Hashtbl.find_opt t.layouts tn with
  | Some l -> l
  | None -> Errors.unknown "unknown type %s" tn

let refresh_layout lay = refresh_layouts lay.lay_schema

let slot_index lay a =
  refresh_layouts lay.lay_schema;
  Hashtbl.find_opt lay.lay_slot_ix a

let slot_index_sym lay sym =
  refresh_layouts lay.lay_schema;
  Hashtbl.find_opt lay.lay_slot_ix_sym sym

let link_index lay r =
  refresh_layouts lay.lay_schema;
  Hashtbl.find_opt lay.lay_link_ix r

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let describe t =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun tn ->
      let td = find_type t tn in
      out "class %s\n" tn;
      List.iter
        (fun (r : rel_def) ->
          out "  rel  %-18s -> %s (%s, inverse %s)\n" r.rel_name r.target
            (match r.card with One -> "one" | Multi -> "multi")
            r.inverse)
        (rels t ~type_name:tn);
      List.iter
        (fun (d : attr_def) ->
          match d.kind with
          | Intrinsic default ->
            out "  attr %-18s intrinsic := %s\n" d.attr_name (Value.to_string default)
          | Derived rule ->
            let srcs =
              rule.sources
              |> List.map (function
                   | Self a -> a
                   | Rel (r, a) -> r ^ "." ^ a)
              |> String.concat ", "
            in
            out "  attr %-18s derived <- {%s}%s\n" d.attr_name srcs
              (match d.constraint_ with
              | Some c -> Printf.sprintf "  CONSTRAINT %S" c.message
              | None -> ""))
        (attrs t ~type_name:tn);
      Hashtbl.iter
        (fun (r, export) a -> out "  send %s.%s = %s\n" r export a)
        td.exports;
      List.iter (fun s -> out "  subtype %s\n" s) (List.rev td.sub_names))
    (type_names t);
  Buffer.contents buf
