(** The make facility of Figures 2-4.

    A [make_rule] object names a file and the command that creates it,
    and is related to the rules it depends on ([depends_on]) and the
    rules that depend on it ([output]).  Figure 3's [mod_time] rule — the
    youngest time among the file itself and everything it depends on — is
    a derived attribute.  Figure 4's [up_to_date] rule recursively
    ensures dependencies are current and runs the command if stale.

    One deliberate deviation: Figure 4 executes [system_command] {e
    inside} an attribute evaluation rule.  Side-effecting rules defeat
    the undo property the same paper relies on (§2.2), so here the
    rebuild decision is derived data ([needs_rebuild]) and the command
    execution lives in the tool ({!build}), which writes the resulting
    modification time back as an intrinsic.  The observable behaviour —
    minimal rebuilds in dependency order — matches Figure 4.

    The paper also notes that the many-to-many output/depends_on wiring
    needed "an auxiliary object class not shown"; the Cactis core here
    supports Multi-Multi relationships directly, so no connector class is
    needed. *)

type t

(** [create ?db fs] installs the [make_rule] class into a fresh (or
    supplied) database.  The supplied database's schema must not already
    contain a [make_rule] class. *)
val create : ?db:Cactis.Db.t -> Fs_sim.t -> t

val db : t -> Cactis.Db.t
val fs : t -> Fs_sim.t

(** [add_rule t ~file ~command] declares a target; returns its rule
    instance id. *)
val add_rule : t -> file:string -> command:string -> int

(** [add_dependency t ~rule ~on] — [rule]'s file depends on [on]'s
    file. *)
val add_dependency : t -> rule:int -> on:int -> unit

(** [sync t] refreshes the [fs_mtime] intrinsic of every rule from the
    filesystem (ordinary logged updates, so stale targets are marked
    through the incremental engine). *)
val sync : t -> unit

(** Figure 3's youngest-modification-time, as stored derived data. *)
val mod_time : t -> int -> Cactis_util.Vtime.t

(** Would [build] run this rule's command right now? *)
val needs_rebuild : t -> int -> bool

(** [build t target] — Figure 4: recursively brings [target]'s
    dependencies up to date, then [target] itself, running each stale
    rule's command exactly once, in dependency order.  Returns the
    commands run (oldest first). *)
val build : t -> int -> string list

(** [build_all t] builds every rule (respecting shared dependencies:
    each stale rule still runs once). *)
val build_all : t -> string list

(** [build_plan t target] computes, without executing anything, the
    stale rules [build] would run, grouped into parallel stages: every
    rule in a stage depends only on rules in earlier stages, so each
    stage's commands could run concurrently (the parallelism §5 points
    at).  Returns the command lists per stage, dependency-first. *)
val build_plan : t -> int -> string list list

(** [enable_keep_current t rule] puts the rule in the paper's
    "constantly up to date" regime (§4): {!auto_build} will rebuild it
    (and its dependencies) whenever it is stale. *)
val enable_keep_current : t -> int -> unit

val disable_keep_current : t -> int -> unit

(** [auto_build t] — sync, then build every keep-current rule. *)
val auto_build : t -> string list
