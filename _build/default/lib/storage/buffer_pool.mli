(** LRU buffer pool over simulated blocks.

    Touching a resident block is a hit; touching a non-resident block
    costs one disk read and may evict the least-recently-used block.
    The chunk scheduler also consults {!resident} to decide which pending
    traversal processes can run without disk access (the paper's
    "very high priority queue" of in-memory work). *)

type t

(** [create ~capacity disk] builds a pool holding at most [capacity]
    blocks. [capacity] must be at least 1. *)
val create : capacity:int -> Disk.t -> t

(** [touch t block] brings [block] into the pool, counting a disk read on
    a miss, and returns whether it was a hit.  Eviction is LRU. *)
val touch : t -> int -> [ `Hit | `Miss ]

(** [resident t block] is true iff [block] is currently buffered
    (does not affect recency). *)
val resident : t -> int -> bool

(** Blocks currently buffered, most recent first. *)
val contents : t -> int list

val capacity : t -> int
val hits : t -> int
val misses : t -> int

(** [flush t] empties the pool (e.g. between experiment runs) without
    resetting hit/miss statistics. *)
val flush : t -> unit

(** [reset_stats t] zeroes the hit/miss counters. *)
val reset_stats : t -> unit
