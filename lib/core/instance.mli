(** In-memory representation of one object instance: attribute slots
    (value + up-to-date state) in a flat array addressed by the type's
    compiled slot indexes, and relationship links in compact int
    vectors addressed by link indexes (see {!Schema.layout}).

    This module is deliberately dumb storage — all invariants
    (propagation, logging, inverse-link maintenance, paging) are enforced
    by {!Store}, {!Engine} and {!Db}.

    The string-keyed accessors resolve names through the layout once at
    the boundary; engine hot paths use the [_ix] variants with
    precompiled indexes.  After a DDL extension the arrays are grown
    lazily on first indexed access; grown slots start out of date and
    [Null] (intrinsics are patched to their schema default on first
    evaluation touch). *)

type state =
  | Up_to_date
  | Out_of_date
  | In_progress  (** being evaluated; reading it again means a data cycle *)

type slot = {
  mutable value : Value.t;
  mutable state : state;
}

(** Insertion-ordered id vector for one relationship (oldest first);
    appends are amortized O(1). *)
type links = {
  mutable ids : int array;
  mutable n : int;
}

type t = {
  id : int;
  type_name : string;
  layout : Schema.layout;
  mutable slots : slot array;  (** by slot index *)
  mutable links : links array;  (** by link index *)
  mutable alive : bool;
}

(** [create ~id ~layout] materializes every declared slot: intrinsics at
    their schema default (up to date), derived slots out of date. *)
val create : id:int -> layout:Schema.layout -> t

(** {1 Name-resolving accessors (API boundary)} *)

(** [slot t a] returns the slot for attribute [a].
    @raise Errors.Unknown if the type does not declare [a]. *)
val slot : t -> string -> slot

val slot_opt : t -> string -> slot option

(** Related ids across one relationship (empty when never linked or
    undeclared). *)
val linked : t -> string -> int list

(** [add_link t rel id] appends; [remove_link t rel id] removes the first
    occurrence and returns whether it was present. *)
val add_link : t -> string -> int -> unit

val remove_link : t -> string -> int -> bool

(** All (rel, ids) pairs with at least one link. *)
val all_links : t -> (string * int list) list

(** Every declared slot with its attribute name (diagnostics). *)
val iter_slots : t -> (string -> slot -> unit) -> unit

(** {1 Index resolution} *)

val find_slot : t -> string -> int option
val find_slot_sym : t -> int -> int option
val find_link : t -> string -> int option

(** {1 Indexed accessors (hot paths; indexes come from the layout)} *)

val slot_ix : t -> int -> slot
val linked_ix : t -> int -> int list
val iter_linked : t -> int -> (int -> unit) -> unit
val link_count_ix : t -> int -> int
val add_link_ix : t -> int -> int -> unit
val remove_link_ix : t -> int -> int -> bool
