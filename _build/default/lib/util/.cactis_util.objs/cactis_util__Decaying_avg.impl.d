lib/util/decaying_avg.ml: Format
