type severity =
  | Error
  | Warning
  | Info

type step =
  | S_self
  | S_rel of string

type node = {
  n_type : string;
  n_attr : string;
}

type t = {
  severity : severity;
  code : string;
  path : string;
  message : string;
  witness : (node * step) list;
  hint : string option;
  fix : string option;
}

let make ?(witness = []) ?hint ?fix severity ~code ~path message =
  { severity; code; path; message; witness; hint; fix }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.path b.path with
    | 0 -> String.compare a.code b.code
    | c -> c)
  | c -> c

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let node_to_string n = n.n_type ^ "." ^ n.n_attr

let witness_to_string w =
  match w with
  | [] -> ""
  | (first, _) :: _ ->
    let buf = Buffer.create 64 in
    List.iter
      (fun (n, step) ->
        Buffer.add_string buf (node_to_string n);
        Buffer.add_string buf
          (match step with S_self -> " -> " | S_rel r -> Printf.sprintf " -[%s]-> " r))
      w;
    Buffer.add_string buf (node_to_string first);
    Buffer.contents buf

let to_string d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.code d.path d.message);
  if d.witness <> [] then
    Buffer.add_string buf (Printf.sprintf "\n    witness: %s" (witness_to_string d.witness));
  (match d.hint with
  | Some h -> Buffer.add_string buf (Printf.sprintf "\n    hint: %s" h)
  | None -> ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let to_json d =
  let witness =
    d.witness
    |> List.map (fun (n, step) ->
           Printf.sprintf "{\"type\":%s,\"attr\":%s,\"step\":%s}" (jstr n.n_type) (jstr n.n_attr)
             (match step with S_self -> jstr "self" | S_rel r -> jstr r))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"severity\":%s,\"code\":%s,\"path\":%s,\"message\":%s,\"witness\":[%s],\"hint\":%s,\"fix\":%s}"
    (jstr (severity_name d.severity))
    (jstr d.code) (jstr d.path) (jstr d.message) witness
    (match d.hint with Some h -> jstr h | None -> "null")
    (match d.fix with Some f -> jstr f | None -> "null")

let summary ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  let e = count Error and w = count Warning and i = count Info in
  let part n what = if n = 1 then Printf.sprintf "1 %s" what else Printf.sprintf "%d %ss" n what in
  Printf.sprintf "%d diagnostic%s (%s, %s, %s)" (List.length ds)
    (if List.length ds = 1 then "" else "s")
    (part e "error") (part w "warning") (part i "info")
