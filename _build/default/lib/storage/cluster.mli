(** Greedy usage-based clustering (Section 2.3, verbatim algorithm).

    The paper packs the database into blocks as follows:

    {v
    Repeat
      Choose the most referenced instance in the database that has not
      yet been assigned a block
      Place this instance in a new block
      Repeat
        Choose the relationship belonging to some instance assigned to
        the block such that
          (1) the relationship is connected to an unassigned instance
              outside the block, and
          (2) the total usage count for the relationship is the highest
        Assign the instance attached to this relationship to the block
      Until the block is full
    Until all instances are assigned blocks
    v}

    Ties are broken by smaller instance id so the result is
    deterministic. *)

type link = {
  a : int;
  b : int;
  rel : string;
  count : int;  (** total usage count for this relationship link *)
}

type assignment = {
  block_of : (int, int) Hashtbl.t;  (** instance id -> block id *)
  block_count : int;
}

(** [pack ~block_capacity ~instances ~links] assigns every instance in
    [instances] (given with its access count) to a block of at most
    [block_capacity] instances.  [links] should include every structural
    relationship link, with its accumulated crossing count (0 for links
    never traversed) — an instance connected only by cold links is still
    pulled into its neighbour's block before a fresh block is opened for
    it, exactly as in the paper's inner loop.

    @raise Invalid_argument if [block_capacity < 1]. *)
val pack : block_capacity:int -> instances:(int * int) list -> links:link list -> assignment

(** [sequential ~block_capacity ~instances] is the non-clustered baseline:
    instances packed into blocks in id (creation) order.  This is the
    layout the database has before any re-clustering. *)
val sequential : block_capacity:int -> instances:int list -> assignment
