(** Log-bucketed latency histograms.

    Each histogram spreads observed durations over power-of-two
    microsecond buckets (bucket [i] covers [[2^(i-1), 2^i)] µs), so an
    observation is two float ops and an array increment — cheap enough
    to leave on permanently, unlike the tracer.  Quantiles are
    reconstructed from the buckets (geometric midpoint), exact to within
    one bucket (~2x); [max] is exact.

    A [t] is a registry of named histograms, mirroring
    {!Cactis_util.Counters}: hot paths cache the [h] cell once and skip
    the name lookup.

    Registries are {e domain-safe}: {!cell} returns a histogram private
    to the calling domain (so {!observe} is a race-free plain array
    increment with exactly one writer), and {!snapshot} merges the
    per-domain shards by name — bucket counts sum, maxima max.  Totals
    are exact once the observing domains have been joined; snapshots
    taken while other domains observe are monitoring-grade (never torn,
    possibly mid-burst).  Single-domain programs see bit-identical
    statistics to the historical unsharded registry.  A cached [h] must
    only be observed from the domain that obtained it. *)

type h
(** A single histogram. *)

type t
(** A registry of named histograms. *)

type stats = {
  st_name : string;
  st_count : int;
  st_sum : float;  (** seconds *)
  st_mean : float;  (** seconds *)
  st_p50 : float;  (** seconds *)
  st_p95 : float;  (** seconds *)
  st_p99 : float;  (** seconds *)
  st_max : float;  (** seconds *)
}

val create : unit -> t

(** [cell t name] — the named histogram for the calling domain, created
    empty on first use.  [reset] clears cells in place, so cached cells
    stay valid. *)
val cell : t -> string -> h

(** [observe h seconds] records one duration. *)
val observe : h -> float -> unit

(** [observe_named t name seconds] — {!cell} + {!observe} (cold paths). *)
val observe_named : t -> string -> float -> unit

val count : h -> int

(** Exact sum of observed durations, seconds (OpenMetrics [_sum]). *)
val sum : h -> float

(** Exact maximum observed duration, seconds. *)
val max_value : h -> float

(** Number of buckets (fixed). *)
val num_buckets : int

(** [bucket_upper i] — upper bound of bucket [i] in seconds (bucket [i]
    covers [[2^(i-1), 2^i)] µs; bucket 0 is everything under 1µs). *)
val bucket_upper : int -> float

(** Per-bucket observation counts (a fresh copy, length
    {!num_buckets}). *)
val bucket_counts : h -> int array

(** [quantile h q] for [q] in [[0,1]]; 0 when empty. *)
val quantile : h -> float -> float

val stats : string -> h -> stats

(** Stats for every named histogram with at least one observation,
    sorted by name. *)
val snapshot : t -> stats list

(** One merged histogram per name across all shards (fresh private
    copies — safe to read at leisure), names sorted, empty histograms
    omitted.  The raw-bucket counterpart of {!snapshot}, for OpenMetrics
    exposition and window diffing. *)
val merged_cells : t -> (string * h) list

(** Zero every histogram in place. *)
val reset : t -> unit
