(* Random-schema generator shared by the full-pipeline property test
   (test_gen_schema.ml) and the analyzer soundness properties
   (test_analysis.ml).

   Schemas are well-formed by construction: each class has int
   intrinsics [a0..], derived rules [r0..] where rule k only references
   intrinsics, earlier rules of the same instance, or — when [cross] is
   on — any rule/intrinsic across the class's self-relationship.  With
   [cross = true] the byte stream of RNG draws is identical to the
   historical generator, so seeds reproduce. *)

module Rng = Cactis_util.Rng

type cfg = {
  seed : int;
  classes : int;  (* 1..2 *)
  intrinsics : int;  (* 1..3 per class *)
  rules : int;  (* 1..3 per class *)
  instances : int;  (* 2..12 *)
  ops : int;  (* 0..20 *)
  use_alias : bool;
}

let gen =
  QCheck.Gen.(
    let* seed = int_range 0 100_000 in
    let* classes = int_range 1 2 in
    let* intrinsics = int_range 1 3 in
    let* rules = int_range 1 3 in
    let* instances = int_range 2 12 in
    let* ops = int_range 0 20 in
    let* use_alias = bool in
    return { seed; classes; intrinsics; rules; instances; ops; use_alias })

let print_cfg c =
  Printf.sprintf "seed=%d classes=%d intr=%d rules=%d inst=%d ops=%d alias=%b" c.seed c.classes
    c.intrinsics c.rules c.instances c.ops c.use_alias

(* Build the DDL source for one random schema.  [cross = false] keeps
   every rule within its own instance: the type-level dependency graph
   is acyclic by construction, so the analyzer must give those schemas a
   clean circularity verdict. *)
let schema_source ?(cross = true) cfg =
  let rng = Rng.create cfg.seed in
  let buf = Buffer.create 512 in
  for c = 0 to cfg.classes - 1 do
    let cname = Printf.sprintf "k%d" c in
    Buffer.add_string buf (Printf.sprintf "object class %s is\n" cname);
    Buffer.add_string buf
      (Printf.sprintf
         "  relationships\n    down : %s multi socket inverse up;\n    up : %s multi plug inverse down;\n"
         cname cname);
    Buffer.add_string buf "  attributes\n";
    for a = 0 to cfg.intrinsics - 1 do
      Buffer.add_string buf (Printf.sprintf "    a%d : int := %d;\n" a (Rng.int rng 10))
    done;
    Buffer.add_string buf "  rules\n";
    for r = 0 to cfg.rules - 1 do
      (* Safe expression: combination of intrinsics, earlier same-instance
         rules, and aggregates across [down]. *)
      let atom () =
        let choice = Rng.int rng (if r > 0 then 4 else 3) in
        (* Without cross-instance references, downgrade that case to a
           plain intrinsic read (same number of RNG draws either way is
           not required here: only the cross=true stream is pinned). *)
        let choice = if choice = 2 && not cross then 1 else choice in
        match choice with
        | 0 -> string_of_int (Rng.int rng 20)
        | 1 -> Printf.sprintf "a%d" (Rng.int rng cfg.intrinsics)
        | 2 ->
          (* Cross-instance: may reference any rule or intrinsic, including
             this very rule (recursion over the DAG), or an alias. *)
          let target =
            if cfg.use_alias && Rng.chance rng 0.3 then "exported"
            else if Rng.bool rng then Printf.sprintf "r%d" (Rng.int rng cfg.rules)
            else Printf.sprintf "a%d" (Rng.int rng cfg.intrinsics)
          in
          let agg = match Rng.int rng 3 with 0 -> "sum" | 1 -> "max" | _ -> "min" in
          Printf.sprintf "%s(down.%s default 0)" agg target
        | _ -> Printf.sprintf "r%d" (Rng.int rng r)
      in
      let op = match Rng.int rng 3 with 0 -> "+" | 1 -> "-" | _ -> "*" in
      Buffer.add_string buf (Printf.sprintf "    r%d = %s %s %s;\n" r (atom ()) op (atom ()))
    done;
    if cfg.use_alias then
      Buffer.add_string buf "  transmits\n    up.exported = r0;\n";
    Buffer.add_string buf "end object;\n"
  done;
  Buffer.contents buf
