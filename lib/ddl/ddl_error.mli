(** Shared DDL failure exception (see also [Elaborate.Error], an alias). *)

exception Error of string

(** [error fmt ...] raises {!Error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
