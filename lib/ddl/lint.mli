(** Linting parsed DDL: run the static analyzer
    ({!Cactis_analysis.Analyze}) over an {!Ast.schema} {e without}
    elaborating it — no compute closures are built and nothing can
    raise, so even schemas the elaborator would reject (dangling
    inverses, unknown classes) produce diagnostics instead of
    exceptions.  This is what [cactis lint] runs. *)

(** [view_of_ast items] — the analyzer's declaration-only view of a
    parsed schema.  Mirrors elaboration: subtype predicates become
    hidden membership attributes on the parent ({!Cactis.Schema.membership_attr}),
    subtype extra rules land on the parent too. *)
val view_of_ast : Ast.schema -> Cactis_analysis.View.t

(** [analyze_ast items] = [Cactis_analysis.Analyze.analyze_view (view_of_ast items)],
    plus AST-level checks the view cannot express (duplicate class,
    attribute and relationship declarations). *)
val analyze_ast :
  ?counters:Cactis_util.Counters.t -> Ast.schema -> Cactis_analysis.Diag.t list

(** [typecheck_diags items] — {!Typecheck.check} results wrapped as
    error-severity diagnostics (code ["type"]), for a combined lint
    report. *)
val typecheck_diags : Ast.schema -> Cactis_analysis.Diag.t list
