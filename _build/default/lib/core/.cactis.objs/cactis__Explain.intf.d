lib/core/explain.mli: Db Value
