module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value

type program =
  | Assign of { target : string; uses : string list; label : string }
  | Seq of program * program
  | If of { cond_uses : string list; then_ : program; else_ : program }
  | While of { cond_uses : string list; body : program }

type t = {
  database : Db.t;
  order : int list;  (* program order *)
}

(* ---- string-set values (sorted unique arrays of Str) ---- *)

let set_of_list l =
  Value.Arr (Array.of_list (List.map (fun s -> Value.Str s) (List.sort_uniq compare l)))

let list_of_set v = Array.to_list (Value.as_array v) |> List.map Value.as_string

let union2 a b = set_of_list (list_of_set a @ list_of_set b)

let union_all vs = set_of_list (List.concat_map list_of_set vs)

let diff a b =
  let bl = list_of_set b in
  set_of_list (List.filter (fun x -> not (List.mem x bl)) (list_of_set a))

let empty_set = set_of_list []

(* ---- schema ---- *)

let install_schema sch =
  Schema.add_type sch "flow_node";
  Schema.declare_relationship sch ~from_type:"flow_node" ~rel:"succ" ~to_type:"flow_node"
    ~inverse:"pred" ~card:Schema.Multi ~inverse_card:Schema.Multi;
  List.iter
    (fun name -> Schema.add_attr sch ~type_name:"flow_node" (Rule.intrinsic name empty_set))
    [ "def"; "use"; "gen"; "kill" ];
  Schema.add_attr sch ~type_name:"flow_node" (Rule.intrinsic "label" (Value.Str ""));
  (* Backward analysis: liveness flows from successors. *)
  Schema.add_attr sch ~type_name:"flow_node"
    (Rule.derived "live_out"
       (Rule.make [ Schema.Rel ("succ", "live_in") ] (fun env ->
            union_all (env.Schema.related_values "succ" "live_in"))));
  Schema.add_attr sch ~type_name:"flow_node"
    (Rule.derived "live_in"
       (Rule.map3 "use" "live_out" "def" (fun use out def -> union2 use (diff out def))));
  (* Forward analysis: reaching definitions flow from predecessors. *)
  Schema.add_attr sch ~type_name:"flow_node"
    (Rule.derived "reach_in"
       (Rule.make [ Schema.Rel ("pred", "reach_out") ] (fun env ->
            union_all (env.Schema.related_values "pred" "reach_out"))));
  Schema.add_attr sch ~type_name:"flow_node"
    (Rule.derived "reach_out"
       (Rule.map3 "gen" "reach_in" "kill" (fun gen rin kill -> union2 gen (diff rin kill))))

let schema () =
  let sch = Schema.create () in
  install_schema sch;
  sch

let static_diagnostics () = Cactis_analysis.Analyze.analyze_schema (schema ())

(* ---- CFG construction ---- *)

(* All labels assigning each variable, for kill sets. *)
let rec assignments acc = function
  | Assign { target; label; _ } -> (target, label) :: acc
  | Seq (a, b) -> assignments (assignments acc a) b
  | If { then_; else_; _ } -> assignments (assignments acc then_) else_
  | While { body; _ } -> assignments acc body

let rec has_loop = function
  | Assign _ -> false
  | Seq (a, b) -> has_loop a || has_loop b
  | If { then_; else_; _ } -> has_loop then_ || has_loop else_
  | While _ -> true

exception Rejected of { message : string; witness : string }

(* The analyzer's verdict on the flow schema: the liveness and reaching
   rules are potentially circular along succ/pred, manifesting exactly
   when the data graph cycles along them — which a [While] creates.  So
   a looping program is rejected before a single object is built,
   carrying the analyzer's type-level witness path. *)
let static_reject () =
  let diag =
    List.find_opt
      (fun d -> String.equal d.Cactis_analysis.Diag.code "potential-cycle")
      (static_diagnostics ())
  in
  match diag with
  | None -> assert false (* the flow schema's rules are circular by construction *)
  | Some d ->
    raise
      (Rejected
         {
           message =
             "program contains a loop: the flow rules cycle on a cyclic control-flow graph ("
             ^ d.Cactis_analysis.Diag.message ^ ")";
           witness = Cactis_analysis.Diag.witness_to_string d.Cactis_analysis.Diag.witness;
         })

(* Distinct assignment labels and variables: chain heights of the two
   powerset lattices the flow sets live in (every strict step of a
   Kleene iteration adds at least one element). *)
let rec variables acc = function
  | Assign { target; uses; _ } -> (target :: uses) @ acc
  | Seq (a, b) -> variables (variables acc a) b
  | If { cond_uses; then_; else_ } -> cond_uses @ variables (variables acc then_) else_
  | While { cond_uses; body } -> cond_uses @ variables acc body

let lattice_height ~exit_live program =
  let labels = List.map snd (assignments [] program) in
  let vars = List.sort_uniq compare (exit_live @ variables [] program) in
  max 1 (max (List.length (List.sort_uniq compare labels)) (List.length vars))

(* [Far86] mode: the flow sets are monotone over the powerset lattices
   of variables (liveness) and labels (reaching), both of height bounded
   by [lattice_height].  Declaring that shape makes the analyzer classify
   the succ/pred cycles convergent, and [Db.set_fixed_point] lets the
   engine iterate While-loop CFGs to their least fixed point instead of
   raising [Errors.Cycle]. *)
let declare_lattice_shapes sch ~height =
  List.iter
    (fun attr ->
      Schema.declare_rule_shape sch ~type_name:"flow_node" ~attr
        (Schema.Shape_lattice { height; bottom = empty_set }))
    [ "live_out"; "live_in"; "reach_in"; "reach_out" ]

let analyze ?(static_check = true) ?(fixed_point = false) ?(exit_live = []) program =
  if static_check && has_loop program && not fixed_point then static_reject ();
  let sch = schema () in
  if fixed_point then declare_lattice_shapes sch ~height:(lattice_height ~exit_live program);
  let database = Db.create sch in
  if fixed_point then Db.set_fixed_point database true;
  let all_assigns = assignments [] program in
  let order = ref [] in
  let new_node ~label ~def ~use ~gen ~kill =
    Db.with_txn database (fun () ->
        let id = Db.create_instance database "flow_node" in
        Db.set database id "label" (Value.Str label);
        Db.set database id "def" (set_of_list def);
        Db.set database id "use" (set_of_list use);
        Db.set database id "gen" (set_of_list gen);
        Db.set database id "kill" (set_of_list kill);
        order := id :: !order;
        id)
  in
  let connect froms to_ =
    List.iter (fun f -> Db.link database ~from_id:f ~rel:"succ" ~to_id:to_) froms
  in
  (* Returns (entry node, exit nodes). *)
  let rec build = function
    | Assign { target; uses; label } ->
      let kill =
        List.filter_map
          (fun (v, l) -> if v = target && l <> label then Some l else None)
          all_assigns
      in
      let id = new_node ~label ~def:[ target ] ~use:uses ~gen:[ label ] ~kill in
      (id, [ id ])
    | Seq (a, b) ->
      let entry_a, exits_a = build a in
      let entry_b, exits_b = build b in
      connect exits_a entry_b;
      (entry_a, exits_b)
    | If { cond_uses; then_; else_ } ->
      let cond = new_node ~label:"if" ~def:[] ~use:cond_uses ~gen:[] ~kill:[] in
      let entry_t, exits_t = build then_ in
      let entry_e, exits_e = build else_ in
      connect [ cond ] entry_t;
      connect [ cond ] entry_e;
      (cond, exits_t @ exits_e)
    | While { cond_uses; body } ->
      (* Deliberately cyclic: the analysis rules will detect the cycle,
         matching the paper's "goto-less languages only" restriction. *)
      let cond = new_node ~label:"while" ~def:[] ~use:cond_uses ~gen:[] ~kill:[] in
      let entry_b, exits_b = build body in
      connect [ cond ] entry_b;
      connect exits_b cond;
      (cond, [ cond ])
  in
  let entry, exits = build program in
  ignore entry;
  (* A synthetic exit node holds the variables live at program exit
     (results, globals), so final assignments to them are not flagged
     dead. *)
  if exit_live <> [] then begin
    let exit_node = new_node ~label:"exit" ~def:[] ~use:exit_live ~gen:[] ~kill:[] in
    connect exits exit_node
  end;
  { database; order = List.rev !order }

let db t = t.database
let nodes t = t.order
let label t id = Value.as_string (Db.get t.database ~watch:false id "label")

let live_in t id = list_of_set (Db.get t.database id "live_in")
let live_out t id = list_of_set (Db.get t.database id "live_out")
let reaching_in t id = list_of_set (Db.get t.database id "reach_in")
let reaching_out t id = list_of_set (Db.get t.database id "reach_out")

let dead_assignments t =
  List.filter
    (fun id ->
      match list_of_set (Db.get t.database ~watch:false id "def") with
      | [ target ] -> not (List.mem target (live_out t id))
      | _ -> false)
    t.order
