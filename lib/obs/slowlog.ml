type record = {
  sr_wall_us : int64;
  sr_verb : string;
  sr_dur_s : float;
  sr_deadline_s : float;
  sr_span : int;
  sr_req : int;
  sr_version : int;
  sr_domain : string;
  sr_pager_hits : int;
  sr_pager_misses : int;
}

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  Printf.sprintf
    "{\"ts_us\":%Ld,\"verb\":\"%s\",\"dur_ms\":%.3f,\"deadline_ms\":%.3f,\"span\":%d,\"req\":%d,\"version\":%d,\"domain\":\"%s\",\"pager_hits\":%d,\"pager_misses\":%d}"
    r.sr_wall_us (escape r.sr_verb) (r.sr_dur_s *. 1e3) (r.sr_deadline_s *. 1e3) r.sr_span r.sr_req
    r.sr_version (escape r.sr_domain) r.sr_pager_hits r.sr_pager_misses

type t = {
  default_deadline : float;
  per_verb : (string * float) list;
  sink : string -> unit;
  logged : int Atomic.t;
}

let create ~deadline_s ?(per_verb = []) ~sink () =
  { default_deadline = deadline_s; per_verb; sink; logged = Atomic.make 0 }

let deadline_for t verb =
  match List.assoc_opt verb t.per_verb with Some d -> d | None -> t.default_deadline

let observe t r =
  let deadline = deadline_for t r.sr_verb in
  if r.sr_dur_s >= deadline then begin
    Atomic.incr t.logged;
    t.sink (to_json { r with sr_deadline_s = deadline });
    true
  end
  else false

let logged t = Atomic.get t.logged
