(* Crash injection for the write-ahead log: truncate or corrupt the log
   at every byte offset and check that recovery lands exactly on the
   last durably committed transaction — never on a partial one, never on
   an older one than the intact prefix allows. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Snapshot = Cactis.Snapshot
module Persist = Cactis.Persist
module Wal = Cactis_storage.Wal

(* Tests run in dune's per-test sandbox, so relative scratch dirs are
   isolated and cleaned with the sandbox. *)
let tmp_seq = ref 0

let temp_dir () =
  incr tmp_seq;
  let dir = Printf.sprintf "crash_scratch_%d" !tmp_seq in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node"
    ~inverse:"rdeps" ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "v" (Value.Int 0));
  sch

(* Build a durable history exercising every op kind the log replays:
   create, set, link, unlink, delete — plus undo and redo, which append
   their own deltas.  Returns the wal file bytes, the offset where each
   durable state ends, and the canonical (binary snapshot) bytes of each
   state. *)
let build_history dir =
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let states = ref [ Snapshot.save_binary db ] in
  let frame_bytes = ref [ 0 ] in
  let mark () =
    states := Snapshot.save_binary db :: !states;
    frame_bytes := Persist.wal_bytes p :: !frame_bytes
  in
  let a =
    Db.with_txn db (fun () ->
        let a = Db.create_instance db "node" in
        Db.set db a "v" (Value.Int 10);
        a)
  in
  mark ();
  let b =
    Db.with_txn db (fun () ->
        let b = Db.create_instance db "node" in
        Db.set db b "v" (Value.Int (-4611686018427387904));
        Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
        b)
  in
  mark ();
  Db.with_txn db (fun () -> Db.set db a "v" (Value.Int 42));
  mark ();
  Db.undo_last db;
  mark ();
  Db.redo db;
  mark ();
  Db.with_txn db (fun () ->
      Db.unlink db ~from_id:a ~rel:"deps" ~to_id:b;
      Db.delete_instance db b);
  mark ();
  Persist.close p;
  let wal = read_file (Filename.concat dir "wal.log") in
  let total = List.hd !frame_bytes in
  let header = String.length wal - total in
  let offsets = List.rev_map (fun b -> header + b) !frame_bytes in
  (wal, Array.of_list offsets, Array.of_list (List.rev !states))

(* The oracle: with the log cut (or first corrupted) at byte [t], the
   intact prefix holds exactly the frames that end at or before [t]. *)
let expected_state offsets t =
  let e = ref 0 in
  Array.iteri (fun i off -> if off <= t then e := i) offsets;
  !e

let recover_with dir wal_bytes =
  let d2 = temp_dir () in
  write_file (Filename.concat d2 "wal.log") wal_bytes;
  let sf = Filename.concat dir "snapshot.bin" in
  if Sys.file_exists sf then
    Wal.write_file_durable (Filename.concat d2 "snapshot.bin") (read_file sf);
  let p = Persist.recover ~dir:d2 (node_schema ()) in
  let state = Snapshot.save_binary (Persist.db p) in
  let replayed = Persist.replayed p in
  let torn = Persist.recovered_torn p in
  Persist.close p;
  rm_rf d2;
  (state, replayed, torn)

let test_truncate_every_offset () =
  let dir = temp_dir () in
  let wal, offsets, states = build_history dir in
  let n = String.length wal in
  let saw_torn = ref false in
  for t = 0 to n do
    let state, replayed, torn = recover_with dir (String.sub wal 0 t) in
    let e = expected_state offsets t in
    if torn then saw_torn := true;
    Alcotest.(check int) (Printf.sprintf "cut at %d: deltas replayed" t) e replayed;
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d: state = last durable commit" t)
      true
      (String.equal state states.(e))
  done;
  Alcotest.(check bool) "some cuts leave a torn tail" true !saw_torn;
  (* The full log replays everything. *)
  let state, replayed, torn = recover_with dir wal in
  Alcotest.(check int) "full log: all deltas" (Array.length offsets - 1) replayed;
  Alcotest.(check bool) "full log: not torn" false torn;
  Alcotest.(check bool) "full log: final state" true
    (String.equal state states.(Array.length states - 1));
  rm_rf dir

let test_corrupt_every_offset () =
  let dir = temp_dir () in
  let wal, offsets, states = build_history dir in
  let header = offsets.(0) in
  for c = header to String.length wal - 1 do
    let mutated = Bytes.of_string wal in
    Bytes.set mutated c (Char.chr (Char.code (Bytes.get mutated c) lxor 0x40));
    let state, replayed, _ = recover_with dir (Bytes.to_string mutated) in
    (* The frame containing the flipped byte fails its CRC (or frames no
       longer parse), so recovery keeps exactly the frames before it. *)
    let e = expected_state offsets c in
    Alcotest.(check int) (Printf.sprintf "flip at %d: deltas replayed" c) e replayed;
    Alcotest.(check bool)
      (Printf.sprintf "flip at %d: state = last intact commit" c)
      true
      (String.equal state states.(e))
  done;
  rm_rf dir

let test_recovery_resumes_durably () =
  (* After recovering from a torn tail, new commits append over the
     truncation point and survive the next recovery. *)
  let dir = temp_dir () in
  let wal, offsets, states = build_history dir in
  let d2 = temp_dir () in
  (* Cut mid-way through the last frame. *)
  let cut = (offsets.(Array.length offsets - 2) + String.length wal) / 2 in
  write_file (Filename.concat d2 "wal.log") (String.sub wal 0 cut);
  let p = Persist.recover ~sync_every:1 ~dir:d2 (node_schema ()) in
  Alcotest.(check bool) "torn tail detected" true (Persist.recovered_torn p);
  let db = Persist.db p in
  Alcotest.(check bool) "recovered to last durable state" true
    (String.equal (Snapshot.save_binary db) states.(Array.length offsets - 2));
  Db.with_txn db (fun () ->
      let c = Db.create_instance db "node" in
      Db.set db c "v" (Value.Int 7));
  let after = Snapshot.save_binary db in
  Persist.close p;
  let p2 = Persist.recover ~dir:d2 (node_schema ()) in
  Alcotest.(check bool) "commit after recovery is durable" true
    (String.equal (Snapshot.save_binary (Persist.db p2)) after);
  Alcotest.(check bool) "no torn tail after clean close" false (Persist.recovered_torn p2);
  Persist.close p2;
  rm_rf d2;
  rm_rf dir

let test_checkpoint_plus_tail () =
  (* Checkpoint mid-history: recovery loads the snapshot and replays
     only the post-checkpoint tail; cuts inside the tail land on the
     checkpoint or the commits after it, never earlier. *)
  let dir = temp_dir () in
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let a =
    Db.with_txn db (fun () ->
        let a = Db.create_instance db "node" in
        Db.set db a "v" (Value.Int 1);
        a)
  in
  Persist.checkpoint p;
  let cp_state = Snapshot.save_binary db in
  Db.with_txn db (fun () -> Db.set db a "v" (Value.Int 2));
  let s1 = Snapshot.save_binary db in
  let b1 = Persist.wal_bytes p in
  Db.with_txn db (fun () -> Db.set db a "v" (Value.Int 3));
  let s2 = Snapshot.save_binary db in
  ignore b1;
  Persist.close p;
  let wal = read_file (Filename.concat dir "wal.log") in
  (* Frame offsets: derived from Wal.read record sizes, not arithmetic. *)
  let { Wal.records; _ } = Wal.read (Filename.concat dir "wal.log") in
  Alcotest.(check int) "two frames after checkpoint" 2 (List.length records);
  let hdr = String.length wal - List.fold_left (fun n r -> n + 8 + String.length r) 0 records in
  let off1 = hdr + 8 + String.length (List.nth records 0) in
  List.iteri
    (fun i (cut, expect, exp_replayed) ->
      let state, replayed, _ = recover_with dir (String.sub wal 0 cut) in
      Alcotest.(check int) (Printf.sprintf "case %d: replayed" i) exp_replayed replayed;
      Alcotest.(check bool) (Printf.sprintf "case %d: state" i) true
        (String.equal state expect))
    [
      (hdr, cp_state, 0);
      (off1 - 1, cp_state, 0);
      (off1, s1, 1);
      (String.length wal - 1, s1, 1);
      (String.length wal, s2, 2);
    ];
  rm_rf dir

let test_checkpoint_crash_window () =
  (* Crash between the two checkpoint steps — the snapshot renamed into
     place but the WAL not yet reset: the log still holds every
     pre-checkpoint delta, now also folded into the snapshot.  Recovery
     must recognize the older log generation and skip the records, not
     double-apply them (Create would collide with existing ids, Link
     would double-insert). *)
  let dir = temp_dir () in
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let a =
    Db.with_txn db (fun () ->
        let a = Db.create_instance db "node" in
        Db.set db a "v" (Value.Int 1);
        a)
  in
  Db.with_txn db (fun () ->
      let b = Db.create_instance db "node" in
      Db.link db ~from_id:a ~rel:"deps" ~to_id:b);
  let stale_wal = read_file (Filename.concat dir "wal.log") in
  Persist.checkpoint p;
  let cp_state = Snapshot.save_binary db in
  Persist.close p;
  let snap = read_file (Filename.concat dir "snapshot.bin") in
  (* New snapshot over every truncation of the old log, full length
     included: always the checkpoint state, never a replay. *)
  for t = 0 to String.length stale_wal do
    let d2 = temp_dir () in
    Wal.write_file_durable (Filename.concat d2 "snapshot.bin") snap;
    write_file (Filename.concat d2 "wal.log") (String.sub stale_wal 0 t);
    let p2 = Persist.recover ~dir:d2 (node_schema ()) in
    Alcotest.(check int) (Printf.sprintf "stale cut %d: nothing replayed" t) 0 (Persist.replayed p2);
    Alcotest.(check bool)
      (Printf.sprintf "stale cut %d: state = checkpoint" t)
      true
      (String.equal (Snapshot.save_binary (Persist.db p2)) cp_state);
    Alcotest.(check bool)
      (Printf.sprintf "stale cut %d: stale log is not a torn tail" t)
      false (Persist.recovered_torn p2);
    Persist.close p2;
    rm_rf d2
  done;
  (* Commits after recovering through the window land in the reset log
     and survive the next recovery. *)
  let d3 = temp_dir () in
  Wal.write_file_durable (Filename.concat d3 "snapshot.bin") snap;
  write_file (Filename.concat d3 "wal.log") stale_wal;
  let p3 = Persist.recover ~sync_every:1 ~dir:d3 (node_schema ()) in
  let db3 = Persist.db p3 in
  Db.with_txn db3 (fun () ->
      let c = Db.create_instance db3 "node" in
      Db.set db3 c "v" (Value.Int 9));
  let after = Snapshot.save_binary db3 in
  Persist.close p3;
  let p4 = Persist.recover ~dir:d3 (node_schema ()) in
  Alcotest.(check int) "post-window commit replayed" 1 (Persist.replayed p4);
  Alcotest.(check bool) "post-window commit durable" true
    (String.equal (Snapshot.save_binary (Persist.db p4)) after);
  Persist.close p4;
  rm_rf d3;
  rm_rf dir

let test_attach_resets_foreign_wal () =
  (* Attaching a database to a directory whose WAL already holds records
     that were never replayed into it must re-baseline (checkpoint +
     log reset) instead of appending after the stale records. *)
  let dir = temp_dir () in
  let _wal = build_history dir in
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  Db.with_txn db (fun () ->
      let a = Db.create_instance db "node" in
      Db.set db a "v" (Value.Int 5));
  let state = Snapshot.save_binary db in
  Persist.close p;
  let p2 = Persist.recover ~dir (node_schema ()) in
  Alcotest.(check bool) "recovered = attached db, stale records discarded" true
    (String.equal (Snapshot.save_binary (Persist.db p2)) state);
  Alcotest.(check int) "only the post-attach commit replays" 1 (Persist.replayed p2);
  Persist.close p2;
  rm_rf dir

let test_wal_ahead_of_snapshot_rejected () =
  (* A log stamped newer than the checkpoint means the checkpoint file
     was deleted or replaced: the deltas belong to a state we no longer
     have, so recovery must refuse rather than replay them. *)
  let dir = temp_dir () in
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  Db.with_txn db (fun () -> ignore (Db.create_instance db "node"));
  Persist.checkpoint p;
  Db.with_txn db (fun () -> ignore (Db.create_instance db "node"));
  Persist.close p;
  Sys.remove (Filename.concat dir "snapshot.bin");
  (match Persist.recover ~dir (node_schema ()) with
  | _ -> Alcotest.fail "expected recover to refuse a log ahead of the checkpoint"
  | exception Cactis.Errors.Type_error _ -> ());
  rm_rf dir

(* ---- crash in the middle of an incremental re-clustering ---- *)

module Store = Cactis.Store
module Pager = Cactis_storage.Pager

(* Placement consistency oracle: every live instance sits in exactly one
   block, the pager's member lists agree, and no block exceeds its
   capacity. *)
let check_placement pager live cap =
  let by_block = Hashtbl.create 32 in
  List.iter
    (fun id ->
      match Pager.block_of pager id with
      | None -> Alcotest.failf "instance %d unplaced" id
      | Some b ->
        Hashtbl.replace by_block b
          (id :: Option.value ~default:[] (Hashtbl.find_opt by_block b)))
    live;
  Hashtbl.iter
    (fun b ms ->
      if List.length ms > cap then
        Alcotest.failf "block %d over capacity (%d members)" b (List.length ms);
      let recorded = Pager.members_of pager b in
      List.iter
        (fun id ->
          if not (List.mem id recorded) then
            Alcotest.failf "member list of block %d is missing %d" b id)
        ms)
    by_block;
  Alcotest.(check (list int))
    "pager population = live instances" (List.sort compare live)
    (List.sort compare (Pager.instances pager))

let test_mid_recluster_crash () =
  (* Placement moves are never WAL-logged — the log is the source of
     truth for data, and placement is rebuilt deterministically at
     recovery.  So a crash with a migration half applied must (a) leave
     the pre-crash data recoverable bit-for-bit, and (b) recover to a
     consistent placement that a fresh re-clustering can reorganize. *)
  let dir = temp_dir () in
  let db = Db.create ~block_capacity:4 (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let ids =
    Array.init 32 (fun _ ->
        Db.with_txn db (fun () ->
            let i = Db.create_instance db "node" in
            Db.set db i "v" (Value.Int 1);
            i))
  in
  let n = Array.length ids in
  Db.with_txn db (fun () ->
      for i = 0 to n - 1 do
        Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.((i + 1) mod n)
      done);
  (* Train the usage statistics so the plan actually moves instances. *)
  for _ = 1 to 4 do
    Array.iter
      (fun id ->
        ignore (Db.get db ~watch:false id "v");
        ignore (Db.related db id "deps"))
      ids
  done;
  let st = Db.store db in
  let pending = Store.begin_recluster st in
  Alcotest.(check bool) "plan cut" true (pending > 0);
  ignore (Store.recluster_step st ~max_moves:5);
  Alcotest.(check bool) "migration in flight" true (Store.pending_moves st > 0);
  let live = Array.to_list ids in
  (* Mid-flight the placement is already consistent. *)
  check_placement (Store.pager st) live 4;
  let pre_crash = Snapshot.save_binary db in
  (* Crash: the process dies here; only the synced WAL survives. *)
  let wal = read_file (Filename.concat dir "wal.log") in
  let d2 = temp_dir () in
  write_file (Filename.concat d2 "wal.log") wal;
  let p2 = Persist.recover ~block_capacity:4 ~dir:d2 (node_schema ()) in
  let db2 = Persist.db p2 in
  Alcotest.(check bool) "data = last durable commit" true
    (String.equal (Snapshot.save_binary db2) pre_crash);
  check_placement (Store.pager (Db.store db2)) live 4;
  (* The recovered database re-clusters cleanly from scratch. *)
  Alcotest.(check bool) "recovered db re-clusters" true (Db.recluster db2 > 0);
  check_placement (Store.pager (Db.store db2)) live 4;
  Persist.close p2;
  Persist.close p;
  rm_rf d2;
  rm_rf dir

(* ---- schema deltas interleaved with data deltas ---- *)

let parse_rule src = Cactis_ddl.Elaborate.compile_rule (Cactis_ddl.Parser.parse_expr src)

(* Observable-state fingerprint: intrinsic data (text snapshot) plus the
   schema's description.  Binary snapshot bytes are no good here — a
   replayed history linearizes undo/redo into fresh deltas, so the two
   sides carry different (but observably equivalent) schema-op paths. *)
let fingerprint db = Snapshot.save db ^ "\n--schema--\n" ^ Schema.describe (Db.schema db)

(* A history interleaving data commits with logged schema deltas:
   intrinsic and derived add_attr, a subtype added in the same
   transaction as a data op, and an undo/redo pair over the
   schema-bearing delta (so the log also holds retraction records). *)
let build_schema_history dir =
  Cactis_ddl.Elaborate.install_rule_compiler ();
  let db = Db.create (node_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let states = ref [ fingerprint db ] in
  let frame_bytes = ref [ 0 ] in
  let mark () =
    states := fingerprint db :: !states;
    frame_bytes := Persist.wal_bytes p :: !frame_bytes
  in
  let a =
    Db.with_txn db (fun () ->
        let a = Db.create_instance db "node" in
        Db.set db a "v" (Value.Int 3);
        a)
  in
  mark ();
  Db.add_attr db ~type_name:"node" (Rule.intrinsic "w" (Value.Int 1));
  mark ();
  Db.with_txn db (fun () -> Db.set db a "w" (Value.Int 8));
  mark ();
  Db.add_attr db ~expr:"v + w" ~type_name:"node" (Rule.derived "dv" (parse_rule "v + w"));
  mark ();
  Db.with_txn db (fun () ->
      let b = Db.create_instance db "node" in
      Db.link db ~from_id:a ~rel:"deps" ~to_id:b);
  mark ();
  (* Schema and data change in ONE transaction: a torn frame must drop
     both, an intact one must apply both. *)
  Db.with_txn db (fun () ->
      Db.add_subtype db ~predicate_expr:"v > 0" ~attr_exprs:[ None ]
        {
          Schema.sub_name = "hot";
          parent = "node";
          predicate = parse_rule "v > 0";
          extra_attrs = [ Rule.intrinsic "heat" (Value.Int 2) ];
        };
      Db.set db a "v" (Value.Int 5));
  mark ();
  (* Undo appends the inverse delta — a schema *retraction* record in
     the log; redo re-appends the forward delta. *)
  Db.undo_last db;
  mark ();
  Db.redo db;
  mark ();
  Persist.close p;
  let wal = read_file (Filename.concat dir "wal.log") in
  let total = List.hd !frame_bytes in
  let header = String.length wal - total in
  let offsets = List.rev_map (fun b -> header + b) !frame_bytes in
  (wal, Array.of_list offsets, Array.of_list (List.rev !states))

let recover_fingerprint dir wal_bytes =
  let d2 = temp_dir () in
  write_file (Filename.concat d2 "wal.log") wal_bytes;
  let sf = Filename.concat dir "snapshot.bin" in
  if Sys.file_exists sf then
    Wal.write_file_durable (Filename.concat d2 "snapshot.bin") (read_file sf);
  let p = Persist.recover ~dir:d2 (node_schema ()) in
  let state = fingerprint (Persist.db p) in
  let replayed = Persist.replayed p in
  Persist.close p;
  rm_rf d2;
  (state, replayed)

let test_schema_truncate_every_offset () =
  let dir = temp_dir () in
  let wal, offsets, states = build_schema_history dir in
  for t = 0 to String.length wal do
    let state, replayed = recover_fingerprint dir (String.sub wal 0 t) in
    let e = expected_state offsets t in
    Alcotest.(check int) (Printf.sprintf "cut at %d: deltas replayed" t) e replayed;
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d: schema delta fully applied or fully dropped" t)
      true
      (String.equal state states.(e))
  done;
  rm_rf dir

let test_schema_corrupt_every_offset () =
  let dir = temp_dir () in
  let wal, offsets, states = build_schema_history dir in
  for c = offsets.(0) to String.length wal - 1 do
    let mutated = Bytes.of_string wal in
    Bytes.set mutated c (Char.chr (Char.code (Bytes.get mutated c) lxor 0x40));
    let state, replayed = recover_fingerprint dir (Bytes.to_string mutated) in
    let e = expected_state offsets c in
    Alcotest.(check int) (Printf.sprintf "flip at %d: deltas replayed" c) e replayed;
    Alcotest.(check bool)
      (Printf.sprintf "flip at %d: schema delta fully applied or fully dropped" c)
      true
      (String.equal state states.(e))
  done;
  rm_rf dir

let () =
  Alcotest.run "cactis-crash"
    [
      ( "wal recovery",
        [
          Alcotest.test_case "truncate at every offset" `Quick test_truncate_every_offset;
          Alcotest.test_case "corrupt at every offset" `Quick test_corrupt_every_offset;
          Alcotest.test_case "recovery resumes durably" `Quick test_recovery_resumes_durably;
          Alcotest.test_case "checkpoint + tail cuts" `Quick test_checkpoint_plus_tail;
          Alcotest.test_case "crash between snapshot and log reset" `Quick
            test_checkpoint_crash_window;
          Alcotest.test_case "attach re-baselines a foreign log" `Quick
            test_attach_resets_foreign_wal;
          Alcotest.test_case "log ahead of checkpoint rejected" `Quick
            test_wal_ahead_of_snapshot_rejected;
          Alcotest.test_case "crash mid-recluster" `Quick test_mid_recluster_crash;
        ] );
      ( "schema deltas",
        [
          Alcotest.test_case "truncate at every offset (interleaved schema)" `Quick
            test_schema_truncate_every_offset;
          Alcotest.test_case "corrupt at every offset (interleaved schema)" `Quick
            test_schema_corrupt_every_offset;
        ] );
    ]
