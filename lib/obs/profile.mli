(** Propagation profile.

    Records what one propagation window (the mutations of a transaction
    plus the evaluation wave of its commit) actually did: dependency
    nodes marked out of date, dependency edges walked, traversal cutoffs
    taken, and rule evaluations performed — keyed per attribute so the
    paper's central invariant is {e mechanically checkable}:

    - "no attribute is evaluated more than once per propagation" (§2.2):
      {!snapshot} reports the maximum number of evaluations any single
      (instance, attribute) received between invalidations;
      {!at_most_once} is true iff that maximum is ≤ 1;
    - "amortized overhead is O(Nodes(Could_Change) + Edges(Could_Change))"
      (§2.2): [work] (mark visits + evaluations) is reported against
      [bound] (nodes marked + edges walked, the traversal's measure of
      the reachable subgraph).

    The engine feeds a profile only when one is installed
    (see [Db.set_profiling]); hot paths otherwise pay one option match
    per event. *)

type t

type snapshot = {
  p_nodes_marked : int;  (** slots newly marked out of date *)
  p_edges_walked : int;  (** dependency edges scheduled during marking *)
  p_cutoffs : int;  (** visits stopped at an already-marked slot *)
  p_evals : int;  (** rule evaluations *)
  p_distinct_evaluated : int;  (** distinct (instance, attr) evaluated *)
  p_max_evals_per_attr : int;  (** highest per-attribute evaluation count *)
  p_bound : int;  (** nodes marked + edges walked: the O(N+E) measure *)
  p_work : int;  (** mark visits (incl. cutoffs) + evaluations *)
}

val create : unit -> t
val reset : t -> unit

(** {1 Engine hooks} ([key] is the packed (instance, attr-symbol)) *)

(** A slot transitioned to out-of-date.  Re-arms the at-most-once
    tracking for [key]: an invalidation legitimately permits one more
    evaluation. *)
val on_mark : t -> key:int -> unit

val on_cutoff : t -> unit
val on_edge : t -> unit
val on_eval : t -> key:int -> unit

(** {1 Reporting} *)

val snapshot : t -> snapshot

(** The evaluated-at-most-once invariant held. *)
val at_most_once : snapshot -> bool

(** [work] / [bound] (1.0 when the bound is 0 and no work was done). *)
val work_ratio : snapshot -> float

(** One-line rendering for CLIs and logs. *)
val to_string : snapshot -> string
