test/test_edge.ml: Alcotest Array Cactis Cactis_util List String
