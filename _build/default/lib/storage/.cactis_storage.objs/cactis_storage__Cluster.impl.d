lib/storage/cluster.ml: Cactis_util Hashtbl List
