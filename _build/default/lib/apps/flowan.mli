(** Program flow analysis via attribute evaluation (§4).

    "Since Cactis does not support data cycles, it can only handle flow
    analysis for simple languages such as a goto-less Pascal" — we
    implement exactly that: structured programs of assignments,
    sequences and conditionals are compiled to a control-flow DAG stored
    as database objects, and the two classic analyses are expressed as
    attribute evaluation rules:

    - {e live variables} (backward): [live_out = ∪ succ.live_in],
      [live_in = use ∪ (live_out − def)];
    - {e reaching definitions} (forward): [reach_in = ∪ pred.reach_out],
      [reach_out = gen ∪ (reach_in − kill)].

    Loops would make the attribute graph cyclic; building a program with
    a [While] raises {!Cactis.Errors.Cycle} when queried, matching the
    paper's stated limitation (the fixed-point techniques of [Far86] are
    future work there too). *)

type program =
  | Assign of { target : string; uses : string list; label : string }
  | Seq of program * program
  | If of { cond_uses : string list; then_ : program; else_ : program }
  | While of { cond_uses : string list; body : program }
      (** unsupported by the analysis: creates an attribute cycle *)

type t

(** [analyze ?exit_live program] builds the CFG database.  [exit_live]
    names the variables live at program exit (results, globals); when
    non-empty a synthetic ["exit"] node carries them, so final
    assignments to them are not flagged dead.  Querying a [While]-ful
    program's attributes raises [Errors.Cycle]. *)
val analyze : ?exit_live:string list -> program -> t

val db : t -> Cactis.Db.t

(** Node ids in program order (entry first); [label n] names assignment
    nodes ("if"/"join" for synthetic nodes). *)
val nodes : t -> int list

val label : t -> int -> string

(** Variables live on entry to / exit from a node. *)
val live_in : t -> int -> string list

val live_out : t -> int -> string list

(** Labels of assignments reaching the entry / exit of a node. *)
val reaching_in : t -> int -> string list

val reaching_out : t -> int -> string list

(** [dead_assignments t] — assignment nodes whose target is not live on
    exit: candidates for elimination (the testing/optimization use the
    paper cites). *)
val dead_assignments : t -> int list
