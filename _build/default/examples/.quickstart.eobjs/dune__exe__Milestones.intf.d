examples/milestones.mli:
