lib/apps/makefac.ml: Cactis Cactis_util Fs_sim Hashtbl List
