(** Combinators for building attribute evaluation rules.

    Rules pair declared sources with a compute function (see {!Schema});
    these helpers cover the common shapes — copies, arithmetic over own
    attributes, aggregates over values transmitted across relationships —
    so schemas written directly against the API (tests, examples,
    applications) stay readable.  The DDL front-end compiles its
    expression language down to the same representation. *)

let make sources compute = { Schema.sources; compute }

(** Constant-valued derived attribute. *)
let const v = make [] (fun _ -> v)

(** Copy of another attribute of the same instance. *)
let copy_self a = make [ Schema.Self a ] (fun env -> env.Schema.self_value a)

(** Unary function of one own attribute. *)
let map1 a f = make [ Schema.Self a ] (fun env -> f (env.Schema.self_value a))

(** Binary function of two own attributes. *)
let map2 a b f =
  make [ Schema.Self a; Schema.Self b ] (fun env ->
      f (env.Schema.self_value a) (env.Schema.self_value b))

(** Ternary function of three own attributes. *)
let map3 a b c f =
  make
    [ Schema.Self a; Schema.Self b; Schema.Self c ]
    (fun env -> f (env.Schema.self_value a) (env.Schema.self_value b) (env.Schema.self_value c))

(** Fold of the values of [attr] transmitted across [rel]. *)
let fold_rel rel attr ~init ~f =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      List.fold_left f init (env.Schema.related_values rel attr))

(** Sum of the values transmitted across [rel]. *)
let sum_rel rel attr = fold_rel rel attr ~init:(Value.Int 0) ~f:Value.add

(** Maximum of the values transmitted across [rel]; [default] when no
    instance is related. *)
let max_rel ~default rel attr =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      Value.max_ ~default (env.Schema.related_values rel attr))

let min_rel ~default rel attr =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      Value.min_ ~default (env.Schema.related_values rel attr))

(** Number of instances related across [rel] ([attr] is fetched to
    declare the transmission; any attribute of the target type works). *)
let count_rel rel attr =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      Value.count (env.Schema.related_values rel attr))

(** Conjunction of the boolean values transmitted across [rel]
    (true when nothing is related). *)
let all_rel rel attr =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      Value.all_ (env.Schema.related_values rel attr))

let any_rel rel attr =
  make [ Schema.Rel (rel, attr) ] (fun env ->
      Value.any_ (env.Schema.related_values rel attr))

(** [combine_self_rel a rel attr ~f]: [f own_value transmitted_values] —
    the general "own attribute combined with neighbours" shape of
    Figure 1's [exp_compl] rule. *)
let combine_self_rel a rel attr ~f =
  make
    [ Schema.Self a; Schema.Rel (rel, attr) ]
    (fun env -> f (env.Schema.self_value a) (env.Schema.related_values rel attr))

(** Intrinsic attribute definition with a default value. *)
let intrinsic ?(constraint_ = None) name default =
  { Schema.attr_name = name; kind = Schema.Intrinsic default; constraint_ }

(** Derived attribute definition. *)
let derived ?(constraint_ = None) name rule =
  { Schema.attr_name = name; kind = Schema.Derived rule; constraint_ }

(** Derived attribute carrying a constraint: the rule must compute a
    boolean; [false] fails the transaction unless [recovery] (a
    registered recovery-action name) repairs it. *)
let constraint_attr ?recovery name ~message rule =
  {
    Schema.attr_name = name;
    kind = Schema.Derived rule;
    constraint_ = Some { Schema.message; recovery };
  }
