# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-fast examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

examples:
	dune exec examples/quickstart.exe
	dune exec examples/milestones.exe
	dune exec examples/make_tool.exe
	dune exec examples/flow_analysis.exe
	dune exec examples/versions_demo.exe
	dune exec examples/software_env.exe

clean:
	dune clean
