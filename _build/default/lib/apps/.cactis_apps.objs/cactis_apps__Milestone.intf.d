lib/apps/milestone.mli: Cactis
