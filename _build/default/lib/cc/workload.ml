module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value
module Rng = Cactis_util.Rng

type op =
  | Read of int * string
  | Write of int * string * Cactis.Value.t
  | Incr of int * string * int
  | Read_derived of int * string

type script = op list

let counters_db ?strategy ~instances () =
  let sch = Schema.create () in
  Schema.add_type sch "account";
  Schema.add_type sch "totals";
  Schema.declare_relationship sch ~from_type:"totals" ~rel:"accounts" ~to_type:"account"
    ~inverse:"book" ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"account" (Rule.intrinsic "balance" (Value.Int 100));
  Schema.add_attr sch ~type_name:"account"
    (Rule.derived "flagged" (Rule.map1 "balance" (fun v -> Value.Bool (Value.as_int v < 0))));
  Schema.add_attr sch ~type_name:"totals" (Rule.derived "total" (Rule.sum_rel "accounts" "balance"));
  let db = Db.create ?strategy sch in
  let totals = Db.create_instance db "totals" in
  let accounts =
    List.init instances (fun _ ->
        let id = Db.create_instance db "account" in
        Db.link db ~from_id:totals ~rel:"accounts" ~to_id:id;
        id)
  in
  (db, accounts, totals)

let generate rng ~accounts ~txns ~ops_per_txn ~hot_fraction ~read_fraction =
  let accounts = Array.of_list accounts in
  if Array.length accounts = 0 then invalid_arg "Workload.generate: no accounts";
  let pick_account () =
    if Rng.chance rng hot_fraction then accounts.(0) else Rng.pick rng accounts
  in
  List.init txns (fun _ ->
      List.init ops_per_txn (fun _ ->
          let id = pick_account () in
          if Rng.chance rng read_fraction then Read (id, "balance")
          else Incr (id, "balance", Rng.int_in rng (-10) 10)))
