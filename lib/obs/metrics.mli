(** OpenMetrics / Prometheus text exposition.

    Renders merged {!Cactis_util.Counters} and {!Histogram} snapshots
    in the OpenMetrics text format (the format Prometheus scrapes):
    counters become [<name>_total] samples, histograms become
    [<name>_seconds] families with cumulative [le]-labelled buckets
    plus exact [_sum]/[_count], and the exposition ends with the
    mandatory [# EOF] terminator.

    Metric names are derived by prefixing ["cactis_"] and mapping every
    character outside [[a-zA-Z0-9_:]] to ['_'] (so the registry name
    ["serve.read"] becomes [cactis_serve_read_seconds]).  Counters
    whose sanitized names collide are summed.

    {!lint} is a standalone structural validator for the same format —
    used by tests and CI to check what a real scrape of
    [GET /metrics] returns, without any network dependency. *)

(** [metric_name n] — ["cactis_"] + sanitized [n]. *)
val metric_name : string -> string

(** [render ~counters ~hists] — a complete exposition: counter
    families first, then histogram families (seconds), each sorted by
    metric name, terminated by [# EOF]. *)
val render : counters:(string * int) list -> hists:(string * Histogram.h) list -> string

(** [lint text] — structural errors in an OpenMetrics text exposition
    ([[]] = valid).  Checks: [# EOF] terminator; every line is a
    [TYPE]/[HELP]/[UNIT] declaration or a parseable sample; sample
    names carry the suffixes their family's type allows ([_total] for
    counters; [_bucket]/[_sum]/[_count] for histograms); families are
    declared before use, not re-declared, and samples of one family
    are contiguous; histogram buckets have parseable, strictly
    increasing [le] labels with cumulative non-decreasing counts, a
    [+Inf] bucket, and [+Inf] count equal to [_count]. *)
val lint : string -> string list
