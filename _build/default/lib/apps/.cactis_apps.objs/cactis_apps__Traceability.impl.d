lib/apps/traceability.ml: Cactis Cactis_ddl List
