(* Attribute index tests: exactness against a full scan, incremental
   maintenance, staleness discipline on derived attributes. *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Index = Cactis.Index
module Counters = Cactis_util.Counters

let int n = Value.Int n

let schema () =
  let sch = Schema.create () in
  Schema.add_type sch "task";
  Schema.declare_relationship sch ~from_type:"task" ~rel:"deps" ~to_type:"task" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"task" (Rule.intrinsic "priority" (int 1));
  Schema.add_attr sch ~type_name:"task"
    (Rule.derived "blocked" (Rule.count_rel "deps" "priority"));
  sch

let scan db attr v =
  Db.instances_of_type db "task"
  |> List.filter (fun id -> Value.equal (Db.get db ~watch:false id attr) v)

let test_intrinsic_index () =
  let db = Db.create (schema ()) in
  let idx = Index.create db ~type_name:"task" ~attr:"priority" in
  let ids = Array.init 20 (fun i ->
      let id = Db.create_instance db "task" in
      Db.set db id "priority" (int (i mod 4));
      id)
  in
  List.iter
    (fun p ->
      Alcotest.(check (list int))
        (Printf.sprintf "priority %d" p)
        (scan db "priority" (int p))
        (Index.lookup idx (int p)))
    [ 0; 1; 2; 3; 9 ];
  (* Updates move instances between buckets. *)
  Db.set db ids.(0) "priority" (int 9);
  Alcotest.(check (list int)) "moved" [ ids.(0) ] (Index.lookup idx (int 9));
  Alcotest.(check bool) "gone from old bucket" false
    (List.mem ids.(0) (Index.lookup idx (int 0)));
  (* Deletion removes. *)
  Db.delete_instance db ids.(0);
  Alcotest.(check (list int)) "deleted" [] (Index.lookup idx (int 9))

let test_derived_index_staleness () =
  let db = Db.create (schema ()) in
  let idx = Index.create db ~type_name:"task" ~attr:"blocked" in
  let a = Db.create_instance db "task" in
  let b = Db.create_instance db "task" in
  let c = Db.create_instance db "task" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  Alcotest.(check (list int)) "a blocked by one" [ a ] (Index.lookup idx (int 1));
  Alcotest.(check bool) "lookup settled staleness" true (Index.stale_count idx = 0);
  (* Structural change marks 'blocked' stale; the index answers exactly
     after forcing only the stale instance. *)
  Db.link db ~from_id:a ~rel:"deps" ~to_id:c;
  Alcotest.(check bool) "stale after link" true (Index.stale_count idx >= 1);
  Alcotest.(check (list int)) "a now blocked by two" [ a ] (Index.lookup idx (int 2));
  Alcotest.(check (list int)) "bucket 1 vacated" [] (Index.lookup idx (int 1))

let test_index_distinct_values () =
  let db = Db.create (schema ()) in
  let idx = Index.create db ~type_name:"task" ~attr:"priority" in
  List.iter
    (fun p ->
      let id = Db.create_instance db "task" in
      Db.set db id "priority" (int p))
    [ 3; 1; 3; 7 ];
  Alcotest.(check (list string)) "distinct" [ "1"; "3"; "7" ]
    (List.map Value.to_string (Index.distinct_values idx))

let test_index_undo () =
  let db = Db.create (schema ()) in
  let idx = Index.create db ~type_name:"task" ~attr:"priority" in
  let a = Db.create_instance db "task" in
  Db.set db a "priority" (int 5);
  Alcotest.(check (list int)) "before" [ a ] (Index.lookup idx (int 5));
  Db.set db a "priority" (int 6);
  Db.undo_last db;
  Alcotest.(check (list int)) "undo restores bucket" [ a ] (Index.lookup idx (int 5));
  Alcotest.(check (list int)) "undone bucket empty" [] (Index.lookup idx (int 6))

(* Property: after arbitrary operations, index lookups equal full scans
   for every distinct value. *)
let prop_index_matches_scan =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (3, return `Create);
          (6, map2 (fun i v -> `Set (i, v)) (int_range 0 20) (int_range 0 5));
          (3, map2 (fun i j -> `Link (i, j)) (int_range 0 20) (int_range 0 20));
          (1, map (fun i -> `Delete i) (int_range 0 20));
          (1, return `Undo);
        ])
  in
  QCheck.Test.make ~name:"index lookup equals full scan" ~count:100
    (QCheck.make
       ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops))
       QCheck.Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      let db = Db.create (schema ()) in
      let idx_p = Index.create db ~type_name:"task" ~attr:"priority" in
      let idx_b = Index.create db ~type_name:"task" ~attr:"blocked" in
      let created = ref [] in
      let live i =
        match !created with
        | [] -> None
        | l -> (
          match List.nth_opt l (i mod List.length l) with
          | Some id when List.mem id (Db.instance_ids db) -> Some id
          | Some _ | None -> None)
      in
      List.iter
        (fun op ->
          match op with
          | `Create -> created := !created @ [ Db.create_instance db "task" ]
          | `Set (i, v) -> (
            match live i with Some id -> Db.set db id "priority" (int v) | None -> ())
          | `Link (i, j) -> (
            match (live i, live j) with
            | Some a, Some b when a <> b ->
              let from_id = min a b and to_id = max a b in
              if not (List.mem to_id (Db.related db from_id "deps")) then
                Db.link db ~from_id ~rel:"deps" ~to_id
            | _ -> ())
          | `Delete i -> ( match live i with Some id -> Db.delete_instance db id | None -> ())
          | `Undo -> if Db.position db > 0 then Db.undo_last db)
        ops;
      let check_index idx attr =
        let values = Index.distinct_values idx in
        List.for_all (fun v -> Index.lookup idx v = scan db attr v) values
        (* and no value is missing from the index *)
        && List.for_all
             (fun id ->
               let v = Db.get db ~watch:false id attr in
               List.mem id (Index.lookup idx v))
             (Db.instances_of_type db "task")
      in
      check_index idx_p "priority" && check_index idx_b "blocked")

let () =
  Alcotest.run "cactis-index"
    [
      ( "index",
        [
          Alcotest.test_case "intrinsic index" `Quick test_intrinsic_index;
          Alcotest.test_case "derived index staleness" `Quick test_derived_index_staleness;
          Alcotest.test_case "distinct values" `Quick test_index_distinct_values;
          Alcotest.test_case "undo maintains index" `Quick test_index_undo;
          QCheck_alcotest.to_alcotest prop_index_matches_scan;
        ] );
    ]
