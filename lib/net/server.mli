(** Multi-client Cactis server on OCaml 5 domains.

    The paper closes with the distributed direction: several users'
    tools working against one database, "various sub-traversals …
    actually running at the same time".  This server realises the
    shared-database half on one machine:

    - {b one writer domain} owns the master {!Cactis.Db} and applies
      every [Commit] through it (and through whatever durability hook —
      the WAL — was attached before {!start});
    - {b N reader domains} each hold an immutable-between-versions
      {e replica}, built from a binary snapshot of the master against a
      fresh schema, and serve [Read]/[Traverse] without ever touching
      the writer's structures.  Readers never block the writer and the
      writer never blocks readers;
    - {b snapshot handoff}: after each commit the writer broadcasts the
      encoded delta (the same bytes the WAL stores) to every reader's
      mailbox, tagged with a monotonically increasing {e version}.
      Readers apply deltas in order; a request's [min_version] names the
      snapshot it is content with (read-your-writes when it names the
      client's own last commit);
    - {b a front-end event loop} (its own domain) accepts TCP
      connections on loopback, decodes frames incrementally, answers
      [Ping]/[Stats] inline, and routes everything else: commits to the
      writer, reads to the reader whose {!Cactis_dist.Partition}
      id-range contains the target instance (affinity routing — every
      replica is complete, the range only decides who serves whom).

    Observability is always on: per-verb request counters and latency
    histograms (domain-safe registries, merged on read), and sampled
    tracing — one commit in [trace_sample] records a span carrying the
    client's span id from the request envelope, so client and server
    traces stitch. *)

type config

(** [config ()] — loopback TCP on an ephemeral port ([port = 0]), one
    reader, every 64th commit traced. *)
val config :
  ?port:int -> ?readers:int -> ?trace_sample:int -> ?backlog:int -> unit -> config

type t

(** [start ?config ~make_schema db] snapshots [db], spawns the domains
    and begins accepting connections.  [make_schema] must build a fresh
    schema equivalent to [db]'s (schemas are mutable and cannot be
    shared across domains; each replica loads the snapshot against its
    own).  After [start] the caller must not touch [db] again — it
    belongs to the writer domain.  Attach {!Cactis.Persist} {e before}
    starting; the server chains its delta broadcast after the existing
    commit hook. *)
val start : ?config:config -> make_schema:(unit -> Cactis.Schema.t) -> Cactis.Db.t -> t

(** The bound TCP port (useful with [port = 0]). *)
val port : t -> int

val readers : t -> int

(** Highest committed (and broadcast) version. *)
val published_version : t -> int

(** Server-side request/connection counters (names under [server.]). *)
val counters : t -> Cactis_util.Counters.t

(** Per-verb service latencies (names under [serve.]). *)
val latencies : t -> Cactis_obs.Histogram.t

(** The sampled-span ring (always enabled; ~1-in-[trace_sample]
    commits). *)
val trace : t -> Cactis_obs.Trace.t

(** Stop accepting, drain the domains, close every socket.
    Idempotent. *)
val stop : t -> unit
