type t = {
  mutable read_count : int;
  mutable write_count : int;
}

let create () = { read_count = 0; write_count = 0 }
let read t = t.read_count <- t.read_count + 1
let write t = t.write_count <- t.write_count + 1
let reads t = t.read_count
let writes t = t.write_count
let accesses t = t.read_count + t.write_count

let reset t =
  t.read_count <- 0;
  t.write_count <- 0

let pp fmt t = Format.fprintf fmt "reads=%d writes=%d" t.read_count t.write_count
