lib/cc/serial_oracle.ml: Cactis List Workload
