(** Durable persistence: binary checkpoints plus a write-ahead delta
    log, making commit-time durability cost O(ops in the transaction)
    instead of O(database).

    The paper keeps per-transaction deltas precisely because "the
    information needed to remember a delta is proportional in size to
    the initial changes made" (§3); this module extends that argument to
    the disk.  A persistence directory holds two files:

    - [snapshot.bin] — the last binary checkpoint ({!Snapshot.save_binary}
      behind a small generation-stamped header), replaced atomically
      (write-temp, fsync, rename, directory fsync);
    - [wal.log] — CRC-framed {!Codec.encode_delta} records
      ({!Cactis_storage.Wal}), one per delta the database state moved
      across since the checkpoint (commits, undos, redos, checkouts).

    Snapshot and log carry a matching {e checkpoint generation} number:
    each checkpoint writes the snapshot under generation [g+1] first,
    then resets the log stamped [g+1].  A crash between those two steps
    leaves the new snapshot over a log still stamped [g]; {!recover}
    detects the mismatch and skips the stale records (they are already
    folded into the snapshot) instead of double-applying them.

    {!recover} loads the checkpoint, replays the intact log prefix of
    the matching generation (discarding any torn tail, so a crash
    mid-append rolls back to the last durable transaction) and
    re-attaches for further commits. *)

type t

(** [attach ?sync_every ?auto_checkpoint ~dir db] makes a live database
    durable: every committed delta is appended to [dir]'s write-ahead
    log.  [sync_every] batches fsyncs (group commit): 1 (default) syncs
    every commit, [n] every [n]-th, 0 only on {!sync}/{!close}.
    [auto_checkpoint] (bytes, 0 = never) checkpoints whenever the log
    grows past the threshold.  If [db] holds instances, or [dir] already
    holds any persistent state (a checkpoint, log records, a torn tail)
    — state that was {e not} loaded into [db] — an initial checkpoint is
    written so the log has exactly this database as its baseline; stale
    directory contents are superseded.  Use {!recover} to continue from
    a directory's contents instead of overriding them. *)
val attach : ?sync_every:int -> ?auto_checkpoint:int -> dir:string -> Db.t -> t

(** [recover ~dir schema] rebuilds the database from the last checkpoint
    plus the intact write-ahead-log prefix, truncates any torn tail, and
    re-attaches.  A log stamped with an older generation than the
    checkpoint (crash inside {!checkpoint}) is discarded rather than
    replayed; a log stamped {e newer} than the checkpoint means the
    checkpoint file was deleted or replaced and raises rather than
    replaying deltas against a state they do not belong to.
    Engine/pager options mirror {!Db.create}.
    @raise Errors.Type_error on generation mismatch or a corrupt
    checkpoint header. *)
val recover :
  ?strategy:Engine.strategy ->
  ?sched:Sched.strategy ->
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  ?sync_every:int ->
  ?auto_checkpoint:int ->
  dir:string ->
  Schema.t ->
  t

val db : t -> Db.t
val dir : t -> string

(** Deltas replayed from the log by the last {!recover}. *)
val replayed : t -> int

(** Did the last {!recover} discard a torn log tail? *)
val recovered_torn : t -> bool

(** Checkpoint generation currently on disk (0 before any checkpoint). *)
val generation : t -> int

(** Records currently in the log — position [wal_records t] of
    generation [generation t] is the replication cursor: the state a
    log-shipping follower that has applied this many records since the
    last checkpoint holds.  Zero right after {!attach} or
    {!checkpoint}; {!recover} starts it at the number of records
    replayed. *)
val wal_records : t -> int

(** Paths of the two on-disk artifacts ([snapshot.bin], [wal.log])
    inside the persistence directory — exposed for the replication
    publisher, which serves the checkpoint file to bootstrapping
    followers and seeds its record backlog from the log. *)
val snapshot_path : t -> string

val wal_path : t -> string

(** The checkpoint currently on disk, decoded past its header:
    [(generation, schema_version, snapshot_payload)] where the payload
    is {!Snapshot.save_binary} bytes.  [None] before any checkpoint.
    Safe to call concurrently with commits — the file is only ever
    replaced atomically.
    @raise Errors.Type_error on a corrupt checkpoint header. *)
val read_checkpoint : t -> (int * int * string) option

(** [checkpoint t] writes a fresh binary snapshot (atomic replace,
    stamped with the next generation) and then resets the log under the
    same generation — recovery afterwards replays nothing, and a crash
    between the two steps is recognized by the generation mismatch and
    recovers to the snapshot.
    @raise Errors.Type_error inside a transaction. *)
val checkpoint : t -> unit

(** WAL frame bytes appended since the last checkpoint — the O(delta)
    commit cost the persistence experiments measure. *)
val wal_bytes : t -> int

(** Force an fsync of everything appended so far (group commit flush). *)
val sync : t -> unit

(** Detach the hook and close the log (final fsync included). *)
val close : t -> unit
