(** Line-oriented script interpreter for the CLI.

    Scripts drive a database loaded from a DDL file with the paper's
    primitive operations:

    {v
    new   x milestone           -- create an instance, bind it to x
    set   x.local_work = 5.0    -- replace an intrinsic (constant expr)
    get   x.exp_compl           -- query (prints the value)
    link  x.depends_on y        -- establish a relationship
    unlink x.depends_on y
    delete x
    begin / commit / abort      -- explicit transactions
    undo / redo                 -- the Undo meta-action
    tag v1 / checkout v1        -- versions
    members subtype_name        -- list instances in a subtype
    select class where expr     -- ad-hoc predicate query
    explain x.attr              -- dependency tree behind a derived value
    dump path                   -- write a data snapshot
    echo  text...               -- print
    v}

    Lines starting with [#] or [--] are comments. *)

module Db = Cactis.Db
module Value = Cactis.Value
module Errors = Cactis.Errors

exception Script_error of int * string

let error line fmt = Format.kasprintf (fun s -> raise (Script_error (line, s))) fmt

type env = {
  db : Db.t;
  vars : (string, int) Hashtbl.t;
  out : Buffer.t;
}

let create db = { db; vars = Hashtbl.create 16; out = Buffer.create 256 }

let lookup env line v =
  match Hashtbl.find_opt env.vars v with
  | Some id -> id
  | None -> error line "unknown variable %s" v

let split_dot line s =
  match String.index_opt s '.' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> error line "expected var.attr, got %s" s

let const_expr line src =
  try Cactis_ddl.Elaborate.const_value (Cactis_ddl.Parser.parse_expr src)
  with Cactis_ddl.Parser.Error { message; _ } -> error line "bad expression: %s" message

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let print env fmt = Format.kasprintf (fun s -> Buffer.add_string env.out (s ^ "\n")) fmt

let exec_line env lineno raw =
  let line = String.trim raw in
  if line = "" || String.length line >= 1 && line.[0] = '#' then ()
  else if String.length line >= 2 && String.sub line 0 2 = "--" then ()
  else
    match words line with
    | [ "new"; var; class_name ] ->
      let id = Db.create_instance env.db class_name in
      Hashtbl.replace env.vars var id
    | "set" :: target :: "=" :: rest ->
      let var, attr = split_dot lineno target in
      Db.set env.db (lookup env lineno var) attr (const_expr lineno (String.concat " " rest))
    | [ "get"; target ] ->
      let var, attr = split_dot lineno target in
      let v = Db.get env.db (lookup env lineno var) attr in
      print env "%s = %s" target (Value.to_string v)
    | [ "link"; target; other ] ->
      let var, rel = split_dot lineno target in
      Db.link env.db ~from_id:(lookup env lineno var) ~rel ~to_id:(lookup env lineno other)
    | [ "unlink"; target; other ] ->
      let var, rel = split_dot lineno target in
      Db.unlink env.db ~from_id:(lookup env lineno var) ~rel ~to_id:(lookup env lineno other)
    | [ "delete"; var ] ->
      Db.delete_instance env.db (lookup env lineno var);
      Hashtbl.remove env.vars var
    | [ "begin" ] -> Db.begin_txn env.db
    | [ "commit" ] -> Db.commit env.db
    | [ "abort" ] -> Db.abort env.db
    | [ "undo" ] -> Db.undo_last env.db
    | [ "redo" ] -> Db.redo env.db
    | [ "tag"; name ] -> Db.tag env.db name
    | [ "checkout"; name ] ->
      Db.checkout env.db name;
      (* Checkout traverses schema deltas along with data deltas, so
         report where the schema landed. *)
      print env "checkout %s: schema version %d" name (Db.schema_step_count env.db)
    | [ "members"; sub ] ->
      let ids = Db.subtype_members env.db sub in
      print env "%s members: [%s]" sub (String.concat "; " (List.map string_of_int ids))
    | "echo" :: rest -> print env "%s" (String.concat " " rest)
    | "select" :: type_name :: "where" :: rest -> (
      let where = String.concat " " rest in
      match Cactis_ddl.Query.select env.db ~type_name ~where with
      | ids ->
        print env "select %s where %s: [%s]" type_name where
          (String.concat "; " (List.map string_of_int ids))
      | exception Cactis_ddl.Query.Error m -> error lineno "%s" m)
    | [ "explain"; target ] ->
      let var, attr = split_dot lineno target in
      print env "%s" (String.trim (Cactis.Explain.render env.db (lookup env lineno var) attr))
    | [ "dump"; path ] ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Cactis.Snapshot.save env.db));
      print env "dumped %d instances to %s" (List.length (Db.instance_ids env.db)) path
    | cmd :: _ -> error lineno "unknown command %s" cmd
    | [] -> ()

(** [repl db ~input ~output] — interactive loop: one command per line,
    errors reported and recovered from, [quit]/EOF ends the session. *)
let repl db ~input ~output =
  let env = create db in
  let prompt () =
    output_string output "cactis> ";
    flush output
  in
  let show () =
    let s = Buffer.contents env.out in
    Buffer.clear env.out;
    if s <> "" then output_string output s;
    flush output
  in
  let rec loop n =
    prompt ();
    match input_line input with
    | exception End_of_file -> ()
    | "quit" | "exit" -> ()
    | line ->
      (try exec_line env n line with
      | Script_error (_, m) -> print env "error: %s" m
      | Errors.Constraint_violation { message; _ } ->
        print env "constraint violation: %s (rolled back)" message
      | Errors.Unknown m | Errors.Type_error m | Errors.Cardinality m -> print env "error: %s" m
      | Errors.Cycle _ -> print env "error: circular attribute dependency");
      show ();
      loop (n + 1)
  in
  loop 1

(** [run db source] executes a whole script; returns the printed
    output.  @raise Script_error with a line number on bad input;
    database errors (constraint violations etc.) propagate. *)
let run db source =
  let env = create db in
  List.iteri
    (fun i line ->
      try exec_line env (i + 1) line with
      | Script_error _ as e -> raise e
      | Errors.Constraint_violation { message; _ } ->
        print env "line %d: constraint violation: %s (transaction rolled back)" (i + 1) message)
    (String.split_on_char '\n' source);
  Buffer.contents env.out
