module Db = Cactis.Db
module Value = Cactis.Value

type t = { database : Db.t }

type kind =
  | Source
  | Object

let schema_src =
  {|
  object class component is
    relationships
      part_of : configuration multi socket inverse includes;
    attributes
      name    : string;
      version : int := 1;
      stable  : bool := false;
      kind    : string := "source";
  end object;

  object class configuration is
    relationships
      includes : component multi plug inverse part_of;
    attributes
      name           : string;
      require_stable : bool := false;
    rules
      size        = count(includes.name);
      min_version = min(includes.version default 0);
      consistent  = not require_stable or all(includes.stable);
  end object;

  subtype source_module of component where kind = "source" end subtype;
  subtype object_module of component where kind = "object" end subtype;
|}

let create () = { database = Db.create (Cactis_ddl.Elaborate.load_string schema_src) }

let db t = t.database

let kind_string = function Source -> "source" | Object -> "object"

let add_component t ~name ~kind =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "component" in
      Db.set t.database id "name" (Value.Str name);
      Db.set t.database id "kind" (Value.Str (kind_string kind));
      id)

let bump_version t comp =
  Db.with_txn t.database (fun () ->
      let v = Value.as_int (Db.get t.database ~watch:false comp "version") in
      Db.set t.database comp "version" (Value.Int (v + 1));
      (* A rebuilt component is unproven until marked stable again. *)
      Db.set t.database comp "stable" (Value.Bool false))

let mark_stable t comp = Db.set t.database comp "stable" (Value.Bool true)
let version t comp = Value.as_int (Db.get t.database ~watch:false comp "version")
let is_stable t comp = Value.as_bool (Db.get t.database ~watch:false comp "stable")

let source_modules t = Db.subtype_members t.database "source_module"
let object_modules t = Db.subtype_members t.database "object_module"

let add_configuration t ~name ~require_stable =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "configuration" in
      Db.set t.database id "name" (Value.Str name);
      Db.set t.database id "require_stable" (Value.Bool require_stable);
      id)

let include_component t ~config ~component =
  Db.link t.database ~from_id:config ~rel:"includes" ~to_id:component

let size t config = Value.as_int (Db.get t.database config "size")
let min_version t config = Value.as_int (Db.get t.database config "min_version")
let consistent t config = Value.as_bool (Db.get t.database config "consistent")

let configurations_of t component = Db.related t.database component "part_of"

let freeze t ~label = Db.tag t.database label
let restore t ~label = Db.checkout t.database label

let report t =
  let buf = Buffer.create 256 in
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "config %-14s size %2d  min-version %2d  %s\n"
           (Value.as_string (Db.get t.database ~watch:false id "name"))
           (size t id) (min_version t id)
           (if consistent t id then "consistent" else "INCONSISTENT")))
    (Db.instances_of_type t.database "configuration");
  Buffer.contents buf
