(* Write-ahead log: an append-only file of CRC-framed binary records.

   The log is payload-agnostic — Cactis commits encode transaction
   deltas into records upstream (lib/core), this module only guarantees
   that whatever prefix of records survives a crash can be identified
   exactly.  Framing per record:

     [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]

   preceded by a fixed file header: the magic plus a u64 LE generation
   number.  The generation links the log to the checkpoint it follows —
   a checkpoint stamps its snapshot and the reset log with the same
   fresh generation, so a crash between the two steps leaves a log whose
   generation no longer matches the snapshot and recovery can tell the
   records were already folded into the snapshot.

   A reader walks records until the file ends cleanly or a record is
   torn (truncated frame, impossible length, CRC mismatch); everything
   from the first bad frame on is discarded, so recovery lands on the
   last durably completed append. *)

let magic = "CWAL3\n"
let header_len = String.length magic + 16

(* The previous format: same framing, but the header carried only the
   generation (no schema version).  Still readable — old logs recover
   byte-identically, reporting schema version 0. *)
let magic_v2 = "CWAL2\n"
let header_len_v2 = String.length magic_v2 + 8

let header ~generation ~schema_version =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int64_le b (String.length magic) (Int64.of_int generation);
  Bytes.set_int64_le b (String.length magic + 8) (Int64.of_int schema_version);
  Bytes.to_string b

(* Make a directory-entry change (create, rename) itself durable.
   Best-effort: some filesystems reject fsync on a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)                     *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let ix = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(ix) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type read_result = {
  records : string list;  (** intact records, oldest first *)
  valid_end : int;  (** byte offset where the intact prefix ends *)
  torn : bool;  (** true if trailing bytes were discarded *)
  generation : int;  (** checkpoint generation from the header (0 if unreadable) *)
  schema_version : int;  (** schema version at log start (0 for CWAL2 / unreadable) *)
  data_start : int;  (** offset of the first record frame = header length of the format read *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let u32_le s pos =
  Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let has_magic s m = String.length s >= String.length m && String.equal (String.sub s 0 (String.length m)) m

let read path =
  if not (Sys.file_exists path) then
    { records = []; valid_end = 0; torn = false; generation = 0; schema_version = 0;
      data_start = header_len }
  else begin
    let s = read_file path in
    let len = String.length s in
    let hdr =
      if len >= header_len && has_magic s magic then
        Some
          ( Int64.to_int (String.get_int64_le s (String.length magic)),
            Int64.to_int (String.get_int64_le s (String.length magic + 8)),
            header_len )
      else if len >= header_len_v2 && has_magic s magic_v2 then
        Some (Int64.to_int (String.get_int64_le s (String.length magic_v2)), 0, header_len_v2)
      else None
    in
    match hdr with
    | None ->
      { records = []; valid_end = 0; torn = len > 0; generation = 0; schema_version = 0;
        data_start = header_len }
    | Some (generation, schema_version, data_start) ->
      let records = ref [] in
      let pos = ref data_start in
      let torn = ref false in
      let continue = ref true in
      while !continue do
        if !pos = len then continue := false
        else if len - !pos < 8 then begin
          torn := true;
          continue := false
        end
        else begin
          let plen = u32_le s !pos in
          let crc = Int32.of_int (u32_le s (!pos + 4)) in
          if plen > len - !pos - 8 then begin
            torn := true;
            continue := false
          end
          else begin
            let payload = String.sub s (!pos + 8) plen in
            if not (Int32.equal (crc32 payload) crc) then begin
              torn := true;
              continue := false
            end
            else begin
              records := payload :: !records;
              pos := !pos + 8 + plen
            end
          end
        end
      done;
      {
        records = List.rev !records;
        valid_end = !pos;
        torn = !torn;
        generation;
        schema_version;
        data_start;
      }
  end

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  oc : out_channel;
  sync_every : int;  (* fsync after this many appends; 0 = only explicit *)
  mutable pending : int;  (* appends since the last fsync *)
  mutable appends : int;
  mutable since_reset : int;  (* appends since open or the last reset *)
  mutable appended_bytes : int;  (* frame bytes written through this writer *)
  obs : Cactis_obs.Ctx.t;
  h_append : Cactis_obs.Histogram.h;
  h_fsync : Cactis_obs.Histogram.h;
}

let fsync w =
  Cactis_obs.Flight.record Cactis_obs.Flight.Wal_fsync ~a:w.pending ~b:w.appends;
  Cactis_obs.Ctx.time w.obs w.h_fsync ~cat:"wal" "wal_fsync" (fun () ->
      flush w.oc;
      Unix.fsync w.fd)

let open_writer ?(sync_every = 1) ?(generation = 0) ?(schema_version = 0) ?truncate_at ?obs path =
  (* Without a caller-supplied observability context, appends/fsyncs are
     still timed — into a private, never-read registry (negligible cost
     next to the I/O being measured). *)
  let obs =
    match obs with Some o -> o | None -> Cactis_obs.Ctx.create ~trace_capacity:1 ()
  in
  let fresh = not (Sys.file_exists path) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (match truncate_at with
  | Some n when not fresh -> Unix.ftruncate fd n
  | Some _ | None -> ());
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  let w =
    {
      path;
      fd;
      oc;
      sync_every;
      pending = 0;
      appends = 0;
      since_reset = 0;
      appended_bytes = 0;
      obs;
      h_append = Cactis_obs.Histogram.cell obs.Cactis_obs.Ctx.hists "wal_append";
      h_fsync = Cactis_obs.Histogram.cell obs.Cactis_obs.Ctx.hists "wal_fsync";
    }
  in
  if fresh || Unix.lseek fd 0 Unix.SEEK_CUR = 0 then begin
    output_string oc (header ~generation ~schema_version);
    fsync w;
    fsync_dir (Filename.dirname path)
  end;
  w

let append w payload =
  let start_ns = Cactis_obs.Clock.now_ns () in
  let plen = String.length payload in
  let frame = Bytes.create 8 in
  Bytes.set_int32_le frame 0 (Int32.of_int plen);
  Bytes.set_int32_le frame 4 (crc32 payload);
  output_bytes w.oc frame;
  output_string w.oc payload;
  w.appends <- w.appends + 1;
  w.since_reset <- w.since_reset + 1;
  w.appended_bytes <- w.appended_bytes + 8 + plen;
  w.pending <- w.pending + 1;
  Cactis_obs.Flight.record Cactis_obs.Flight.Wal_append ~a:(8 + plen) ~b:w.appends;
  if w.sync_every > 0 && w.pending >= w.sync_every then begin
    fsync w;
    w.pending <- 0
  end;
  Cactis_obs.Histogram.observe w.h_append (Cactis_obs.Clock.elapsed_s ~since:start_ns);
  let trace = w.obs.Cactis_obs.Ctx.trace in
  if Cactis_obs.Trace.enabled trace then
    Cactis_obs.Trace.complete trace ~cat:"wal"
      ~args:[ ("bytes", Cactis_obs.Trace.I (8 + plen)) ]
      ~start_ns "wal_append"

let sync w =
  fsync w;
  w.pending <- 0

(* Truncate back to an empty log (after a checkpoint made the records
   redundant), stamping the header with the checkpoint's generation.  A
   crash mid-reset leaves a short/empty file, which [read] reports as
   generation 0 — older than any real checkpoint, so recovery treats it
   the same as an un-reset stale log. *)
let reset w ~generation ~schema_version =
  flush w.oc;
  Unix.ftruncate w.fd 0;
  seek_out w.oc 0;
  output_string w.oc (header ~generation ~schema_version);
  flush w.oc;
  Unix.fsync w.fd;
  w.pending <- 0;
  w.since_reset <- 0

let close w =
  fsync w;
  close_out w.oc

let path w = w.path
let appends w = w.appends
let appends_since_reset w = w.since_reset
let appended_bytes w = w.appended_bytes

(* ------------------------------------------------------------------ *)
(* Durable whole-file writes (checkpoints)                             *)

(* Write-to-temp, fsync, rename, fsync the directory: a crash leaves
   either the old file or the new one, never a torn mixture — and the
   directory fsync makes the rename itself durable, so nothing that
   runs after this call can become durable before the new file is. *)
let write_file_durable path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  (try
     output_string oc contents;
     flush oc;
     Unix.fsync fd;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
