type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high-quality bits mapped to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t mean =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.mean *. log u

let zipf t n theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta <= 0.0 then int t n
  else begin
    (* Inverse-CDF sampling over ranks with weight (rank+1)^-theta.
       Coarse but deterministic and cheap: sample via rejection against
       the first rank's weight envelope. *)
    let rec loop () =
      let k = int t n in
      let w = (1.0 /. (float_of_int (k + 1) ** theta)) in
      if float t 1.0 < w then k else loop ()
    in
    loop ()
  end
