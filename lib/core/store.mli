(** Raw object store: instances over the simulated mass storage.

    The store performs {e mechanical} state changes only — no dependency
    propagation, no transaction logging, no constraint checking.  Those
    belong to {!Engine}, {!Txn} and {!Db}.  Every instance access is
    routed through the pager so that experiments observe the disk-access
    counts the paper reasons about, and through the usage statistics that
    drive re-clustering. *)

type t

(** [create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes
    schema] — when [disk_path] is given, the pager is backed by a real
    block file at that path (see {!Cactis_storage.Disk}); otherwise mass
    storage is simulated counters only. *)
val create :
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  ?disk_path:string ->
  ?disk_block_bytes:int ->
  Schema.t ->
  t

val schema : t -> Schema.t
val pager : t -> Cactis_storage.Pager.t
val usage : t -> Cactis_storage.Usage.t
val counters : t -> Cactis_util.Counters.t

(** Observability context shared by every layer attached to this store:
    the span tracer (disabled until enabled via [Db.set_tracing]) and
    the always-on latency histogram registry. *)
val obs : t -> Cactis_obs.Ctx.t

(** Per-link decaying-average disk-cost tags (§2.3), keyed by
    (instance id, relationship).  Fresh tags start at the worst-case
    estimate of 1 block. *)
val link_tag : t -> int -> string -> Cactis_util.Decaying_avg.t

(** [link_tag_sym t id rel_sym] — {!link_tag} with the relationship
    already interned (engine hot path). *)
val link_tag_sym : t -> int -> int -> Cactis_util.Decaying_avg.t

(** {1 Instances} *)

(** [create_instance t type_name] allocates a fresh instance: intrinsic
    slots are initialized to their schema defaults (up to date), derived
    slots start out of date.
    @raise Errors.Unknown if the type is not declared. *)
val create_instance : t -> string -> Instance.t

(** [recreate_instance t ~id type_name] re-materializes a deleted
    instance under its original id (undo of a delete). *)
val recreate_instance : t -> id:int -> string -> Instance.t

(** The id the next {!create_instance} will allocate.  Ids are never
    reused, so histories holding undone creates leave holes; snapshots
    record this counter so a restored database keeps allocating above
    them. *)
val next_id : t -> int

(** [reserve_ids t n] raises the allocation counter to at least [n]
    (snapshot restore). *)
val reserve_ids : t -> int -> unit

(** @raise Errors.Unknown for dead or absent ids. *)
val get : t -> int -> Instance.t

val get_opt : t -> int -> Instance.t option
val mem : t -> int -> bool

(** [delete_instance t id] removes the instance.  All its links must have
    been broken first (checked). *)
val delete_instance : t -> int -> unit

(** Live instance ids, ascending. *)
val instance_ids : t -> int list

val instance_count : t -> int

(** Live instances of one type, ascending id. *)
val instances_of_type : t -> string -> int list

(** {1 Paged access} *)

(** [touch t id] charges one buffered access to the instance's block and
    bumps its usage count. *)
val touch : t -> int -> unit

(** [resident t id] — is the instance's block buffered? (free) *)
val resident : t -> int -> bool

(** {1 Links (both directions maintained)} *)

(** [link t ~from_id ~rel ~to_id] establishes a relationship instance.
    @raise Errors.Unknown on unknown rel/instances,
    @raise Errors.Type_error on target type mismatch,
    @raise Errors.Cardinality if a [One] end is already occupied. *)
val link : t -> from_id:int -> rel:string -> to_id:int -> unit

(** [unlink t ~from_id ~rel ~to_id] breaks it; returns whether the link
    existed. *)
val unlink : t -> from_id:int -> rel:string -> to_id:int -> bool

(** Related ids of [id] across [rel] (pager-charged). *)
val linked : t -> int -> string -> int list

(** {1 Slots (pager-charged)} *)

val read_slot : t -> int -> string -> Instance.slot

(** [write_value t id attr v] stores [v] and marks the slot up to date. *)
val write_value : t -> int -> string -> Value.t -> unit

(** [load_value_ix t inst ix v] — bulk-load write with a pre-resolved
    slot index and no pager/usage charge (binary snapshot loader). *)
val load_value_ix : t -> Instance.t -> int -> Value.t -> unit

(** [load_link_ix t a ix b] — bulk-load link with the slot pre-resolved
    against [a]'s layout and [b]'s type already checked against the
    declared target; keeps the cardinality invariants but skips the
    pager/usage charge of {!link}.
    @raise Errors.Cardinality on an occupied [One] side. *)
val load_link_ix : t -> Instance.t -> int -> Instance.t -> unit

(** {1 Observers}

    Lightweight notification hooks used by secondary structures (attribute
    indexes, statistics).  Callbacks must not mutate the database. *)

(** [subscribe_write t f] — [f id attr value] after every slot write
    (intrinsic sets, derived evaluations, undo replay). *)
val subscribe_write : t -> (int -> string -> Value.t -> unit) -> unit

(** [subscribe_create t f] — [f id] after an instance (re)appears. *)
val subscribe_create : t -> (int -> unit) -> unit

(** [subscribe_delete t f] — [f id] before an instance disappears. *)
val subscribe_delete : t -> (int -> unit) -> unit

(** [subscribe_mark t f] — [f id attr] when a derived slot is marked out
    of date (called by the engine's mark phase). *)
val subscribe_mark : t -> (int -> string -> unit) -> unit

(** [notify_mark t id attr] — invoked by the engine. *)
val notify_mark : t -> int -> string -> unit

(** [notify_write t id attr v] — invoked by the engine after writing a
    derived slot directly (bypassing {!write_value}). *)
val notify_write : t -> int -> string -> Value.t -> unit

(** {1 Re-clustering (§2.3)} *)

(** [recluster ?strategy t] packs instances into blocks with the chosen
    clustering strategy (default: the paper's greedy usage-count
    algorithm), installs the layout, cancels any in-flight incremental
    plan, and re-seeds the per-link cost tags.  Returns the number of
    blocks. *)
val recluster : ?strategy:Cactis_storage.Cluster.strategy -> t -> int

(** {2 Incremental re-clustering}

    [begin_recluster] computes the target placement from the current
    usage statistics but applies nothing; [recluster_step] then migrates
    a bounded number of instances at a time, so maintenance cost is
    amortized across quiet moments instead of one stop-the-world
    reorganization.  Target blocks live in a fresh region past the
    current maximum block (copying style), and the region is reserved
    up front so instances created mid-migration append beyond it: a
    half-migrated placement never overfills a block, and a crash
    mid-migration loses nothing —
    placement is rebuilt from snapshot + WAL replay at recovery.  When
    the last move lands, the link cost tags are reseeded exactly as
    after a full {!recluster}. *)

(** [begin_recluster ?strategy t] computes a migration plan and returns
    the number of pending moves.  Replaces any previous plan. *)
val begin_recluster : ?strategy:Cactis_storage.Cluster.strategy -> t -> int

(** [recluster_step t ~max_moves] applies up to [max_moves] moves of the
    pending plan and returns how many were applied (0 when no plan is in
    flight).  Bumps the [recluster_steps]/[recluster_moves] counters.
    @raise Invalid_argument if [max_moves < 1]. *)
val recluster_step : t -> max_moves:int -> int

(** Moves remaining in the in-flight plan (0 when idle). *)
val pending_moves : t -> int
