lib/core/instance.mli: Hashtbl Value
