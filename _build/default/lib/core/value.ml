module Vtime = Cactis_util.Vtime

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Time of Vtime.t
  | Arr of t array
  | Rec of (string * t) list

let kind_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Time _ -> "time"
  | Arr _ -> "array"
  | Rec _ -> "record"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Time x, Time y -> Vtime.equal x y
  | Arr x, Arr y ->
    Array.length x = Array.length y
    &&
    let rec all i = i >= Array.length x || (equal x.(i) y.(i) && all (i + 1)) in
    all 0
  | Rec x, Rec y ->
    List.length x = List.length y
    && List.for_all2 (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy) x y
  | (Null | Bool _ | Int _ | Float _ | Str _ | Time _ | Arr _ | Rec _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | Time _ -> 5
  | Arr _ -> 6
  | Rec _ -> 7

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Time x, Time y -> Vtime.compare x y
  | Arr x, Arr y ->
    let n = Stdlib.min (Array.length x) (Array.length y) in
    let rec go i =
      if i >= n then Int.compare (Array.length x) (Array.length y)
      else
        let c = compare x.(i) y.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  | Rec x, Rec y ->
    let cmp (nx, vx) (ny, vy) =
      let c = String.compare nx ny in
      if c <> 0 then c else compare vx vy
    in
    List.compare cmp x y
  | _, _ -> Int.compare (rank a) (rank b)

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Time t -> Vtime.pp fmt t
  | Arr a ->
    Format.fprintf fmt "[@[%a@]]"
      (Format.pp_print_seq ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
      (Array.to_seq a)
  | Rec fields ->
    let pp_field fmt (name, v) = Format.fprintf fmt "%s = %a" name pp v in
    Format.fprintf fmt "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_field)
      fields

let to_string v = Format.asprintf "%a" pp v

let shape_error expected v =
  Errors.type_error "expected %s, got %s (%s)" expected (kind_name v) (to_string v)

let as_bool = function Bool b -> b | v -> shape_error "bool" v
let as_int = function Int i -> i | v -> shape_error "int" v

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> shape_error "float" v

let as_string = function Str s -> s | v -> shape_error "string" v
let as_time = function Time t -> t | v -> shape_error "time" v
let as_array = function Arr a -> a | v -> shape_error "array" v

let field v name =
  match v with
  | Rec fields -> (
    match List.assoc_opt name fields with
    | Some x -> x
    | None -> Errors.type_error "record has no field %s in %s" name (to_string v))
  | _ -> shape_error "record" v

let numeric2 name fi ff a b =
  match (a, b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (ff (as_float a) (as_float b))
  | _ -> Errors.type_error "%s: cannot combine %s and %s" name (kind_name a) (kind_name b)

let add a b =
  match (a, b) with
  | Str x, Str y -> Str (x ^ y)
  | Time x, Float d -> Time (Vtime.add_days x d)
  | Time x, Int d -> Time (Vtime.add_days x (float_of_int d))
  | Time x, Time y ->
    (* Figure 1 sums a latest-dependency time with a local duration; a
       duration is represented as days-since-epoch, so time+time adds the
       day counts. *)
    Time (Vtime.of_days (Vtime.to_days x +. Vtime.to_days y))
  | _ -> numeric2 "add" ( + ) ( +. ) a b

let sub a b =
  match (a, b) with
  | Time x, Time y -> Float (Vtime.to_days x -. Vtime.to_days y)
  | Time x, Float d -> Time (Vtime.add_days x (-.d))
  | Time x, Int d -> Time (Vtime.add_days x (-.float_of_int d))
  | _ -> numeric2 "sub" ( - ) ( -. ) a b

let mul a b = numeric2 "mul" ( * ) ( *. ) a b

let div a b =
  match (a, b) with
  | Int _, Int 0 -> Errors.type_error "div: division by zero"
  | _ -> numeric2 "div" ( / ) ( /. ) a b

let neg = function
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | v -> shape_error "number" v

let lt a b = compare a b < 0
let le a b = compare a b <= 0

let sum vs = List.fold_left (fun acc v -> add acc v) (Int 0) vs
let count vs = Int (List.length vs)

let extremum name better ?default vs =
  match vs with
  | [] -> (
    match default with
    | Some d -> d
    | None -> Errors.type_error "%s of empty collection with no default" name)
  | v :: rest -> List.fold_left (fun acc x -> if better x acc then x else acc) v rest

let max_ ?default vs = extremum "max" (fun x acc -> compare x acc > 0) ?default vs
let min_ ?default vs = extremum "min" (fun x acc -> compare x acc < 0) ?default vs
let all_ vs = Bool (List.for_all (fun v -> as_bool v) vs)
let any_ vs = Bool (List.exists (fun v -> as_bool v) vs)
