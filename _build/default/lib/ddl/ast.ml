(** Abstract syntax of the DDL. *)

module Value = Cactis.Value

type agg =
  | Max
  | Min
  | Sum
  | Count
  | All
  | Any

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not

type expr =
  | Lit of Value.t
  | Self_attr of string  (** attribute of this instance *)
  | Rel_one of string * string
      (** [rel.attr] — the single value across a [one] relationship *)
  | Rel_agg of { agg : agg; rel : string; attr : string; default : expr option }
      (** [max(rel.attr default e)] etc. *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Call of string * expr list  (** builtins: time, later_of, later_than, … *)

type value_type =
  | T_int
  | T_float
  | T_bool
  | T_string
  | T_time

type rel_decl = {
  rd_name : string;
  rd_target : string;
  rd_card : [ `One | `Multi ];
  rd_polarity : [ `Plug | `Socket ];
  rd_inverse : string;
}

type attr_decl = {
  ad_name : string;
  ad_type : value_type;
  ad_default : expr option;  (** must be a constant expression *)
}

type rule_decl = {
  ru_name : string;
  ru_expr : expr;
}

type constraint_decl = {
  cd_name : string;
  cd_expr : expr;
  cd_message : string;
  cd_recovery : string option;
}

(** [transmits rel.export = attr;] — Figure 1's transmission alias: the
    class sends its [attr] across [rel] under the name [export]. *)
type transmit_decl = {
  tr_rel : string;
  tr_export : string;
  tr_attr : string;
}

type class_def = {
  cl_name : string;
  cl_rels : rel_decl list;
  cl_attrs : attr_decl list;
  cl_rules : rule_decl list;
  cl_constraints : constraint_decl list;
  cl_transmits : transmit_decl list;
}

type subtype_def = {
  su_name : string;
  su_parent : string;
  su_predicate : expr;
  su_attrs : attr_decl list;
  su_rules : rule_decl list;
}

type item =
  | Class of class_def
  | Subtype of subtype_def

type schema = item list

let default_value = function
  | T_int -> Value.Int 0
  | T_float -> Value.Float 0.0
  | T_bool -> Value.Bool false
  | T_string -> Value.Str ""
  | T_time -> Value.Time Cactis_util.Vtime.epoch

let type_name = function
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "bool"
  | T_string -> "string"
  | T_time -> "time"

let agg_name = function
  | Max -> "max"
  | Min -> "min"
  | Sum -> "sum"
  | Count -> "count"
  | All -> "all"
  | Any -> "any"

let agg_of_name = function
  | "max" -> Some Max
  | "min" -> Some Min
  | "sum" -> Some Sum
  | "count" -> Some Count
  | "all" -> Some All
  | "any" -> Some Any
  | _ -> None
