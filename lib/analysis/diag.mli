(** Structured diagnostics produced by the schema analyzer.

    Every pass reports findings as {!t} values: a severity, a stable
    machine-readable code, the [type.attr] path the finding anchors to,
    a human message, an optional {e witness} (for circularity: the
    concrete cycle through the type-level dependency graph) and an
    optional fix hint.  Diagnostics render both as compiler-style text
    and as JSON (for [cactis lint --json] and CI gates). *)

type severity =
  | Error  (** the schema is broken for essentially all data *)
  | Warning  (** breaks for data shapes the schema permits *)
  | Info  (** suspicious but harmless *)

(** One step of a witness path: how the next node is reached. *)
type step =
  | S_self  (** dependency within the same instance *)
  | S_rel of string  (** dependency across the named relationship *)

(** A node of the type-level dependency graph. *)
type node = {
  n_type : string;
  n_attr : string;
}

type t = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["potential-cycle"], ["dead-attr"] *)
  path : string;  (** anchor, ["type.attr"] (or ["type"] for type-level findings) *)
  message : string;
  witness : (node * step) list;
      (** for cycles: [witness] closes back on its first node; empty otherwise *)
  hint : string option;
  fix : string option;
      (** machine-applicable patch directive, when one exists —
          ["drop-rule:type.attr"] (delete the derived rule) or
          ["declare-attr:type.attr:int"] (materialize a missing
          transmitted attribute); consumed by [cactis lint --fix] *)
}

val make :
  ?witness:(node * step) list ->
  ?hint:string ->
  ?fix:string ->
  severity ->
  code:string ->
  path:string ->
  string ->
  t

val severity_name : severity -> string

(** Errors sort before warnings before infos; ties break on path/code. *)
val compare : t -> t -> int

val is_error : t -> bool
val errors : t list -> t list

(** ["milestone.exp_compl -[depends_on]-> milestone.exp_compl"] — the
    final arrow loops back to the first node. *)
val witness_to_string : (node * step) list -> string

(** Compiler-style one-finding rendering (multi-line when a witness or
    hint is present). *)
val to_string : t -> string

val to_json : t -> string

(** [summary diags] — e.g. ["2 diagnostics (1 error, 1 warning)"]. *)
val summary : t list -> string
