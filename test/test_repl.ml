(* WAL-shipping replication: wire-protocol robustness, cursor-chain
   apply rules, live publisher/follower convergence, and the
   crash/fault-injection matrix.

   - Byte-exhaustive torn/flipped-stream tests: every truncation offset
     and every flipped byte of every protocol message must surface as a
     typed Corrupt error (never a mis-decoded message), and an
     end-to-end sweep through the {!Repl_proxy} confirms the follower
     recovers from each on reconnect.
   - Fault matrix: truncation, corruption, silence, duplication,
     reordering and stalls injected between writer and follower; every
     case must end with the replica byte-identical to the writer
     (binary-snapshot digest) and structurally clean (Integrity), or —
     for refusals — with the documented typed error.  Never silent
     divergence.
   - Regression: a follower ahead of a stale writer (restarted from an
     old checkpoint) is refused with a typed generation-mismatch error.
   - QCheck property: for a random interleaving of data commits, schema
     changes, undo/redo and checkpoints, a follower replaying any
     prefix of the shipped log observes exactly the writer's state at
     that prefix. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Snapshot = Cactis.Snapshot
module Persist = Cactis.Persist
module Codec = Cactis.Codec
module Integrity = Cactis.Integrity
module Frame = Cactis_net.Frame
module Rng = Cactis_util.Rng
module Counters = Cactis_util.Counters
module P = Cactis_repl.Repl_proto
module E = Cactis_repl.Repl_error
module Replica = Cactis_repl.Replica
module Publisher = Cactis_repl.Publisher
module Follower = Cactis_repl.Follower
module G = Gen_schemas
module Proxy = Repl_proxy

let parse_rule src = Cactis_ddl.Elaborate.compile_rule (Cactis_ddl.Parser.parse_expr src)
let () = Cactis_ddl.Elaborate.install_rule_compiler ()

(* Scratch dirs live in dune's per-test sandbox. *)
let tmp_seq = ref 0

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let temp_dir () =
  incr tmp_seq;
  let dir = Printf.sprintf "repl_scratch_%d" !tmp_seq in
  (* A failing test raises before its cleanup, and the sandbox persists
     between runs: never inherit a previous run's snapshot or log. *)
  rm_rf dir;
  Sys.mkdir dir 0o755;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let copy_dir src dst =
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o755;
  Array.iter
    (fun f -> write_file (Filename.concat dst f) (read_file (Filename.concat src f)))
    (Sys.readdir src)

let c g r = { P.gen = g; records = r }

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)

let k_src =
  {|
  object class k is
    relationships
      down : k multi socket inverse up;
      up   : k multi plug   inverse down;
    attributes
      a0   : int := 0;
      note : string;
    rules
      r0 = a0 * 2 + 1;
  end object;
|}

let make_schema () = Cactis_ddl.Elaborate.load_string k_src
let digest db = Digest.to_hex (Digest.string (Snapshot.save_binary db))

(* Observable state, shared with the schema-versioning suite's notion:
   every attribute of every live instance, down-links, subtype
   membership, and the schema description. *)
let observe db =
  let b = Buffer.create 512 in
  let sch = Db.schema db in
  List.iter
    (fun id ->
      let tn = Db.type_of db id in
      Buffer.add_string b (Printf.sprintf "%d:%s" id tn);
      List.iter
        (fun (d : Schema.attr_def) ->
          Buffer.add_string b
            (Printf.sprintf " %s=%s" d.Schema.attr_name
               (Value.to_string (Db.get db ~watch:false id d.Schema.attr_name))))
        (Schema.attrs sch ~type_name:tn);
      List.iter
        (fun id' -> Buffer.add_string b (Printf.sprintf " ->%d" id'))
        (List.sort compare (Db.related db id "down"));
      Buffer.add_char b '\n')
    (List.sort compare (Db.instance_ids db));
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%s members: %s\n" s
           (String.concat ","
              (List.map string_of_int (List.sort compare (Db.subtype_members db s))))))
    (List.sort compare (Schema.subtype_names sch));
  Buffer.add_string b (Schema.describe sch);
  Buffer.contents b

type wenv = { dir : string; db : Db.t; p : Persist.t; pub : Publisher.t }

let writer_env ?(pub_cfg = Publisher.config ~heartbeat_s:0.25 ()) () =
  let dir = temp_dir () in
  let db = Db.create (make_schema ()) in
  let p = Persist.attach ~sync_every:0 ~dir db in
  let pub = Publisher.start ~config:pub_cfg p in
  { dir; db; p; pub }

let stop_env env =
  Publisher.stop env.pub;
  Persist.close env.p;
  rm_rf env.dir

(* [pad] fattens each record so byte-offset faults have a wide body to
   land in. *)
let commit_n ?(pad = 48) env n =
  for i = 1 to n do
    Db.with_txn env.db (fun () ->
        let id = Db.create_instance env.db "k" in
        Db.set env.db id "a0" (Value.Int i);
        Db.set env.db id "note" (Value.Str (String.make pad 'x')))
  done

let mixed_history env round =
  commit_n env ~pad:32 6;
  (match List.sort compare (Db.instance_ids env.db) with
  | a :: b :: _ -> Db.link env.db ~from_id:b ~rel:"down" ~to_id:a
  | _ -> ());
  Db.add_attr env.db ~type_name:"k"
    (Rule.intrinsic (Printf.sprintf "x%d" round) (Value.Int round));
  let src = Printf.sprintf "a0 + %d" round in
  Db.add_attr env.db ~expr:src ~type_name:"k"
    (Rule.derived (Printf.sprintf "d%d" round) (parse_rule src))

let fast_cfg ?(heartbeat_timeout_s = 2.0) ?(max_attempts = 0) ?(check_every = 1) () =
  Follower.config ~heartbeat_timeout_s ~backoff_s:0.05 ~max_backoff_s:0.25 ~check_every
    ~max_attempts ()

let follower ?cfg port =
  let config = match cfg with Some cfg -> cfg | None -> fast_cfg () in
  Follower.create ~config ~make_schema ~host:"127.0.0.1" ~port ()

let follower_db f =
  match Follower.db f with Some db -> db | None -> Alcotest.fail "follower has no replica"

(* Convergence = exact state: binary-snapshot digest equality, clean
   Integrity audit, and the textual observation for a readable diff
   when the digests disagree. *)
let assert_converged ?(msg = "") wdb f =
  let fdb = follower_db f in
  Alcotest.(check string) (msg ^ " observe") (observe wdb) (observe fdb);
  Alcotest.(check string) (msg ^ " snapshot digest") (digest wdb) (digest fdb);
  Alcotest.(check (list string)) (msg ^ " integrity") [] (Integrity.check fdb)

let wait_for ?(timeout = 10.0) label pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) (label ^ " before timeout") true (pred ())

let counter db name = Counters.get (Db.counters db) name

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let sample_entries =
  [
    { P.e_seq = 0; e_prev = c 0 0; e_cursor = c 0 1; e_record = "alpha\x00\x01" };
    { P.e_seq = 1; e_prev = c 0 1; e_cursor = c 0 2; e_record = String.make 300 '\xfe' };
  ]

let sample_server_msgs =
  [
    P.Refuse { code = "follower-ahead"; message = "cursor (2,9) ahead of writer (1,3)" };
    P.Snap_begin { generation = 4; schema_version = 7; size = 12345 };
    P.Snap_chunk { last = false; data = "binary\x00\xffdata" };
    P.Snap_chunk { last = true; data = "" };
    P.Batch { sent_us = 1_722_000_000_123_456; entries = sample_entries };
    P.Batch { sent_us = 0; entries = [] };
    P.Mark { seq = 17; prev = c 1 42; generation = 2 };
    P.Heartbeat { head_seq = 99; cursor = c 3 5; sent_us = 123_456_789 };
  ]

let sample_client_msgs =
  [
    P.Hello { cursor = c 0 0; schema_version = 0 };
    P.Hello { cursor = c 12 34567; schema_version = 9 };
    P.Ack { seq = 42; cursor = c 1 7; lag_us = 1500 };
    P.Ack { seq = -1; cursor = c 0 0; lag_us = 0 };  (* pre-data ack *)
  ]

let test_proto_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "server msg roundtrips" true (P.decode_server (P.encode_server m) = m))
    sample_server_msgs;
  List.iter
    (fun m ->
      Alcotest.(check bool) "client msg roundtrips" true (P.decode_client (P.encode_client m) = m))
    sample_client_msgs

let test_cursor_order () =
  Alcotest.(check bool) "equal" true (P.cursor_compare (c 1 2) (c 1 2) = 0);
  Alcotest.(check bool) "records order" true (P.cursor_compare (c 1 2) (c 1 3) < 0);
  Alcotest.(check bool) "generation dominates" true (P.cursor_compare (c 1 999) (c 2 0) < 0);
  Alcotest.(check string) "printable" "(gen 1, record 2)" (P.cursor_to_string (c 1 2))

(* PR-2-style exhaustiveness, ported to the wire: decode of EVERY
   proper prefix and of EVERY single-byte-flipped variant of every
   message must raise the typed Corrupt error — no other exception, and
   never a successful decode of different bytes. *)
let exhaustive_mangle ~what encode decode msgs =
  List.iter
    (fun m ->
      let enc = encode m in
      for cut = 0 to String.length enc - 1 do
        match decode (String.sub enc 0 cut) with
        | exception P.Corrupt _ -> ()
        | _ ->
          Alcotest.fail (Printf.sprintf "%s truncated at %d/%d decoded" what cut (String.length enc))
      done;
      for i = 0 to String.length enc - 1 do
        let b = Bytes.of_string enc in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
        match decode (Bytes.to_string b) with
        | exception P.Corrupt _ -> ()
        | _ -> Alcotest.fail (Printf.sprintf "%s with byte %d flipped decoded" what i)
      done)
    msgs

let test_torn_and_flipped_messages () =
  exhaustive_mangle ~what:"server msg" P.encode_server P.decode_server sample_server_msgs;
  exhaustive_mangle ~what:"client msg" P.encode_client P.decode_client sample_client_msgs

(* ------------------------------------------------------------------ *)
(* Persist cursor plumbing                                             *)

let test_persist_cursor () =
  let dir = temp_dir () in
  let db = Db.create (make_schema ()) in
  let p = Persist.attach ~sync_every:0 ~dir db in
  Alcotest.(check int) "fresh generation" 0 (Persist.generation p);
  Alcotest.(check int) "fresh wal_records" 0 (Persist.wal_records p);
  Alcotest.(check bool) "no checkpoint yet" true (Persist.read_checkpoint p = None);
  for i = 1 to 3 do
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "k" in
        Db.set db id "a0" (Value.Int i);
        Db.set db id "note" (Value.Str "n"))
  done;
  Alcotest.(check int) "one record per commit" 3 (Persist.wal_records p);
  Persist.checkpoint p;
  Alcotest.(check int) "checkpoint bumps generation" 1 (Persist.generation p);
  Alcotest.(check int) "checkpoint resets records" 0 (Persist.wal_records p);
  (match Persist.read_checkpoint p with
  | None -> Alcotest.fail "checkpoint must be readable"
  | Some (generation, _sv, payload) ->
    Alcotest.(check int) "checkpoint generation" 1 generation;
    let db2 = Snapshot.load_binary (make_schema ()) payload in
    Alcotest.(check string) "checkpoint payload loads to the same state" (observe db) (observe db2));
  Db.with_txn db (fun () -> ignore (Db.create_instance db "k"));
  Alcotest.(check int) "records count within the new generation" 1 (Persist.wal_records p);
  Persist.close p;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Replica chain rules                                                 *)

let test_chain_rules () =
  let applied = ref [] in
  let r =
    Replica.create
      ~apply:(fun s -> applied := s :: !applied)
      ~cursor:P.cursor_zero
      (Db.create (make_schema ()))
  in
  let e0 = { P.e_seq = 0; e_prev = c 0 0; e_cursor = c 0 1; e_record = "r0" } in
  Alcotest.(check bool) "first record applies" true (Replica.apply_entry r e0 = Replica.Applied);
  Alcotest.(check bool) "duplicate skips" true (Replica.apply_entry r e0 = Replica.Skipped);
  Alcotest.(check (list string)) "applied exactly once" [ "r0" ] !applied;
  (match
     Replica.apply_entry r { P.e_seq = 9; e_prev = c 0 5; e_cursor = c 0 6; e_record = "hole" }
   with
  | exception E.Gap { expected; got; seq } ->
    Alcotest.(check bool) "gap names the cursors" true
      (expected = c 0 1 && got = c 0 5 && seq = 9)
  | _ -> Alcotest.fail "out-of-order record must be a typed Gap");
  Alcotest.(check bool) "mark advances the generation" true
    (Replica.apply_mark r ~seq:1 ~prev:(c 0 1) ~generation:1 = Replica.Applied);
  Alcotest.(check bool) "cursor at (1,0)" true (Replica.cursor r = c 1 0);
  Alcotest.(check bool) "stale mark skips" true
    (Replica.apply_mark r ~seq:2 ~prev:(c 0 1) ~generation:1 = Replica.Skipped);
  (match Replica.apply_mark r ~seq:3 ~prev:(c 0 9) ~generation:2 with
  | exception E.Gap _ -> ()
  | _ -> Alcotest.fail "mark off the chain must be a typed Gap");
  Alcotest.(check bool) "stream continues past the mark" true
    (Replica.apply_entry r { P.e_seq = 4; e_prev = c 1 0; e_cursor = c 1 1; e_record = "r1" }
    = Replica.Applied);
  Alcotest.(check int) "records_applied counts applies only" 2 (Replica.records_applied r);
  Alcotest.(check int) "seq tracks the stream head" 4 (Replica.seq r)

let test_default_apply_corrupt () =
  let r = Replica.create ~cursor:P.cursor_zero (Db.create (make_schema ())) in
  match
    Replica.apply_entry r
      { P.e_seq = 0; e_prev = c 0 0; e_cursor = c 0 1; e_record = "not a delta" }
  with
  | exception E.Corrupt _ -> ()
  | _ -> Alcotest.fail "undecodable record must be a typed Corrupt"

let test_error_taxonomy () =
  let refused = E.Refused { code = E.code_follower_ahead; message = "m" } in
  let diverged = E.Diverged { violations = [ "v" ] } in
  let corrupt = E.Corrupt { context = "c"; message = "m" } in
  let gap = E.Gap { expected = c 0 0; got = c 0 1; seq = 0 } in
  List.iter
    (fun (e, expect) ->
      Alcotest.(check bool) (E.to_string e) expect (E.recoverable e);
      Alcotest.(check bool) "printable" true (String.length (E.to_string e) > 0))
    [
      (refused, false); (diverged, false); (corrupt, true); (gap, true); (E.Transport "t", true);
    ];
  let r = Replica.create ~cursor:P.cursor_zero (Db.create (make_schema ())) in
  Replica.drift_check r (* healthy replica: no Diverged *)

(* ------------------------------------------------------------------ *)
(* Live publisher <-> follower                                         *)

let test_stream_convergence () =
  let env = writer_env () in
  mixed_history env 1;
  let f = follower (Publisher.port env.pub) in
  Follower.run ~until_synced:true f;
  assert_converged ~msg:"initial sync" env.db f;
  Alcotest.(check bool) "streaming status" true (Follower.status f = Follower.Streaming);
  (* Keep streaming while the writer commits, checkpoints and changes
     schema: the follower must ride across the generation mark. *)
  let d = Domain.spawn (fun () -> Follower.run f) in
  mixed_history env 2;
  Persist.checkpoint env.p;
  commit_n env 5;
  (* The head gauge lags commits still sitting in the publisher queue,
     so require the caught-up predicate to hold across a settle window
     during which the head did not move. *)
  let caught_up () =
    let h = Publisher.head_seq env.pub in
    if h >= 0 && Follower.applied_seq f >= h then begin
      Unix.sleepf 0.3;
      Publisher.head_seq env.pub = h && Follower.applied_seq f >= h
    end
    else false
  in
  wait_for "follower caught up" caught_up;
  Follower.stop f;
  Domain.join d;
  assert_converged ~msg:"after live checkpoint" env.db f;
  let fdb = follower_db f in
  Alcotest.(check int) "no bootstrap needed" 0 (counter fdb "repl.bootstraps");
  Alcotest.(check bool) "mark shipped" true (counter env.db "repl.marks" >= 1);
  Alcotest.(check bool) "gapless" true (counter fdb "repl.gaps" = 0);
  stop_env env

let test_bootstrap_from_checkpoint () =
  let dir = temp_dir () in
  let db = Db.create (make_schema ()) in
  for i = 1 to 10 do
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "k" in
        Db.set db id "a0" (Value.Int i);
        Db.set db id "note" (Value.Str "pre-attach"))
  done;
  (* Attaching a populated database forces a baseline checkpoint, so
     the log starts at generation 1 and a fresh follower's (0,0) cursor
     is only reachable through the snapshot. *)
  let p = Persist.attach ~sync_every:0 ~dir db in
  Alcotest.(check int) "baseline checkpoint" 1 (Persist.generation p);
  let pub = Publisher.start ~config:(Publisher.config ~heartbeat_s:0.25 ()) p in
  for i = 1 to 5 do
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "k" in
        Db.set db id "a0" (Value.Int (100 + i));
        Db.set db id "note" (Value.Str "post-attach"))
  done;
  let f = follower (Publisher.port pub) in
  Follower.run ~until_synced:true f;
  assert_converged ~msg:"bootstrap + catch-up" db f;
  Alcotest.(check int) "exactly one bootstrap" 1 (counter (follower_db f) "repl.bootstraps");
  Alcotest.(check int) "snapshot served once" 1 (counter db "repl.snapshots_served");
  Alcotest.(check int) "only post-snapshot records applied" 5
    (counter (follower_db f) "repl.records");
  Alcotest.(check bool) "cursor is (1,5)" true (Follower.cursor f = c 1 5);
  Follower.stop f;
  Publisher.stop pub;
  Persist.close p;
  rm_rf dir

let test_reconnect_resume () =
  let env = writer_env () in
  (* Two small records, a checkpoint, then ten fat ones: the resumed
     stream is [Batch; Mark; Batch] and a 600-byte truncation lands
     inside the second batch, after state already moved. *)
  commit_n env ~pad:8 2;
  Persist.checkpoint env.p;
  commit_n env ~pad:80 10;
  let proxy = Proxy.start ~target_port:(Publisher.port env.pub) [ Proxy.Truncate_after 600 ] in
  let f = follower ~cfg:(fast_cfg ~heartbeat_timeout_s:1.0 ()) (Proxy.port proxy) in
  Follower.run ~until_synced:true f;
  assert_converged ~msg:"resume after truncation" env.db f;
  Alcotest.(check bool) "reconnected through the proxy" true (Proxy.served proxy >= 2);
  Alcotest.(check int) "resume, not re-bootstrap" 0 (counter (follower_db f) "repl.bootstraps");
  Follower.stop f;
  Proxy.stop proxy;
  stop_env env

(* ------------------------------------------------------------------ *)
(* Refusals                                                            *)

let hello_refusal_code port cursor =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Frame.send fd (P.encode_client (P.Hello { cursor; schema_version = 0 }));
      match Frame.recv fd with
      | Some frame -> (
        match P.decode_server frame with
        | P.Refuse { code; _ } -> code
        | _ -> Alcotest.fail "expected a Refuse message")
      | None -> Alcotest.fail "writer closed without refusing")

let test_hello_refusal_codes () =
  let env = writer_env () in
  commit_n env 3;
  Persist.checkpoint env.p;
  commit_n env 2;
  (* Same generation, more records than the writer ever shipped. *)
  Alcotest.(check string) "follower ahead within the generation" E.code_follower_ahead
    (hello_refusal_code (Publisher.port env.pub) (c 1 99));
  (* A generation the writer has never reached. *)
  Alcotest.(check string) "follower from a future generation" E.code_generation_mismatch
    (hello_refusal_code (Publisher.port env.pub) (c 5 0));
  Alcotest.(check bool) "refusals counted" true (counter env.db "repl.refusals" >= 2);
  stop_env env

(* Regression: a stale writer — restarted from an old checkpoint — must
   refuse a follower that is ahead of it, with the typed
   generation-mismatch error, rather than replay the replica backwards. *)
let test_stale_writer_refused () =
  let dir = temp_dir () in
  let stale = temp_dir () in
  let db = Db.create (make_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  for i = 1 to 4 do
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "k" in
        Db.set db id "a0" (Value.Int i);
        Db.set db id "note" (Value.Str "epoch-1"))
  done;
  Persist.checkpoint p;
  Persist.sync p;
  copy_dir dir stale;
  (* The real timeline moves on: another generation plus records. *)
  let pub1 = Publisher.start ~config:(Publisher.config ~heartbeat_s:0.25 ()) p in
  let port = Publisher.port pub1 in
  for i = 1 to 3 do
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "k" in
        Db.set db id "a0" (Value.Int (10 + i));
        Db.set db id "note" (Value.Str "epoch-2"))
  done;
  Persist.checkpoint p;
  Db.with_txn db (fun () -> ignore (Db.create_instance db "k"));
  let f = follower ~cfg:(fast_cfg ~heartbeat_timeout_s:1.0 ()) port in
  Follower.run ~until_synced:true f;
  Alcotest.(check bool) "follower reached generation 2" true ((Follower.cursor f).P.gen >= 2);
  Publisher.stop pub1;
  Persist.close p;
  (* "Restart" the writer from the pre-divergence copy, on the same
     port: checkpoint generation 1, empty log. *)
  let p2 = Persist.recover ~sync_every:1 ~dir:stale (make_schema ()) in
  Alcotest.(check int) "stale writer is at generation 1" 1 (Persist.generation p2);
  let pub2 = Publisher.start ~config:(Publisher.config ~heartbeat_s:0.25 ~port ()) p2 in
  (match Follower.run f with
  | exception E.Refused { code; _ } ->
    Alcotest.(check string) "typed generation mismatch" E.code_generation_mismatch code
  | () -> Alcotest.fail "stale writer must refuse the ahead follower");
  (match Follower.status f with
  | Follower.Failed _ -> ()
  | _ -> Alcotest.fail "refusal is fatal: follower must report Failed");
  Alcotest.(check int) "refusal counted on the replica" 1 (counter (follower_db f) "repl.refused");
  Publisher.stop pub2;
  Persist.close p2;
  rm_rf dir;
  rm_rf stale

(* ------------------------------------------------------------------ *)
(* Fault-injection matrix                                              *)

(* [`Recon]: the fault must force at least one reconnect before
   convergence.  [`Clean]: the stream must survive on the very first
   connection (duplicates are skipped, not fatal).  Frame 0 of a fresh
   stream is the handshake heartbeat announcing the head, then
   [Batch(gen 0); Mark; Batch(gen 1)] — so frame faults target indices
   1-3. *)
let fault_matrix =
  [
    (Proxy.Pass, `Clean);
    (Proxy.Truncate_after 3, `Recon);
    (Proxy.Truncate_after 60, `Recon);
    (Proxy.Truncate_after 700, `Recon);
    (Proxy.Corrupt_byte 5, `Recon);
    (Proxy.Corrupt_byte 120, `Recon);
    (Proxy.Corrupt_byte 701, `Recon);
    (Proxy.Drop_after_frames 2, `Recon);
    (Proxy.Duplicate_frame 1, `Clean);
    (Proxy.Duplicate_frame 2, `Clean);
    (Proxy.Reorder_frames 1, `Recon);
    (Proxy.Reorder_frames 2, `Recon);
    (Proxy.Stall_after (200, 1.6), `Recon);
  ]

let test_fault_matrix () =
  let env = writer_env () in
  (* Twelve fat records, a checkpoint, twelve more: the shipped stream
     a fresh follower sees is [Batch(gen 0); Mark; Batch(gen 1)], with
     kilobytes of body on either side of the mark for the byte-offset
     faults to land in. *)
  commit_n env ~pad:60 12;
  Persist.checkpoint env.p;
  commit_n env ~pad:60 12;
  List.iter
    (fun (fault, expect) ->
      let name = Proxy.fault_name fault in
      let proxy = Proxy.start ~target_port:(Publisher.port env.pub) [ fault ] in
      let f = follower ~cfg:(fast_cfg ~heartbeat_timeout_s:1.0 ()) (Proxy.port proxy) in
      Follower.run ~until_synced:true f;
      assert_converged ~msg:name env.db f;
      (match expect with
      | `Recon ->
        Alcotest.(check bool) (name ^ ": reconnected") true (Proxy.served proxy >= 2)
      | `Clean -> Alcotest.(check int) (name ^ ": first connection survived") 1 (Proxy.served proxy));
      Follower.stop f;
      Proxy.stop proxy)
    fault_matrix;
  stop_env env

(* End-to-end torn-stream sweep: cut the shipped bytes at every offset
   through the head of the stream (and a few deeper) — whatever the cut
   hits (frame header, message CRC, record body), the follower must
   reconnect and converge to the writer's exact state. *)
let test_torn_stream_every_offset () =
  let env = writer_env () in
  commit_n env ~pad:24 3;
  let cuts = List.init 48 (fun i -> i + 1) @ [ 60; 90; 130; 200 ] in
  List.iter
    (fun cut ->
      let proxy = Proxy.start ~target_port:(Publisher.port env.pub) [ Proxy.Truncate_after cut ] in
      let f = follower ~cfg:(fast_cfg ~heartbeat_timeout_s:1.0 ()) (Proxy.port proxy) in
      Follower.run ~until_synced:true f;
      assert_converged ~msg:(Printf.sprintf "cut@%d" cut) env.db f;
      Follower.stop f;
      Proxy.stop proxy)
    cuts;
  stop_env env

(* Same sweep for bit rot: flip every byte through the head of the
   stream, frame length prefixes included.  A flipped length byte can
   declare a phantom frame far larger than anything in flight; live
   heartbeat bytes keep feeding the decoder so the receive timeout
   never fires, and only the follower's frame-assembly deadline turns
   the black hole into a typed Transport error.  The short heartbeat
   timeout here keeps that deadline (3x) quick. *)
let test_flipped_byte_every_offset () =
  let env = writer_env () in
  commit_n env ~pad:24 3;
  List.iter
    (fun off ->
      let proxy = Proxy.start ~target_port:(Publisher.port env.pub) [ Proxy.Corrupt_byte off ] in
      let f = follower ~cfg:(fast_cfg ~heartbeat_timeout_s:0.5 ()) (Proxy.port proxy) in
      Follower.run ~until_synced:true f;
      assert_converged ~msg:(Printf.sprintf "flip@%d" off) env.db f;
      Alcotest.(check bool)
        (Printf.sprintf "flip@%d forced a reconnect" off)
        true
        (Proxy.served proxy >= 2);
      Follower.stop f;
      Proxy.stop proxy)
    (List.init 49 (fun i -> i));
  stop_env env

(* ------------------------------------------------------------------ *)
(* Property: any prefix of the shipped log equals the writer           *)

type pact =
  | PCreate of int
  | PSet of int * int * int
  | PLink of int * int
  | PAddIntr of int * int
  | PAddRule of int * int * int
  | PUndo
  | PRedo
  | PCheckpoint

let cname cl = Printf.sprintf "k%d" cl

let gen_pacts rng (cfg : G.cfg) n =
  let count = ref 0 in
  let classes = ref [] in
  let pos = ref 0 and redo = ref 0 in
  let ctr = ref 0 in
  let acts = ref [] in
  for _ = 1 to n do
    let pick = Rng.int rng 100 in
    let act =
      if pick < 30 || !count = 0 then begin
        let cl = Rng.int rng cfg.G.classes in
        classes := cl :: !classes;
        incr count;
        incr pos;
        redo := 0;
        PCreate cl
      end
      else if pick < 55 then begin
        incr pos;
        redo := 0;
        PSet (Rng.int rng !count, Rng.int rng cfg.G.intrinsics, Rng.int rng 50)
      end
      else if pick < 63 then begin
        let arr = Array.of_list (List.rev !classes) in
        let pairs = ref [] in
        Array.iteri
          (fun i ci ->
            Array.iteri (fun j cj -> if j > i && ci = cj then pairs := (i, j) :: !pairs) arr)
          arr;
        incr pos;
        redo := 0;
        match !pairs with
        | [] -> PSet (Rng.int rng !count, 0, Rng.int rng 50)
        | l ->
          let i, j = Rng.pick_list rng l in
          PLink (i, j)
      end
      else if pick < 72 then begin
        incr ctr;
        incr pos;
        redo := 0;
        PAddIntr (Rng.int rng cfg.G.classes, !ctr)
      end
      else if pick < 80 then begin
        incr ctr;
        incr pos;
        redo := 0;
        PAddRule (Rng.int rng cfg.G.classes, !ctr, Rng.int rng 10)
      end
      else if pick < 88 && !pos > 0 then begin
        decr pos;
        incr redo;
        PUndo
      end
      else if pick < 93 && !redo > 0 then begin
        incr pos;
        decr redo;
        PRedo
      end
      else PCheckpoint
    in
    acts := act :: !acts
  done;
  List.rev !acts

let exec_pact db ids = function
  | PCreate cl ->
    ids := !ids @ [ Db.create_instance db (cname cl) ];
    None
  | PSet (k, a, v) -> (
    let id = List.nth !ids k in
    try
      Db.set db id (Printf.sprintf "a%d" a) (Value.Int v);
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PLink (i, j) -> (
    let from_id = List.nth !ids i and to_id = List.nth !ids j in
    try
      if not (List.mem to_id (Db.related db from_id "down")) then
        Db.link db ~from_id ~rel:"down" ~to_id;
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PAddIntr (cl, n) -> (
    try
      Db.add_attr db ~type_name:(cname cl)
        (Rule.intrinsic (Printf.sprintf "x%d" n) (Value.Int n));
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PAddRule (cl, n, k) -> (
    let src = Printf.sprintf "a0 * 2 + %d" k in
    try
      Db.add_attr db ~expr:src ~type_name:(cname cl)
        (Rule.derived (Printf.sprintf "d%d" n) (parse_rule src));
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PUndo -> (
    try
      Db.undo_last db;
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PRedo -> (
    try
      Db.redo db;
      None
    with Cactis.Errors.Unknown m | Cactis.Errors.Type_error m -> Some m)
  | PCheckpoint -> None

(* A captured shipped-stream item, exactly what the publisher would put
   on the wire: a record with its prev/after cursors, or a generation
   mark. *)
type cap = Cap_rec of P.cursor * P.cursor * string | Cap_mark of P.cursor * int

let run_prefix_property (cfg, aseed) =
  let src = G.schema_source ~cross:true cfg in
  let dir = temp_dir () in
  let db = Db.create (Cactis_ddl.Elaborate.load_string src) in
  let p = Persist.attach ~sync_every:0 ~dir db in
  (* Capture the shipped log by chaining after the WAL hook, reading
     the post-append cursor exactly as the publisher does. *)
  let entries = ref [] in
  let chain = ref P.cursor_zero in
  let prior = Db.commit_hook db in
  Db.set_commit_hook db
    (Some
       (fun delta ->
         (match prior with Some h -> h delta | None -> ());
         let cur = { P.gen = Persist.generation p; records = Persist.wal_records p } in
         if cur.P.gen > (!chain).P.gen && cur.P.records >= 1 then begin
           entries := Cap_mark (!chain, cur.P.gen) :: !entries;
           chain := { P.gen = cur.P.gen; records = 0 }
         end;
         entries := Cap_rec (!chain, cur, Codec.encode_delta delta) :: !entries;
         chain := cur));
  let actions = gen_pacts (Rng.create aseed) cfg 26 in
  let ids = ref [] in
  let points = ref [] in
  List.iter
    (fun act ->
      (match act with
      | PCheckpoint ->
        Persist.checkpoint p;
        let gen = Persist.generation p in
        if gen > (!chain).P.gen && Persist.wal_records p = 0 then begin
          entries := Cap_mark (!chain, gen) :: !entries;
          chain := { P.gen = gen; records = 0 }
        end
      | act -> ignore (exec_pact db ids act));
      points := (List.length !entries, observe db) :: !points)
    actions;
  let ents = Array.of_list (List.rev !entries) in
  let points = List.rev !points in
  (* Replay the captured stream one item at a time into a fresh
     replica; at every prefix the writer observed, the replica must
     observe the same. *)
  let rep =
    Replica.create ~cursor:P.cursor_zero (Db.create (Cactis_ddl.Elaborate.load_string src))
  in
  let remaining = ref points in
  let flush_points applied =
    let rec go () =
      match !remaining with
      | (k, expected) :: rest when k <= applied ->
        if not (String.equal expected (observe (Replica.db rep))) then
          QCheck.Test.fail_reportf
            "prefix %d diverged for schema:\n%s\nwriter:\n%s\nreplica:\n%s" k src expected
            (observe (Replica.db rep));
        remaining := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  flush_points 0;
  Array.iteri
    (fun i ent ->
      (match ent with
      | Cap_rec (prev, cursor, record) -> (
        match
          Replica.apply_entry rep
            { P.e_seq = i; e_prev = prev; e_cursor = cursor; e_record = record }
        with
        | Replica.Applied -> ()
        | Replica.Skipped -> QCheck.Test.fail_reportf "clean replay skipped record %d" i)
      | Cap_mark (prev, generation) -> (
        match Replica.apply_mark rep ~seq:i ~prev ~generation with
        | Replica.Applied -> ()
        | Replica.Skipped -> QCheck.Test.fail_reportf "clean replay skipped mark %d" i));
      flush_points (i + 1))
    ents;
  let ok_cursor = P.cursor_compare (Replica.cursor rep) !chain = 0 in
  let ok_integrity = Integrity.check (Replica.db rep) = [] in
  Persist.close p;
  rm_rf dir;
  if not ok_cursor then
    QCheck.Test.fail_reportf "replica cursor %s does not match writer chain %s"
      (P.cursor_to_string (Replica.cursor rep))
      (P.cursor_to_string !chain);
  if not ok_integrity then QCheck.Test.fail_reportf "replica failed the integrity audit";
  true

let prop_prefix =
  QCheck.Test.make
    ~name:"a follower replaying any prefix of the shipped log equals the writer at that version"
    ~count:60
    QCheck.(
      make
        ~print:(fun (cfg, s) -> G.print_cfg cfg ^ Printf.sprintf " aseed=%d" s)
        Gen.(pair G.gen (int_range 0 1_000_000)))
    run_prefix_property

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repl"
    [
      ( "proto",
        [
          Alcotest.test_case "messages roundtrip" `Quick test_proto_roundtrip;
          Alcotest.test_case "cursor ordering" `Quick test_cursor_order;
          Alcotest.test_case "every truncation and byte flip is a typed Corrupt" `Quick
            test_torn_and_flipped_messages;
        ] );
      ( "cursor",
        [ Alcotest.test_case "persist exposes the replication cursor" `Quick test_persist_cursor ]
      );
      ( "replica",
        [
          Alcotest.test_case "chain rules: apply, skip, gap, mark" `Quick test_chain_rules;
          Alcotest.test_case "undecodable record is typed Corrupt" `Quick test_default_apply_corrupt;
          Alcotest.test_case "error taxonomy and recoverability" `Quick test_error_taxonomy;
        ] );
      ( "live",
        [
          Alcotest.test_case "stream converges across commits and checkpoints" `Quick
            test_stream_convergence;
          Alcotest.test_case "snapshot bootstrap then log catch-up" `Quick
            test_bootstrap_from_checkpoint;
          Alcotest.test_case "mid-stream truncation resumes without re-bootstrap" `Quick
            test_reconnect_resume;
        ] );
      ( "refusal",
        [
          Alcotest.test_case "hello refusal codes" `Quick test_hello_refusal_codes;
          Alcotest.test_case "stale writer refuses an ahead follower" `Quick
            test_stale_writer_refused;
        ] );
      ( "faults",
        [
          Alcotest.test_case "matrix: converge or typed error, never divergence" `Quick
            test_fault_matrix;
          Alcotest.test_case "torn stream at every offset" `Quick test_torn_stream_every_offset;
          Alcotest.test_case "flipped byte at every offset" `Quick test_flipped_byte_every_offset;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_prefix ]);
    ]
