(** Multi-client Cactis server on OCaml 5 domains.

    The paper closes with the distributed direction: several users'
    tools working against one database, "various sub-traversals …
    actually running at the same time".  This server realises the
    shared-database half on one machine:

    - {b one writer domain} owns the master {!Cactis.Db} and applies
      every [Commit] through it (and through whatever durability hook —
      the WAL — was attached before {!start});
    - {b N reader domains} each hold an immutable-between-versions
      {e replica}, built from a binary snapshot of the master against a
      fresh schema, and serve [Read]/[Traverse] without ever touching
      the writer's structures.  Readers never block the writer and the
      writer never blocks readers;
    - {b snapshot handoff}: after each commit the writer broadcasts the
      encoded delta (the same bytes the WAL stores) to every reader's
      mailbox, tagged with a monotonically increasing {e version}.
      Readers apply deltas in order; a request's [min_version] names the
      snapshot it is content with (read-your-writes when it names the
      client's own last commit);
    - {b a front-end event loop} (its own domain) accepts TCP
      connections on loopback, decodes frames incrementally, answers
      [Ping]/[Stats] inline, and routes everything else: commits to the
      writer, reads to the reader whose {!Cactis_dist.Partition}
      id-range contains the target instance (affinity routing — every
      replica is complete, the range only decides who serves whom).

    Observability is always on: per-verb request counters and latency
    histograms (domain-safe registries, merged on read), sampled
    tracing — one commit in [trace_sample] records a span carrying the
    client's span id from the request envelope, so client and server
    traces stitch — and the {!Cactis_obs.Flight} recorder (net accepts,
    verbs, typed errors; every server domain runs under a wrapper that
    dumps the recorder on an uncaught exception).

    Production forensics are opt-in per config knob: a plain-HTTP
    [GET /metrics] OpenMetrics endpoint ([metrics_port]), a slow-op
    JSONL log ([slow_ms] deadline, one structured line per blown
    deadline), and a latency/error {!Cactis_obs.Watchdog} sampled from
    the front end's idle heartbeat ([watchdog]), which dumps the flight
    recorder on a p99 regression or error burst. *)

type config

(** [config ()] — loopback TCP on an ephemeral port ([port = 0]), one
    reader, every 64th commit traced; no metrics endpoint, slow-op
    deadline 100 ms logged to stderr, no watchdog, no flight-dump
    directory.

    [metrics_port]: also listen on loopback at this port ([0] =
    ephemeral; see {!metrics_port}) and answer [GET /metrics] with the
    OpenMetrics exposition.  [slow_ms <= 0] disables the slow-op log;
    [slowlog_sink] redirects its JSON lines (default: stderr, prefixed
    [cactis-slowop ]).  [watchdog] enables the latency/error watchdog.
    [flight_dir] is where crash/watchdog flight dumps are written;
    without it dumps are skipped (stderr still reports the crash).
    [read_only] makes this a replica front end: client [Commit]s are
    refused with a typed protocol error ("read-only replica"); state
    changes arrive only through {!inject}. *)
val config :
  ?port:int ->
  ?readers:int ->
  ?trace_sample:int ->
  ?backlog:int ->
  ?metrics_port:int ->
  ?slow_ms:float ->
  ?slowlog_sink:(string -> unit) ->
  ?watchdog:Cactis_obs.Watchdog.config ->
  ?flight_dir:string ->
  ?read_only:bool ->
  unit ->
  config

type t

(** [start ?config ~make_schema db] snapshots [db], spawns the domains
    and begins accepting connections.  [make_schema] must build a fresh
    schema equivalent to [db]'s (schemas are mutable and cannot be
    shared across domains; each replica loads the snapshot against its
    own).  After [start] the caller must not touch [db] again — it
    belongs to the writer domain.  Attach {!Cactis.Persist} {e before}
    starting; the server chains its delta broadcast after the existing
    commit hook. *)
val start : ?config:config -> make_schema:(unit -> Cactis.Schema.t) -> Cactis.Db.t -> t

(** The bound TCP port (useful with [port = 0]). *)
val port : t -> int

(** The bound metrics port, when a metrics endpoint was configured. *)
val metrics_port : t -> int option

val readers : t -> int

(** Highest committed (and broadcast) version. *)
val published_version : t -> int

(** [inject t record] — apply an encoded delta (the WAL / wire record
    format) through the writer domain, exactly as a replicated record:
    replayed unlogged into the master, broadcast to every reader, and
    assigned the next published version (returned).  Blocks the caller
    until the writer has applied it; a replay failure re-raises here.
    This is how a read-only replica server stays fed by a
    {!Cactis_repl.Follower}. *)
val inject : t -> string -> int

(** Server-side request/connection counters (names under [server.]). *)
val counters : t -> Cactis_util.Counters.t

(** Per-verb service latencies (names under [serve.]). *)
val latencies : t -> Cactis_obs.Histogram.t

(** The sampled-span ring (always enabled; ~1-in-[trace_sample]
    commits). *)
val trace : t -> Cactis_obs.Trace.t

(** The slow-op log, when enabled ([slow_ms > 0]). *)
val slowlog : t -> Cactis_obs.Slowlog.t option

(** The watchdog, when configured. *)
val watchdog : t -> Cactis_obs.Watchdog.t option

(** [dump_flight t ~reason] — write a flight dump to the configured
    [flight_dir] now ([None] when no directory was configured or the
    write failed).  The CLI wires SIGQUIT/SIGUSR2 to this. *)
val dump_flight : t -> reason:string -> string option

(** Stop accepting, drain the domains, close every socket.
    Idempotent. *)
val stop : t -> unit
