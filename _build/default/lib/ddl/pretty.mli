(** Pretty-printer for the DDL AST.

    [parse ∘ print] is the identity on ASTs (up to whitespace), which the
    test suite checks by property. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val expr_to_string : Ast.expr -> string
val pp_item : Format.formatter -> Ast.item -> unit
val pp_schema : Format.formatter -> Ast.schema -> unit
val schema_to_string : Ast.schema -> string
