(* Concurrency-control tests: timestamp ordering rules, lost-update
   prevention, serializability against the serial oracle, Thomas write
   rule, starvation accounting. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Cc = Cactis_cc.Timestamp_cc
module Workload = Cactis_cc.Workload
module Interleave = Cactis_cc.Interleave
module Serial_oracle = Cactis_cc.Serial_oracle
module Rng = Cactis_util.Rng

let setup_db instances () =
  let db, _, _ = Workload.counters_db ~instances () in
  db

let test_basic_rules () =
  let db, accounts, _ = Workload.counters_db ~instances:2 () in
  let a = List.hd accounts in
  let cc = Cc.create db in
  (* Older transaction reading an item written by a younger one aborts. *)
  let t1 = Cc.begin_txn cc in
  let t2 = Cc.begin_txn cc in
  (match Cc.write cc t2 a "balance" (Value.Int 1) with
  | Ok () -> ()
  | Error `Abort -> Alcotest.fail "t2 write should succeed");
  (match Cc.commit cc t2 with
  | Ok () -> ()
  | Error `Abort -> Alcotest.fail "t2 commit should succeed");
  (match Cc.read cc t1 a "balance" with
  | Error `Abort -> ()
  | Ok _ -> Alcotest.fail "t1 read-after-younger-write must abort");
  Alcotest.(check int) "one commit" 1 (Cc.commits cc);
  Alcotest.(check int) "one abort" 1 (Cc.aborts cc)

let test_write_after_read_aborts () =
  let db, accounts, _ = Workload.counters_db ~instances:2 () in
  let a = List.hd accounts in
  let cc = Cc.create db in
  let t1 = Cc.begin_txn cc in
  let t2 = Cc.begin_txn cc in
  (* Younger t2 reads; older t1 then tries to write the same item. *)
  (match Cc.read cc t2 a "balance" with Ok _ -> () | Error `Abort -> Alcotest.fail "read");
  (match Cc.write cc t1 a "balance" (Value.Int 5) with
  | Error `Abort -> ()
  | Ok () -> Alcotest.fail "older write after younger read must abort")

let test_read_your_own_writes () =
  let db, accounts, _ = Workload.counters_db ~instances:1 () in
  let a = List.hd accounts in
  let cc = Cc.create db in
  let t1 = Cc.begin_txn cc in
  (match Cc.write cc t1 a "balance" (Value.Int 42) with Ok () -> () | Error `Abort -> Alcotest.fail "w");
  (match Cc.read cc t1 a "balance" with
  | Ok v -> Alcotest.(check string) "own write visible" "42" (Value.to_string v)
  | Error `Abort -> Alcotest.fail "read own write");
  (* Not yet applied to the database. *)
  Alcotest.(check string) "deferred" "100" (Value.to_string (Db.get db ~watch:false a "balance"));
  (match Cc.commit cc t1 with Ok () -> () | Error `Abort -> Alcotest.fail "commit");
  Alcotest.(check string) "applied at commit" "42" (Value.to_string (Db.get db a "balance"))

let test_lost_update_prevented () =
  (* Two concurrent increments of the same account must not lose one. *)
  let db, accounts, _ = Workload.counters_db ~instances:1 () in
  let a = List.hd accounts in
  let cc = Cc.create db in
  let rng = Rng.create 7 in
  let scripts = [ [ [ Workload.Incr (a, "balance", 10) ] ]; [ [ Workload.Incr (a, "balance", 7) ] ] ] in
  let stats = Interleave.run ~rng ~cc ~clients:scripts () in
  Alcotest.(check int) "both committed" 2 stats.Interleave.committed;
  Alcotest.(check string) "no lost update" "117" (Value.to_string (Db.get db a "balance"))

let run_serializability ~seed ~clients ~txns ~hot =
  let instances = 8 in
  let db, accounts, totals = Workload.counters_db ~instances () in
  let cc = Cc.create db in
  let rng = Rng.create seed in
  let scripts =
    List.init clients (fun _ ->
        Workload.generate (Rng.split rng) ~accounts ~txns ~ops_per_txn:4 ~hot_fraction:hot
          ~read_fraction:0.3)
  in
  let stats = Interleave.run ~rng ~cc ~clients:scripts () in
  let oracle =
    Serial_oracle.replay ~setup:(setup_db instances)
      ~committed:stats.Interleave.committed_scripts
  in
  Alcotest.(check bool)
    (Printf.sprintf "serializable (seed %d, %d commits, %d restarts)" seed
       stats.Interleave.committed stats.Interleave.restarts)
    true
    (Serial_oracle.equivalent db oracle [ "balance" ]);
  (* Derived total stays consistent with intrinsic state. *)
  let expected_total =
    List.fold_left
      (fun acc id -> acc + Value.as_int (Db.get db ~watch:false id "balance"))
      0 accounts
  in
  Alcotest.(check int) "derived total consistent" expected_total
    (Value.as_int (Db.get db totals "total"))

let test_serializability_low_contention () = run_serializability ~seed:11 ~clients:4 ~txns:6 ~hot:0.1
let test_serializability_high_contention () = run_serializability ~seed:23 ~clients:6 ~txns:6 ~hot:0.9

let test_many_seeds () =
  List.iter (fun seed -> run_serializability ~seed ~clients:3 ~txns:4 ~hot:0.5) [ 1; 2; 3; 4; 5 ]

let test_thomas_write_rule () =
  let db, accounts, _ = Workload.counters_db ~instances:1 () in
  let a = List.hd accounts in
  let cc = Cc.create ~thomas_write_rule:true db in
  let t1 = Cc.begin_txn cc in
  let t2 = Cc.begin_txn cc in
  (* Both write blind; the younger commits first; the older's stale write
     is skipped rather than aborting. *)
  (match Cc.write cc t2 a "balance" (Value.Int 2) with Ok () -> () | Error `Abort -> Alcotest.fail "w2");
  (match Cc.commit cc t2 with Ok () -> () | Error `Abort -> Alcotest.fail "c2");
  (match Cc.write cc t1 a "balance" (Value.Int 1) with Ok () -> () | Error `Abort -> Alcotest.fail "w1");
  (match Cc.commit cc t1 with Ok () -> () | Error `Abort -> Alcotest.fail "c1 (Thomas)");
  Alcotest.(check string) "younger value survives" "2" (Value.to_string (Db.get db a "balance"));
  Alcotest.(check int) "skip recorded" 1 (Cc.thomas_skips cc)

let test_starvation_accounting () =
  (* With max_restarts = 0, any abort immediately starves its transaction
     rather than retrying; the driver must terminate and count it. *)
  let db, accounts, _ = Workload.counters_db ~instances:1 () in
  let a = List.hd accounts in
  let cc = Cc.create db in
  let rng = Rng.create 3 in
  let hot = [ [ Workload.Incr (a, "balance", 1) ] ] in
  let stats =
    Interleave.run ~max_restarts:0 ~rng ~cc
      ~clients:[ hot; hot; hot; hot ]
      ()
  in
  Alcotest.(check int) "all transactions resolved" 4
    (stats.Interleave.committed + stats.Interleave.starved);
  Alcotest.(check bool) "no retries recorded" true (stats.Interleave.restarts = 0)

let test_round_robin_policy () =
  (* The deterministic round-robin driver must also produce serializable
     schedules. *)
  let instances = 4 in
  let db, accounts, _ = Workload.counters_db ~instances () in
  let cc = Cc.create db in
  let rng = Rng.create 77 in
  let scripts =
    List.init 3 (fun _ ->
        Workload.generate (Rng.split rng) ~accounts ~txns:5 ~ops_per_txn:3 ~hot_fraction:0.5
          ~read_fraction:0.2)
  in
  let stats = Interleave.run ~policy:Interleave.Round_robin ~rng ~cc ~clients:scripts () in
  let oracle =
    Serial_oracle.replay ~setup:(setup_db instances) ~committed:stats.Interleave.committed_scripts
  in
  Alcotest.(check bool) "round-robin serializable" true
    (Serial_oracle.equivalent db oracle [ "balance" ])

let test_derived_reads_under_cc () =
  let db, accounts, totals = Workload.counters_db ~instances:4 () in
  let cc = Cc.create db in
  let rng = Rng.create 99 in
  let scripts =
    [
      [ [ Workload.Incr (List.nth accounts 0, "balance", 50) ] ];
      [ [ Workload.Read_derived (totals, "total") ] ];
      [ [ Workload.Incr (List.nth accounts 1, "balance", -30) ] ];
    ]
  in
  let stats = Interleave.run ~rng ~cc ~clients:scripts () in
  Alcotest.(check bool) "all committed" true (stats.Interleave.committed = 3);
  Alcotest.(check int) "total correct" 420 (Value.as_int (Db.get db totals "total"))

(* Real domains instead of the seeded interleaver: the schedule is
   whatever the OS produces, but timestamp ordering must still be
   equivalent to serial execution in commit-timestamp order.  Repeated
   a few times since each run is a different schedule. *)
let test_parallel_domains_serializable () =
  let module P = Cactis_cc.Parallel_run in
  for round = 1 to 3 do
    let db, accounts, _ = Workload.counters_db ~instances:6 () in
    let cc = Cc.create db in
    let rng = Rng.create (100 + round) in
    let clients =
      List.init 4 (fun _ ->
          Workload.generate (Rng.split rng) ~accounts ~txns:8 ~ops_per_txn:4 ~hot_fraction:0.5
            ~read_fraction:0.3)
    in
    let stats = P.run ~cc ~clients () in
    let total_scripts = List.fold_left (fun a c -> a + List.length c) 0 clients in
    Alcotest.(check int)
      (Printf.sprintf "round %d: every script commits or starves" round)
      total_scripts (stats.P.committed + stats.P.starved);
    Alcotest.(check int)
      (Printf.sprintf "round %d: manager agrees on commits" round)
      stats.P.committed (Cc.commits cc);
    (* Timestamps are unique, so the oracle's replay order is total. *)
    let ts = List.map fst stats.P.committed_scripts in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: commit timestamps strictly increase" round)
      true
      (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ts - 1) ts) (List.tl ts));
    let oracle =
      Serial_oracle.replay ~setup:(setup_db 6) ~committed:stats.P.committed_scripts
    in
    Alcotest.(check bool)
      (Printf.sprintf "round %d: serializable" round)
      true
      (Serial_oracle.equivalent db oracle [ "balance" ])
  done

let () =
  Alcotest.run "cactis-cc"
    [
      ( "parallel",
        [
          Alcotest.test_case "domain clients serializable" `Quick
            test_parallel_domains_serializable;
        ] );
      ( "rules",
        [
          Alcotest.test_case "read too late aborts" `Quick test_basic_rules;
          Alcotest.test_case "write after younger read aborts" `Quick test_write_after_read_aborts;
          Alcotest.test_case "read your own writes" `Quick test_read_your_own_writes;
          Alcotest.test_case "thomas write rule" `Quick test_thomas_write_rule;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "lost update prevented" `Quick test_lost_update_prevented;
          Alcotest.test_case "low contention" `Quick test_serializability_low_contention;
          Alcotest.test_case "high contention" `Quick test_serializability_high_contention;
          Alcotest.test_case "multiple seeds" `Quick test_many_seeds;
          Alcotest.test_case "round-robin policy" `Quick test_round_robin_policy;
          Alcotest.test_case "starvation accounting" `Quick test_starvation_accounting;
          Alcotest.test_case "derived reads" `Quick test_derived_reads_under_cc;
        ] );
    ]
