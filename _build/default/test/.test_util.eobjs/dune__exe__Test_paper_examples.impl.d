test/test_paper_examples.ml: Alcotest Cactis Cactis_ddl List
