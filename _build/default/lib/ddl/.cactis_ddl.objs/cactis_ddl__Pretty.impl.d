lib/ddl/pretty.ml: Ast Cactis Cactis_util Format Printf String
