type link = {
  a : int;
  b : int;
  rel : string;
  count : int;
}

type assignment = {
  block_of : (int, int) Hashtbl.t;
  block_count : int;
}

(* The outer loop wants "the most referenced unassigned instance"; the
   inner loop wants "the highest-count link from the block to an
   unassigned outside instance".  Both are served by priority queues with
   lazy deletion: entries whose instance has been assigned in the
   meantime are skipped when popped.  Priorities are negated (Pqueue is a
   min-heap) and tie-broken by instance id for determinism. *)

let priority count id = (-.float_of_int count) +. (float_of_int id *. 1e-9)

let pack ~block_capacity ~instances ~links =
  if block_capacity < 1 then invalid_arg "Cluster.pack: block_capacity must be >= 1";
  let block_of = Hashtbl.create (List.length instances) in
  let assigned id = Hashtbl.mem block_of id in
  let known = Hashtbl.create (List.length instances) in
  List.iter (fun (id, _) -> Hashtbl.replace known id ()) instances;
  (* Adjacency: instance -> links touching it. *)
  let adj : (int, link list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_adj id l =
    match Hashtbl.find_opt adj id with
    | Some r -> r := l :: !r
    | None -> Hashtbl.add adj id (ref [ l ])
  in
  List.iter
    (fun l ->
      if Hashtbl.mem known l.a && Hashtbl.mem known l.b then begin
        add_adj l.a l;
        add_adj l.b l
      end)
    links;
  let seeds = Cactis_util.Pqueue.create () in
  List.iter (fun (id, accesses) -> Cactis_util.Pqueue.push seeds (priority accesses id) id) instances;
  let next_block = ref 0 in
  let rec next_seed () =
    match Cactis_util.Pqueue.pop_opt seeds with
    | None -> None
    | Some id -> if assigned id then next_seed () else Some id
  in
  let assign_to_block block id candidates =
    Hashtbl.replace block_of id block;
    let neighbours = match Hashtbl.find_opt adj id with Some r -> !r | None -> [] in
    List.iter
      (fun l ->
        let other = if l.a = id then l.b else l.a in
        if not (assigned other) then
          Cactis_util.Pqueue.push candidates (priority l.count other) other)
      neighbours
  in
  let rec fill_block block candidates used =
    if used >= block_capacity then ()
    else
      match Cactis_util.Pqueue.pop_opt candidates with
      | None -> ()
      | Some id ->
        if assigned id then fill_block block candidates used
        else begin
          assign_to_block block id candidates;
          fill_block block candidates (used + 1)
        end
  in
  let rec outer () =
    match next_seed () with
    | None -> ()
    | Some seed ->
      let block = !next_block in
      incr next_block;
      let candidates = Cactis_util.Pqueue.create () in
      assign_to_block block seed candidates;
      fill_block block candidates 1;
      outer ()
  in
  outer ();
  { block_of; block_count = !next_block }

let sequential ~block_capacity ~instances =
  if block_capacity < 1 then invalid_arg "Cluster.sequential: block_capacity must be >= 1";
  let sorted = List.sort compare instances in
  let block_of = Hashtbl.create (List.length sorted) in
  let n = ref 0 in
  List.iteri (fun i id ->
      let block = i / block_capacity in
      Hashtbl.replace block_of id block;
      n := block + 1)
    sorted;
  { block_of; block_count = !n }
