(** Imperative binary-heap priority queue with float priorities.

    Lower priority value = dequeued first.  Used by the chunk scheduler of
    the storage engine: runnable traversal processes are ordered by their
    expected disk I/O, and the process with the smallest expectation runs
    first (Section 2.3). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push t prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop t] removes and returns a minimum-priority element.
    @raise Not_found if empty. *)
val pop : 'a t -> 'a

(** [pop_opt t] is [pop] returning an option. *)
val pop_opt : 'a t -> 'a option

(** [peek_priority t] is the smallest priority currently queued. *)
val peek_priority : 'a t -> float option

(** [drain t f] pops every element in priority order, applying [f]. *)
val drain : 'a t -> ('a -> unit) -> unit

(** [clear t] empties the queue. *)
val clear : 'a t -> unit
