lib/dist/partition.mli: Cactis Cactis_util
