test/test_ddl.ml: Alcotest Cactis Cactis_ddl Cactis_util List Printf
