module Pager = Cactis_storage.Pager

let check db =
  let sch = Db.schema db in
  let store = Db.store db in
  let problems = ref [] in
  let report fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let ids = Db.instance_ids db in
  List.iter
    (fun id ->
      let inst = Store.get store id in
      let tn = inst.Instance.type_name in
      if not (Schema.has_type sch tn) then report "instance %d has unknown type %s" id tn
      else begin
        (* Slots: declared, correct state discipline. *)
        Instance.iter_slots inst (fun attr (slot : Instance.slot) ->
            match Schema.attr_opt sch ~type_name:tn attr with
            | None -> report "instance %d carries undeclared attribute %s" id attr
            | Some def -> (
              (match slot.Instance.state with
              | Instance.In_progress -> report "instance %d attribute %s left in progress" id attr
              | Instance.Up_to_date | Instance.Out_of_date -> ());
              match def.Schema.kind with
              | Schema.Intrinsic _ ->
                if slot.Instance.state = Instance.Out_of_date then
                  report "instance %d intrinsic %s is out of date" id attr
              | Schema.Derived _ -> ()));
        (* Links: declared, alive endpoints, inverse symmetry, type and
           cardinality respected. *)
        List.iter
          (fun (rel, targets) ->
            match Schema.rel_opt sch ~type_name:tn rel with
            | None -> report "instance %d carries undeclared relationship %s" id rel
            | Some rd ->
              if rd.Schema.card = Schema.One && List.length targets > 1 then
                report "instance %d relationship %s holds %d links but is one-cardinality" id rel
                  (List.length targets);
              List.iter
                (fun j ->
                  match Store.get_opt store j with
                  | None -> report "instance %d links to dead instance %d via %s" id j rel
                  | Some jinst ->
                    if not (String.equal jinst.Instance.type_name rd.Schema.target) then
                      report "instance %d link %s -> %d violates target type %s" id rel j
                        rd.Schema.target;
                    let back = Instance.linked jinst rd.Schema.inverse in
                    let forward_count =
                      List.length (List.filter (fun x -> x = j) (Instance.linked inst rel))
                    in
                    let backward_count = List.length (List.filter (fun x -> x = id) back) in
                    if forward_count <> backward_count then
                      report "asymmetric link %d -[%s]-> %d (%d forward, %d backward)" id rel j
                        forward_count backward_count)
                targets)
          (Instance.all_links inst);
        (* Pager placement. *)
        if Pager.block_of (Store.pager store) id = None then
          report "instance %d has no block placement" id
      end)
    ids;
  if Db.in_txn db then report "transaction left open";
  List.sort_uniq compare !problems

let check_exn db =
  match check db with
  | [] -> ()
  | problems -> Errors.type_error "integrity violations:@\n%s" (String.concat "\n" problems)
