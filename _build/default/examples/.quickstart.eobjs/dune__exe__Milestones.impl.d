examples/milestones.ml: Cactis Cactis_apps List Printf String
